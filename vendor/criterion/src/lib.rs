//! Offline stand-in for the `criterion` crate.
//!
//! Implements exactly the API surface this workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`] and the `criterion_group!` /
//! `criterion_main!` macros — with straightforward wall-clock timing
//! and a mean-per-iteration report on stdout. No statistics, plots or
//! HTML: the real deliverable benchmarks in this repository are the
//! `repro` harnesses; these microbenches only need to run offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Entry point handed to every registered bench function.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        run_one(id, self.warm_up, self.measurement, self.sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up time before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the number of samples taken within the budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with the given input, labelled by `id`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.warm_up,
            self.measurement,
            self.sample_size,
            &mut |b| {
                f(b, input);
            },
        );
        self
    }

    /// Benchmarks a function with no separate input.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.warm_up,
            self.measurement,
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Ends the group (formatting parity with real criterion).
    pub fn finish(self) {}
}

/// A benchmark label: a function name plus a parameter.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates a label from a function name and parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timer handed to the benchmarked closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this sample's iteration count.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    label: &str,
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Warm-up: run with growing iteration counts until the budget is
    // spent, to size one sample's iteration count.
    let mut iters: u64 = 1;
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < warm_up {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = (b.elapsed / iters as u32).max(Duration::from_nanos(1));
        iters = iters.saturating_mul(2).min(1 << 20);
    }
    let budget_per_sample = measurement / samples as u32;
    let iters_per_sample =
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters_per_sample;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("  {label}: {mean_ns:.1} ns/iter ({total_iters} iters)");
}

/// Registers benchmark functions under a group name, mirroring real
/// criterion's macro shape.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the registered groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
