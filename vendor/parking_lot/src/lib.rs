//! A minimal, offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s API shape:
//! `Mutex::lock` returns the guard directly (no poisoning — a poisoned
//! std lock is transparently recovered) and `Condvar::wait` takes the
//! guard by `&mut` instead of by value.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and waits for a
    /// notification, reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
    }

    /// Wakes one waiter. The return value is always `true` here
    /// (std does not report whether a thread was woken).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiters. The count is unknown under std, so `0` is
    /// returned; callers in this workspace ignore it.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            *ready = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        assert!(*ready);
        t.join().unwrap();
    }

    #[test]
    fn into_inner_returns_value() {
        let m = Mutex::new(vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
