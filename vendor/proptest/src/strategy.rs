//! The strategy subset: ranges, tuples, `prop_map`, unions, `Just`.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f(value)` for each generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).gen_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).gen_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.gen_value(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (see `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over the given non-empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].gen_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    #[allow(clippy::cast_possible_truncation)]
    fn gen_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * (rng.unit_f64() as f32)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
