//! Config, RNG and error types for the proptest stand-in.

use std::fmt;

/// Runner configuration; only `cases` is honoured by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator (the `rand` stand-in's SplitMix64); each
/// test gets a stream seeded from its name so runs are reproducible
/// and tests are independent.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// A generator seeded from the test name.
    pub fn for_test(name: &str) -> TestRng {
        use rand::SeedableRng;
        // FNV-1a over the name for a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(h),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    #[allow(clippy::cast_possible_truncation)]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % (bound as u64)) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[allow(clippy::cast_precision_loss)]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
