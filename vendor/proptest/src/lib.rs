//! A minimal, offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro
//! (with `#![proptest_config(..)]`), [`prop_assert!`] /
//! [`prop_assert_eq!`], [`prop_oneof!`], range / tuple / `prop_map`
//! strategies and [`collection::vec`]. Cases are generated from a
//! deterministic per-test RNG, so failures are reproducible; there is
//! no shrinking — the failing inputs are printed verbatim instead.

pub mod strategy;
pub mod test_runner;

/// Strategies over collections.
pub mod collection {
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy produced by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A strategy for `Vec`s with lengths drawn from `size` and
    /// elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs `body` over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let inputs = ($($crate::strategy::Strategy::gen_value(&($strat), &mut rng),)+);
                    let debugged = format!("{inputs:?}");
                    let case_fn = move ||
                        -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        let ($($arg,)+) = inputs;
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    if let Err(e) = case_fn() {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs: {}",
                            case + 1, config.cases, e, debugged
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Like `assert!`, but fails the current proptest case instead of
/// panicking directly (so the runner can report the inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!`, for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Like `assert_ne!`, for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a premise.
/// (This stand-in simply passes the case; there is no rejection
/// bookkeeping.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Picks uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(options)
    }};
}
