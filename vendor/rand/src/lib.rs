//! A minimal, offline stand-in for the `rand` crate.
//!
//! Implements exactly the API subset this workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), [`SeedableRng::seed_from_u64`]
//! and [`Rng::gen_range`] over half-open integer and float ranges. The
//! generator is SplitMix64, which is plenty for the exponential workload
//! sampling done here; it makes no cryptographic claims.

use std::ops::Range;

/// Core source of randomness: a stream of `u64` values.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a small seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + off) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + (self.end - self.start) * unit
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(1e-12f64..1.0);
            assert!((1e-12..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn int_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&x), "{x}");
        }
    }

    #[test]
    fn float_mean_is_near_half() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum();
        let mean = total / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
