//! A minimal, offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{bounded, unbounded}` backed by
//! `std::sync::mpsc`. Only the subset this workspace uses is
//! implemented (send/recv/try_recv, `Sender: Clone`); crossbeam's
//! select machinery and MPMC receivers are not.

/// Multi-producer channels (std-backed subset).
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have disconnected.
        Disconnected,
    }

    enum AnySender<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for AnySender<T> {
        fn clone(&self) -> AnySender<T> {
            match self {
                AnySender::Bounded(s) => AnySender::Bounded(s.clone()),
                AnySender::Unbounded(s) => AnySender::Unbounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: AnySender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                AnySender::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                AnySender::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates a channel that holds at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: AnySender::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// Creates a channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: AnySender::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_roundtrip() {
        let (tx, rx) = channel::bounded(1);
        tx.send(42u32).unwrap();
        assert_eq!(rx.recv(), Ok(42));
    }

    #[test]
    fn unbounded_across_threads() {
        let (tx, rx) = channel::unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        t.join().unwrap();
        let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_fails_when_senders_dropped() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(tx);
        assert!(rx.recv().is_err());
        let (tx2, rx2) = channel::bounded::<u8>(1);
        assert_eq!(rx2.try_recv(), Err(channel::TryRecvError::Empty));
        drop(tx2);
        assert_eq!(rx2.try_recv(), Err(channel::TryRecvError::Disconnected));
    }
}
