//! The paper's motivating scenario (§1.1): an ISP consolidates three
//! customer web domains onto one dual-processor server and sells each a
//! share of the machine. Every domain runs a mix of an http server
//! (interactive), a database (compute with I/O) and a streaming media
//! server (periodic) — all multiplexed by SFS with per-domain weights.
//!
//! The example demonstrates the two headline properties:
//!
//! * **proportionate allocation** — domain services track the purchased
//!   weights 4:2:1;
//! * **application isolation** — when the *bronze* domain spawns a
//!   fork-bomb of weight-1 batch jobs, gold's streaming rate and http
//!   latency survive under SFS (each bronze job is pinned at weight 1,
//!   so it cannot out-weigh gold's services), whereas the time-sharing
//!   baseline hands the machine to whoever has the most tasks.
//!
//! SFS is a single-level scheduler: a domain's *aggregate* share still
//! grows with its task count (the paper lists hierarchical scheduling
//! as future work, §5). What the weights guarantee is per-task service
//! quality, which is what this example measures.
//!
//! Run with: `cargo run --example web_hosting`

use sfs::metrics::Summary;
use sfs::prelude::*;

fn domain(scenario: Scenario, name: &str, weight: u64, seed_jitter: u64) -> Scenario {
    // Each domain task carries the domain weight; a real deployment
    // would use hierarchical shares (paper §5 lists this as future
    // work), so we approximate a domain as three equal-weight members.
    let _ = seed_jitter;
    scenario
        .task(TaskSpec::new(
            &format!("{name}-http"),
            weight,
            BehaviorSpec::Interact {
                think: Duration::from_millis(40),
                burst: Duration::from_millis(3),
            },
        ))
        .task(TaskSpec::new(
            &format!("{name}-db"),
            weight,
            BehaviorSpec::Compile {
                burst: Duration::from_millis(30),
                io: Duration::from_millis(1),
            },
        ))
        .task(TaskSpec::new(
            &format!("{name}-stream"),
            weight,
            BehaviorSpec::Mpeg {
                fps: 30,
                frame_cost: Duration::from_millis(8),
            },
        ))
}

fn run(with_abuse: bool, policy: &str) -> SimReport {
    let cfg = SimConfig {
        cpus: 2,
        duration: Duration::from_secs(20),
        ctx_switch: Duration::from_micros(5),
        sample_every: Duration::from_millis(250),
        track_gms: false,
        seed: 7,
        lean: false,
    };
    let mut s = Scenario::new("web_hosting", cfg);
    s = domain(s, "gold", 4, 0);
    s = domain(s, "silver", 2, 1);
    s = domain(s, "bronze", 1, 2);
    if with_abuse {
        // Bronze goes rogue: 12 runaway batch jobs.
        s = s.task(TaskSpec::new("bronze-runaway", 1, BehaviorSpec::Inf).replicated(12));
    }
    Experiment::new(s)
        .run(policy)
        .expect("well-formed scenario and policy")
        .sim_report()
        .clone()
}

fn domain_service(rep: &SimReport, name: &str) -> f64 {
    rep.tasks
        .iter()
        .filter(|t| t.name.starts_with(name))
        .map(|t| t.service.as_secs_f64())
        .sum()
}

fn gold_quality(rep: &SimReport) -> (f64, f64) {
    let stream = rep.task("gold-stream").unwrap();
    let http = rep.task("gold-http").unwrap();
    (
        stream.completion_rate(Time::from_secs(20)),
        http.responses.as_ref().map(Summary::mean).unwrap_or(0.0),
    )
}

fn main() {
    println!("== normal operation (SFS, weights 4:2:1) ==");
    let rep = run(false, "sfs:quantum=20ms");
    for d in ["gold", "silver", "bronze"] {
        println!("  {d:<7} total service {:>6.2}s", domain_service(&rep, d));
    }
    let (fps, ms) = gold_quality(&rep);
    println!("  gold stream {fps:.1} fps, gold http response {ms:.1} ms");

    println!("\n== bronze spawns 12 runaway jobs ==");
    let sfs_rep = run(true, "sfs:quantum=20ms");
    let ts_rep = run(true, "ts");
    let (sfs_fps, sfs_ms) = gold_quality(&sfs_rep);
    let (ts_fps, ts_ms) = gold_quality(&ts_rep);
    println!("  under SFS:          gold stream {sfs_fps:.1} fps, http response {sfs_ms:.1} ms");
    println!("  under time sharing: gold stream {ts_fps:.1} fps, http response {ts_ms:.1} ms");
    println!(
        "\nWeights, not task counts, control per-task service under SFS: gold's\n\
         stream and latency survive the fork-bomb. The weight-oblivious\n\
         baseline splits the machine per task and gold's stream collapses.\n\
         (Aggregate per-domain caps need hierarchical shares — paper §5.)"
    );
}
