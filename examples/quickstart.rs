//! Quickstart: surplus fair scheduling over real OS threads.
//!
//! Three compute-bound tasks with weights 3:2:1 share two virtual CPUs
//! under SFS. Because 3/(3+2+1) = 1/2 ≤ 1/p, the assignment is feasible
//! and no readjustment is needed; services should track 3:2:1.
//!
//! Run with: `cargo run --example quickstart`

use sfs::prelude::*;

fn main() {
    let cpus = 2;
    let ex = Executor::new(
        RtConfig {
            cpus,
            timer_interval: Duration::from_micros(500),
        },
        Box::new(Sfs::with_config(
            cpus,
            SfsConfig {
                quantum: Duration::from_millis(5),
                ..SfsConfig::default()
            },
        )),
    );

    // Spawn three spinners; `checkpoint()` is the cooperative preemption
    // point (the userspace analogue of a timer interrupt).
    let spin = |ctx: &TaskCtx| {
        let mut n = 0u64;
        while !ctx.stopped() {
            n = n.wrapping_add(1);
            ctx.checkpoint();
        }
    };
    let a = ex.spawn("video (wt=3)", weight(3), spin);
    let b = ex.spawn("web (wt=2)", weight(2), spin);
    let c = ex.spawn("batch (wt=1)", weight(1), spin);

    std::thread::sleep(std::time::Duration::from_millis(800));
    ex.stop();
    ex.wait();

    let total: f64 = [&a, &b, &c].iter().map(|h| h.service().as_secs_f64()).sum();
    println!("CPU shares after 800 ms on {cpus} virtual CPUs under SFS:");
    for h in [&a, &b, &c] {
        let svc = h.service();
        println!(
            "  {:<14} service {:>9}  share {:>5.1}%",
            h.name(),
            format!("{svc}"),
            100.0 * svc.as_secs_f64() / total
        );
    }
    println!("(want ≈ 50.0% / 33.3% / 16.7%)");
    a.join();
    b.join();
    c.join();
}
