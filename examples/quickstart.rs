//! Quickstart: one scenario, one policy string, both substrates.
//!
//! A two-CPU machine runs three compute-bound tasks with weights 3:2:1
//! under surplus fair scheduling. The scenario is declared once and
//! executed twice through the `Experiment` front-end:
//!
//! 1. on the deterministic discrete-event **simulator**, and
//! 2. on the **real-thread runtime**, where the same declarative tasks
//!    become OS threads gated by virtual CPUs (the scenario's duration
//!    then runs in wall clock time).
//!
//! Because 3/(3+2+1) = 1/2 ≤ 1/p the weights are feasible and no
//! readjustment is needed; both substrates should report shares close
//! to 50% / 33% / 17%. A final comparative run shows time sharing
//! ignoring the weights — the paper's core contrast in three lines.
//!
//! Run with: `cargo run --example quickstart`

use sfs::prelude::*;

fn scenario() -> Scenario {
    let cfg = SimConfig {
        cpus: 2,
        duration: Duration::from_millis(800), // wall clock on rt
        sample_every: Duration::from_millis(100),
        ..SimConfig::default()
    };
    Scenario::new("quickstart", cfg)
        .task(TaskSpec::new("video", 3, BehaviorSpec::Inf))
        .task(TaskSpec::new("web", 2, BehaviorSpec::Inf))
        .task(TaskSpec::new("batch", 1, BehaviorSpec::Inf))
}

fn print_shares(rep: &RunReport) {
    let total: f64 = rep.total_service().as_secs_f64();
    println!(
        "[{}] {} under {}:",
        rep.substrate, rep.scenario, rep.sched_name
    );
    for t in &rep.tasks {
        println!(
            "  {:<6} (wt={})  service {:>8.1} ms  share {:>5.1}%",
            t.name,
            t.weight,
            t.service.as_millis_f64(),
            100.0 * t.service.as_secs_f64() / total.max(1e-12),
        );
    }
    println!("  (want ≈ 50.0% / 33.3% / 16.7%)\n");
}

fn main() {
    let policy: PolicySpec = "sfs:quantum=5ms".parse().expect("valid policy");

    // 1. The deterministic simulator (default substrate).
    let sim_rep = Experiment::new(scenario())
        .run(&policy)
        .expect("simulated run");
    print_shares(&sim_rep);

    // 2. The same scenario on real OS threads.
    let rt_rep = Experiment::on(scenario(), RtSubstrate::default())
        .run(&policy)
        .expect("real-thread run");
    print_shares(&rt_rep);

    // 3. Comparative runs are one call: SFS vs the weight-oblivious
    //    time-sharing baseline, with fairness deltas.
    let cmp = Experiment::new(scenario())
        .compare(&[policy, "ts".parse().expect("valid policy")])
        .expect("comparison");
    println!("{}", cmp.to_table());
}
