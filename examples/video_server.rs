//! Application isolation (the Fig. 6(b) story): a video decoder must
//! hold its frame rate while a parallel `make -j` style compilation
//! burns the rest of the machine — compare SFS against the Linux 2.2
//! time-sharing baseline.
//!
//! Run with: `cargo run --example video_server`

use sfs::prelude::*;

fn run(policy: &str, jobs: usize) -> (f64, String) {
    let cfg = SimConfig {
        cpus: 2,
        duration: Duration::from_secs(15),
        ctx_switch: Duration::from_micros(5),
        sample_every: Duration::from_millis(250),
        track_gms: false,
        seed: 11,
        lean: false,
    };
    let mut s = Scenario::new("video_server", cfg).task(TaskSpec::new(
        "decoder",
        10,
        BehaviorSpec::Mpeg {
            fps: 30,
            frame_cost: Duration::from_millis(30),
        },
    ));
    if jobs > 0 {
        s = s.task(
            TaskSpec::new(
                "cc",
                1,
                BehaviorSpec::Compile {
                    burst: Duration::from_millis(40),
                    io: Duration::from_millis(2),
                },
            )
            .replicated(jobs),
        );
    }
    let rep = Experiment::new(s)
        .run(policy)
        .expect("well-formed scenario and policy");
    let fps = rep
        .sim_report()
        .task("decoder")
        .unwrap()
        .completion_rate(Time::from_secs(15));
    (fps, rep.sched_name.clone())
}

fn main() {
    println!("MPEG-1 decode (30 fps target, 30 ms/frame) vs parallel compilation\n");
    println!(
        "{:>14} | {:>10} | {:>12}",
        "compile jobs", "SFS fps", "TimeShare fps"
    );
    println!("{}", "-".repeat(44));
    for jobs in [0usize, 2, 4, 6, 8, 10] {
        let (sfs_fps, _) = run("sfs:quantum=20ms", jobs);
        let (ts_fps, _) = run("ts", jobs);
        println!("{jobs:>14} | {sfs_fps:>10.1} | {ts_fps:>12.1}");
    }
    println!(
        "\nSFS gives the decoder (weight 10 → readjusted to one full CPU)\n\
         a constant frame rate; time sharing splits the machine equally\n\
         and the frame rate collapses as jobs pile up."
    );
}
