//! Interactive latency under batch load (the Fig. 6(c) story), plus a
//! demonstration that SFS's isolation also *bounds* what a greedy user
//! can do: doubling your number of batch tasks does not double your
//! bandwidth if an administrator caps your weight.
//!
//! Run with: `cargo run --example interactive_desktop`

use sfs::metrics::Summary;
use sfs::prelude::*;

fn response_ms(policy: &str, batch: usize) -> f64 {
    let cfg = SimConfig {
        cpus: 2,
        duration: Duration::from_secs(20),
        ctx_switch: Duration::from_micros(5),
        sample_every: Duration::from_millis(500),
        track_gms: false,
        seed: 13,
        lean: false,
    };
    let mut s = Scenario::new("desktop", cfg).task(TaskSpec::new(
        "editor",
        1,
        BehaviorSpec::Interact {
            think: Duration::from_millis(100),
            burst: Duration::from_millis(5),
        },
    ));
    if batch > 0 {
        s = s.task(
            TaskSpec::new(
                "sim",
                1,
                BehaviorSpec::Sim {
                    burst: Duration::from_millis(80),
                    io: Duration::from_micros(500),
                },
            )
            .replicated(batch),
        );
    }
    let rep = Experiment::new(s)
        .run(policy)
        .expect("well-formed scenario and policy");
    rep.task("editor")
        .unwrap()
        .responses
        .as_ref()
        .map(Summary::mean)
        .unwrap_or(0.0)
}

fn main() {
    println!("Editor keystroke latency (5 ms bursts) under growing batch load\n");
    println!(
        "{:>11} | {:>9} | {:>12}",
        "batch tasks", "SFS (ms)", "TimeShare (ms)"
    );
    println!("{}", "-".repeat(40));
    for batch in [0usize, 2, 4, 6, 8, 10] {
        let sfs = response_ms("sfs:quantum=20ms", batch);
        let ts = response_ms("ts", batch);
        println!("{batch:>11} | {sfs:>9.2} | {ts:>12.2}");
    }
    println!(
        "\nBoth schedulers keep interactive latency low: time sharing via its\n\
         sleeper goodness boost, SFS because a waking thread's surplus is\n\
         floored at zero and it preempts any thread running ahead of its\n\
         entitlement (§2.3: no credit, but no penalty either)."
    );
}
