//! Unified event tracing for the SFS reproduction.
//!
//! Both execution substrates — the deterministic simulator (`sfs-sim`)
//! and the real-thread executor (`sfs-rt`) — emit the same structured
//! [`TraceEvent`] vocabulary through a shared [`TraceRecorder`]:
//! per-CPU run slices, context switches, wakes, preemption evictions,
//! shard steals/rebalances, §2.1 readjustment epochs, and counter
//! samples (virtual time `v`, runnable count, running surplus/φ,
//! lock-wait times, per-tenant service). That one event stream feeds
//! three consumers:
//!
//! * **Perfetto export** ([`perfetto::encode`]): hand-encoded
//!   `TracePacket`/`TrackEvent` protobufs (the vendored-deps policy
//!   rules out `prost`) that open directly in
//!   <https://ui.perfetto.dev> with per-CPU tracks, per-task slices,
//!   and per-tenant counter tracks.
//! * **Validation** ([`EventTrace::validate`] and
//!   [`perfetto::validate_encoded`]): CI's structural checks —
//!   monotonic timestamps, every registered task has at least one run
//!   slice, balanced slice begin/end pairs, non-empty counter tracks —
//!   that fail the build on malformed output.
//! * **Capture/replay** ([`EventTrace::to_json`] /
//!   [`EventTrace::from_json`] over the [`json`] module): an rt run's
//!   event sequence serializes to JSON alongside its scenario and
//!   seeds, and `sfs_experiment::Experiment::replay` re-drives the sim
//!   from the capture for lockstep context-switch comparison.
//!
//! For runs too large to hold in memory, [`stream::ChunkSink`] and
//! [`TraceRecorder::streaming`] flush completed event chunks to disk
//! while the run is in flight; [`PerfettoStream`] and [`JsonlStream`]
//! produce the same exports incrementally.
//!
//! Recording is off by default everywhere. A disabled recorder
//! ([`TraceRecorder::off`]) reduces every instrumentation hook to one
//! relaxed atomic load, so the rt executor's hot path is unaffected
//! unless a trace was explicitly requested.

pub mod event;
pub mod json;
pub mod perfetto;
pub mod recorder;
pub mod stream;

pub use event::{
    CounterTrack, EventTrace, MigrateKind, TaskMeta, TraceError, TraceEvent, TraceMeta,
};
pub use json::Json;
pub use perfetto::PerfettoStats;
pub use recorder::TraceRecorder;
pub use stream::{ChunkSink, JsonlStream, PerfettoStream};
