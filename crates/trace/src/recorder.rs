//! The shared, thread-safe event recorder.
//!
//! A [`TraceRecorder`] is a cheap cloneable handle. Disabled recorders
//! (the default everywhere) reduce every hook to one relaxed atomic
//! load, so instrumenting the rt executor's hot path costs nothing when
//! tracing is off. Enabled recorders append events to a mutex-guarded
//! [`EventTrace`]; `finish()` stable-sorts by timestamp (rt events from
//! different shards can arrive slightly out of order) and hands the
//! trace back.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use sfs_core::task::{TaskId, TenantId};

use crate::event::{CounterTrack, EventTrace, TaskMeta, TraceEvent, TraceMeta};

struct State {
    trace: EventTrace,
    tenant_service_ns: HashMap<TenantId, u64>,
}

struct Shared {
    on: AtomicBool,
    state: Mutex<State>,
}

/// A cloneable handle onto one recording. See the module docs.
#[derive(Clone)]
pub struct TraceRecorder {
    inner: Arc<Shared>,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("on", &self.on())
            .finish()
    }
}

impl TraceRecorder {
    /// A recorder that records nothing; every hook is a single relaxed
    /// atomic load.
    pub fn off() -> TraceRecorder {
        let rec = TraceRecorder::new(TraceMeta::default());
        rec.inner.on.store(false, Ordering::Relaxed);
        rec
    }

    /// A live recorder for one run.
    pub fn new(meta: TraceMeta) -> TraceRecorder {
        TraceRecorder {
            inner: Arc::new(Shared {
                on: AtomicBool::new(true),
                state: Mutex::new(State {
                    trace: EventTrace::new(meta),
                    tenant_service_ns: HashMap::new(),
                }),
            }),
        }
    }

    /// True if events are being recorded. Emission hooks check this
    /// first and skip all work when it is false.
    #[inline]
    pub fn on(&self) -> bool {
        self.inner.on.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.inner
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Adds a task to the registry (call at attach/spawn time).
    pub fn register_task(&self, id: TaskId, name: &str, weight: u64, tenant: Option<TenantId>) {
        if !self.on() {
            return;
        }
        self.lock().trace.tasks.push(TaskMeta {
            id,
            name: name.to_string(),
            weight,
            tenant,
        });
    }

    /// Appends one event. No-op while the recorder is off.
    #[inline]
    pub fn emit(&self, ev: TraceEvent) {
        if !self.on() {
            return;
        }
        self.lock().trace.events.push(ev);
    }

    /// Appends a batch of events under one lock. No-op while off.
    ///
    /// Single-threaded emitters (the simulator) buffer events locally
    /// in a plain `Vec` and flush through this, so their per-event
    /// recording cost is one unsynchronized push.
    pub fn emit_many(&self, evs: Vec<TraceEvent>) {
        if !self.on() || evs.is_empty() {
            return;
        }
        let mut state = self.lock();
        if state.trace.events.is_empty() {
            state.trace.events = evs; // take the buffer, don't copy it
        } else {
            state.trace.events.extend(evs);
        }
    }

    /// Accumulates `delta_ns` of CPU service for `tenant` and emits the
    /// cumulative value (in seconds) as a [`CounterTrack::TenantService`]
    /// sample at time `t`.
    pub fn add_tenant_service(&self, t: u64, tenant: TenantId, delta_ns: u64) {
        if !self.on() {
            return;
        }
        let mut state = self.lock();
        let total = state
            .tenant_service_ns
            .entry(tenant)
            .and_modify(|v| *v += delta_ns)
            .or_insert(delta_ns);
        let value = *total as f64 / 1e9;
        state.trace.events.push(TraceEvent::Counter {
            t,
            track: CounterTrack::TenantService(tenant),
            value,
        });
    }

    /// Stops recording and returns the trace, events stable-sorted by
    /// timestamp. The recorder is left off and empty.
    pub fn finish(&self) -> EventTrace {
        self.inner.on.store(false, Ordering::Relaxed);
        let mut state = self.lock();
        let meta = state.trace.meta.clone();
        let mut trace = std::mem::replace(&mut state.trace, EventTrace::new(meta));
        // Single-threaded emitters produce already-sorted events; skip
        // the sort (and its temp allocation) unless rt shards actually
        // interleaved.
        if !trace.events.is_sorted_by_key(TraceEvent::timestamp) {
            trace.events.sort_by_key(TraceEvent::timestamp);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_drops_everything() {
        let rec = TraceRecorder::off();
        assert!(!rec.on());
        rec.register_task(TaskId(1), "a", 1, None);
        rec.emit(TraceEvent::Wake {
            t: 1,
            task: TaskId(1),
        });
        rec.add_tenant_service(1, TenantId(0), 5);
        let trace = rec.finish();
        assert!(trace.tasks.is_empty());
        assert!(trace.events.is_empty());
    }

    #[test]
    fn finish_sorts_and_tenant_service_accumulates() {
        let rec = TraceRecorder::new(TraceMeta::default());
        rec.emit(TraceEvent::Wake {
            t: 10,
            task: TaskId(1),
        });
        rec.emit(TraceEvent::Wake {
            t: 5,
            task: TaskId(2),
        });
        rec.add_tenant_service(12, TenantId(0), 1_000_000_000);
        rec.add_tenant_service(13, TenantId(0), 500_000_000);
        let trace = rec.finish();
        let ts: Vec<u64> = trace.events.iter().map(TraceEvent::timestamp).collect();
        assert_eq!(ts, vec![5, 10, 12, 13]);
        match trace.events[3] {
            TraceEvent::Counter { value, .. } => assert!((value - 1.5).abs() < 1e-9),
            ref other => panic!("unexpected event {other:?}"),
        }
        assert!(!rec.on(), "finish turns the recorder off");
    }
}
