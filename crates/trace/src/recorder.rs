//! The shared, thread-safe event recorder.
//!
//! A [`TraceRecorder`] is a cheap cloneable handle. Disabled recorders
//! (the default everywhere) reduce every hook to one relaxed atomic
//! load, so instrumenting the rt executor's hot path costs nothing when
//! tracing is off. Enabled recorders append events to a mutex-guarded
//! [`EventTrace`]; `finish()` stable-sorts by timestamp (rt events from
//! different shards can arrive slightly out of order) and hands the
//! trace back.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use sfs_core::task::{TaskId, TenantId};

use crate::event::{CounterTrack, EventTrace, TaskMeta, TraceEvent, TraceMeta};
use crate::stream::ChunkSink;

/// Streaming recorders hand buffered events to their sink whenever the
/// backlog reaches this size, on top of forwarding every `emit_many`
/// batch, so single-event emitters (the rt executor) also stream.
const STREAM_CHUNK_EVENTS: usize = 8 * 1024;

struct State {
    trace: EventTrace,
    tenant_service_ns: HashMap<TenantId, u64>,
    /// Streaming mode: completed chunks flush here and are dropped from
    /// `trace.events`, keeping resident state bounded.
    sink: Option<Box<dyn ChunkSink>>,
    /// How many of `trace.tasks` the sink has already seen.
    tasks_flushed: usize,
    /// First sink I/O error, if any; later writes are skipped.
    sink_error: Option<String>,
}

impl State {
    /// Hands the buffered events (and any unseen task registrations) to
    /// the sink and clears the buffer. No-op without a sink.
    fn flush_to_sink(&mut self) {
        let Some(sink) = &mut self.sink else { return };
        if self.sink_error.is_some() {
            self.trace.events.clear();
            return;
        }
        let new_tasks = &self.trace.tasks[self.tasks_flushed..];
        if new_tasks.is_empty() && self.trace.events.is_empty() {
            return;
        }
        if let Err(e) = sink.chunk(new_tasks, &self.trace.events) {
            self.sink_error = Some(e.to_string());
        }
        self.tasks_flushed = self.trace.tasks.len();
        self.trace.events.clear();
    }
}

struct Shared {
    on: AtomicBool,
    state: Mutex<State>,
}

/// A cloneable handle onto one recording. See the module docs.
#[derive(Clone)]
pub struct TraceRecorder {
    inner: Arc<Shared>,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("on", &self.on())
            .finish()
    }
}

impl TraceRecorder {
    /// A recorder that records nothing; every hook is a single relaxed
    /// atomic load.
    pub fn off() -> TraceRecorder {
        let rec = TraceRecorder::new(TraceMeta::default());
        // relaxed: an off recorder never flips back on; no event data
        // is published through this flag.
        rec.inner.on.store(false, Ordering::Relaxed);
        rec
    }

    /// A live recorder for one run.
    pub fn new(meta: TraceMeta) -> TraceRecorder {
        TraceRecorder {
            inner: Arc::new(Shared {
                on: AtomicBool::new(true),
                state: Mutex::new(State {
                    trace: EventTrace::new(meta),
                    tenant_service_ns: HashMap::new(),
                    sink: None,
                    tasks_flushed: 0,
                    sink_error: None,
                }),
            }),
        }
    }

    /// A live recorder that streams completed event chunks into `sink`
    /// instead of accumulating them: every [`TraceRecorder::emit_many`]
    /// batch is forwarded (and dropped from memory) immediately, and
    /// per-event emitters flush whenever the backlog reaches a fixed
    /// chunk size. [`TraceRecorder::finish`] flushes the tail, calls
    /// the sink's `finish`, and returns a trace whose `events` are
    /// empty — the export *is* the sink's output. Check
    /// [`TraceRecorder::sink_error`] afterwards for I/O failures.
    pub fn streaming(meta: TraceMeta, sink: Box<dyn ChunkSink>) -> TraceRecorder {
        let rec = TraceRecorder::new(meta);
        rec.lock().sink = Some(sink);
        rec
    }

    /// True if events are being recorded. Emission hooks check this
    /// first and skip all work when it is false.
    #[inline]
    pub fn on(&self) -> bool {
        // relaxed: pure fast-path gate; recorders that are on protect
        // their buffers with the state lock, not this flag.
        self.inner.on.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.inner
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Adds a task to the registry (call at attach/spawn time).
    pub fn register_task(&self, id: TaskId, name: &str, weight: u64, tenant: Option<TenantId>) {
        if !self.on() {
            return;
        }
        self.lock().trace.tasks.push(TaskMeta {
            id,
            name: name.to_string(),
            weight,
            tenant,
        });
    }

    /// Appends one event. No-op while the recorder is off.
    #[inline]
    pub fn emit(&self, ev: TraceEvent) {
        if !self.on() {
            return;
        }
        let mut state = self.lock();
        state.trace.events.push(ev);
        if state.sink.is_some() && state.trace.events.len() >= STREAM_CHUNK_EVENTS {
            state.flush_to_sink();
        }
    }

    /// Appends a batch of events under one lock. No-op while off.
    ///
    /// Single-threaded emitters (the simulator) buffer events locally
    /// in a plain `Vec` and flush through this, so their per-event
    /// recording cost is one unsynchronized push. A streaming recorder
    /// forwards the whole batch to its sink before returning.
    pub fn emit_many(&self, evs: Vec<TraceEvent>) {
        if !self.on() || evs.is_empty() {
            return;
        }
        let mut state = self.lock();
        if state.trace.events.is_empty() {
            state.trace.events = evs; // take the buffer, don't copy it
        } else {
            state.trace.events.extend(evs);
        }
        state.flush_to_sink();
    }

    /// Accumulates `delta_ns` of CPU service for `tenant` and emits the
    /// cumulative value (in seconds) as a [`CounterTrack::TenantService`]
    /// sample at time `t`.
    pub fn add_tenant_service(&self, t: u64, tenant: TenantId, delta_ns: u64) {
        if !self.on() {
            return;
        }
        let mut state = self.lock();
        let total = state
            .tenant_service_ns
            .entry(tenant)
            .and_modify(|v| *v += delta_ns)
            .or_insert(delta_ns);
        let value = *total as f64 / 1e9;
        state.trace.events.push(TraceEvent::Counter {
            t,
            track: CounterTrack::TenantService(tenant),
            value,
        });
    }

    /// Stops recording and returns the trace, events stable-sorted by
    /// timestamp. The recorder is left off and empty.
    ///
    /// Streaming recorders flush the tail chunk, close the sink, and
    /// return a trace with the task registry but **no events** — the
    /// sink's output is the export.
    pub fn finish(&self) -> EventTrace {
        // relaxed: hooks that raced past the flag still take the state
        // lock below, which orders them against the drain.
        self.inner.on.store(false, Ordering::Relaxed);
        let mut state = self.lock();
        if state.sink.is_some() {
            state.flush_to_sink();
            let mut sink = state.sink.take().expect("checked above");
            if state.sink_error.is_none() {
                if let Err(e) = sink.finish() {
                    state.sink_error = Some(e.to_string());
                }
            }
        }
        let meta = state.trace.meta.clone();
        let mut trace = std::mem::replace(&mut state.trace, EventTrace::new(meta));
        // Single-threaded emitters produce already-sorted events; skip
        // the sort (and its temp allocation) unless rt shards actually
        // interleaved.
        if !trace.events.is_sorted_by_key(TraceEvent::timestamp) {
            trace.events.sort_by_key(TraceEvent::timestamp);
        }
        trace
    }

    /// The first sink I/O error hit while streaming, if any. Always
    /// `None` for non-streaming recorders.
    pub fn sink_error(&self) -> Option<String> {
        self.lock().sink_error.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{read_jsonl, JsonlStream};

    /// A `Write` target the test can still read after the recorder has
    /// consumed the sink.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn streaming_recorder_exports_incrementally_and_holds_nothing() {
        let buf = SharedBuf::default();
        let sink = JsonlStream::new(TraceMeta::default(), buf.clone());
        let rec = TraceRecorder::streaming(TraceMeta::default(), Box::new(sink));
        rec.register_task(TaskId(1), "a", 2, None);
        rec.emit_many(vec![
            TraceEvent::Wake {
                t: 1,
                task: TaskId(1),
            },
            TraceEvent::Wake {
                t: 2,
                task: TaskId(1),
            },
        ]);
        // The batch is already on disk, before finish().
        let mid = buf.0.lock().unwrap().len();
        assert!(mid > 0, "chunk not flushed on emit_many");
        rec.register_task(TaskId(2), "b", 1, None);
        rec.emit(TraceEvent::Wake {
            t: 3,
            task: TaskId(2),
        });
        let trace = rec.finish();
        assert_eq!(rec.sink_error(), None);
        assert!(trace.events.is_empty(), "streamed events must not linger");
        assert_eq!(trace.tasks.len(), 2);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let back = read_jsonl(&text).expect("jsonl parses");
        assert_eq!(back.tasks.len(), 2);
        assert_eq!(back.events.len(), 3);
        let ts: Vec<u64> = back.events.iter().map(TraceEvent::timestamp).collect();
        assert_eq!(ts, vec![1, 2, 3]);
    }

    #[test]
    fn streaming_sink_errors_are_surfaced_not_panicked() {
        struct FailingSink;
        impl crate::stream::ChunkSink for FailingSink {
            fn chunk(
                &mut self,
                _tasks: &[crate::event::TaskMeta],
                _events: &[TraceEvent],
            ) -> std::io::Result<()> {
                Err(std::io::Error::other("disk full"))
            }
            fn finish(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let rec = TraceRecorder::streaming(TraceMeta::default(), Box::new(FailingSink));
        rec.emit_many(vec![TraceEvent::Wake {
            t: 1,
            task: TaskId(1),
        }]);
        rec.emit_many(vec![TraceEvent::Wake {
            t: 2,
            task: TaskId(1),
        }]);
        let trace = rec.finish();
        assert!(trace.events.is_empty());
        let err = rec.sink_error().expect("error recorded");
        assert!(err.contains("disk full"), "{err}");
    }

    #[test]
    fn off_recorder_drops_everything() {
        let rec = TraceRecorder::off();
        assert!(!rec.on());
        rec.register_task(TaskId(1), "a", 1, None);
        rec.emit(TraceEvent::Wake {
            t: 1,
            task: TaskId(1),
        });
        rec.add_tenant_service(1, TenantId(0), 5);
        let trace = rec.finish();
        assert!(trace.tasks.is_empty());
        assert!(trace.events.is_empty());
    }

    #[test]
    fn finish_sorts_and_tenant_service_accumulates() {
        let rec = TraceRecorder::new(TraceMeta::default());
        rec.emit(TraceEvent::Wake {
            t: 10,
            task: TaskId(1),
        });
        rec.emit(TraceEvent::Wake {
            t: 5,
            task: TaskId(2),
        });
        rec.add_tenant_service(12, TenantId(0), 1_000_000_000);
        rec.add_tenant_service(13, TenantId(0), 500_000_000);
        let trace = rec.finish();
        let ts: Vec<u64> = trace.events.iter().map(TraceEvent::timestamp).collect();
        assert_eq!(ts, vec![5, 10, 12, 13]);
        match trace.events[3] {
            TraceEvent::Counter { value, .. } => assert!((value - 1.5).abs() < 1e-9),
            ref other => panic!("unexpected event {other:?}"),
        }
        assert!(!rec.on(), "finish turns the recorder off");
    }
}
