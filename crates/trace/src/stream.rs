//! Streaming trace export.
//!
//! A whole-run [`EventTrace`] of a mega-scale run does not fit in
//! memory comfortably, and batch export means no output until the run
//! ends. This module defines [`ChunkSink`] — a consumer of *completed
//! event chunks* — and two sinks that write well-formed output
//! incrementally:
//!
//! * [`PerfettoStream`] appends protobuf packets per chunk (the Trace
//!   message is a plain sequence of length-delimited packets, so chunk
//!   outputs concatenate into one valid `.perfetto-trace` file);
//! * [`JsonlStream`] writes JSON Lines: one `meta` line, then one line
//!   per task registration and per event, reassembled by
//!   [`read_jsonl`].
//!
//! A [`crate::TraceRecorder`] created with
//! [`crate::TraceRecorder::streaming`] forwards every flushed buffer to
//! its sink and drops it from memory, so resident trace state stays
//! bounded by the emitters' flush interval regardless of run length.

use std::io::{self, Write};

use crate::event::{EventTrace, TaskMeta, TraceError, TraceEvent, TraceMeta};
use crate::json::{
    self, event_from_json, event_to_json, meta_from_json, meta_to_json, task_meta_from_json,
    task_meta_to_json, Json,
};
use crate::perfetto::Encoder;

/// A consumer of completed event chunks from an in-flight recording.
///
/// `chunk` receives the tasks registered since the previous call and
/// the next run of events, in emission order; `finish` is called
/// exactly once after the last chunk. Implementations must produce
/// output whose concatenation over all calls is a complete export of
/// the whole trace.
pub trait ChunkSink: Send {
    /// Consumes newly registered tasks and the next run of events.
    fn chunk(&mut self, new_tasks: &[TaskMeta], events: &[TraceEvent]) -> io::Result<()>;

    /// Flushes any trailing output. Called once, after the last chunk.
    fn finish(&mut self) -> io::Result<()>;
}

/// Streams Perfetto protobuf packets to a writer, chunk by chunk.
pub struct PerfettoStream<W: Write + Send> {
    enc: Encoder,
    out: W,
    buf: Vec<u8>,
}

impl<W: Write + Send> PerfettoStream<W> {
    /// A stream writing one `.perfetto-trace` byte sequence to `out`.
    pub fn new(meta: TraceMeta, out: W) -> PerfettoStream<W> {
        PerfettoStream {
            enc: Encoder::new(meta),
            out,
            buf: Vec::new(),
        }
    }

    /// Consumes the stream, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write + Send> ChunkSink for PerfettoStream<W> {
    fn chunk(&mut self, new_tasks: &[TaskMeta], events: &[TraceEvent]) -> io::Result<()> {
        self.enc.add_tasks(new_tasks);
        self.buf.clear();
        self.enc.encode_chunk(events, &mut self.buf);
        self.out.write_all(&self.buf)
    }

    fn finish(&mut self) -> io::Result<()> {
        // An empty chunk still forces the fixed track descriptors out,
        // so even an event-less recording yields a valid trace file.
        self.buf.clear();
        self.enc.encode_chunk(&[], &mut self.buf);
        self.out.write_all(&self.buf)?;
        self.out.flush()
    }
}

/// Streams JSON Lines to a writer: a `meta` line first, then one line
/// per task registration and per event, in arrival order.
pub struct JsonlStream<W: Write + Send> {
    out: W,
    meta: Option<TraceMeta>,
}

impl<W: Write + Send> JsonlStream<W> {
    /// A stream writing JSON Lines to `out`.
    pub fn new(meta: TraceMeta, out: W) -> JsonlStream<W> {
        JsonlStream {
            out,
            meta: Some(meta),
        }
    }

    /// Consumes the stream, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }

    fn write_line(&mut self, kind: &str, v: Json) -> io::Result<()> {
        let line = json::obj(vec![("k", Json::Str(kind.into())), ("v", v)]);
        writeln!(self.out, "{line}")
    }

    fn header(&mut self) -> io::Result<()> {
        if let Some(meta) = self.meta.take() {
            self.write_line("meta", meta_to_json(&meta))?;
        }
        Ok(())
    }
}

impl<W: Write + Send> ChunkSink for JsonlStream<W> {
    fn chunk(&mut self, new_tasks: &[TaskMeta], events: &[TraceEvent]) -> io::Result<()> {
        self.header()?;
        for t in new_tasks {
            self.write_line("task", task_meta_to_json(t))?;
        }
        for ev in events {
            self.write_line("event", event_to_json(ev))?;
        }
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.header()?;
        self.out.flush()
    }
}

/// Reassembles an [`EventTrace`] from [`JsonlStream`] output.
pub fn read_jsonl(text: &str) -> Result<EventTrace, TraceError> {
    let mut trace: Option<EventTrace> = None;
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line)?;
        let kind = json::want_str(&v, "k")?;
        let body = json::want(&v, "v")?;
        match kind {
            "meta" if trace.is_none() => {
                trace = Some(EventTrace::new(meta_from_json(body)?));
            }
            "meta" => {
                return Err(TraceError::Malformed(format!(
                    "line {}: duplicate meta line",
                    n + 1
                )))
            }
            _ => {
                let trace = trace.as_mut().ok_or_else(|| {
                    TraceError::Malformed(format!("line {}: {kind} before meta", n + 1))
                })?;
                match kind {
                    "task" => trace.tasks.push(task_meta_from_json(body)?),
                    "event" => trace.events.push(event_from_json(body)?),
                    other => {
                        return Err(TraceError::Malformed(format!(
                            "line {}: unknown line kind {other:?}",
                            n + 1
                        )))
                    }
                }
            }
        }
    }
    trace.ok_or_else(|| TraceError::Malformed("empty jsonl trace".into()))
}

#[cfg(test)]
mod tests {
    use sfs_core::sched::SwitchReason;
    use sfs_core::task::{TaskId, TenantId};

    use super::*;
    use crate::event::CounterTrack;
    use crate::perfetto::{encode, validate_encoded};

    fn sample_trace() -> EventTrace {
        let mut trace = EventTrace::new(TraceMeta {
            substrate: "sim".into(),
            scenario: "stream".into(),
            policy: "sfs".into(),
            cpus: 2,
            tenants: vec!["acme".into()],
        });
        for i in 1..=3u64 {
            trace.tasks.push(TaskMeta {
                id: TaskId(i),
                name: format!("T{i}"),
                weight: i,
                tenant: (i == 1).then_some(TenantId(0)),
            });
        }
        for k in 0..50u64 {
            let task = TaskId(k % 3 + 1);
            trace.events.push(TraceEvent::Wake { t: 10 * k, task });
            trace.events.push(TraceEvent::SliceBegin {
                t: 10 * k + 1,
                cpu: (k % 2) as u32,
                task,
            });
            trace.events.push(TraceEvent::Counter {
                t: 10 * k + 2,
                track: CounterTrack::Runnable,
                value: k as f64,
            });
            trace.events.push(TraceEvent::SliceEnd {
                t: 10 * k + 9,
                cpu: (k % 2) as u32,
                task,
                reason: SwitchReason::Preempted,
            });
        }
        trace
    }

    /// Feeds a trace through a sink in uneven chunks, registering each
    /// task just before its first referencing event would stream.
    fn drive<S: ChunkSink>(trace: &EventTrace, sink: &mut S) {
        let mut sent_tasks = 0;
        let mut i = 0;
        let mut step = 1;
        while i < trace.events.len() {
            let end = (i + step).min(trace.events.len());
            // Hand over any tasks not yet sent before the first chunk,
            // then the rest midway, mimicking incremental registration.
            let tasks = if sent_tasks < trace.tasks.len() {
                let n = if i == 0 {
                    1
                } else {
                    trace.tasks.len() - sent_tasks
                };
                let s = &trace.tasks[sent_tasks..sent_tasks + n];
                sent_tasks += n;
                s
            } else {
                &[]
            };
            sink.chunk(tasks, &trace.events[i..end]).unwrap();
            i = end;
            step = step * 2 + 1;
        }
        sink.finish().unwrap();
    }

    #[test]
    fn streamed_perfetto_bytes_are_structurally_valid() {
        let trace = sample_trace();
        let mut sink = PerfettoStream::new(trace.meta.clone(), Vec::new());
        drive(&trace, &mut sink);
        let streamed = sink.into_inner();
        let streamed_stats = validate_encoded(&streamed).expect("streamed bytes valid");
        let batch_stats = validate_encoded(&encode(&trace)).expect("batch bytes valid");
        // Chunking must not change what is exported, only when.
        assert_eq!(streamed_stats, batch_stats);
    }

    #[test]
    fn single_chunk_stream_equals_batch_encode() {
        let trace = sample_trace();
        let mut sink = PerfettoStream::new(trace.meta.clone(), Vec::new());
        sink.chunk(&trace.tasks, &trace.events).unwrap();
        sink.finish().unwrap();
        assert_eq!(sink.into_inner(), encode(&trace));
    }

    #[test]
    fn empty_stream_still_emits_descriptors() {
        let trace = EventTrace::new(TraceMeta::default());
        let mut sink = PerfettoStream::new(trace.meta.clone(), Vec::new());
        sink.finish().unwrap();
        let stats = validate_encoded(&sink.into_inner()).unwrap();
        assert!(stats.track_descriptors > 0);
        assert_eq!(stats.track_events, 0);
    }

    #[test]
    fn jsonl_round_trips_chunked() {
        let trace = sample_trace();
        let mut sink = JsonlStream::new(trace.meta.clone(), Vec::new());
        drive(&trace, &mut sink);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let back = read_jsonl(&text).expect("jsonl parses");
        assert_eq!(back, trace);
    }

    #[test]
    fn jsonl_rejects_malformed_streams() {
        assert!(read_jsonl("").is_err());
        assert!(
            read_jsonl("{\"k\":\"task\",\"v\":{}}").is_err(),
            "task before meta"
        );
        let trace = EventTrace::new(TraceMeta::default());
        let mut sink = JsonlStream::new(trace.meta.clone(), Vec::new());
        sink.finish().unwrap();
        let mut text = String::from_utf8(sink.into_inner()).unwrap();
        let copy = text.clone();
        text.push_str(&copy);
        assert!(read_jsonl(&text).is_err(), "duplicate meta");
    }
}
