//! Hand-encoded Perfetto protobuf export.
//!
//! The vendored-dependency policy rules out `prost`, so this module
//! writes the protobuf wire format directly: a `Trace` message is a
//! sequence of length-delimited `packet` fields (field 1), each a
//! `TracePacket`. We emit three packet shapes:
//!
//! * `TrackDescriptor` (field 60) packets naming one track per CPU, one
//!   per counter series, and one instant-event track;
//! * `TrackEvent` (field 11) slice begin/end packets on the CPU tracks
//!   (one slice per run quantum, named after the task);
//! * `TrackEvent` counter and instant packets for samples, wakes,
//!   steals, preemptions, and readjustment epochs.
//!
//! Field numbers used (from `perfetto/trace/trace_packet.proto` and
//! `track_event/*.proto`):
//!
//! | message | field | number | wire type |
//! |---|---|---|---|
//! | Trace | packet | 1 | len |
//! | TracePacket | timestamp | 8 | varint |
//! | TracePacket | trusted_packet_sequence_id | 10 | varint |
//! | TracePacket | track_event | 11 | len |
//! | TracePacket | track_descriptor | 60 | len |
//! | TrackDescriptor | uuid | 1 | varint |
//! | TrackDescriptor | name | 2 | len |
//! | TrackDescriptor | counter | 8 | len |
//! | TrackEvent | type | 9 | varint |
//! | TrackEvent | track_uuid | 11 | varint |
//! | TrackEvent | name | 23 | len |
//! | TrackEvent | double_counter_value | 44 | 64-bit |
//!
//! The output opens directly in <https://ui.perfetto.dev>.

use std::collections::{BTreeSet, HashMap};

use sfs_core::task::TaskId;

use crate::event::{CounterTrack, EventTrace, TaskMeta, TraceError, TraceEvent, TraceMeta};

const WIRE_VARINT: u64 = 0;
const WIRE_FIXED64: u64 = 1;
const WIRE_LEN: u64 = 2;

// TracePacket field numbers.
const PKT_TIMESTAMP: u64 = 8;
const PKT_SEQUENCE_ID: u64 = 10;
const PKT_TRACK_EVENT: u64 = 11;
const PKT_TRACK_DESCRIPTOR: u64 = 60;

// TrackDescriptor / TrackEvent field numbers.
const TDESC_UUID: u64 = 1;
const TDESC_NAME: u64 = 2;
const TDESC_COUNTER: u64 = 8;
const TEV_TYPE: u64 = 9;
const TEV_TRACK_UUID: u64 = 11;
const TEV_NAME: u64 = 23;
const TEV_DOUBLE_COUNTER: u64 = 44;

// TrackEvent.Type enum values.
const TYPE_SLICE_BEGIN: u64 = 1;
const TYPE_SLICE_END: u64 = 2;
const TYPE_INSTANT: u64 = 3;
const TYPE_COUNTER: u64 = 4;

/// All packets carry the same synthetic sequence id (any nonzero value
/// is accepted for self-contained traces).
const SEQUENCE_ID: u64 = 1;

const CPU_TRACK_BASE: u64 = 0x10;
const COUNTER_TRACK_BASE: u64 = 0x1000;
const EVENTS_TRACK: u64 = 0x2000;

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn put_key(buf: &mut Vec<u8>, field: u64, wire: u64) {
    put_varint(buf, (field << 3) | wire);
}

fn put_varint_field(buf: &mut Vec<u8>, field: u64, v: u64) {
    put_key(buf, field, WIRE_VARINT);
    put_varint(buf, v);
}

fn put_len_field(buf: &mut Vec<u8>, field: u64, payload: &[u8]) {
    put_key(buf, field, WIRE_LEN);
    put_varint(buf, payload.len() as u64);
    buf.extend_from_slice(payload);
}

fn put_string_field(buf: &mut Vec<u8>, field: u64, s: &str) {
    put_len_field(buf, field, s.as_bytes());
}

fn put_double_field(buf: &mut Vec<u8>, field: u64, v: f64) {
    put_key(buf, field, WIRE_FIXED64);
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn track_descriptor_packet(uuid: u64, name: &str, counter: bool) -> Vec<u8> {
    let mut desc = Vec::new();
    put_varint_field(&mut desc, TDESC_UUID, uuid);
    put_string_field(&mut desc, TDESC_NAME, name);
    if counter {
        // An empty CounterDescriptor submessage marks the track as a
        // counter track.
        put_len_field(&mut desc, TDESC_COUNTER, &[]);
    }
    let mut pkt = Vec::new();
    put_len_field(&mut pkt, PKT_TRACK_DESCRIPTOR, &desc);
    put_varint_field(&mut pkt, PKT_SEQUENCE_ID, SEQUENCE_ID);
    pkt
}

fn track_event_packet(t: u64, build: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let mut tev = Vec::new();
    build(&mut tev);
    let mut pkt = Vec::new();
    put_varint_field(&mut pkt, PKT_TIMESTAMP, t);
    put_len_field(&mut pkt, PKT_TRACK_EVENT, &tev);
    put_varint_field(&mut pkt, PKT_SEQUENCE_ID, SEQUENCE_ID);
    pkt
}

fn counter_track_key(track: CounterTrack) -> u64 {
    match track {
        CounterTrack::VirtualTime => 0,
        CounterTrack::Runnable => 1,
        CounterTrack::MaxRunSurplus => 2,
        CounterTrack::MinRunPhi => 3,
        CounterTrack::LockWaitNs => 4,
        CounterTrack::TenantService(t) => 16 + u64::from(t.0),
    }
}

/// An incremental Perfetto encoder: feed it task registrations and
/// event chunks as they complete and it appends self-contained packets.
/// Concatenating the chunk outputs yields exactly one valid `Trace`
/// protobuf — length-delimited packets are concatenable, so a streaming
/// writer ([`crate::stream::PerfettoStream`]) can flush each chunk to
/// disk while a run is still in flight.
///
/// Track descriptors are emitted lazily: the fixed tracks (CPUs, sched
/// events) go out with the first chunk, and each counter track's
/// descriptor precedes its first sample. Whole-trace
/// [`encode`] is a one-chunk wrapper over this type.
pub struct Encoder {
    meta: TraceMeta,
    names: HashMap<TaskId, String>,
    counters_declared: BTreeSet<u64>,
    header_done: bool,
}

impl Encoder {
    /// A fresh encoder for one trace.
    pub fn new(meta: TraceMeta) -> Encoder {
        Encoder {
            meta,
            names: HashMap::new(),
            counters_declared: BTreeSet::new(),
            header_done: false,
        }
    }

    /// Registers tasks; call before encoding any chunk referencing
    /// them, so slices and instants can be named.
    pub fn add_tasks(&mut self, tasks: &[TaskMeta]) {
        for t in tasks {
            self.names.insert(t.id, t.name.clone());
        }
    }

    fn name_of(&self, id: TaskId) -> &str {
        self.names.get(&id).map_or("<unregistered>", String::as_str)
    }

    /// Appends the packets for one chunk of events to `out`. The first
    /// call also emits the fixed track descriptors.
    pub fn encode_chunk(&mut self, events: &[TraceEvent], out: &mut Vec<u8>) {
        if !self.header_done {
            self.header_done = true;
            for cpu in 0..self.meta.cpus.max(1) {
                put_len_field(
                    out,
                    1,
                    &track_descriptor_packet(
                        CPU_TRACK_BASE + u64::from(cpu),
                        &format!("cpu {cpu} ({})", self.meta.substrate),
                        false,
                    ),
                );
            }
            put_len_field(
                out,
                1,
                &track_descriptor_packet(EVENTS_TRACK, "sched events", false),
            );
        }
        for ev in events {
            self.encode_event(ev, out);
        }
    }

    fn encode_event(&mut self, ev: &TraceEvent, out: &mut Vec<u8>) {
        let mut packet = |pkt: &[u8]| {
            put_len_field(out, 1, pkt);
        };
        match *ev {
            TraceEvent::SliceBegin { t, cpu, task } => {
                packet(&track_event_packet(t, |tev| {
                    put_varint_field(tev, TEV_TYPE, TYPE_SLICE_BEGIN);
                    put_varint_field(tev, TEV_TRACK_UUID, CPU_TRACK_BASE + u64::from(cpu));
                    put_string_field(tev, TEV_NAME, self.name_of(task));
                }));
            }
            TraceEvent::SliceEnd { t, cpu, .. } => {
                packet(&track_event_packet(t, |tev| {
                    put_varint_field(tev, TEV_TYPE, TYPE_SLICE_END);
                    put_varint_field(tev, TEV_TRACK_UUID, CPU_TRACK_BASE + u64::from(cpu));
                }));
            }
            TraceEvent::Counter { t, track, value } => {
                let key = counter_track_key(track);
                if self.counters_declared.insert(key) {
                    packet(&track_descriptor_packet(
                        COUNTER_TRACK_BASE + key,
                        &track.label(&self.meta),
                        true,
                    ));
                }
                packet(&track_event_packet(t, |tev| {
                    put_varint_field(tev, TEV_TYPE, TYPE_COUNTER);
                    put_varint_field(tev, TEV_TRACK_UUID, COUNTER_TRACK_BASE + key);
                    put_double_field(tev, TEV_DOUBLE_COUNTER, value);
                }));
            }
            ref instant => {
                let label = match *instant {
                    TraceEvent::CtxSwitch { cpu, from, to, .. } => {
                        let from = from.map_or("idle", |id| self.name_of(id));
                        format!("switch cpu{cpu}: {from} -> {}", self.name_of(to))
                    }
                    TraceEvent::Wake { task, .. } => format!("wake {}", self.name_of(task)),
                    TraceEvent::PreemptEvict {
                        cpu, victim, by, ..
                    } => {
                        format!(
                            "preempt cpu{cpu}: {} evicts {}",
                            self.name_of(by),
                            self.name_of(victim)
                        )
                    }
                    TraceEvent::Migrate {
                        task,
                        from_shard,
                        to_shard,
                        kind,
                        ..
                    } => {
                        format!(
                            "{kind:?} {}: shard {from_shard} -> {to_shard}",
                            self.name_of(task)
                        )
                    }
                    TraceEvent::Readjust { calls, clamped, .. } => {
                        format!("readjust x{calls} (clamped {clamped})")
                    }
                    TraceEvent::TaskRejected { task, .. } => {
                        format!("rejected {}", self.name_of(task))
                    }
                    TraceEvent::TaskReaped { task, .. } => {
                        format!("reaped {}", self.name_of(task))
                    }
                    TraceEvent::WatchdogFired { shard, .. } => {
                        format!("watchdog fired: shard {shard}")
                    }
                    _ => unreachable!("slice/counter events handled above"),
                };
                packet(&track_event_packet(instant.timestamp(), |tev| {
                    put_varint_field(tev, TEV_TYPE, TYPE_INSTANT);
                    put_varint_field(tev, TEV_TRACK_UUID, EVENTS_TRACK);
                    put_string_field(tev, TEV_NAME, &label);
                }));
            }
        }
    }
}

/// Encodes a trace as a Perfetto `Trace` protobuf, ready to be written
/// to a `.perfetto-trace` file and opened in the Perfetto UI.
pub fn encode(trace: &EventTrace) -> Vec<u8> {
    let mut enc = Encoder::new(trace.meta.clone());
    enc.add_tasks(&trace.tasks);
    let mut out = Vec::new();
    enc.encode_chunk(&trace.events, &mut out);
    out
}

/// Summary statistics from a structural scan of encoded bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfettoStats {
    /// Total `TracePacket`s.
    pub packets: usize,
    /// Packets carrying a `TrackDescriptor`.
    pub track_descriptors: usize,
    /// Packets carrying a `TrackEvent`.
    pub track_events: usize,
    /// `TrackEvent`s of counter type.
    pub counter_samples: usize,
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn done(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn varint(&mut self) -> Result<u64, TraceError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .buf
                .get(self.pos)
                .ok_or_else(|| TraceError::Malformed("truncated varint".into()))?;
            self.pos += 1;
            if shift >= 64 {
                return Err(TraceError::Malformed("varint overflow".into()));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn skip(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| TraceError::Malformed("length past end of buffer".into()))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one `(field, payload)` where non-length-delimited payloads
    /// are consumed and length-delimited ones are returned.
    fn field(&mut self) -> Result<(u64, Option<&'a [u8]>), TraceError> {
        let key = self.varint()?;
        let field = key >> 3;
        match key & 7 {
            WIRE_VARINT => {
                self.varint()?;
                Ok((field, None))
            }
            WIRE_FIXED64 => {
                self.skip(8)?;
                Ok((field, None))
            }
            WIRE_LEN => {
                let len = self.varint()? as usize;
                Ok((field, Some(self.skip(len)?)))
            }
            5 => {
                self.skip(4)?;
                Ok((field, None))
            }
            wire => Err(TraceError::Malformed(format!(
                "unsupported wire type {wire}"
            ))),
        }
    }
}

/// Structurally validates encoded bytes: the buffer must be a sequence
/// of length-delimited `packet` fields, every packet must parse, every
/// `TrackEvent` packet must carry a nonzero sequence id, and every
/// `TrackDescriptor` a nonzero uuid. Returns packet statistics.
pub fn validate_encoded(bytes: &[u8]) -> Result<PerfettoStats, TraceError> {
    let mut stats = PerfettoStats::default();
    let mut top = Reader { buf: bytes, pos: 0 };
    while !top.done() {
        let (field, payload) = top.field()?;
        let payload = match (field, payload) {
            (1, Some(p)) => p,
            _ => {
                return Err(TraceError::Malformed(format!(
                    "top-level field {field} is not a packet"
                )))
            }
        };
        stats.packets += 1;
        let mut pkt = Reader {
            buf: payload,
            pos: 0,
        };
        let mut seq = 0u64;
        let mut is_track_event = false;
        while !pkt.done() {
            let start = pkt.pos;
            let (pfield, ppayload) = pkt.field()?;
            match pfield {
                PKT_SEQUENCE_ID => {
                    // Re-read the varint value for the check.
                    let mut r = Reader {
                        buf: payload,
                        pos: start,
                    };
                    r.varint()?;
                    seq = r.varint()?;
                }
                PKT_TRACK_DESCRIPTOR => {
                    stats.track_descriptors += 1;
                    let desc = ppayload.ok_or_else(|| {
                        TraceError::Malformed("descriptor not length-delimited".into())
                    })?;
                    let mut d = Reader { buf: desc, pos: 0 };
                    let mut uuid = 0u64;
                    while !d.done() {
                        let dstart = d.pos;
                        let (dfield, _) = d.field()?;
                        if dfield == TDESC_UUID {
                            let mut r = Reader {
                                buf: desc,
                                pos: dstart,
                            };
                            r.varint()?;
                            uuid = r.varint()?;
                        }
                    }
                    if uuid == 0 {
                        return Err(TraceError::Malformed(
                            "track descriptor without uuid".into(),
                        ));
                    }
                }
                PKT_TRACK_EVENT => {
                    is_track_event = true;
                    stats.track_events += 1;
                    let tev = ppayload.ok_or_else(|| {
                        TraceError::Malformed("track event not length-delimited".into())
                    })?;
                    let mut e = Reader { buf: tev, pos: 0 };
                    while !e.done() {
                        let estart = e.pos;
                        let (efield, _) = e.field()?;
                        if efield == TEV_TYPE {
                            let mut r = Reader {
                                buf: tev,
                                pos: estart,
                            };
                            r.varint()?;
                            if r.varint()? == TYPE_COUNTER {
                                stats.counter_samples += 1;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        if is_track_event && seq == 0 {
            return Err(TraceError::Malformed(
                "track event packet without trusted_packet_sequence_id".into(),
            ));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use sfs_core::sched::SwitchReason;
    use sfs_core::task::{TaskId, TenantId};

    use super::*;
    use crate::event::{TaskMeta, TraceMeta};

    fn sample_trace() -> EventTrace {
        let mut trace = EventTrace::new(TraceMeta {
            substrate: "sim".into(),
            scenario: "t".into(),
            policy: "sfs".into(),
            cpus: 2,
            tenants: vec!["acme".into()],
        });
        trace.tasks.push(TaskMeta {
            id: TaskId(1),
            name: "A".into(),
            weight: 3,
            tenant: Some(TenantId(0)),
        });
        trace.events = vec![
            TraceEvent::Wake {
                t: 0,
                task: TaskId(1),
            },
            TraceEvent::CtxSwitch {
                t: 0,
                cpu: 0,
                from: None,
                to: TaskId(1),
            },
            TraceEvent::SliceBegin {
                t: 0,
                cpu: 0,
                task: TaskId(1),
            },
            TraceEvent::Counter {
                t: 5,
                track: CounterTrack::VirtualTime,
                value: 1.25,
            },
            TraceEvent::Counter {
                t: 5,
                track: CounterTrack::TenantService(TenantId(0)),
                value: 0.5,
            },
            TraceEvent::SliceEnd {
                t: 10,
                cpu: 0,
                task: TaskId(1),
                reason: SwitchReason::Preempted,
            },
        ];
        trace
    }

    #[test]
    fn encoded_trace_passes_structural_validation() {
        let trace = sample_trace();
        trace.validate().expect("semantically valid");
        let bytes = encode(&trace);
        let stats = validate_encoded(&bytes).expect("structurally valid");
        // 2 cpu tracks + events track + 2 counter tracks.
        assert_eq!(stats.track_descriptors, 5);
        // wake + switch instants, slice begin/end, 2 counters.
        assert_eq!(stats.track_events, 6);
        assert_eq!(stats.counter_samples, 2);
        assert_eq!(stats.packets, 11);
    }

    #[test]
    fn truncated_and_garbage_bytes_are_rejected() {
        let bytes = encode(&sample_trace());
        assert!(validate_encoded(&bytes[..bytes.len() - 1]).is_err());
        assert!(validate_encoded(&[0xff, 0xff]).is_err());
        assert_eq!(
            validate_encoded(&[]).expect("empty is structurally fine"),
            PerfettoStats::default()
        );
    }
}
