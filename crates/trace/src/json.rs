//! A minimal JSON value model, writer, and recursive-descent parser.
//!
//! The workspace has no serde (vendored-deps policy), so captures are
//! serialized by hand. Integers are kept in an `i128`-backed variant so
//! 64-bit seeds and nanosecond timestamps round-trip exactly — they
//! would lose precision above 2⁵³ as `f64`.

use std::fmt;

use sfs_core::sched::SwitchReason;
use sfs_core::task::{TaskId, TenantId};

use crate::event::{
    CounterTrack, EventTrace, MigrateKind, TaskMeta, TraceError, TraceEvent, TraceMeta,
};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer literal (no fraction or exponent).
    Int(i128),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, TraceError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.pos != p.bytes.len() {
            return Err(TraceError::Malformed(format!(
                "trailing bytes at offset {}",
                p.pos
            )));
        }
        Ok(v)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(n) if n.is_finite() => write!(f, "{n}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, why: &str) -> TraceError {
        TraceError::Malformed(format!("{why} at offset {}", self.pos))
    }

    fn eat(&mut self, byte: u8) -> Result<(), TraceError> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, TraceError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn value(&mut self) -> Result<Json, TraceError> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("unexpected byte")),
        }
    }

    fn string(&mut self) -> Result<String, TraceError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let byte = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, TraceError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("bad number"))
        }
    }

    fn array(&mut self) -> Result<Json, TraceError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, TraceError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            members.push((key, self.value()?));
            self.ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

// ------------------------------------------------------------ helpers

/// Builds an object from `(key, value)` pairs.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A required object member, with a path in the error.
pub fn want<'a>(v: &'a Json, key: &str) -> Result<&'a Json, TraceError> {
    v.get(key)
        .ok_or_else(|| TraceError::Malformed(format!("missing key {key:?}")))
}

/// A required `u64` member.
pub fn want_u64(v: &Json, key: &str) -> Result<u64, TraceError> {
    want(v, key)?
        .as_u64()
        .ok_or_else(|| TraceError::Malformed(format!("key {key:?} is not a u64")))
}

/// A required string member.
pub fn want_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, TraceError> {
    want(v, key)?
        .as_str()
        .ok_or_else(|| TraceError::Malformed(format!("key {key:?} is not a string")))
}

/// A required array member.
pub fn want_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], TraceError> {
    want(v, key)?
        .as_arr()
        .ok_or_else(|| TraceError::Malformed(format!("key {key:?} is not an array")))
}

fn reason_str(reason: SwitchReason) -> &'static str {
    match reason {
        SwitchReason::Preempted => "preempted",
        SwitchReason::Yielded => "yielded",
        SwitchReason::Blocked => "blocked",
        SwitchReason::Exited => "exited",
    }
}

fn reason_from(s: &str) -> Result<SwitchReason, TraceError> {
    match s {
        "preempted" => Ok(SwitchReason::Preempted),
        "yielded" => Ok(SwitchReason::Yielded),
        "blocked" => Ok(SwitchReason::Blocked),
        "exited" => Ok(SwitchReason::Exited),
        _ => Err(TraceError::Malformed(format!(
            "unknown switch reason {s:?}"
        ))),
    }
}

fn migrate_str(kind: MigrateKind) -> &'static str {
    match kind {
        MigrateKind::Steal => "steal",
        MigrateKind::Rebalance => "rebalance",
        MigrateKind::Wake => "wake",
    }
}

fn migrate_from(s: &str) -> Result<MigrateKind, TraceError> {
    match s {
        "steal" => Ok(MigrateKind::Steal),
        "rebalance" => Ok(MigrateKind::Rebalance),
        "wake" => Ok(MigrateKind::Wake),
        _ => Err(TraceError::Malformed(format!("unknown migrate kind {s:?}"))),
    }
}

fn track_to_json(track: CounterTrack) -> Json {
    match track {
        CounterTrack::VirtualTime => Json::Str("v".into()),
        CounterTrack::Runnable => Json::Str("runnable".into()),
        CounterTrack::MaxRunSurplus => Json::Str("max_surplus".into()),
        CounterTrack::MinRunPhi => Json::Str("min_phi".into()),
        CounterTrack::LockWaitNs => Json::Str("lock_wait_ns".into()),
        CounterTrack::TenantService(t) => obj(vec![("tenant_service", Json::Int(i128::from(t.0)))]),
    }
}

fn track_from_json(v: &Json) -> Result<CounterTrack, TraceError> {
    if let Some(s) = v.as_str() {
        return match s {
            "v" => Ok(CounterTrack::VirtualTime),
            "runnable" => Ok(CounterTrack::Runnable),
            "max_surplus" => Ok(CounterTrack::MaxRunSurplus),
            "min_phi" => Ok(CounterTrack::MinRunPhi),
            "lock_wait_ns" => Ok(CounterTrack::LockWaitNs),
            _ => Err(TraceError::Malformed(format!(
                "unknown counter track {s:?}"
            ))),
        };
    }
    let t = want_u64(v, "tenant_service")?;
    let t = u32::try_from(t).map_err(|_| TraceError::Malformed("tenant id overflow".into()))?;
    Ok(CounterTrack::TenantService(TenantId(t)))
}

fn task_json(id: TaskId) -> Json {
    Json::Int(i128::from(id.0))
}

pub(crate) fn event_to_json(ev: &TraceEvent) -> Json {
    let t = |t: u64| Json::Int(i128::from(t));
    match *ev {
        TraceEvent::SliceBegin { t: ts, cpu, task } => obj(vec![
            ("ev", Json::Str("slice_begin".into())),
            ("t", t(ts)),
            ("cpu", Json::Int(i128::from(cpu))),
            ("task", task_json(task)),
        ]),
        TraceEvent::SliceEnd {
            t: ts,
            cpu,
            task,
            reason,
        } => obj(vec![
            ("ev", Json::Str("slice_end".into())),
            ("t", t(ts)),
            ("cpu", Json::Int(i128::from(cpu))),
            ("task", task_json(task)),
            ("reason", Json::Str(reason_str(reason).into())),
        ]),
        TraceEvent::CtxSwitch {
            t: ts,
            cpu,
            from,
            to,
        } => obj(vec![
            ("ev", Json::Str("ctx_switch".into())),
            ("t", t(ts)),
            ("cpu", Json::Int(i128::from(cpu))),
            ("from", from.map_or(Json::Null, task_json)),
            ("to", task_json(to)),
        ]),
        TraceEvent::Wake { t: ts, task } => obj(vec![
            ("ev", Json::Str("wake".into())),
            ("t", t(ts)),
            ("task", task_json(task)),
        ]),
        TraceEvent::PreemptEvict {
            t: ts,
            cpu,
            victim,
            by,
        } => obj(vec![
            ("ev", Json::Str("preempt".into())),
            ("t", t(ts)),
            ("cpu", Json::Int(i128::from(cpu))),
            ("victim", task_json(victim)),
            ("by", task_json(by)),
        ]),
        TraceEvent::Migrate {
            t: ts,
            task,
            from_shard,
            to_shard,
            kind,
        } => obj(vec![
            ("ev", Json::Str("migrate".into())),
            ("t", t(ts)),
            ("task", task_json(task)),
            ("from_shard", Json::Int(i128::from(from_shard))),
            ("to_shard", Json::Int(i128::from(to_shard))),
            ("kind", Json::Str(migrate_str(kind).into())),
        ]),
        TraceEvent::Readjust {
            t: ts,
            calls,
            clamped,
        } => obj(vec![
            ("ev", Json::Str("readjust".into())),
            ("t", t(ts)),
            ("calls", Json::Int(i128::from(calls))),
            ("clamped", Json::Int(i128::from(clamped))),
        ]),
        TraceEvent::Counter {
            t: ts,
            track,
            value,
        } => obj(vec![
            ("ev", Json::Str("counter".into())),
            ("t", t(ts)),
            ("track", track_to_json(track)),
            ("value", Json::Num(value)),
        ]),
        TraceEvent::TaskRejected { t: ts, task } => obj(vec![
            ("ev", Json::Str("task_rejected".into())),
            ("t", t(ts)),
            ("task", task_json(task)),
        ]),
        TraceEvent::TaskReaped { t: ts, task } => obj(vec![
            ("ev", Json::Str("task_reaped".into())),
            ("t", t(ts)),
            ("task", task_json(task)),
        ]),
        TraceEvent::WatchdogFired { t: ts, shard } => obj(vec![
            ("ev", Json::Str("watchdog".into())),
            ("t", t(ts)),
            ("shard", Json::Int(i128::from(shard))),
        ]),
    }
}

pub(crate) fn event_from_json(v: &Json) -> Result<TraceEvent, TraceError> {
    let cpu = |v: &Json| -> Result<u32, TraceError> {
        u32::try_from(want_u64(v, "cpu")?)
            .map_err(|_| TraceError::Malformed("cpu index overflow".into()))
    };
    let ts = want_u64(v, "t")?;
    match want_str(v, "ev")? {
        "slice_begin" => Ok(TraceEvent::SliceBegin {
            t: ts,
            cpu: cpu(v)?,
            task: TaskId(want_u64(v, "task")?),
        }),
        "slice_end" => Ok(TraceEvent::SliceEnd {
            t: ts,
            cpu: cpu(v)?,
            task: TaskId(want_u64(v, "task")?),
            reason: reason_from(want_str(v, "reason")?)?,
        }),
        "ctx_switch" => {
            let from = match want(v, "from")? {
                Json::Null => None,
                other => Some(TaskId(other.as_u64().ok_or_else(|| {
                    TraceError::Malformed("ctx_switch 'from' is not a task id".into())
                })?)),
            };
            Ok(TraceEvent::CtxSwitch {
                t: ts,
                cpu: cpu(v)?,
                from,
                to: TaskId(want_u64(v, "to")?),
            })
        }
        "wake" => Ok(TraceEvent::Wake {
            t: ts,
            task: TaskId(want_u64(v, "task")?),
        }),
        "preempt" => Ok(TraceEvent::PreemptEvict {
            t: ts,
            cpu: cpu(v)?,
            victim: TaskId(want_u64(v, "victim")?),
            by: TaskId(want_u64(v, "by")?),
        }),
        "migrate" => Ok(TraceEvent::Migrate {
            t: ts,
            task: TaskId(want_u64(v, "task")?),
            from_shard: u32::try_from(want_u64(v, "from_shard")?)
                .map_err(|_| TraceError::Malformed("shard index overflow".into()))?,
            to_shard: u32::try_from(want_u64(v, "to_shard")?)
                .map_err(|_| TraceError::Malformed("shard index overflow".into()))?,
            kind: migrate_from(want_str(v, "kind")?)?,
        }),
        "readjust" => Ok(TraceEvent::Readjust {
            t: ts,
            calls: want_u64(v, "calls")?,
            clamped: want_u64(v, "clamped")?,
        }),
        "counter" => Ok(TraceEvent::Counter {
            t: ts,
            track: track_from_json(want(v, "track")?)?,
            value: want(v, "value")?
                .as_f64()
                .ok_or_else(|| TraceError::Malformed("counter value is not a number".into()))?,
        }),
        "task_rejected" => Ok(TraceEvent::TaskRejected {
            t: ts,
            task: TaskId(want_u64(v, "task")?),
        }),
        "task_reaped" => Ok(TraceEvent::TaskReaped {
            t: ts,
            task: TaskId(want_u64(v, "task")?),
        }),
        "watchdog" => Ok(TraceEvent::WatchdogFired {
            t: ts,
            shard: u32::try_from(want_u64(v, "shard")?)
                .map_err(|_| TraceError::Malformed("shard index overflow".into()))?,
        }),
        other => Err(TraceError::Malformed(format!(
            "unknown event type {other:?}"
        ))),
    }
}

pub(crate) fn meta_to_json(m: &TraceMeta) -> Json {
    obj(vec![
        ("substrate", Json::Str(m.substrate.clone())),
        ("scenario", Json::Str(m.scenario.clone())),
        ("policy", Json::Str(m.policy.clone())),
        ("cpus", Json::Int(i128::from(m.cpus))),
        (
            "tenants",
            Json::Arr(m.tenants.iter().map(|t| Json::Str(t.clone())).collect()),
        ),
    ])
}

pub(crate) fn meta_from_json(m: &Json) -> Result<TraceMeta, TraceError> {
    Ok(TraceMeta {
        substrate: want_str(m, "substrate")?.to_string(),
        scenario: want_str(m, "scenario")?.to_string(),
        policy: want_str(m, "policy")?.to_string(),
        cpus: u32::try_from(want_u64(m, "cpus")?)
            .map_err(|_| TraceError::Malformed("cpu count overflow".into()))?,
        tenants: want_arr(m, "tenants")?
            .iter()
            .map(|t| {
                t.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| TraceError::Malformed("tenant name is not a string".into()))
            })
            .collect::<Result<Vec<_>, _>>()?,
    })
}

pub(crate) fn task_meta_to_json(t: &TaskMeta) -> Json {
    obj(vec![
        ("id", Json::Int(i128::from(t.id.0))),
        ("name", Json::Str(t.name.clone())),
        ("weight", Json::Int(i128::from(t.weight))),
        (
            "tenant",
            t.tenant.map_or(Json::Null, |x| Json::Int(i128::from(x.0))),
        ),
    ])
}

pub(crate) fn task_meta_from_json(t: &Json) -> Result<TaskMeta, TraceError> {
    let tenant = match want(t, "tenant")? {
        Json::Null => None,
        other => Some(TenantId(
            u32::try_from(
                other
                    .as_u64()
                    .ok_or_else(|| TraceError::Malformed("tenant id is not a u32".into()))?,
            )
            .map_err(|_| TraceError::Malformed("tenant id overflow".into()))?,
        )),
    };
    Ok(TaskMeta {
        id: TaskId(want_u64(t, "id")?),
        name: want_str(t, "name")?.to_string(),
        weight: want_u64(t, "weight")?,
        tenant,
    })
}

impl EventTrace {
    /// Serializes the whole trace (metadata, registry, events) to JSON.
    pub fn to_json(&self) -> Json {
        let meta = meta_to_json(&self.meta);
        let tasks = Json::Arr(self.tasks.iter().map(task_meta_to_json).collect());
        let events = Json::Arr(self.events.iter().map(event_to_json).collect());
        obj(vec![("meta", meta), ("tasks", tasks), ("events", events)])
    }

    /// Rebuilds a trace from [`EventTrace::to_json`] output.
    pub fn from_json(v: &Json) -> Result<EventTrace, TraceError> {
        let meta = meta_from_json(want(v, "meta")?)?;
        let tasks = want_arr(v, "tasks")?
            .iter()
            .map(task_meta_from_json)
            .collect::<Result<Vec<_>, TraceError>>()?;
        let events = want_arr(v, "events")?
            .iter()
            .map(event_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(EventTrace {
            meta,
            tasks,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_text() {
        let v = obj(vec![
            ("big", Json::Int(18_446_744_073_709_551_615)),
            ("neg", Json::Int(-7)),
            ("pi", Json::Num(3.25)),
            ("s", Json::Str("a \"b\"\n\\".into())),
            ("arr", Json::Arr(vec![Json::Null, Json::Bool(true)])),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(
            Json::parse(&text).unwrap().get("big").unwrap().as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("123 456").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn traces_round_trip_through_json() {
        let mut trace = EventTrace::new(TraceMeta {
            substrate: "rt".into(),
            scenario: "s".into(),
            policy: "sfs:quantum=25ms".into(),
            cpus: 2,
            tenants: vec!["acme".into()],
        });
        trace.tasks.push(TaskMeta {
            id: TaskId(3),
            name: "worker".into(),
            weight: 5,
            tenant: Some(TenantId(0)),
        });
        trace.events = vec![
            TraceEvent::Wake {
                t: 1,
                task: TaskId(3),
            },
            TraceEvent::CtxSwitch {
                t: 2,
                cpu: 1,
                from: None,
                to: TaskId(3),
            },
            TraceEvent::SliceBegin {
                t: 2,
                cpu: 1,
                task: TaskId(3),
            },
            TraceEvent::Counter {
                t: 3,
                track: CounterTrack::TenantService(TenantId(0)),
                value: 0.125,
            },
            TraceEvent::Migrate {
                t: 4,
                task: TaskId(3),
                from_shard: 0,
                to_shard: 1,
                kind: MigrateKind::Steal,
            },
            TraceEvent::SliceEnd {
                t: 5,
                cpu: 1,
                task: TaskId(3),
                reason: SwitchReason::Exited,
            },
            TraceEvent::Readjust {
                t: 6,
                calls: 2,
                clamped: 1,
            },
            TraceEvent::TaskRejected {
                t: 7,
                task: TaskId(3),
            },
            TraceEvent::TaskReaped {
                t: 8,
                task: TaskId(3),
            },
            TraceEvent::WatchdogFired { t: 9, shard: 1 },
        ];
        let text = trace.to_json().to_string();
        let back = EventTrace::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, trace);
    }
}
