//! The common event model shared by the simulator and the rt executor.
//!
//! A trace is a flat, timestamp-ordered list of [`TraceEvent`]s plus a
//! task registry and run metadata. Both substrates emit the same
//! vocabulary — per-CPU run slices, context switches, wakes, preemption
//! evictions, shard migrations, §2.1 readjustment epochs, and counter
//! samples — so a sim trace and an rt trace of the same scenario can be
//! compared event-for-event or opened side by side in the Perfetto UI.

use std::collections::HashMap;
use std::fmt;

use sfs_core::sched::SwitchReason;
use sfs_core::task::{TaskId, TenantId};

/// Which counter time series a [`TraceEvent::Counter`] sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CounterTrack {
    /// The scheduler's virtual time `v` (§3.1).
    VirtualTime,
    /// Number of runnable tasks.
    Runnable,
    /// Largest charged surplus among currently-running tasks.
    MaxRunSurplus,
    /// Smallest adjusted weight φ among currently-running tasks — dips
    /// show §2.1 readjustment clamping in action.
    MinRunPhi,
    /// Nanoseconds the timer thread waited to acquire a shard lock.
    LockWaitNs,
    /// Cumulative CPU service (seconds) delivered to one tenant.
    TenantService(TenantId),
}

impl CounterTrack {
    /// Human-readable track name; tenant tracks resolve their name
    /// through the trace metadata when available.
    pub fn label(&self, meta: &TraceMeta) -> String {
        match *self {
            CounterTrack::VirtualTime => "virtual time v".into(),
            CounterTrack::Runnable => "runnable tasks".into(),
            CounterTrack::MaxRunSurplus => "max running surplus".into(),
            CounterTrack::MinRunPhi => "min running phi".into(),
            CounterTrack::LockWaitNs => "timer lock wait (ns)".into(),
            CounterTrack::TenantService(t) => {
                let name = meta
                    .tenants
                    .get(t.0 as usize)
                    .map_or_else(|| format!("tenant {}", t.0), String::clone);
                format!("{name} service (s)")
            }
        }
    }
}

/// Why a task left a shard (rt executor only; the sim's sharded policy
/// steals inside `pick_next` and is invisible at this level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateKind {
    /// An idle shard stole the task.
    Steal,
    /// The periodic balancer moved the task.
    Rebalance,
    /// A wakeup was redirected to a less-loaded shard.
    Wake,
}

/// One structured scheduling event. All timestamps are nanoseconds from
/// the start of the run (sim time or rt epoch).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A task was granted a CPU.
    SliceBegin {
        /// Nanoseconds since run start.
        t: u64,
        /// Machine-wide CPU index.
        cpu: u32,
        /// The task now running.
        task: TaskId,
    },
    /// A task gave up (or was evicted from) a CPU.
    SliceEnd {
        /// Nanoseconds since run start.
        t: u64,
        /// Machine-wide CPU index.
        cpu: u32,
        /// The task that stopped running.
        task: TaskId,
        /// Why it stopped.
        reason: SwitchReason,
    },
    /// A dispatch granted the CPU to a task different from the one this
    /// CPU last ran (the shared `ctx_switches` definition).
    CtxSwitch {
        /// Nanoseconds since run start.
        t: u64,
        /// Machine-wide CPU index.
        cpu: u32,
        /// Previous occupant, if the CPU has run anything yet.
        from: Option<TaskId>,
        /// New occupant.
        to: TaskId,
    },
    /// A task became runnable (arrival or wakeup).
    Wake {
        /// Nanoseconds since run start.
        t: u64,
        /// The task that woke.
        task: TaskId,
    },
    /// A wakeup chose a running victim to evict (§wake preemption).
    PreemptEvict {
        /// Nanoseconds since run start.
        t: u64,
        /// CPU the victim was running on.
        cpu: u32,
        /// The evicted task.
        victim: TaskId,
        /// The waking task that triggered the eviction.
        by: TaskId,
    },
    /// A task moved between shards (rt executor).
    Migrate {
        /// Nanoseconds since run start.
        t: u64,
        /// The migrated task.
        task: TaskId,
        /// Source shard.
        from_shard: u32,
        /// Destination shard.
        to_shard: u32,
        /// What triggered the move.
        kind: MigrateKind,
    },
    /// One or more §2.1 weight readjustments ran since the last sample.
    Readjust {
        /// Nanoseconds since run start.
        t: u64,
        /// Readjustment passes since the previous `Readjust` event.
        calls: u64,
        /// Weights clamped since the previous `Readjust` event.
        clamped: u64,
    },
    /// A counter sample.
    Counter {
        /// Nanoseconds since run start.
        t: u64,
        /// Which series.
        track: CounterTrack,
        /// Sampled value.
        value: f64,
    },
    /// An arrival was refused by admission control — the task was
    /// registered (so the rejection is attributable) but never
    /// scheduled.
    TaskRejected {
        /// Nanoseconds since run start.
        t: u64,
        /// The rejected task.
        task: TaskId,
    },
    /// A task was forcibly removed after an abnormal exit (panic,
    /// injected fault, watchdog recovery); its weight was released and
    /// scheduler state cleaned.
    TaskReaped {
        /// Nanoseconds since run start.
        t: u64,
        /// The reaped task.
        task: TaskId,
    },
    /// The stall watchdog detected a wedged shard and triggered
    /// recovery.
    WatchdogFired {
        /// Nanoseconds since run start.
        t: u64,
        /// The shard found stalled.
        shard: u32,
    },
}

impl TraceEvent {
    /// The event's timestamp in nanoseconds from run start.
    pub fn timestamp(&self) -> u64 {
        match *self {
            TraceEvent::SliceBegin { t, .. }
            | TraceEvent::SliceEnd { t, .. }
            | TraceEvent::CtxSwitch { t, .. }
            | TraceEvent::Wake { t, .. }
            | TraceEvent::PreemptEvict { t, .. }
            | TraceEvent::Migrate { t, .. }
            | TraceEvent::Readjust { t, .. }
            | TraceEvent::Counter { t, .. }
            | TraceEvent::TaskRejected { t, .. }
            | TraceEvent::TaskReaped { t, .. }
            | TraceEvent::WatchdogFired { t, .. } => t,
        }
    }
}

/// Static description of one task in the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskMeta {
    /// Scheduler task id (substrate-local; ids are not comparable
    /// across substrates, names are).
    pub id: TaskId,
    /// Task name from the scenario.
    pub name: String,
    /// Requested weight.
    pub weight: u64,
    /// Owning tenant, if any.
    pub tenant: Option<TenantId>,
}

/// Run-level metadata attached to a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceMeta {
    /// Which substrate produced the trace (`"sim"` or `"rt"`).
    pub substrate: String,
    /// Scenario name.
    pub scenario: String,
    /// Policy string (parse∘Display round-trips through `PolicySpec`).
    pub policy: String,
    /// Number of CPUs.
    pub cpus: u32,
    /// Tenant names, indexed by `TenantId`.
    pub tenants: Vec<String>,
}

/// A complete recorded run: metadata, task registry, and the
/// timestamp-ordered event list.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventTrace {
    /// Run metadata.
    pub meta: TraceMeta,
    /// Every task that was registered (attached) during the run.
    pub tasks: Vec<TaskMeta>,
    /// Events, sorted by timestamp (stable within equal timestamps).
    pub events: Vec<TraceEvent>,
}

/// Why a trace failed validation or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Event at `index` has a smaller timestamp than its predecessor.
    Unsorted {
        /// Index of the out-of-order event.
        index: usize,
    },
    /// An event references a task id missing from the registry.
    UnregisteredTask {
        /// The unknown id.
        id: TaskId,
    },
    /// A registered task never got a run slice.
    TaskNeverRan {
        /// The task's name.
        name: String,
    },
    /// The trace contains no counter samples.
    NoCounters,
    /// Slice begin/end events on a CPU do not pair up.
    UnbalancedSlice {
        /// The CPU with mismatched slices.
        cpu: u32,
        /// Index of the offending event.
        index: usize,
    },
    /// A task was reaped while it still held an open run slice — the
    /// substrate must close the slice (`SliceEnd`) before emitting
    /// `TaskReaped`, so begin/end balance holds for reaped tasks too.
    ReapedWhileRunning {
        /// The reaped task.
        id: TaskId,
        /// Index of the `TaskReaped` event.
        index: usize,
    },
    /// A JSON or protobuf payload could not be decoded.
    Malformed(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Unsorted { index } => {
                write!(f, "event {index} is out of timestamp order")
            }
            TraceError::UnregisteredTask { id } => {
                write!(f, "event references unregistered task {}", id.0)
            }
            TraceError::TaskNeverRan { name } => {
                write!(f, "registered task {name:?} has no run slice")
            }
            TraceError::NoCounters => write!(f, "trace has no counter samples"),
            TraceError::UnbalancedSlice { cpu, index } => {
                write!(
                    f,
                    "unbalanced slice begin/end on cpu {cpu} at event {index}"
                )
            }
            TraceError::ReapedWhileRunning { id, index } => {
                write!(
                    f,
                    "task {} reaped at event {index} with its run slice still open",
                    id.0
                )
            }
            TraceError::Malformed(why) => write!(f, "malformed trace payload: {why}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl EventTrace {
    /// An empty trace carrying only metadata.
    pub fn new(meta: TraceMeta) -> EventTrace {
        EventTrace {
            meta,
            tasks: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Looks a task's name up in the registry.
    pub fn task_name(&self, id: TaskId) -> Option<&str> {
        self.tasks
            .iter()
            .find(|t| t.id == id)
            .map(|t| t.name.as_str())
    }

    /// The context-switch sequence as `(cpu, task name)` pairs in
    /// timestamp order — the substrate-independent key used by
    /// capture→replay comparison (task *ids* are assigned in different
    /// orders by the two substrates; names are stable).
    pub fn ctx_switch_sequence(&self) -> Vec<(u32, String)> {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                TraceEvent::CtxSwitch { cpu, to, .. } => Some((
                    cpu,
                    self.task_name(to).unwrap_or("<unregistered>").to_string(),
                )),
                _ => None,
            })
            .collect()
    }

    /// Structural validation: timestamps are monotonic, every referenced
    /// task is registered, every registered task has at least one run
    /// slice (rejected and reaped tasks are exempt), slice begin/end
    /// events pair up per CPU — including for reaped tasks, whose final
    /// slice must be closed before the `TaskReaped` event — and at
    /// least one counter track is non-empty.
    pub fn validate(&self) -> Result<(), TraceError> {
        let registry: HashMap<TaskId, &TaskMeta> = self.tasks.iter().map(|t| (t.id, t)).collect();
        let mut last_t = 0u64;
        let mut open: HashMap<u32, TaskId> = HashMap::new();
        let mut ran: HashMap<TaskId, bool> = self.tasks.iter().map(|t| (t.id, false)).collect();
        let mut counters = 0usize;
        let check = |id: TaskId| -> Result<(), TraceError> {
            if registry.contains_key(&id) {
                Ok(())
            } else {
                Err(TraceError::UnregisteredTask { id })
            }
        };
        for (i, ev) in self.events.iter().enumerate() {
            let t = ev.timestamp();
            if t < last_t {
                return Err(TraceError::Unsorted { index: i });
            }
            last_t = t;
            match *ev {
                TraceEvent::SliceBegin { cpu, task, .. } => {
                    check(task)?;
                    if open.insert(cpu, task).is_some() {
                        return Err(TraceError::UnbalancedSlice { cpu, index: i });
                    }
                    ran.insert(task, true);
                }
                TraceEvent::SliceEnd { cpu, task, .. } => {
                    check(task)?;
                    if open.remove(&cpu) != Some(task) {
                        return Err(TraceError::UnbalancedSlice { cpu, index: i });
                    }
                }
                TraceEvent::CtxSwitch { from, to, .. } => {
                    if let Some(from) = from {
                        check(from)?;
                    }
                    check(to)?;
                }
                TraceEvent::Wake { task, .. } | TraceEvent::Migrate { task, .. } => {
                    check(task)?;
                }
                TraceEvent::PreemptEvict { victim, by, .. } => {
                    check(victim)?;
                    check(by)?;
                }
                TraceEvent::Readjust { .. } => {}
                TraceEvent::Counter { .. } => counters += 1,
                TraceEvent::TaskRejected { task, .. } => {
                    check(task)?;
                    // A rejected arrival never gets a slice; exempt it
                    // from the every-task-ran rule.
                    ran.insert(task, true);
                }
                TraceEvent::TaskReaped { task, .. } => {
                    check(task)?;
                    // Begin/end balance must hold for reaped tasks too:
                    // the substrate closes the slice before reaping.
                    if open.values().any(|&running| running == task) {
                        return Err(TraceError::ReapedWhileRunning { id: task, index: i });
                    }
                    // A task killed before its first dispatch is fine.
                    ran.insert(task, true);
                }
                TraceEvent::WatchdogFired { .. } => {}
            }
        }
        if let Some((&cpu, _)) = open.iter().next() {
            return Err(TraceError::UnbalancedSlice {
                cpu,
                index: self.events.len(),
            });
        }
        if let Some((id, _)) = ran.iter().find(|&(_, &r)| !r) {
            let name = registry[id].name.clone();
            return Err(TraceError::TaskNeverRan { name });
        }
        if counters == 0 {
            return Err(TraceError::NoCounters);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_trace() -> EventTrace {
        let mut trace = EventTrace::new(TraceMeta {
            substrate: "sim".into(),
            scenario: "chaos".into(),
            policy: "sfs".into(),
            cpus: 1,
            tenants: vec![],
        });
        for (id, name) in [(1, "A"), (2, "B")] {
            trace.tasks.push(TaskMeta {
                id: TaskId(id),
                name: name.into(),
                weight: 1,
                tenant: None,
            });
        }
        trace.events = vec![
            TraceEvent::SliceBegin {
                t: 0,
                cpu: 0,
                task: TaskId(1),
            },
            TraceEvent::Counter {
                t: 1,
                track: CounterTrack::Runnable,
                value: 2.0,
            },
            TraceEvent::SliceEnd {
                t: 2,
                cpu: 0,
                task: TaskId(1),
                reason: SwitchReason::Exited,
            },
        ];
        trace
    }

    #[test]
    fn rejected_tasks_are_exempt_from_never_ran() {
        let mut trace = base_trace();
        // Task 2 never runs: without a rejection marker that fails.
        assert_eq!(
            trace.validate(),
            Err(TraceError::TaskNeverRan { name: "B".into() })
        );
        trace.events.push(TraceEvent::TaskRejected {
            t: 3,
            task: TaskId(2),
        });
        trace.validate().expect("rejected task is exempt");
    }

    #[test]
    fn reaped_tasks_keep_slices_balanced() {
        let mut trace = base_trace();
        // Reaping after the slice closed is fine (and exempts task 2
        // had it been the reaped one).
        trace.events.push(TraceEvent::TaskReaped {
            t: 3,
            task: TaskId(1),
        });
        trace.events.push(TraceEvent::TaskRejected {
            t: 3,
            task: TaskId(2),
        });
        trace.validate().expect("reap after slice end is balanced");
        // Reaping while the slice is still open is an error.
        let mut bad = base_trace();
        bad.events.insert(
            1,
            TraceEvent::TaskReaped {
                t: 1,
                task: TaskId(1),
            },
        );
        bad.events.push(TraceEvent::TaskRejected {
            t: 3,
            task: TaskId(2),
        });
        assert_eq!(
            bad.validate(),
            Err(TraceError::ReapedWhileRunning {
                id: TaskId(1),
                index: 1
            })
        );
    }

    #[test]
    fn reaped_before_first_dispatch_is_exempt() {
        let mut trace = base_trace();
        trace.events.push(TraceEvent::TaskReaped {
            t: 3,
            task: TaskId(2),
        });
        trace
            .events
            .push(TraceEvent::WatchdogFired { t: 4, shard: 0 });
        trace.validate().expect("reaped-before-run task is exempt");
    }
}
