//! Behavioural tests for the runtime lock-order audit. These only
//! compile under the `lock-audit` feature: they exercise the
//! per-thread held-set check (the violation panic) and the global
//! acquisition-edge graph that the rt suite later proves acyclic.
#![cfg(feature = "lock-audit")]

use sfs_analyze::lockorder::{
    acquisition_edges, audit_enabled, check_acyclic, lock_pair, rank, reset_audit, OrderedMutex,
};

#[test]
fn rank_violation_panics_at_the_wrong_acquisition() {
    assert!(audit_enabled());
    let global = OrderedMutex::new(rank::GLOBAL, ());
    let shard = OrderedMutex::new(rank::shard(0), ());

    // The violating acquisition itself panics — before the lock is
    // taken, so the held set stays consistent for the rest of the
    // thread.
    let held = shard.lock();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _g = global.lock(); // global (1,0) under shard (2,0): inverted
    }))
    .expect_err("acquiring global under a shard lock must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("lock-order violation"),
        "panic names the discipline: {msg}"
    );
    assert!(
        msg.contains("global") && msg.contains("shard"),
        "panic names both locks: {msg}"
    );
    drop(held);

    // The held set survived the refused acquisition: the same thread
    // can still run a fully ordered sequence without tripping.
    let g = global.lock();
    let s = shard.lock();
    drop((g, s));
}

#[test]
fn equal_rank_reacquisition_is_refused() {
    // Two distinct shard-3 instances: equal keys may never nest, in
    // either order — that is exactly an ABBA deadlock candidate.
    let a = OrderedMutex::new(rank::shard(3), ());
    let b = OrderedMutex::new(rank::shard(3), ());
    let held = a.lock();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _g = b.lock();
    }));
    assert!(err.is_err(), "equal-rank nesting must be refused");
    drop(held);
}

#[test]
fn audit_records_nested_acquisitions_as_edges() {
    // The graph is a process-global; run the interesting acquisitions,
    // then assert *containment* (other tests in this binary may add
    // their own well-ordered edges concurrently).
    reset_audit();

    let global = OrderedMutex::new(rank::GLOBAL, ());
    let s0 = OrderedMutex::new(rank::shard(0), ());
    let s1 = OrderedMutex::new(rank::shard(1), ());
    let snap = OrderedMutex::new(rank::SNAPSHOT, ());

    {
        let _g = global.lock();
        let (_a, _b) = lock_pair(&s1, &s0); // acquired 0 then 1, returned (s1, s0)
        let _s = snap.lock();
    }

    let edges = acquisition_edges();
    for expected in [
        (rank::GLOBAL, rank::shard(0)),
        (rank::GLOBAL, rank::shard(1)),
        (rank::shard(0), rank::shard(1)),
        (rank::shard(1), rank::SNAPSHOT),
        (rank::GLOBAL, rank::SNAPSHOT),
    ] {
        assert!(
            edges.contains(&expected),
            "missing edge {} -> {} in {edges:?}",
            expected.0,
            expected.1
        );
    }
    // Whatever ran so far, the observed graph obeys the hierarchy.
    check_acyclic(&edges).expect("observed acquisition graph must be acyclic");
}

#[test]
fn disjoint_acquisitions_record_no_edges() {
    // Edges are held → acquired; back-to-back non-nested locks on one
    // thread must not fabricate ordering constraints.
    let a = OrderedMutex::new(rank::shard(10), ());
    let b = OrderedMutex::new(rank::shard(11), ());
    drop(a.lock());
    drop(b.lock());
    let edges = acquisition_edges();
    assert!(
        !edges.contains(&(rank::shard(11), rank::shard(10)))
            && !edges.contains(&(rank::shard(10), rank::shard(11))),
        "sequential (non-nested) locks must not record edges: {edges:?}"
    );
}
