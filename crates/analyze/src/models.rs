//! Protocol models for the bounded interleaving checker.
//!
//! Each model is a small, deterministic re-statement of a risky
//! cross-thread protocol in the real code (`crates/rt/src/executor.rs`,
//! `crates/core/src/shard.rs`), shrunk to the handful of atomic steps
//! that matter:
//!
//! * [`EpochPublish`] — the `SnapshotCell` publish/read protocol:
//!   a writer stores snapshot content *then* bumps the epoch; readers
//!   load the epoch and then the content. Invariants: per-reader epoch
//!   monotonicity and content at least as new as the observed epoch.
//! * [`StealVsExit`] — a work-stealer moving a task between two shards
//!   races a task-exit path that also takes both shard locks.
//!   Invariants: total weight conservation (a task is on exactly one
//!   shard or in exactly one hand) and — via the explorer's built-in
//!   stuck-state detection — no deadlock from the two-lock acquisition
//!   order.
//! * [`WatchdogHeartbeat`] — the timer watchdog observing a worker
//!   heartbeat counter: a worker that goes quiet while work is waiting
//!   must cause the watchdog to fire within a bounded number of ticks.
//!
//! Every model has a deliberately **broken** variant (constructed with
//! `new(true)`) seeding the classic mutation for that protocol —
//! epoch-before-content publication, unordered two-lock acquisition,
//! inverted stale-counter logic — so the checker is demonstrably
//! non-vacuous: tests assert the explorer flags each broken variant
//! and passes each correct one.

use crate::interleave::Model;

/// The `SnapshotCell` epoch-publication protocol.
///
/// Thread 0 is the writer: it publishes `versions` snapshots, each as
/// two atomic steps. Correct order: store content, then store epoch.
/// The broken variant (`new(true)`) stores the epoch first — the exact
/// mutation that lets a reader observe an epoch whose content has not
/// landed yet.
///
/// Threads 1.. are readers: each performs `rounds` read pairs (load
/// epoch, then load content), checking that observed epochs never go
/// backwards and that content is at least as new as the epoch read
/// before it.
#[derive(Debug)]
pub struct EpochPublish {
    broken: bool,
    versions: u64,
    rounds: usize,
    slot: u64,
    epoch: u64,
    wpc: usize,
    readers: Vec<Reader>,
    failed: Option<String>,
}

#[derive(Debug, Clone, Default)]
struct Reader {
    pc: usize,
    pending: u64,
    last: u64,
}

impl EpochPublish {
    /// Two published versions, two readers of two rounds each — small
    /// enough (12 steps) for the exhaustive explorer to finish, large
    /// enough to interleave a publish inside a read pair every way.
    pub fn new(broken: bool) -> EpochPublish {
        EpochPublish {
            broken,
            versions: 2,
            rounds: 2,
            slot: 0,
            epoch: 0,
            wpc: 0,
            readers: vec![Reader::default(); 2],
            failed: None,
        }
    }
}

impl Model for EpochPublish {
    fn name(&self) -> &'static str {
        if self.broken {
            "epoch-publish/broken"
        } else {
            "epoch-publish"
        }
    }

    fn threads(&self) -> usize {
        1 + self.readers.len()
    }

    fn reset(&mut self) {
        self.slot = 0;
        self.epoch = 0;
        self.wpc = 0;
        self.failed = None;
        for r in &mut self.readers {
            *r = Reader::default();
        }
    }

    fn done(&self, t: usize) -> bool {
        if t == 0 {
            self.wpc >= (self.versions as usize) * 2
        } else {
            self.readers[t - 1].pc >= self.rounds * 2
        }
    }

    fn enabled(&self, _t: usize) -> bool {
        true
    }

    fn step(&mut self, t: usize) {
        if t == 0 {
            let version = (self.wpc / 2) as u64 + 1;
            let content_first = !self.broken;
            if self.wpc.is_multiple_of(2) == content_first {
                self.slot = version;
            } else {
                self.epoch = version;
            }
            self.wpc += 1;
            return;
        }
        let r = &mut self.readers[t - 1];
        if r.pc.is_multiple_of(2) {
            r.pending = self.epoch;
            if r.pending < r.last {
                self.failed = Some(format!(
                    "reader {} saw epoch go backwards: {} after {}",
                    t - 1,
                    r.pending,
                    r.last
                ));
            }
            r.last = r.pending;
        } else if self.slot < r.pending {
            self.failed = Some(format!(
                "reader {} observed epoch {} but content version {}",
                t - 1,
                r.pending,
                self.slot
            ));
        }
        self.readers[t - 1].pc += 1;
    }

    fn check(&self) -> Result<(), String> {
        match &self.failed {
            Some(msg) => Err(msg.clone()),
            None => Ok(()),
        }
    }

    fn final_check(&self) -> Result<(), String> {
        Ok(())
    }
}

/// Steal-vs-exit over two shard locks.
///
/// Thread 0 steals one task from shard 1 into shard 0; thread 1 pops
/// one task from shard 0 into the exited set. Both critical sections
/// take *both* shard locks. Correct variant: both threads acquire in
/// ascending shard-index order (the `lock_pair` discipline). Broken
/// variant (`new(true)`): the stealer acquires its *source* shard
/// first — lock 1 then lock 0 — giving the classic ABBA deadlock the
/// explorer reports as a stuck state.
///
/// Safety invariant after every step: the weights on the two shards,
/// in threads' hands, and in the exited set always sum to the initial
/// total (each task lives in exactly one place).
#[derive(Debug)]
pub struct StealVsExit {
    broken: bool,
    shards: [Vec<u32>; 2],
    locks: [Option<usize>; 2],
    exited: u32,
    hand: [Option<u32>; 2],
    pc: [usize; 2],
    total: u32,
    failed: Option<String>,
}

impl StealVsExit {
    /// Shard 0 holds one task (weight 3), shard 1 two (weights 5, 7).
    pub fn new(broken: bool) -> StealVsExit {
        StealVsExit {
            broken,
            shards: [vec![3], vec![5, 7]],
            locks: [None, None],
            exited: 0,
            hand: [None, None],
            pc: [0, 0],
            total: 15,
            failed: None,
        }
    }

    /// Lock-acquisition order for thread `t`: `(first, second)`.
    fn order(&self, t: usize) -> (usize, usize) {
        if t == 0 && self.broken {
            (1, 0) // source shard first: ABBA against thread 1
        } else {
            (0, 1)
        }
    }

    /// Steps 0 and 1 of each thread are lock-free victim scans, so
    /// schedules branch around the serialized critical sections.
    const SCANS: usize = 2;
}

impl Model for StealVsExit {
    fn name(&self) -> &'static str {
        if self.broken {
            "steal-vs-exit/broken"
        } else {
            "steal-vs-exit"
        }
    }

    fn threads(&self) -> usize {
        2
    }

    fn reset(&mut self) {
        self.shards = [vec![3], vec![5, 7]];
        self.locks = [None, None];
        self.exited = 0;
        self.hand = [None, None];
        self.pc = [0, 0];
        self.failed = None;
    }

    fn done(&self, t: usize) -> bool {
        self.pc[t] >= Self::SCANS + if t == 0 { 5 } else { 4 }
    }

    fn enabled(&self, t: usize) -> bool {
        let (first, second) = self.order(t);
        match self.pc[t].checked_sub(Self::SCANS) {
            Some(0) => self.locks[first].is_none(),
            Some(1) => self.locks[second].is_none(),
            _ => true,
        }
    }

    fn step(&mut self, t: usize) {
        let (first, second) = self.order(t);
        let op = self.pc[t].checked_sub(Self::SCANS);
        if t == 0 {
            match op {
                None => {} // lock-free victim scan
                Some(0) => self.locks[first] = Some(0),
                Some(1) => self.locks[second] = Some(0),
                Some(2) => match self.shards[1].pop() {
                    Some(w) => self.hand[0] = Some(w),
                    None => self.failed = Some("steal source shard empty".to_string()),
                },
                Some(3) => {
                    if let Some(w) = self.hand[0].take() {
                        self.shards[0].push(w);
                    }
                }
                Some(_) => self.locks = [None, None],
            }
        } else {
            match op {
                None => {} // lock-free victim scan
                Some(0) => self.locks[first] = Some(1),
                Some(1) => self.locks[second] = Some(1),
                Some(2) => match self.shards[0].pop() {
                    Some(w) => self.exited += w,
                    None => self.failed = Some("exit source shard empty".to_string()),
                },
                Some(_) => self.locks = [None, None],
            }
        }
        self.pc[t] += 1;
    }

    fn check(&self) -> Result<(), String> {
        if let Some(msg) = &self.failed {
            return Err(msg.clone());
        }
        let sum: u32 = self.shards.iter().flatten().sum::<u32>()
            + self.hand.iter().flatten().sum::<u32>()
            + self.exited;
        if sum != self.total {
            return Err(format!(
                "weight not conserved: {} != {} (shards {:?}, hands {:?}, exited {})",
                sum, self.total, self.shards, self.hand, self.exited
            ));
        }
        Ok(())
    }

    fn final_check(&self) -> Result<(), String> {
        if self.exited == 0 {
            return Err("exit path never completed".to_string());
        }
        self.check()
    }
}

/// The timer-watchdog heartbeat protocol.
///
/// Thread 0 is a worker that bumps a heartbeat counter twice and then
/// goes quiet — while work is still waiting. Thread 1 is the watchdog:
/// each tick compares the heartbeat against the last observed value;
/// two consecutive quiet ticks with work pending mean the worker is
/// stalled, and the watchdog fires and takes over the waiting work.
///
/// The broken variant (`new(true)`) inverts the stale-counter logic
/// (counting *changed* observations instead of quiet ones) — under the
/// schedule where the worker finishes before the first tick, the
/// watchdog then never fires and the waiting work is lost, which the
/// final check reports.
#[derive(Debug)]
pub struct WatchdogHeartbeat {
    broken: bool,
    heartbeat: u32,
    last_seen: u32,
    stale: u32,
    waiting_work: bool,
    fired: bool,
    worker_steps: usize,
    ticks: usize,
    pc: [usize; 2],
}

impl WatchdogHeartbeat {
    /// Two worker heartbeats against eight watchdog ticks — enough
    /// ticks that every interleaving gives the watchdog two
    /// consecutive quiet observations after the worker stalls.
    pub fn new(broken: bool) -> WatchdogHeartbeat {
        WatchdogHeartbeat {
            broken,
            heartbeat: 0,
            last_seen: 0,
            stale: 0,
            waiting_work: true,
            fired: false,
            worker_steps: 2,
            ticks: 8,
            pc: [0, 0],
        }
    }
}

impl Model for WatchdogHeartbeat {
    fn name(&self) -> &'static str {
        if self.broken {
            "watchdog-heartbeat/broken"
        } else {
            "watchdog-heartbeat"
        }
    }

    fn threads(&self) -> usize {
        2
    }

    fn reset(&mut self) {
        self.heartbeat = 0;
        self.last_seen = 0;
        self.stale = 0;
        self.waiting_work = true;
        self.fired = false;
        self.pc = [0, 0];
    }

    fn done(&self, t: usize) -> bool {
        self.pc[t]
            >= if t == 0 {
                self.worker_steps
            } else {
                self.ticks
            }
    }

    fn enabled(&self, _t: usize) -> bool {
        true
    }

    fn step(&mut self, t: usize) {
        if t == 0 {
            self.heartbeat += 1;
        } else {
            let quiet = self.heartbeat == self.last_seen;
            let counts = if self.broken { !quiet } else { quiet };
            if counts && self.waiting_work {
                self.stale += 1;
            } else {
                self.stale = 0;
            }
            self.last_seen = self.heartbeat;
            if self.stale >= 2 && self.waiting_work {
                self.fired = true;
                self.waiting_work = false;
            }
        }
        self.pc[t] += 1;
    }

    fn check(&self) -> Result<(), String> {
        Ok(())
    }

    fn final_check(&self) -> Result<(), String> {
        if self.waiting_work {
            return Err(
                "lost wakeup: work still waiting after worker stalled and all ticks ran"
                    .to_string(),
            );
        }
        if !self.fired {
            return Err("work cleared without the watchdog firing".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleave::Explorer;

    #[test]
    fn correct_models_are_clean_and_complete() {
        let ex = Explorer::default();
        for (mut m, min_schedules) in [
            (Box::new(EpochPublish::new(false)) as Box<dyn Model>, 1_000),
            (Box::new(StealVsExit::new(false)), 10),
            (Box::new(WatchdogHeartbeat::new(false)), 40),
        ] {
            let rep = ex.explore(&mut *m);
            assert!(rep.complete, "{} did not complete", m.name());
            assert!(
                rep.schedules >= min_schedules,
                "{}: only {} schedules",
                m.name(),
                rep.schedules
            );
            assert!(rep.clean(), "{}: {:?}", m.name(), rep.violations);
        }
    }

    #[test]
    fn broken_epoch_publish_is_caught() {
        let mut m = EpochPublish::new(true);
        let rep = Explorer::default().explore(&mut m);
        assert!(!rep.clean(), "broken epoch publish went undetected");
        assert!(
            rep.violations.iter().any(|v| v.message.contains("content")),
            "{:?}",
            rep.violations
        );
    }

    #[test]
    fn broken_steal_lock_order_deadlocks() {
        let mut m = StealVsExit::new(true);
        let rep = Explorer::default().explore(&mut m);
        assert!(!rep.clean(), "ABBA lock order went undetected");
        assert!(
            rep.violations
                .iter()
                .any(|v| v.message.contains("deadlock")),
            "{:?}",
            rep.violations
        );
    }

    #[test]
    fn broken_watchdog_loses_work() {
        let mut m = WatchdogHeartbeat::new(true);
        let rep = Explorer::default().explore(&mut m);
        assert!(!rep.clean(), "inverted stale logic went undetected");
        assert!(
            rep.violations
                .iter()
                .any(|v| v.message.contains("lost wakeup")),
            "{:?}",
            rep.violations
        );
    }

    #[test]
    fn sampled_runs_stay_clean_on_correct_models() {
        let ex = Explorer::default();
        for mut m in [
            Box::new(EpochPublish::new(false)) as Box<dyn Model>,
            Box::new(StealVsExit::new(false)),
            Box::new(WatchdogHeartbeat::new(false)),
        ] {
            let rep = ex.sample(&mut *m, 0x5F5_F00D, 2_000);
            assert_eq!(rep.schedules, 2_000);
            assert!(rep.clean(), "{}: {:?}", m.name(), rep.violations);
        }
    }
}
