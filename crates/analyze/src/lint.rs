//! The project lint engine: a token-level scanner over `crates/*/src`
//! enforcing repo-specific correctness conventions that `rustc` and
//! `clippy` cannot see.
//!
//! Rules (see [`RULES`]):
//!
//! * `sim-wall-clock` — `sfs-sim` is a deterministic simulator; the
//!   identifiers `Instant` and `SystemTime` must not appear in
//!   `crates/sim/src` (virtual time only).
//! * `rt-sleep` — `thread::sleep` is allowed only in the rt timer
//!   (every other blocking wait must go through a condvar so shutdown
//!   and watchdogs stay prompt); exemptions live in `lint.allow`.
//! * `hot-unwrap` — no `.unwrap()` on the executor/engine hot paths,
//!   and `.expect(` only with an adjacent `// invariant:` comment
//!   stating why the invariant holds.
//! * `rt-raw-mutex` — locks in `crates/rt/src` must be
//!   `OrderedMutex` (the raw `Mutex` identifier is banned) so every
//!   acquisition participates in the lock-rank discipline.
//! * `relaxed-justify` — every `Ordering::Relaxed` must carry a
//!   `// relaxed:` comment (same line or the line above) justifying
//!   why no ordering is needed.
//!
//! The scanner strips strings and comments before matching, matches
//! identifiers exactly (`OrderedMutex` does not trip the `Mutex`
//! rule), and skips `#[cfg(test)]` regions by brace tracking. It is
//! deliberately token-level, not a parser: the conventions it enforces
//! are lexically visible, and the fixture self-tests in this module
//! prove each rule fires on a seeded violation.
//!
//! Suppressions are driven by `lint.allow` at the workspace root:
//! one `rule path # reason` entry per line, reason mandatory.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Lint rule identifiers with one-line descriptions.
pub const RULES: &[(&str, &str)] = &[
    (
        "sim-wall-clock",
        "no std::time::Instant / SystemTime in sfs-sim (virtual time only)",
    ),
    (
        "rt-sleep",
        "thread::sleep only in the rt timer (allowlisted); condvars elsewhere",
    ),
    (
        "hot-unwrap",
        "no .unwrap() on executor/engine hot paths; .expect( needs a // invariant: comment",
    ),
    (
        "rt-raw-mutex",
        "locks in crates/rt/src must be OrderedMutex, not raw Mutex",
    ),
    (
        "relaxed-justify",
        "every Ordering::Relaxed needs a // relaxed: justification comment",
    ),
];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier from [`RULES`].
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Parsed `lint.allow` suppression file.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

#[derive(Debug)]
struct AllowEntry {
    rule: String,
    path: String,
}

impl Allowlist {
    /// Parses allowlist text: one `rule path # reason` per line; blank
    /// lines and lines starting with `#` are comments.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line when an entry is
    /// malformed, names an unknown rule, or omits its reason.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (no, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (body, reason) = match line.split_once('#') {
                Some((b, r)) => (b.trim(), r.trim()),
                None => return Err(format!("lint.allow:{}: entry needs a '# reason'", no + 1)),
            };
            if reason.is_empty() {
                return Err(format!("lint.allow:{}: empty reason", no + 1));
            }
            let mut parts = body.split_whitespace();
            let (rule, path) = match (parts.next(), parts.next(), parts.next()) {
                (Some(rule), Some(path), None) => (rule, path),
                _ => {
                    return Err(format!(
                        "lint.allow:{}: expected 'rule path # reason'",
                        no + 1
                    ))
                }
            };
            if !RULES.iter().any(|(id, _)| *id == rule) {
                return Err(format!("lint.allow:{}: unknown rule '{}'", no + 1, rule));
            }
            entries.push(AllowEntry {
                rule: rule.to_string(),
                path: path.to_string(),
            });
        }
        Ok(Allowlist { entries })
    }

    /// True when the finding is suppressed by an allowlist entry
    /// (exact rule match, path equal to or ending with the entry's).
    pub fn allows(&self, f: &Finding) -> bool {
        self.entries
            .iter()
            .any(|e| e.rule == f.rule && (f.path == e.path || f.path.ends_with(&e.path)))
    }
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations not covered by the allowlist.
    pub findings: Vec<Finding>,
    /// Violations suppressed by `lint.allow` entries.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when no unsuppressed findings remain.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Runs every rule over `crates/*/src/**/*.rs` under `root`, applying
/// the `lint.allow` file at the workspace root if present.
///
/// # Errors
///
/// Returns a message on a malformed allowlist or an unreadable tree.
pub fn run(root: &Path) -> Result<LintReport, String> {
    let allow = match fs::read_to_string(root.join("lint.allow")) {
        Ok(text) => Allowlist::parse(&text)?,
        Err(_) => Allowlist::default(),
    };
    let mut files: Vec<PathBuf> = Vec::new();
    let crates = root.join("crates");
    let entries = fs::read_dir(&crates).map_err(|e| format!("read {}: {}", crates.display(), e))?;
    for entry in entries.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    let mut report = LintReport::default();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let source =
            fs::read_to_string(file).map_err(|e| format!("read {}: {}", file.display(), e))?;
        report.files_scanned += 1;
        for finding in scan_source(&rel, &source) {
            if allow.allows(&finding) {
                report.suppressed += 1;
            } else {
                report.findings.push(finding);
            }
        }
    }
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {}", dir.display(), e))?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans one file's source, returning all rule violations. Pure —
/// fixture self-tests feed synthetic sources through this directly.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let is_sim = rel_path.contains("crates/sim/src");
    let is_rt = rel_path.contains("crates/rt/src");
    let is_hot = rel_path.ends_with("crates/rt/src/executor.rs")
        || rel_path.ends_with("crates/sim/src/engine.rs")
        || rel_path == "crates/rt/src/executor.rs"
        || rel_path == "crates/sim/src/engine.rs";

    let mut findings = Vec::new();
    let mut in_block_comment = false;
    let mut depth: i32 = 0;
    let mut armed_test = false;
    let mut test_until: Option<i32> = None;
    let mut prev_raw = String::new();
    // Markers seen in the contiguous run of comment-only lines
    // directly above the current code line — a justification comment
    // may wrap over several lines.
    let mut block_invariant = false;
    let mut block_relaxed = false;

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let code = strip_line(raw, &mut in_block_comment);
        let comment_only = raw.trim_start().starts_with("//");
        if comment_only {
            block_invariant |= raw.contains("// invariant:");
            block_relaxed |= raw.contains("// relaxed:");
        }
        if code.contains("cfg(test)") || code.contains("cfg(all(test") {
            armed_test = true;
        }
        let in_test = test_until.is_some();

        if !in_test {
            let mut push = |rule: &'static str, message: String| {
                findings.push(Finding {
                    rule,
                    path: rel_path.to_string(),
                    line: line_no,
                    message,
                });
            };
            if is_sim {
                for ident in ["Instant", "SystemTime"] {
                    if has_ident(&code, ident) {
                        push(
                            "sim-wall-clock",
                            format!("wall-clock type `{ident}` in the simulator"),
                        );
                    }
                }
            }
            if code.contains("thread::sleep") {
                push("rt-sleep", "thread::sleep outside the rt timer".to_string());
            }
            if is_hot {
                if code.contains(".unwrap(") {
                    push("hot-unwrap", ".unwrap() on a hot path".to_string());
                }
                if code.contains(".expect(")
                    && !raw.contains("// invariant:")
                    && !prev_raw.contains("// invariant:")
                    && !block_invariant
                {
                    push(
                        "hot-unwrap",
                        ".expect( on a hot path without a // invariant: comment".to_string(),
                    );
                }
            }
            if is_rt && has_ident(&code, "Mutex") {
                push(
                    "rt-raw-mutex",
                    "raw Mutex in crates/rt — use lockorder::OrderedMutex".to_string(),
                );
            }
            if code.contains("::Relaxed")
                && !raw.contains("// relaxed:")
                && !prev_raw.contains("// relaxed:")
                && !block_relaxed
            {
                push(
                    "relaxed-justify",
                    "Ordering::Relaxed without a // relaxed: justification".to_string(),
                );
            }
        }

        for ch in code.chars() {
            match ch {
                '{' => {
                    if armed_test && test_until.is_none() {
                        test_until = Some(depth);
                        armed_test = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_until.is_some_and(|level| depth <= level) {
                        test_until = None;
                    }
                }
                _ => {}
            }
        }
        if !comment_only {
            // The comment block above justified (at most) this code
            // line; a fresh block must precede the next site.
            block_invariant = false;
            block_relaxed = false;
        }
        prev_raw = raw.to_string();
    }
    findings
}

/// Removes string literals, char literals, and comments from one line,
/// carrying block-comment state across lines. The result keeps only
/// code tokens, so rules never fire on prose.
fn strip_line(raw: &str, in_block_comment: &mut bool) -> String {
    let chars: Vec<char> = raw.chars().collect();
    let mut out = String::with_capacity(raw.len());
    let mut i = 0;
    while i < chars.len() {
        if *in_block_comment {
            if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        match chars[i] {
            '/' if chars.get(i + 1) == Some(&'/') => break, // line comment
            '/' if chars.get(i + 1) == Some(&'*') => {
                *in_block_comment = true;
                i += 2;
            }
            '"' => {
                // String literal: skip to the unescaped closing quote
                // (raw strings with embedded quotes are out of scope —
                // none exist in this workspace's source).
                i += 1;
                while i < chars.len() {
                    if chars[i] == '\\' {
                        i += 2;
                        continue;
                    }
                    if chars[i] == '"' {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
                out.push_str("\"\"");
            }
            '\'' => {
                // Char literal ('x' or '\x') vs lifetime ('a in types):
                // treat as a literal only when a closing quote sits one
                // or two characters ahead.
                if chars.get(i + 1) == Some(&'\\') && chars.get(i + 3) == Some(&'\'') {
                    out.push_str("' '");
                    i += 4;
                } else if chars.get(i + 2) == Some(&'\'') {
                    out.push_str("' '");
                    i += 3;
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Exact-identifier search: `Mutex` matches `Mutex::new` but not
/// `OrderedMutex` or `MutexGuard`.
fn has_ident(code: &str, ident: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(ident) {
        let at = start + pos;
        let before_ok = at == 0 || !code[..at].chars().next_back().is_some_and(is_ident_char);
        let after = at + ident.len();
        let after_ok = !code[after..].chars().next().is_some_and(is_ident_char);
        if before_ok && after_ok {
            return true;
        }
        start = after;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn sim_wall_clock_fires_on_instant() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let f = scan_source("crates/sim/src/engine.rs", src);
        assert!(rules_fired(&f).contains(&"sim-wall-clock"), "{f:?}");
        // Same source outside sim: rule silent.
        let f = scan_source("crates/bench/src/scale.rs", src);
        assert!(!rules_fired(&f).contains(&"sim-wall-clock"));
    }

    #[test]
    fn rt_sleep_fires_anywhere() {
        let src = "fn f() { std::thread::sleep(d); }\n";
        let f = scan_source("crates/experiment/src/substrate.rs", src);
        assert!(rules_fired(&f).contains(&"rt-sleep"), "{f:?}");
    }

    #[test]
    fn hot_unwrap_fires_only_on_hot_paths() {
        let src = "fn f() { x.unwrap(); }\n";
        let f = scan_source("crates/rt/src/executor.rs", src);
        assert!(rules_fired(&f).contains(&"hot-unwrap"), "{f:?}");
        let f = scan_source("crates/rt/src/timer.rs", src);
        assert!(!rules_fired(&f).contains(&"hot-unwrap"));
    }

    #[test]
    fn hot_expect_requires_invariant_comment() {
        let bad = "fn f() { x.expect(\"boom\"); }\n";
        let f = scan_source("crates/sim/src/engine.rs", bad);
        assert!(rules_fired(&f).contains(&"hot-unwrap"), "{f:?}");
        let good = "// invariant: x was just inserted above\nfn f() { x.expect(\"boom\"); }\n";
        let f = scan_source("crates/sim/src/engine.rs", good);
        assert!(f.is_empty(), "{f:?}");
        let good_inline = "fn f() { x.expect(\"boom\"); } // invariant: checked\n";
        let f = scan_source("crates/sim/src/engine.rs", good_inline);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn rt_raw_mutex_fires_but_ordered_mutex_passes() {
        let bad = "use parking_lot::Mutex;\n";
        let f = scan_source("crates/rt/src/executor.rs", bad);
        assert!(rules_fired(&f).contains(&"rt-raw-mutex"), "{f:?}");
        let good = "use sfs_analyze::lockorder::OrderedMutex;\nfn f(m: &OrderedMutex<u32>) {}\n";
        let f = scan_source("crates/rt/src/executor.rs", good);
        assert!(f.is_empty(), "{f:?}");
        // MutexGuard is a type name, not a lock construction.
        let guard = "fn f(g: MutexGuard<u32>) {}\n";
        let f = scan_source("crates/rt/src/executor.rs", guard);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn relaxed_needs_justification() {
        let bad = "fn f() { x.load(Ordering::Relaxed); }\n";
        let f = scan_source("crates/core/src/shard.rs", bad);
        assert!(rules_fired(&f).contains(&"relaxed-justify"), "{f:?}");
        let good = "// relaxed: monotonic counter, read for stats only\nfn f() { x.load(Ordering::Relaxed); }\n";
        let f = scan_source("crates/core/src/shard.rs", good);
        assert!(f.is_empty(), "{f:?}");
        let inline = "fn f() { x.load(Ordering::Relaxed); } // relaxed: stats only\n";
        let f = scan_source("crates/core/src/shard.rs", inline);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn multi_line_justification_comments_are_honoured() {
        // The marker line may sit several comment lines above the
        // site when the justification wraps.
        let wrapped = "// relaxed: monotonic progress beacon; the watchdog only\n// compares successive reads of the same counter.\nfn f() { x.fetch_add(1, Ordering::Relaxed); }\n";
        let f = scan_source("crates/core/src/shard.rs", wrapped);
        assert!(f.is_empty(), "{f:?}");
        let expect = "// invariant: ids come from this shard's own slots, and\n// task-map transfer happens under both locks.\nfn f() { m.get(&id).expect(\"unknown\"); }\n";
        let f = scan_source("crates/rt/src/executor.rs", expect);
        assert!(f.is_empty(), "{f:?}");
        // A code line consumes the block: the same comment does not
        // cover later sites.
        let stale = "// relaxed: only covers the next line\nlet a = x.load(Ordering::Relaxed);\nlet b = y.load(Ordering::Relaxed);\n";
        let f = scan_source("crates/core/src/shard.rs", stale);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn cfg_test_regions_are_skipped() {
        let src = "fn hot() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); let i = Instant::now(); }\n}\nfn after() { y.unwrap(); }\n";
        let f = scan_source("crates/sim/src/engine.rs", src);
        // Only the unwrap *after* the test mod fires.
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "fn f() { log(\"call .unwrap() on Mutex\"); }\n// thread::sleep is banned here\n/* Instant::now() in prose */\n";
        let f = scan_source("crates/rt/src/executor.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allowlist_suppresses_exact_rule_and_path() {
        let allow =
            Allowlist::parse("rt-sleep crates/rt/src/timer.rs # timer needs a real sleep\n")
                .expect("well-formed allowlist");
        let hit = Finding {
            rule: "rt-sleep",
            path: "crates/rt/src/timer.rs".to_string(),
            line: 1,
            message: String::new(),
        };
        assert!(allow.allows(&hit));
        let other_file = Finding {
            path: "crates/rt/src/executor.rs".to_string(),
            ..hit.clone()
        };
        assert!(!allow.allows(&other_file));
        let other_rule = Finding {
            rule: "hot-unwrap",
            ..hit.clone()
        };
        assert!(!allow.allows(&other_rule));
    }

    #[test]
    fn allowlist_rejects_malformed_entries() {
        assert!(Allowlist::parse("rt-sleep crates/rt/src/timer.rs\n").is_err()); // no reason
        assert!(Allowlist::parse("rt-sleep crates/rt/src/timer.rs #   \n").is_err()); // empty reason
        assert!(Allowlist::parse("no-such-rule a.rs # why\n").is_err()); // unknown rule
        assert!(Allowlist::parse("# comment\n\n").is_ok());
    }

    #[test]
    fn seeded_mutation_is_caught_per_rule() {
        // One synthetic file per rule, each carrying the exact
        // mutation the rule exists to stop — the non-vacuousness
        // proof for the lint layer.
        let mutations: &[(&str, &str, &str)] = &[
            (
                "sim-wall-clock",
                "crates/sim/src/clock.rs",
                "let t0 = std::time::SystemTime::now();\n",
            ),
            (
                "rt-sleep",
                "crates/core/src/shard.rs",
                "thread::sleep(Duration::from_millis(1));\n",
            ),
            (
                "hot-unwrap",
                "crates/rt/src/executor.rs",
                "let g = self.global.lock().unwrap();\n",
            ),
            (
                "rt-raw-mutex",
                "crates/rt/src/executor.rs",
                "let m: Mutex<u32> = Mutex::new(0);\n",
            ),
            (
                "relaxed-justify",
                "crates/rt/src/executor.rs",
                "self.epoch.store(e, Ordering::Relaxed);\n",
            ),
        ];
        for (rule, path, src) in mutations {
            let f = scan_source(path, src);
            assert!(
                f.iter().any(|x| x.rule == *rule),
                "rule {rule} did not fire on its mutation: {f:?}"
            );
        }
    }
}
