//! A bounded interleaving checker: loom-style schedule enumeration
//! over small deterministic protocol models (vendored-deps policy —
//! no external loom).
//!
//! A [`Model`] is a handful of logical threads over shared state,
//! each advanced one *atomic step* at a time. The [`Explorer`]
//! enumerates schedules — which thread steps next at every point —
//! either exhaustively (depth-first with backtracking, up to a
//! schedule budget) or by seeded random sampling, re-running the model
//! from its initial state for every schedule and checking invariants
//! after **every step of every interleaving**:
//!
//! * [`Model::check`] — a safety invariant, evaluated after each step;
//! * [`Model::final_check`] — a post-condition on completed schedules;
//! * **stuck states** — a schedule in which some thread is unfinished
//!   but no thread is enabled is reported as a deadlock / lost-wakeup
//!   violation automatically.
//!
//! Models are small (tens of steps), so replaying from scratch per
//! schedule keeps the explorer trivially correct; 10⁴–10⁵ schedules
//! run in well under a second.

/// A deterministic multi-threaded protocol model.
///
/// Threads are indices `0..threads()`. The explorer calls
/// [`Model::reset`] before each schedule, then repeatedly picks an
/// enabled, unfinished thread and calls [`Model::step`]. A step must
/// be deterministic: the same prefix of choices always reproduces the
/// same state.
pub trait Model {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Number of logical threads.
    fn threads(&self) -> usize;

    /// Restores the initial state.
    fn reset(&mut self);

    /// True when thread `t` has no more steps to take.
    fn done(&self, t: usize) -> bool;

    /// True when thread `t` can take a step now (e.g. the model lock
    /// it needs is free). A thread that is not done and not enabled is
    /// blocked; if every unfinished thread blocks, the schedule is a
    /// deadlock and is reported as a violation.
    fn enabled(&self, t: usize) -> bool;

    /// Advances thread `t` by one atomic step. Called only when
    /// `!done(t) && enabled(t)`.
    fn step(&mut self, t: usize);

    /// Safety invariant, checked after every step.
    ///
    /// # Errors
    ///
    /// Describes the violated invariant.
    fn check(&self) -> Result<(), String>;

    /// Post-condition on a completed (all-threads-done) schedule.
    ///
    /// # Errors
    ///
    /// Describes the violated post-condition.
    fn final_check(&self) -> Result<(), String>;
}

/// One invariant violation, with the schedule that produced it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong.
    pub message: String,
    /// The thread choices (thread index per step) reproducing it.
    pub schedule: Vec<usize>,
}

/// The outcome of an exploration.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Schedules fully executed (including violating ones).
    pub schedules: usize,
    /// True when the DFS exhausted every schedule within the budget.
    pub complete: bool,
    /// Violations found (deduplicated by message).
    pub violations: Vec<Violation>,
}

impl Report {
    /// True when no schedule violated any invariant.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    fn record(&mut self, message: String, schedule: Vec<usize>) {
        if self.violations.len() < 16 && !self.violations.iter().any(|v| v.message == message) {
            self.violations.push(Violation { message, schedule });
        }
    }
}

/// Bounded schedule enumerator over a [`Model`].
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Stop after this many schedules (exhaustive mode may finish
    /// earlier; see [`Report::complete`]).
    pub max_schedules: usize,
    /// Abort a single schedule after this many steps (guards against
    /// non-terminating models).
    pub max_steps: usize,
}

impl Default for Explorer {
    fn default() -> Explorer {
        Explorer {
            max_schedules: 100_000,
            max_steps: 4_096,
        }
    }
}

/// One decision point of the DFS: the enabled set observed there and
/// which alternative the current schedule took.
struct Choice {
    taken: usize,
    enabled: Vec<usize>,
}

impl Explorer {
    /// Exhaustive depth-first enumeration with backtracking, stopping
    /// at the schedule budget.
    pub fn explore<M: Model + ?Sized>(&self, model: &mut M) -> Report {
        let mut report = Report::default();
        let mut prefix: Vec<Choice> = Vec::new();
        loop {
            // Run one schedule: replay the committed prefix, then
            // extend it first-choice-greedily to completion.
            model.reset();
            let mut failed = false;
            for (at, c) in prefix.iter().enumerate() {
                model.step(c.enabled[c.taken]);
                if let Err(msg) = model.check() {
                    report.record(msg, schedule_of(&prefix[..=at]));
                    failed = true;
                    break;
                }
            }
            if !failed {
                loop {
                    let enabled: Vec<usize> = (0..model.threads())
                        .filter(|&t| !model.done(t) && model.enabled(t))
                        .collect();
                    if enabled.is_empty() {
                        if (0..model.threads()).all(|t| model.done(t)) {
                            if let Err(msg) = model.final_check() {
                                report.record(msg, schedule_of(&prefix));
                            }
                        } else {
                            report.record(
                                format!(
                                    "deadlock / lost wakeup: threads {:?} blocked forever",
                                    (0..model.threads())
                                        .filter(|&t| !model.done(t))
                                        .collect::<Vec<_>>()
                                ),
                                schedule_of(&prefix),
                            );
                        }
                        break;
                    }
                    if prefix.len() >= self.max_steps {
                        report.record(
                            format!("schedule exceeded {} steps", self.max_steps),
                            schedule_of(&prefix),
                        );
                        break;
                    }
                    let t = enabled[0];
                    prefix.push(Choice { taken: 0, enabled });
                    model.step(t);
                    if let Err(msg) = model.check() {
                        report.record(msg, schedule_of(&prefix));
                        break;
                    }
                }
            }
            report.schedules += 1;
            if report.schedules >= self.max_schedules {
                return report;
            }
            // Backtrack to the deepest decision point with an untried
            // alternative.
            while let Some(top) = prefix.last_mut() {
                if top.taken + 1 < top.enabled.len() {
                    top.taken += 1;
                    break;
                }
                prefix.pop();
            }
            if prefix.is_empty() {
                report.complete = true;
                return report;
            }
        }
    }

    /// Seeded random sampling: `n` schedules drawn with an xorshift64*
    /// generator — the long tail beyond the exhaustive budget, and a
    /// cheap way to diversify very deep models.
    pub fn sample<M: Model + ?Sized>(&self, model: &mut M, seed: u64, n: usize) -> Report {
        let mut report = Report::default();
        let mut rng = seed.max(1);
        let mut next = move || {
            // xorshift64* — deterministic per seed, plenty for schedule choice.
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            rng.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for _ in 0..n {
            model.reset();
            let mut schedule: Vec<usize> = Vec::new();
            loop {
                let enabled: Vec<usize> = (0..model.threads())
                    .filter(|&t| !model.done(t) && model.enabled(t))
                    .collect();
                if enabled.is_empty() {
                    if (0..model.threads()).all(|t| model.done(t)) {
                        if let Err(msg) = model.final_check() {
                            report.record(msg, schedule.clone());
                        }
                    } else {
                        report.record(
                            "deadlock / lost wakeup (sampled)".to_string(),
                            schedule.clone(),
                        );
                    }
                    break;
                }
                if schedule.len() >= self.max_steps {
                    report.record(
                        format!("schedule exceeded {} steps", self.max_steps),
                        schedule.clone(),
                    );
                    break;
                }
                let t = enabled[(next() % enabled.len() as u64) as usize];
                schedule.push(t);
                model.step(t);
                if let Err(msg) = model.check() {
                    report.record(msg, schedule.clone());
                    break;
                }
            }
            report.schedules += 1;
        }
        report
    }
}

fn schedule_of(prefix: &[Choice]) -> Vec<usize> {
    prefix.iter().map(|c| c.enabled[c.taken]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each increment a shared counter twice; invariant:
    /// counter never exceeds 4, final value exactly 4.
    struct Counter {
        value: u32,
        pc: [u32; 2],
    }

    impl Model for Counter {
        fn name(&self) -> &'static str {
            "counter"
        }

        fn threads(&self) -> usize {
            2
        }

        fn reset(&mut self) {
            self.value = 0;
            self.pc = [0, 0];
        }

        fn done(&self, t: usize) -> bool {
            self.pc[t] >= 2
        }

        fn enabled(&self, _t: usize) -> bool {
            true
        }

        fn step(&mut self, t: usize) {
            self.pc[t] += 1;
            self.value += 1;
        }

        fn check(&self) -> Result<(), String> {
            if self.value > 4 {
                return Err(format!("counter overshot: {}", self.value));
            }
            Ok(())
        }

        fn final_check(&self) -> Result<(), String> {
            if self.value == 4 {
                Ok(())
            } else {
                Err(format!("lost increments: {}", self.value))
            }
        }
    }

    #[test]
    fn exhaustive_dfs_counts_all_interleavings() {
        // 4 steps, 2 threads, 2 steps each: C(4,2) = 6 interleavings.
        let mut m = Counter {
            value: 0,
            pc: [0, 0],
        };
        let rep = Explorer::default().explore(&mut m);
        assert!(rep.complete);
        assert_eq!(rep.schedules, 6);
        assert!(rep.clean(), "{:?}", rep.violations);
    }

    #[test]
    fn budget_caps_exploration() {
        let mut m = Counter {
            value: 0,
            pc: [0, 0],
        };
        let rep = Explorer {
            max_schedules: 3,
            ..Explorer::default()
        }
        .explore(&mut m);
        assert_eq!(rep.schedules, 3);
        assert!(!rep.complete);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut m = Counter {
            value: 0,
            pc: [0, 0],
        };
        let a = Explorer::default().sample(&mut m, 42, 100);
        assert_eq!(a.schedules, 100);
        assert!(a.clean());
    }

    /// A deliberately stuck model: thread 1 waits on a flag nobody
    /// sets. The explorer must report the deadlock, not hang.
    struct Stuck {
        pc: [u32; 2],
    }

    impl Model for Stuck {
        fn name(&self) -> &'static str {
            "stuck"
        }

        fn threads(&self) -> usize {
            2
        }

        fn reset(&mut self) {
            self.pc = [0, 0];
        }

        fn done(&self, t: usize) -> bool {
            self.pc[t] >= 1
        }

        fn enabled(&self, t: usize) -> bool {
            t == 0 // thread 1 is blocked forever
        }

        fn step(&mut self, t: usize) {
            self.pc[t] += 1;
        }

        fn check(&self) -> Result<(), String> {
            Ok(())
        }

        fn final_check(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn deadlocks_are_violations() {
        let mut m = Stuck { pc: [0, 0] };
        let rep = Explorer::default().explore(&mut m);
        assert!(!rep.clean());
        assert!(rep.violations[0].message.contains("deadlock"));
    }
}
