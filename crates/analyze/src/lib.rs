//! # sfs-analyze — concurrency-correctness tooling
//!
//! The rt executor is genuinely concurrent: per-shard run-queue locks,
//! a two-lock migration path, a global placement section, an
//! epoch-published snapshot cell and a dozen hand-ordered atomics.
//! This crate holds the machinery that *proves* that structure is
//! deadlock- and race-free and keeps it that way:
//!
//! * [`lockorder`] — [`lockorder::OrderedMutex`], a mutex wrapper with
//!   a static [`lockorder::LockRank`]. Under the `lock-audit` feature
//!   every acquisition is checked against the per-thread held set
//!   (rank violations panic at the exact wrong acquisition) and
//!   recorded into a global acquisition-edge graph that tests assert
//!   acyclic (and export as DOT). With the feature off the wrapper is
//!   a zero-cost passthrough to `parking_lot::Mutex`.
//! * [`interleave`] — a hand-rolled, loom-style bounded interleaving
//!   explorer (vendored-deps policy: no external loom). Small
//!   deterministic models of the risky protocols are run under
//!   exhaustive or seeded-random schedule enumeration, with invariants
//!   checked after every step of every interleaving.
//! * [`models`] — the three protocol models drawn from the real code:
//!   epoch publish/read on the snapshot cell, steal-vs-exit weight
//!   conservation across two shards, and the watchdog-vs-timer
//!   heartbeat. Each has a deliberately broken variant so the checker
//!   itself is demonstrably non-vacuous.
//! * [`lint`] — a token-level scanner over `crates/*/src` enforcing
//!   repo-specific rules (no wall-clock in the simulator, no raw
//!   mutexes in the rt crate, invariant-documented `expect`s on hot
//!   paths, justified `Ordering::Relaxed`), driven by the `lint.allow`
//!   file at the workspace root.
//!
//! The `repro verify` and `repro lint` artefacts drive the checker and
//! the lint engine in CI; the lock-audit pass runs the full rt test
//! suite with `--features lock-audit`.

pub mod interleave;
pub mod lint;
pub mod lockorder;
pub mod models;
