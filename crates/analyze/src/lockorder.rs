//! Lock-order verification: ranked mutexes and the acquisition-graph
//! audit.
//!
//! Every lock in the concurrent (rt) half of the workspace carries a
//! static [`LockRank`]. The rule is the classic partial-order
//! discipline: **a thread may acquire a lock only while every lock it
//! already holds has a strictly smaller rank key**. The workspace
//! hierarchy (see [`rank`]) is:
//!
//! | rank key | lock | held for |
//! |---|---|---|
//! | (1, 0) | `global` | placement, §2.1 readjustment, rebalance, task lifetime |
//! | (2, i) | `shard i` | one shard's run queue: pick, requeue, dispatch |
//! | (3, 0) | `snapshot` | the epoch-published §2.1 clamp set (`SnapshotCell`) |
//! | (4, 0) | `granted` | one task's virtual-CPU grant flag |
//!
//! so the executor's documented order — global → shards in ascending
//! index → leaf flags — is machine-checked, not just a comment.
//!
//! With the `lock-audit` feature **off** (the default), [`OrderedMutex`]
//! compiles down to the raw `parking_lot::Mutex`: `lock()` is an
//! `#[inline]` passthrough, the guard is a newtype with no `Drop`
//! impl, and none of the audit statics exist.
//!
//! With `lock-audit` **on**, each acquisition checks the per-thread
//! held set (violations panic at the exact wrong acquisition, naming
//! both locks) and records `held → acquired` edges into a global
//! acquisition graph. A test pass over the full rt suite then asserts
//! the observed graph is acyclic ([`check_acyclic`]) and exports it as
//! DOT ([`to_dot`]) — the graph in the README.

use std::fmt;

use parking_lot::{Condvar, Mutex, MutexGuard};

/// A static position in the workspace lock hierarchy.
///
/// Ordering is by `(level, index)`: `level` separates lock *classes*
/// (global section before shard locks before leaf flags), `index`
/// orders instances within a class (shard locks by shard index). Two
/// locks with equal keys may never be held together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockRank {
    /// Hierarchy level; outer locks have smaller levels.
    pub level: u32,
    /// Instance order within the level (e.g. the shard index).
    pub index: u32,
    /// Human-readable class name for panics and the DOT export.
    pub domain: &'static str,
}

impl LockRank {
    /// Creates a rank. `domain` names the lock class in diagnostics.
    pub const fn new(domain: &'static str, level: u32, index: u32) -> LockRank {
        LockRank {
            level,
            index,
            domain,
        }
    }

    /// The acquisition-order key: acquisitions must be strictly
    /// increasing in this key while locks are held.
    pub const fn key(self) -> (u32, u32) {
        (self.level, self.index)
    }
}

impl fmt::Display for LockRank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.index == 0 {
            f.write_str(self.domain)
        } else {
            write!(f, "{}.{}", self.domain, self.index)
        }
    }
}

/// The workspace's lock-rank table (the hierarchy the rt executor and
/// `sfs-core`'s `SnapshotCell` are built on).
pub mod rank {
    use super::LockRank;

    /// The rt executor's global section: placement, readjustment,
    /// rebalance, task lifetime. Outermost — taken before any shard.
    pub const GLOBAL: LockRank = LockRank::new("global", 1, 0);

    /// Shard `i`'s run-queue lock. Multiple shard locks are taken in
    /// ascending index order (the two-lock migration path).
    pub const fn shard(i: usize) -> LockRank {
        LockRank::new("shard", 2, i as u32)
    }

    /// The epoch-published §2.1 clamp snapshot slot (`SnapshotCell`):
    /// read on shard pick paths, written under the global section.
    pub const SNAPSHOT: LockRank = LockRank::new("snapshot", 3, 0);

    /// A task's virtual-CPU grant flag: the leaf of the hierarchy,
    /// signalled under shard locks, waited on with nothing held.
    pub const GRANTED: LockRank = LockRank::new("granted", 4, 0);
}

/// True when this build carries the runtime lock-order audit.
pub const fn audit_enabled() -> bool {
    cfg!(feature = "lock-audit")
}

#[cfg(feature = "lock-audit")]
mod audit {
    use super::LockRank;
    use std::cell::RefCell;
    use std::collections::BTreeSet;

    thread_local! {
        static HELD: RefCell<Vec<LockRank>> = const { RefCell::new(Vec::new()) };
    }

    // The audit's own bookkeeping lock is deliberately a raw std mutex:
    // it guards nothing the scheduler can see and must not itself
    // participate in the rank discipline it implements.
    static EDGES: std::sync::Mutex<BTreeSet<(LockRank, LockRank)>> =
        std::sync::Mutex::new(BTreeSet::new());

    pub(super) fn acquire(rank: LockRank) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(worst) = held.iter().find(|l| l.key() >= rank.key()) {
                panic!(
                    "lock-order violation: acquiring `{rank}` {:?} while holding `{worst}` {:?} \
                     (held: [{}]) — acquisition keys must be strictly increasing",
                    rank.key(),
                    worst.key(),
                    held.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(", "),
                );
            }
            if !held.is_empty() {
                let mut edges = EDGES
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                for &from in held.iter() {
                    edges.insert((from, rank));
                }
            }
            held.push(rank);
        });
    }

    pub(super) fn release(rank: LockRank) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            let pos = held
                .iter()
                .rposition(|&l| l == rank)
                .expect("releasing a lock this thread does not hold");
            held.remove(pos);
        });
    }

    pub(super) fn edges() -> Vec<(LockRank, LockRank)> {
        EDGES
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .copied()
            .collect()
    }

    pub(super) fn reset() {
        EDGES
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

/// Every `held → acquired` edge observed by the audit so far, sorted.
///
/// Only available under the `lock-audit` feature.
#[cfg(feature = "lock-audit")]
pub fn acquisition_edges() -> Vec<(LockRank, LockRank)> {
    audit::edges()
}

/// Clears the recorded acquisition graph (test isolation).
///
/// Only available under the `lock-audit` feature.
#[cfg(feature = "lock-audit")]
pub fn reset_audit() {
    audit::reset();
}

/// Checks an acquisition graph for cycles. Returns `Err` with one
/// witness cycle (as a list of lock names) when the graph is cyclic.
///
/// Pure function of its input, so the checker itself is testable
/// against deliberately cyclic (mutated) graphs even in builds without
/// the runtime audit.
pub fn check_acyclic(edges: &[(LockRank, LockRank)]) -> Result<(), Vec<String>> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut adj: BTreeMap<LockRank, Vec<LockRank>> = BTreeMap::new();
    let mut nodes: BTreeSet<LockRank> = BTreeSet::new();
    for &(a, b) in edges {
        adj.entry(a).or_default().push(b);
        nodes.insert(a);
        nodes.insert(b);
    }
    // Iterative DFS with colouring; a back edge to an in-progress node
    // is a cycle, reconstructed off the explicit stack.
    let mut state: BTreeMap<LockRank, u8> = BTreeMap::new(); // 1 = open, 2 = done
    for &start in &nodes {
        if state.contains_key(&start) {
            continue;
        }
        let mut stack: Vec<(LockRank, usize)> = vec![(start, 0)];
        state.insert(start, 1);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succs = adj.get(&node).map_or(&[][..], Vec::as_slice);
            if *next >= succs.len() {
                state.insert(node, 2);
                stack.pop();
                continue;
            }
            let succ = succs[*next];
            *next += 1;
            match state.get(&succ) {
                Some(1) => {
                    let mut cycle: Vec<String> = stack
                        .iter()
                        .skip_while(|&&(n, _)| n != succ)
                        .map(|&(n, _)| n.to_string())
                        .collect();
                    cycle.push(succ.to_string());
                    return Err(cycle);
                }
                Some(_) => {}
                None => {
                    state.insert(succ, 1);
                    stack.push((succ, 0));
                }
            }
        }
    }
    Ok(())
}

/// Renders an acquisition graph as GraphViz DOT (the README figure).
pub fn to_dot(edges: &[(LockRank, LockRank)]) -> String {
    let mut out = String::from("digraph lock_order {\n  rankdir=LR;\n  node [shape=box];\n");
    for (a, b) in edges {
        out.push_str(&format!("  \"{a}\" -> \"{b}\";\n"));
    }
    out.push_str("}\n");
    out
}

/// A `parking_lot::Mutex` carrying a static [`LockRank`].
///
/// With the `lock-audit` feature off this is a zero-cost passthrough;
/// with it on, every [`OrderedMutex::lock`] checks the calling
/// thread's held set against the rank discipline and records an
/// acquisition edge.
pub struct OrderedMutex<T> {
    rank: LockRank,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Creates a ranked mutex.
    pub fn new(rank: LockRank, value: T) -> OrderedMutex<T> {
        OrderedMutex {
            rank,
            inner: Mutex::new(value),
        }
    }

    /// This lock's rank.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Acquires the lock, blocking until available.
    ///
    /// # Panics
    ///
    /// Under `lock-audit`, panics if the calling thread already holds
    /// a lock whose rank key is not strictly smaller.
    #[inline]
    pub fn lock(&self) -> OrderedGuard<'_, T> {
        #[cfg(feature = "lock-audit")]
        audit::acquire(self.rank);
        OrderedGuard {
            inner: self.inner.lock(),
            #[cfg(feature = "lock-audit")]
            rank: self.rank,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("rank", &self.rank)
            .field("inner", &self.inner)
            .finish()
    }
}

/// RAII guard returned by [`OrderedMutex::lock`].
pub struct OrderedGuard<'a, T> {
    inner: MutexGuard<'a, T>,
    #[cfg(feature = "lock-audit")]
    rank: LockRank,
}

impl<T> OrderedGuard<'_, T> {
    /// Atomically releases the lock and waits on `cv`, reacquiring
    /// before returning. The lock counts as held for rank purposes
    /// across the wait (it is reacquired before control returns).
    pub fn wait(&mut self, cv: &Condvar) {
        cv.wait(&mut self.inner);
    }
}

impl<T> std::ops::Deref for OrderedGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for OrderedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "lock-audit")]
impl<T> Drop for OrderedGuard<'_, T> {
    fn drop(&mut self) {
        audit::release(self.rank);
    }
}

/// Acquires two distinct-rank locks in rank order, returning the
/// guards in **argument** order — the deadlock-free two-lock
/// acquisition behind cross-shard migration (`lock_two` in the rt
/// executor).
///
/// # Panics
///
/// Panics if the two locks share a rank key (they could deadlock
/// against a concurrent caller with the arguments swapped).
pub fn lock_pair<'a, T>(
    a: &'a OrderedMutex<T>,
    b: &'a OrderedMutex<T>,
) -> (OrderedGuard<'a, T>, OrderedGuard<'a, T>) {
    assert_ne!(
        a.rank.key(),
        b.rank.key(),
        "lock_pair on equal ranks ({}) would deadlock against a swapped-argument caller",
        a.rank
    );
    if a.rank.key() < b.rank.key() {
        let ga = a.lock();
        let gb = b.lock();
        (ga, gb)
    } else {
        let gb = b.lock();
        let ga = a.lock();
        (ga, gb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_order_by_level_then_index() {
        assert!(rank::GLOBAL.key() < rank::shard(0).key());
        assert!(rank::shard(0).key() < rank::shard(1).key());
        assert!(rank::shard(7).key() < rank::SNAPSHOT.key());
        assert!(rank::SNAPSHOT.key() < rank::GRANTED.key());
        assert_eq!(rank::shard(3).to_string(), "shard.3");
        assert_eq!(rank::GLOBAL.to_string(), "global");
    }

    #[test]
    fn acyclic_checker_accepts_the_hierarchy_and_rejects_a_cycle() {
        let good = vec![
            (rank::GLOBAL, rank::shard(0)),
            (rank::GLOBAL, rank::shard(1)),
            (rank::shard(0), rank::shard(1)),
            (rank::shard(1), rank::SNAPSHOT),
            (rank::shard(0), rank::GRANTED),
        ];
        assert!(check_acyclic(&good).is_ok());
        // The seeded mutation: one inverted edge (a shard lock taken
        // while holding the snapshot slot) closes a cycle, and the
        // checker must name it.
        let mut bad = good;
        bad.push((rank::SNAPSHOT, rank::shard(0)));
        let cycle = check_acyclic(&bad).expect_err("cycle must be found");
        assert!(
            cycle.iter().any(|n| n == "snapshot"),
            "witness names the snapshot lock: {cycle:?}"
        );
        assert!(cycle.len() >= 3, "a real loop, not an edge: {cycle:?}");
    }

    #[test]
    fn dot_export_lists_every_edge() {
        let edges = vec![
            (rank::GLOBAL, rank::shard(0)),
            (rank::shard(0), rank::GRANTED),
        ];
        let dot = to_dot(&edges);
        assert!(dot.contains("digraph lock_order"));
        assert!(dot.contains("\"global\" -> \"shard\""));
        assert!(dot.contains("\"shard\" -> \"granted\""));
    }

    #[test]
    fn lock_pair_returns_guards_in_argument_order() {
        let a = OrderedMutex::new(rank::shard(0), 1u32);
        let b = OrderedMutex::new(rank::shard(1), 2u32);
        // Both argument orders: values must follow the arguments, not
        // the acquisition order.
        let (ga, gb) = lock_pair(&a, &b);
        assert_eq!((*ga, *gb), (1, 2));
        drop((ga, gb));
        let (gb, ga) = lock_pair(&b, &a);
        assert_eq!((*gb, *ga), (2, 1));
    }

    #[test]
    fn lock_pair_rejects_equal_ranks() {
        let a = OrderedMutex::new(rank::shard(0), 0u32);
        let b = OrderedMutex::new(rank::shard(0), 1u32);
        let err = std::panic::catch_unwind(|| {
            let _g = lock_pair(&a, &b);
        });
        assert!(err.is_err(), "equal-rank pair must be refused");
    }

    #[cfg(not(feature = "lock-audit"))]
    #[test]
    fn audit_off_guard_is_zero_sized_overhead() {
        // The feature-off guard is exactly the parking_lot guard: no
        // rank field, no Drop hook, nothing for the optimiser to keep.
        assert!(!audit_enabled());
        assert_eq!(
            std::mem::size_of::<OrderedGuard<'_, u64>>(),
            std::mem::size_of::<parking_lot::MutexGuard<'_, u64>>()
        );
    }
}
