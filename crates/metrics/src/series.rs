//! Time series: ordered `(x, y)` samples with the reductions the
//! experiment harnesses need (cumulative curves, windowed rates,
//! resampling onto a fixed grid).

/// An ordered series of `(x, y)` samples. `x` is typically seconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    name: String,
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> TimeSeries {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series' display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample; `x` must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if `x` is smaller than the previous sample's `x`.
    pub fn push(&mut self, x: f64, y: f64) {
        if let Some(&(last_x, _)) = self.points.last() {
            assert!(x >= last_x, "samples must be pushed in x order");
        }
        self.points.push((x, y));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The samples.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The final sample, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        self.points.last().copied()
    }

    /// Largest y value (0.0 for an empty series).
    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(0.0, f64::max)
    }

    /// Linear interpolation of y at `x`; clamps outside the domain.
    pub fn at(&self, x: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        if x <= self.points[0].0 {
            return self.points[0].1;
        }
        if x >= self.points[self.points.len() - 1].0 {
            return self.points[self.points.len() - 1].1;
        }
        let idx = self
            .points
            .partition_point(|&(px, _)| px <= x)
            .min(self.points.len() - 1);
        let (x0, y0) = self.points[idx - 1];
        let (x1, y1) = self.points[idx];
        if x1 == x0 {
            y0
        } else {
            y0 + (y1 - y0) * (x - x0) / (x1 - x0)
        }
    }

    /// The discrete derivative: rate of change between consecutive
    /// samples, reported at the right edge of each interval.
    pub fn rate(&self) -> TimeSeries {
        let mut out = TimeSeries::new(format!("{}' ", self.name));
        for w in self.points.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if x1 > x0 {
                out.push(x1, (y1 - y0) / (x1 - x0));
            }
        }
        out
    }

    /// Resamples onto a uniform grid of `n` points over `[x0, x1]`.
    pub fn resample(&self, x0: f64, x1: f64, n: usize) -> TimeSeries {
        let mut out = TimeSeries::new(self.name.clone());
        if n == 0 {
            return out;
        }
        for i in 0..n {
            let x = if n == 1 {
                x0
            } else {
                x0 + (x1 - x0) * i as f64 / (n - 1) as f64
            };
            out.push(x, self.at(x));
        }
        out
    }

    /// Scales every y value by `k` (unit conversions).
    pub fn scaled(&self, k: f64) -> TimeSeries {
        let mut out = TimeSeries::new(self.name.clone());
        for &(x, y) in &self.points {
            out.push(x, y * k);
        }
        out
    }

    /// Mean of y over all samples (0.0 for an empty series).
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.1).sum::<f64>() / self.points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(pts: &[(f64, f64)]) -> TimeSeries {
        let mut t = TimeSeries::new("t");
        for &(x, y) in pts {
            t.push(x, y);
        }
        t
    }

    #[test]
    fn push_and_inspect() {
        let t = s(&[(0.0, 0.0), (1.0, 2.0), (2.0, 6.0)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.last(), Some((2.0, 6.0)));
        assert_eq!(t.max_y(), 6.0);
        assert_eq!(t.mean_y(), 8.0 / 3.0);
    }

    #[test]
    #[should_panic(expected = "x order")]
    fn out_of_order_push_panics() {
        let mut t = TimeSeries::new("t");
        t.push(1.0, 0.0);
        t.push(0.5, 0.0);
    }

    #[test]
    fn interpolation() {
        let t = s(&[(0.0, 0.0), (2.0, 4.0)]);
        assert_eq!(t.at(1.0), 2.0);
        assert_eq!(t.at(-1.0), 0.0); // clamped
        assert_eq!(t.at(5.0), 4.0); // clamped
    }

    #[test]
    fn rate_of_cumulative_counter() {
        let t = s(&[(0.0, 0.0), (1.0, 10.0), (2.0, 30.0)]);
        let r = t.rate();
        assert_eq!(r.points(), &[(1.0, 10.0), (2.0, 20.0)]);
    }

    #[test]
    fn resample_uniform_grid() {
        let t = s(&[(0.0, 0.0), (4.0, 8.0)]);
        let r = t.resample(0.0, 4.0, 5);
        assert_eq!(r.len(), 5);
        assert_eq!(r.points()[2], (2.0, 4.0));
    }

    #[test]
    fn scaling() {
        let t = s(&[(0.0, 1.0), (1.0, 2.0)]).scaled(10.0);
        assert_eq!(t.points(), &[(0.0, 10.0), (1.0, 20.0)]);
    }
}
