//! Fairness metrics used to evaluate proportional-share schedules.
//!
//! * [`jain_index`] — Jain's fairness index over normalised shares.
//! * [`proportional_error`] — how far measured services deviate from the
//!   weight-proportional ideal (with feasibility capping, matching GMS).
//! * [`starvation`] — the longest stretch during which a task received no
//!   service, the pathology of Example 1.

/// Jain's fairness index of the per-task `ratios` (service divided by
/// entitlement): `(Σx)² / (n · Σx²)`. 1.0 is perfectly fair; `1/n` is a
/// single task hogging everything.
///
/// # Degenerate inputs
///
/// The raw formula is `0/0` — NaN — when every ratio is `0.0` (a fully
/// starved run, e.g. a zero-length measurement window). By definition we
/// return **1.0** for that case: an all-equal vector is perfectly fair
/// even when the common value is zero, and `ComparisonReport` deltas
/// must stay finite. The empty vector returns 1.0 for the same reason
/// (vacuously fair). The result is always a number in `(0.0, 1.0]` for
/// non-negative inputs.
pub fn jain_index(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return 1.0;
    }
    let sum: f64 = ratios.iter().sum();
    let sum_sq: f64 = ratios.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        // All ratios are exactly zero: all-equal-at-zero is fair, and
        // dividing would produce NaN.
        return 1.0;
    }
    sum * sum / (ratios.len() as f64 * sum_sq)
}

/// The GMS-ideal share of total bandwidth for each weight on `cpus`
/// processors: proportional to weight, but no task exceeds `1/cpus`
/// (excess redistributed — water-filling, equivalent to §2.1
/// readjustment).
pub fn ideal_shares(weights: &[f64], cpus: u32) -> Vec<f64> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let cap = 1.0 / cpus as f64;
    // If there are no more tasks than CPUs everyone gets a full CPU.
    if n <= cpus as usize {
        return vec![1.0 / n as f64; n];
    }
    let mut share = vec![0.0; n];
    let mut capped = vec![false; n];
    loop {
        let free_weight: f64 = weights
            .iter()
            .zip(&capped)
            .filter(|(_, &c)| !c)
            .map(|(w, _)| *w)
            .sum();
        let capped_total: f64 = share
            .iter()
            .zip(&capped)
            .filter(|(_, &c)| c)
            .map(|(s, _)| *s)
            .sum();
        let remaining = 1.0 - capped_total;
        let mut newly_capped = false;
        for i in 0..n {
            if capped[i] {
                continue;
            }
            let s = remaining * weights[i] / free_weight;
            if s > cap + 1e-12 {
                share[i] = cap;
                capped[i] = true;
                newly_capped = true;
            } else {
                share[i] = s;
            }
        }
        if !newly_capped {
            break;
        }
    }
    share
}

/// Maximum absolute deviation between measured shares (service / total
/// service) and the weight-proportional ideal with feasibility capping.
/// 0.0 is a perfect proportional allocation.
pub fn proportional_error(services: &[f64], weights: &[f64], cpus: u32) -> f64 {
    assert_eq!(services.len(), weights.len());
    let total: f64 = services.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let ideal = ideal_shares(weights, cpus);
    services
        .iter()
        .zip(ideal.iter())
        .map(|(s, i)| (s / total - i).abs())
        .fold(0.0, f64::max)
}

/// Finds the longest gap (in x units) in a cumulative-service curve:
/// the longest interval over which the value did not increase.
/// `samples` must be ordered by x.
pub fn starvation(samples: &[(f64, f64)]) -> f64 {
    let mut longest: f64 = 0.0;
    let mut gap_start: Option<f64> = None;
    for w in samples.windows(2) {
        let ((x0, y0), (x1, y1)) = (w[0], w[1]);
        if y1 > y0 {
            // Service was observed by x1: the gap ran from its start to
            // the sample at which progress reappeared.
            if let Some(gs) = gap_start.take() {
                longest = longest.max(x1 - gs);
            }
        } else if gap_start.is_none() {
            gap_start = Some(x0);
        }
    }
    if let (Some(gs), Some(&(xl, _))) = (gap_start, samples.last()) {
        longest = longest.max(xl - gs);
    }
    longest
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_perfect_and_worst() {
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let worst = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((worst - 0.25).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
    }

    #[test]
    fn jain_all_zero_ratios_is_one_not_nan() {
        // A fully starved run produces all-zero ratios; the raw formula
        // is 0/0. The defined result is 1.0 (all-equal-at-zero), and it
        // must be finite so report deltas cannot go NaN.
        let j = jain_index(&[0.0, 0.0, 0.0]);
        assert!(j.is_finite(), "all-zero ratios produced {j}");
        assert_eq!(j, 1.0);
        assert_eq!(jain_index(&[0.0]), 1.0);
        // Negative zero behaves like zero.
        assert_eq!(jain_index(&[-0.0, 0.0]), 1.0);
    }

    #[test]
    fn ideal_shares_feasible_case() {
        // 2:1:1 on 2 CPUs: shares 1/2, 1/4, 1/4 (already feasible).
        let s = ideal_shares(&[2.0, 1.0, 1.0], 2);
        assert!((s[0] - 0.5).abs() < 1e-9);
        assert!((s[1] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn ideal_shares_cap_infeasible() {
        // 10:1 on 2 CPUs: the heavy task caps at 1/2; the rest goes to
        // the light one.
        let s = ideal_shares(&[10.0, 1.0], 2);
        assert!((s[0] - 0.5).abs() < 1e-9);
        assert!((s[1] - 0.5).abs() < 1e-9);
        // 10:1:1 on 2 CPUs: 1/2, 1/4, 1/4.
        let s = ideal_shares(&[10.0, 1.0, 1.0], 2);
        assert!((s[0] - 0.5).abs() < 1e-9, "{s:?}");
        assert!((s[1] - 0.25).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn ideal_shares_cascading_caps() {
        // 100:10:1:1 on 4 CPUs: both heavy tasks cap at 1/4, and the two
        // light tasks split the remaining half equally (weights equal).
        let s = ideal_shares(&[100.0, 10.0, 1.0, 1.0], 4);
        assert!((s[0] - 0.25).abs() < 1e-9, "{s:?}");
        assert!((s[1] - 0.25).abs() < 1e-9, "{s:?}");
        assert!((s[2] - 0.25).abs() < 1e-9, "{s:?}");
        assert!((s[3] - 0.25).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn proportional_error_detects_unfairness() {
        // Perfect 2:1 split.
        assert!(proportional_error(&[2.0, 1.0], &[2.0, 1.0], 1) < 1e-12);
        // Total inversion.
        let e = proportional_error(&[0.0, 3.0], &[2.0, 1.0], 1);
        assert!((e - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn starvation_finds_flat_stretch() {
        let curve = [
            (0.0, 0.0),
            (1.0, 10.0),
            (2.0, 10.0),
            (3.0, 10.0),
            (4.0, 20.0),
            (5.0, 30.0),
        ];
        assert!((starvation(&curve) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn starvation_open_ended_gap() {
        let curve = [(0.0, 0.0), (1.0, 5.0), (2.0, 5.0), (9.0, 5.0)];
        assert!((starvation(&curve) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn no_starvation_when_monotone() {
        let curve = [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)];
        assert_eq!(starvation(&curve), 0.0);
    }
}
