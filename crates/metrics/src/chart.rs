//! ASCII line charts, used by the `repro` binary to render each paper
//! figure in the terminal and in the results files.

use crate::series::TimeSeries;

/// Plot styling and dimensions.
#[derive(Debug, Clone)]
pub struct ChartConfig {
    /// Plot-area width in columns.
    pub width: usize,
    /// Plot-area height in rows.
    pub height: usize,
    /// Label for the x axis.
    pub x_label: String,
    /// Label for the y axis.
    pub y_label: String,
}

impl Default for ChartConfig {
    fn default() -> ChartConfig {
        ChartConfig {
            width: 72,
            height: 20,
            x_label: "x".into(),
            y_label: "y".into(),
        }
    }
}

const MARKS: &[char] = &['*', '+', 'o', 'x', '#', '@', '%', '&'];

/// Renders one or more series into a fixed-size ASCII chart with a
/// legend; each series gets its own marker character.
pub fn render(title: &str, series: &[&TimeSeries], cfg: &ChartConfig) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');

    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (0.0f64, f64::NEG_INFINITY);
    for s in series {
        for &(x, y) in s.points() {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
    }
    if !x_min.is_finite() || x_max <= x_min {
        out.push_str("(no data)\n");
        return out;
    }
    if y_max <= y_min {
        y_max = y_min + 1.0;
    }

    let w = cfg.width.max(8);
    let h = cfg.height.max(4);
    let mut grid = vec![vec![' '; w]; h];

    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        // Sample the series densely across the width for continuity.
        let xs = (0..w).map(|col| x_min + (x_max - x_min) * col as f64 / (w - 1) as f64);
        for (col, x) in xs.enumerate() {
            let y = s.at(x);
            let row_f = (y - y_min) / (y_max - y_min) * (h - 1) as f64;
            let row = h - 1 - (row_f.round() as usize).min(h - 1);
            grid[row][col] = mark;
        }
    }

    let y_fmt = |v: f64| -> String {
        if v.abs() >= 1e6 {
            format!("{v:.2e}")
        } else if v.abs() >= 100.0 {
            format!("{v:.0}")
        } else {
            format!("{v:.2}")
        }
    };
    let label_w = y_fmt(y_max).len().max(y_fmt(y_min).len()).max(6);
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            y_fmt(y_max)
        } else if i == h - 1 {
            y_fmt(y_min)
        } else if i == h / 2 {
            y_fmt((y_max + y_min) / 2.0)
        } else {
            String::new()
        };
        out.push_str(&format!("{label:>label_w$} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>label_w$} +{}\n", "", "-".repeat(w)));
    out.push_str(&format!(
        "{:>label_w$}  {:<.10}{}{:>.20}\n",
        "",
        y_fmt(x_min),
        " ".repeat(w.saturating_sub(24)),
        y_fmt(x_max),
    ));
    out.push_str(&format!(
        "{:>label_w$}  [{} vs {}]\n",
        "", cfg.y_label, cfg.x_label
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "{:>label_w$}  {} {}\n",
            "",
            MARKS[si % MARKS.len()],
            s.name()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(name: &str, k: f64) -> TimeSeries {
        let mut s = TimeSeries::new(name);
        for i in 0..=10 {
            s.push(i as f64, k * i as f64);
        }
        s
    }

    #[test]
    fn renders_legend_and_axes() {
        let a = line("fast", 2.0);
        let b = line("slow", 1.0);
        let txt = render("demo", &[&a, &b], &ChartConfig::default());
        assert!(txt.contains("demo"));
        assert!(txt.contains("* fast"));
        assert!(txt.contains("+ slow"));
        assert!(txt.contains('|'));
        assert!(txt.contains('+'));
    }

    #[test]
    fn empty_series_do_not_panic() {
        let s = TimeSeries::new("empty");
        let txt = render("t", &[&s], &ChartConfig::default());
        assert!(txt.contains("(no data)"));
    }

    #[test]
    fn marker_rows_track_magnitude() {
        let a = line("a", 1.0);
        let cfg = ChartConfig {
            width: 20,
            height: 10,
            ..ChartConfig::default()
        };
        let txt = render("t", &[&a], &cfg);
        // Monotone series: first plot row (max) must contain a marker at
        // the right edge, last plot row at the left edge.
        let rows: Vec<&str> = txt.lines().collect();
        let first = rows[1];
        let last = rows[10];
        assert!(first.trim_end().ends_with('*'), "{first:?}");
        assert!(last.contains('*'), "{last:?}");
    }
}
