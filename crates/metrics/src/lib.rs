//! # sfs-metrics — measurement utilities for the SFS reproduction
//!
//! Small, dependency-free building blocks shared by the simulator, the
//! runtime and the experiment harnesses:
//!
//! * [`series::TimeSeries`] — ordered samples with interpolation,
//!   rates and resampling (the cumulative-iterations curves of
//!   Figs. 4/5 are `TimeSeries`).
//! * [`stats`] — online mean/variance and percentile summaries
//!   (response times in Fig. 6(c), context-switch latencies in Fig. 7).
//! * [`fairness`] — Jain's index, proportional-share error against the
//!   capped (GMS) ideal, and starvation-gap detection (Example 1).
//! * [`table::Table`] — aligned text / markdown / CSV tables (Table 1).
//! * [`chart`] — ASCII line charts for rendering each figure.

pub mod chart;
pub mod fairness;
pub mod series;
pub mod stats;
pub mod table;

pub use chart::{render, ChartConfig};
pub use fairness::{ideal_shares, jain_index, proportional_error, starvation};
pub use series::TimeSeries;
pub use stats::{OnlineStats, Summary};
pub use table::{fnum, Table};
