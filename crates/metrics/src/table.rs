//! Aligned text tables for experiment reports (Table 1 and the
//! per-figure summaries in EXPERIMENTS.md).

use std::fmt::Write as _;

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of displayable items.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Table {
        self.rows
            .push(cells.iter().map(ToString::to_string).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut w = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            w[i] = w[i].max(h.chars().count());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    /// Renders as aligned plain text.
    pub fn to_text(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "# {}", self.title);
        }
        let fmt_row = |cells: &[String], w: &[usize]| -> String {
            let mut line = String::new();
            for (i, width) in w.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{cell:>width$}");
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &w));
        let total: usize = w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(r, &w));
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "**{}**\n", self.title);
        }
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(out, "| {} |", r.join(" | "));
        }
        out
    }

    /// Renders as CSV (RFC-4180-ish; quotes cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with `digits` decimals (helper for table cells).
pub fn fnum(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["alpha".into(), "1.5".into()]);
        t.row(&["b".into(), "22".into()]);
        t
    }

    #[test]
    fn text_alignment() {
        let txt = sample().to_text();
        assert!(txt.contains("# demo"));
        let lines: Vec<&str> = txt.lines().collect();
        // header, rule, two rows
        assert_eq!(lines.len(), 5);
        assert!(lines[1].contains("name"));
        assert!(lines[2].starts_with('-'));
        assert!(lines[3].trim_start().starts_with("alpha"));
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.contains("| name | value |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| alpha | 1.5 |"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(10.0, 0), "10");
    }

    #[test]
    fn row_display_converts() {
        let mut t = Table::new("", &["n"]);
        t.row_display(&[42]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.to_text().contains("42"));
    }
}
