//! Summary statistics: online mean/variance and percentile summaries.

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0.0 for fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// A percentile summary over a batch of observations.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    sorted: Vec<f64>,
    stats: OnlineStats,
}

impl Summary {
    /// Builds a summary from observations (order irrelevant).
    pub fn from(values: impl IntoIterator<Item = f64>) -> Summary {
        let mut sorted: Vec<f64> = values.into_iter().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary"));
        let mut stats = OnlineStats::new();
        for &v in &sorted {
            stats.push(v);
        }
        Summary { sorted, stats }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Mean.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.stats.stddev()
    }

    /// Minimum (0.0 when empty).
    pub fn min(&self) -> f64 {
        self.stats.min()
    }

    /// Maximum (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.stats.max()
    }

    /// Percentile in `[0, 100]` by nearest-rank with interpolation.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = p / 100.0 * (self.sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            self.sorted[lo]
        } else {
            let frac = rank - lo as f64;
            self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
        }
    }

    /// Median (p50).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn online_matches_batch() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut o = OnlineStats::new();
        for x in xs {
            o.push(x);
        }
        assert_eq!(o.count(), 5);
        assert!((o.mean() - 4.0).abs() < 1e-12);
        assert_eq!(o.min(), 1.0);
        assert_eq!(o.max(), 10.0);
        // Sample stddev of [1,2,3,4,10] = sqrt(50/4).
        assert!((o.stddev() - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let o = OnlineStats::new();
        assert_eq!(o.mean(), 0.0);
        assert_eq!(o.stddev(), 0.0);
        assert_eq!(o.min(), 0.0);
        assert_eq!(o.max(), 0.0);
        let s = Summary::from([]);
        assert_eq!(s.percentile(50.0), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::from([0.0, 10.0]);
        assert_eq!(s.percentile(0.0), 0.0);
        assert_eq!(s.percentile(50.0), 5.0);
        assert_eq!(s.percentile(100.0), 10.0);
        assert_eq!(s.median(), 5.0);
    }

    #[test]
    fn single_value_summary() {
        let s = Summary::from([7.0]);
        assert_eq!(s.median(), 7.0);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.stddev(), 0.0);
    }

    proptest! {
        #[test]
        fn percentile_is_monotone(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
                                  p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
            xs.iter_mut().for_each(|x| *x = x.round());
            let s = Summary::from(xs);
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(s.percentile(lo) <= s.percentile(hi) + 1e-9);
        }

        #[test]
        fn mean_within_min_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let s = Summary::from(xs);
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }
    }
}
