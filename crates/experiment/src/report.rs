//! Substrate-independent run results and the comparative report.

use sfs_core::policy::PolicySpec;
use sfs_core::sched::SchedStats;
use sfs_core::task::TenantId;
use sfs_core::time::{Duration, Time};
use sfs_metrics::{fairness, Summary, Table};
use sfs_sim::{RunHealth, SimReport};

/// How a task's run ended, beyond its service numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TaskFate {
    /// Admitted and ran to the scenario's end (or its own exit).
    #[default]
    Ran,
    /// Refused by admission control: never attached, zero service.
    Rejected,
    /// Forcibly reaped after a panic or injected fault; its service up
    /// to the reap is real.
    Reaped,
}

/// Final measurements for one task, common to both substrates.
#[derive(Debug, Clone)]
pub struct TaskOutcome {
    /// Scenario name (e.g. `"T1"`, `"gcc#3"`).
    pub name: String,
    /// Assigned weight.
    pub weight: u64,
    /// The tenant group the task ran under, when the policy is
    /// hierarchical (`sfs:groups(...)`).
    pub tenant: Option<TenantId>,
    /// Total CPU service received.
    pub service: Duration,
    /// Completed compute phases (frames decoded, requests served, jobs
    /// finished).
    pub completions: u64,
    /// Response-time summary (ms), for workloads that sleep then compute.
    pub responses: Option<Summary>,
    /// Arrival time.
    pub arrived: Time,
    /// Exit time, if the task finished before the run ended.
    pub exited: Option<Time>,
    /// Whether the task ran normally, was rejected by admission
    /// control, or was forcibly reaped.
    pub fate: TaskFate,
}

/// Fairness indices of one run, computed against the GMS-capped ideal
/// (§2.1 readjustment semantics) via `sfs-metrics`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fairness {
    /// Jain's index over entitlement-normalised shares (1.0 = every
    /// task at exactly its capped proportional share).
    pub jain: f64,
    /// Largest absolute deviation between a measured share and its
    /// capped proportional ideal (0.0 = perfect).
    pub max_share_error: f64,
}

/// The outcome of one experiment run on either substrate.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scenario name.
    pub scenario: String,
    /// Which substrate produced it (`"sim"` or `"rt"`).
    pub substrate: &'static str,
    /// The policy that was run.
    pub policy: PolicySpec,
    /// The scheduler's human-readable name (e.g. `"SFS"`).
    pub sched_name: String,
    /// Number of processors.
    pub cpus: u32,
    /// Wall-clock length of the run.
    pub duration: Duration,
    /// Per-task measurements, in arrival order.
    pub tasks: Vec<TaskOutcome>,
    /// Scheduler work counters.
    pub sched_stats: SchedStats,
    /// Dispatches that switched to a different task.
    pub ctx_switches: u64,
    /// The full simulator report (sampled service curves, iteration
    /// counts, GMS errors) when the run was simulated; `None` on the
    /// real-thread substrate.
    pub sim: Option<SimReport>,
    /// Where the run's Perfetto trace was written, when the run was
    /// made via [`crate::Experiment::run_with_trace`].
    pub trace_path: Option<std::path::PathBuf>,
    /// Robustness counters: admission rejections, faults injected and
    /// recovered, invariant-audit failures. All zero for runs without
    /// an admission policy or fault plan.
    pub health: RunHealth,
}

impl RunReport {
    /// Builds the common report from a simulator report.
    pub fn from_sim(scenario: &str, policy: PolicySpec, rep: SimReport) -> RunReport {
        let tasks = rep
            .tasks
            .iter()
            .map(|t| TaskOutcome {
                name: t.name.clone(),
                weight: t.weight,
                tenant: t.tenant,
                service: t.service,
                completions: t.completions,
                responses: t.responses.clone(),
                arrived: t.arrived,
                exited: t.exited,
                fate: if t.rejected {
                    TaskFate::Rejected
                } else if t.reaped {
                    TaskFate::Reaped
                } else {
                    TaskFate::Ran
                },
            })
            .collect();
        let health = rep.health;
        RunReport {
            scenario: scenario.to_string(),
            substrate: "sim",
            policy,
            sched_name: rep.sched_name.clone(),
            cpus: rep.cpus,
            duration: rep.duration,
            tasks,
            sched_stats: rep.sched_stats,
            ctx_switches: rep.ctx_switches,
            sim: Some(rep),
            trace_path: None,
            health,
        }
    }

    /// Looks a task up by scenario name.
    pub fn task(&self, name: &str) -> Option<&TaskOutcome> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Total service over all tasks.
    pub fn total_service(&self) -> Duration {
        self.tasks
            .iter()
            .fold(Duration::ZERO, |acc, t| acc + t.service)
    }

    /// Sum of services over tasks whose name starts with `prefix`.
    #[deprecated(
        since = "0.6.0",
        note = "prefix matching is ambiguous; use `tenant_service`/`tenant_shares` \
                keyed by `TenantId`"
    )]
    pub fn group_service(&self, prefix: &str) -> Duration {
        self.tasks
            .iter()
            .filter(|t| t.name.starts_with(prefix))
            .fold(Duration::ZERO, |acc, t| acc + t.service)
    }

    /// Sum of services over tasks bound to tenant `t`.
    pub fn tenant_service(&self, t: TenantId) -> Duration {
        self.tasks
            .iter()
            .filter(|task| task.tenant == Some(t))
            .fold(Duration::ZERO, |acc, task| acc + task.service)
    }

    /// Each tenant's share of total service, sorted by tenant id.
    /// Tasks outside any tenant are excluded from the numerators but
    /// count toward the total.
    pub fn tenant_shares(&self) -> Vec<(TenantId, f64)> {
        let total = self.total_service().as_nanos() as f64;
        let mut by_tenant: std::collections::BTreeMap<TenantId, f64> =
            std::collections::BTreeMap::new();
        for t in &self.tasks {
            if let Some(tenant) = t.tenant {
                *by_tenant.entry(tenant).or_default() += t.service.as_nanos() as f64;
            }
        }
        by_tenant
            .into_iter()
            .map(|(t, s)| (t, if total == 0.0 { 0.0 } else { s / total }))
            .collect()
    }

    /// Jain's fairness index over tenants, with each tenant's share
    /// normalised by its group share in the policy's `groups(...)`
    /// clause. 1.0 means every tenant got exactly its entitlement;
    /// returns `None` for flat (non-hierarchical) runs.
    pub fn tenant_fairness(&self) -> Option<f64> {
        let groups = self.policy.groups();
        if groups.is_empty() {
            return None;
        }
        let shares = self.tenant_shares();
        let total_weight: u64 = groups.iter().map(sfs_core::policy::GroupSpec::share).sum();
        let ratios: Vec<f64> = shares
            .iter()
            .map(|&(t, s)| {
                let w = groups
                    .get(t.0 as usize)
                    .map(|g| g.share() as f64 / total_weight.max(1) as f64)
                    .unwrap_or(0.0);
                if w <= 0.0 {
                    0.0
                } else {
                    s / w
                }
            })
            .collect();
        Some(fairness::jain_index(&ratios))
    }

    /// Per-task share of total service, in task order.
    pub fn shares(&self) -> Vec<f64> {
        let total = self.total_service().as_nanos() as f64;
        self.tasks
            .iter()
            .map(|t| {
                if total == 0.0 {
                    0.0
                } else {
                    t.service.as_nanos() as f64 / total
                }
            })
            .collect()
    }

    /// Fairness indices of this run against the capped proportional
    /// ideal of the task weights.
    ///
    /// The ideal assumes every task is present (and hungry) for the
    /// whole run; for scenarios with mid-run arrivals or departures,
    /// window the services yourself (the sampled curves are in
    /// [`RunReport::sim_report`]) or compare starvation gaps instead.
    ///
    /// Tasks rejected by admission control are excluded entirely: they
    /// never held a weight, so they have no entitlement and their zero
    /// service is not a fairness failure.
    pub fn fairness(&self) -> Fairness {
        let ran: Vec<&TaskOutcome> = self
            .tasks
            .iter()
            .filter(|t| t.fate != TaskFate::Rejected)
            .collect();
        let services: Vec<f64> = ran.iter().map(|t| t.service.as_secs_f64()).collect();
        let weights: Vec<f64> = ran.iter().map(|t| t.weight as f64).collect();
        let total: f64 = services.iter().sum();
        let ideal = fairness::ideal_shares(&weights, self.cpus);
        let ratios: Vec<f64> = services
            .iter()
            .zip(ideal.iter())
            .map(|(&s, &i)| {
                if total <= 0.0 || i <= 0.0 {
                    0.0
                } else {
                    (s / total) / i
                }
            })
            .collect();
        Fairness {
            jain: fairness::jain_index(&ratios),
            max_share_error: fairness::proportional_error(&services, &weights, self.cpus),
        }
    }

    /// Queue/readjustment structure steps per runnable-set mutation —
    /// the measured event-path cost of the policy's run-queue
    /// structures (0.0 when the policy reported no events).
    pub fn steps_per_event(&self) -> f64 {
        if self.sched_stats.events == 0 {
            0.0
        } else {
            self.sched_stats.event_steps as f64 / self.sched_stats.events as f64
        }
    }

    /// The underlying simulator report.
    ///
    /// # Panics
    ///
    /// Panics if the run was produced on the real-thread substrate,
    /// which keeps no sampled curves.
    pub fn sim_report(&self) -> &SimReport {
        self.sim
            .as_ref()
            .expect("detailed SimReport only exists for simulator runs")
    }
}

/// One policy's fairness, with deltas against the comparison baseline.
#[derive(Debug, Clone)]
pub struct FairnessDelta {
    /// The policy's string form.
    pub policy: String,
    /// The scheduler's display name.
    pub sched_name: String,
    /// This run's fairness indices.
    pub fairness: Fairness,
    /// `jain − jain(baseline)`: positive means fairer than baseline.
    pub jain_delta: f64,
    /// `max_share_error − baseline`: positive means *less* fair.
    pub share_error_delta: f64,
}

/// The outcome of running one scenario under several policies
/// ([`crate::Experiment::compare`]). The first run is the baseline.
#[derive(Debug, Clone)]
pub struct ComparisonReport {
    /// Scenario name.
    pub scenario: String,
    /// One run per policy, in the order given to `compare`.
    pub runs: Vec<RunReport>,
}

impl ComparisonReport {
    /// Looks a run up by its policy spec.
    pub fn get(&self, policy: &PolicySpec) -> Option<&RunReport> {
        self.runs.iter().find(|r| &r.policy == policy)
    }

    /// The baseline run (the first policy given to `compare`).
    ///
    /// # Panics
    ///
    /// Panics if the comparison is empty.
    pub fn baseline(&self) -> &RunReport {
        &self.runs[0]
    }

    /// Per-policy fairness indices with deltas against the baseline.
    pub fn deltas(&self) -> Vec<FairnessDelta> {
        let base = self.runs.first().map(RunReport::fairness);
        self.runs
            .iter()
            .map(|r| {
                let f = r.fairness();
                let b = base.unwrap_or(f);
                FairnessDelta {
                    policy: r.policy.to_string(),
                    sched_name: r.sched_name.clone(),
                    fairness: f,
                    jain_delta: f.jain - b.jain,
                    share_error_delta: f.max_share_error - b.max_share_error,
                }
            })
            .collect()
    }

    /// Renders the comparison as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut table = Table::new(
            format!("{}: policy comparison", self.scenario),
            &[
                "policy",
                "scheduler",
                "total service (s)",
                "Jain",
                "ΔJain",
                "share err",
                "Δerr",
                "switches",
                "steps/ev",
            ],
        );
        // deltas() is in runs order, so zip instead of looking runs up
        // by policy string (which would conflate duplicate policies).
        for (run, d) in self.runs.iter().zip(self.deltas()) {
            table.row(&[
                d.policy.clone(),
                d.sched_name.clone(),
                format!("{:.2}", run.total_service().as_secs_f64()),
                format!("{:.4}", d.fairness.jain),
                format!("{:+.4}", d.jain_delta),
                format!("{:.4}", d.fairness.max_share_error),
                format!("{:+.4}", d.share_error_delta),
                format!("{}", run.ctx_switches),
                format!("{:.1}", run.steps_per_event()),
            ]);
        }
        table.to_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(name: &str, weight: u64, service_ms: u64) -> TaskOutcome {
        TaskOutcome {
            name: name.into(),
            weight,
            tenant: None,
            service: Duration::from_millis(service_ms),
            completions: 0,
            responses: None,
            arrived: Time::ZERO,
            exited: None,
            fate: TaskFate::Ran,
        }
    }

    fn report(tasks: Vec<TaskOutcome>) -> RunReport {
        RunReport {
            scenario: "t".into(),
            substrate: "sim",
            policy: PolicySpec::sfs(),
            sched_name: "SFS".into(),
            cpus: 1,
            duration: Duration::from_secs(1),
            tasks,
            sched_stats: SchedStats::default(),
            ctx_switches: 0,
            sim: None,
            trace_path: None,
            health: RunHealth::default(),
        }
    }

    #[test]
    fn perfect_proportional_split_scores_one() {
        let rep = report(vec![outcome("a", 2, 600), outcome("b", 1, 300)]);
        // Shares 2/3 : 1/3 exactly match weights 2:1 on one CPU.
        let f = rep.fairness();
        assert!((f.jain - 1.0).abs() < 1e-9, "{f:?}");
        assert!(f.max_share_error < 1e-9, "{f:?}");
        assert_eq!(rep.shares()[0], 2.0 / 3.0);
        #[allow(deprecated)]
        let by_prefix = rep.group_service("a");
        assert_eq!(by_prefix, Duration::from_millis(600));
    }

    #[test]
    fn tenant_accessors_match_the_deprecated_prefix_shim() {
        // When tenant members share a name prefix (the scenario
        // replication convention), the deprecated prefix accessor and
        // the tenant-keyed one must agree exactly.
        let mut a1 = outcome("batch#1", 1, 300);
        a1.tenant = Some(TenantId(0));
        let mut a2 = outcome("batch#2", 1, 150);
        a2.tenant = Some(TenantId(0));
        let mut b = outcome("web", 1, 450);
        b.tenant = Some(TenantId(1));
        let free = outcome("stray", 1, 100);
        let rep = report(vec![a1, a2, b, free]);

        #[allow(deprecated)]
        let by_prefix = rep.group_service("batch#");
        assert_eq!(rep.tenant_service(TenantId(0)), by_prefix);
        assert_eq!(rep.tenant_service(TenantId(1)), Duration::from_millis(450));
        assert_eq!(rep.tenant_service(TenantId(9)), Duration::ZERO);

        // Shares: tenant-less service counts in the denominator only.
        let shares = rep.tenant_shares();
        assert_eq!(shares.len(), 2);
        assert!((shares[0].1 - 0.45).abs() < 1e-9, "{shares:?}");
        assert!((shares[1].1 - 0.45).abs() < 1e-9, "{shares:?}");

        // A flat policy has no tenant fairness.
        assert_eq!(rep.tenant_fairness(), None);
    }

    #[test]
    fn rejected_tasks_are_excluded_from_fairness() {
        // A rejected heavy task never held a weight: its zero service
        // must not register as a share error for the run.
        let mut rej = outcome("rej", 5, 0);
        rej.fate = TaskFate::Rejected;
        let rep = report(vec![outcome("a", 2, 600), outcome("b", 1, 300), rej]);
        let f = rep.fairness();
        assert!((f.jain - 1.0).abs() < 1e-9, "{f:?}");
        assert!(f.max_share_error < 1e-9, "{f:?}");
    }

    #[test]
    fn inverted_split_scores_poorly() {
        let rep = report(vec![outcome("a", 10, 100), outcome("b", 1, 900)]);
        let f = rep.fairness();
        assert!(f.jain < 0.9, "{f:?}");
        assert!(f.max_share_error > 0.5, "{f:?}");
    }

    #[test]
    fn fully_starved_run_keeps_deltas_finite() {
        // Zero service everywhere (e.g. a zero-length window): the jain
        // ratios are all 0.0, which the metric defines as 1.0 — the
        // deltas must never go NaN.
        let starved = report(vec![outcome("a", 2, 0), outcome("b", 1, 0)]);
        let f = starved.fairness();
        assert_eq!(f.jain, 1.0, "{f:?}");
        assert!(f.max_share_error.is_finite());
        let fair = report(vec![outcome("a", 2, 600), outcome("b", 1, 300)]);
        let cmp = ComparisonReport {
            scenario: "t".into(),
            runs: vec![starved, fair],
        };
        for d in cmp.deltas() {
            assert!(d.fairness.jain.is_finite(), "{d:?}");
            assert!(d.jain_delta.is_finite(), "{d:?}");
            assert!(d.share_error_delta.is_finite(), "{d:?}");
        }
    }

    #[test]
    fn comparison_deltas_use_the_first_run_as_baseline() {
        let fair = report(vec![outcome("a", 2, 600), outcome("b", 1, 300)]);
        let unfair = report(vec![outcome("a", 2, 300), outcome("b", 1, 600)]);
        let cmp = ComparisonReport {
            scenario: "t".into(),
            runs: vec![fair, unfair],
        };
        let d = cmp.deltas();
        assert_eq!(d[0].jain_delta, 0.0);
        assert!(d[1].jain_delta < 0.0);
        assert!(d[1].share_error_delta > 0.0);
        assert!(cmp.to_table().contains("policy"));
    }
}
