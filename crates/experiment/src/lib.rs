//! # sfs-experiment — one front-end over both execution substrates
//!
//! The paper's whole argument is comparative: the same workloads run
//! under SFS, SFQ and time sharing, and the *differences* are the
//! results (§4). This crate makes that shape first-class:
//!
//! * [`Substrate`] — anything that can execute a declarative
//!   [`Scenario`] under a [`PolicySpec`]: the deterministic
//!   discrete-event simulator ([`SimSubstrate`]) or the real-thread
//!   runtime ([`RtSubstrate`]).
//! * [`Experiment`] — a scenario bound to a substrate. One call runs a
//!   policy ([`Experiment::run`]); one call runs a whole policy matrix
//!   and summarises the fairness deltas ([`Experiment::compare`]).
//! * [`RunReport`] / [`ComparisonReport`] — substrate-independent
//!   results: per-task service, shares, response-time summaries,
//!   scheduler work counters, and fairness indices via `sfs-metrics`.
//!
//! ```
//! use sfs_core::policy::PolicySpec;
//! use sfs_core::time::Duration;
//! use sfs_experiment::Experiment;
//! use sfs_sim::{Scenario, SimConfig, TaskSpec};
//! use sfs_workloads::BehaviorSpec;
//!
//! let cfg = SimConfig {
//!     cpus: 2,
//!     duration: Duration::from_secs(2),
//!     ..SimConfig::default()
//! };
//! let scenario = Scenario::new("demo", cfg)
//!     .task(TaskSpec::new("db", 2, BehaviorSpec::Inf))
//!     .task(TaskSpec::new("http", 1, BehaviorSpec::Inf))
//!     .task(TaskSpec::new("batch", 1, BehaviorSpec::Inf));
//!
//! // One policy, one substrate-independent report. `run` takes
//! // anything convertible to a `PolicySpec` — a spec, a borrow of
//! // one, or its string form.
//! let sfs: PolicySpec = "sfs:quantum=10ms".parse().unwrap();
//! let report = Experiment::new(scenario.clone()).run(&sfs).unwrap();
//! assert!(report.task("db").unwrap().service > report.task("http").unwrap().service);
//!
//! // A policy matrix: SFS vs time sharing, with fairness deltas.
//! let cmp = Experiment::new(scenario)
//!     .compare(["sfs:quantum=10ms", "ts"])
//!     .unwrap();
//! let d = cmp.deltas();
//! assert!(d[0].fairness.max_share_error < d[1].fairness.max_share_error);
//! ```

pub mod capture;
pub mod report;
pub mod substrate;

use core::fmt;
use std::path::Path;

use sfs_core::policy::{ParsePolicyError, PolicySpec};
use sfs_sim::{Scenario, ScenarioError};
use sfs_trace::{EventTrace, TraceMeta, TraceRecorder};

pub use capture::Capture;
pub use report::{ComparisonReport, Fairness, FairnessDelta, RunReport, TaskFate, TaskOutcome};
pub use substrate::{RtSubstrate, SimSubstrate, Substrate};

/// Why an experiment could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// The scenario is malformed (zero weight, empty machine).
    Scenario(ScenarioError),
    /// A policy string did not parse.
    Policy(ParsePolicyError),
    /// A scenario task names a tenant the policy's `groups(...)` clause
    /// does not declare, so its service would silently fall outside
    /// every group.
    UnknownTenant {
        /// The unmatched tenant name.
        tenant: String,
    },
    /// Reading or writing a trace/capture file failed.
    Io {
        /// The file involved.
        path: String,
        /// The OS error text.
        msg: String,
    },
    /// A recorded trace failed validation, or a capture file did not
    /// parse.
    Capture(String),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Scenario(e) => write!(f, "scenario error: {e}"),
            ExperimentError::Policy(e) => write!(f, "policy error: {e}"),
            ExperimentError::UnknownTenant { tenant } => {
                write!(f, "tenant {tenant:?} is not a group of the policy")
            }
            ExperimentError::Io { path, msg } => write!(f, "{path}: {msg}"),
            ExperimentError::Capture(msg) => write!(f, "capture error: {msg}"),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Scenario(e) => Some(e),
            ExperimentError::Policy(e) => Some(e),
            ExperimentError::UnknownTenant { .. }
            | ExperimentError::Io { .. }
            | ExperimentError::Capture(_) => None,
        }
    }
}

impl From<ScenarioError> for ExperimentError {
    fn from(e: ScenarioError) -> ExperimentError {
        ExperimentError::Scenario(e)
    }
}

impl From<ParsePolicyError> for ExperimentError {
    fn from(e: ParsePolicyError) -> ExperimentError {
        ExperimentError::Policy(e)
    }
}

/// Infallible conversions (e.g. passing a `PolicySpec` directly to
/// [`Experiment::run`]) produce no error.
impl From<core::convert::Infallible> for ExperimentError {
    fn from(e: core::convert::Infallible) -> ExperimentError {
        match e {}
    }
}

/// A scenario bound to an execution substrate: the single entry point
/// for running and comparing policies.
pub struct Experiment {
    scenario: Scenario,
    substrate: Box<dyn Substrate>,
}

impl Experiment {
    /// An experiment on the deterministic discrete-event simulator (the
    /// default substrate: exact, fast, reproducible).
    #[must_use]
    pub fn new(scenario: Scenario) -> Experiment {
        Experiment::on(scenario, SimSubstrate)
    }

    /// An experiment on an explicit substrate (e.g. [`RtSubstrate`] to
    /// drive real OS threads; the scenario then runs in real time, so
    /// keep its duration short).
    #[must_use]
    pub fn on(scenario: Scenario, substrate: impl Substrate + 'static) -> Experiment {
        Experiment {
            scenario,
            substrate: Box::new(substrate),
        }
    }

    /// The scenario under experiment.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Runs the scenario under one policy. Accepts anything convertible
    /// to a [`PolicySpec`]: a spec, a borrow of one, or its string form
    /// (`"sfs:quantum=5ms"`).
    pub fn run<P>(&self, policy: P) -> Result<RunReport, ExperimentError>
    where
        P: TryInto<PolicySpec>,
        ExperimentError: From<P::Error>,
    {
        let spec = policy.try_into()?;
        self.substrate.run(&self.scenario, &spec)
    }

    /// The trace metadata every recorded run of this experiment carries.
    fn trace_meta(&self, policy: &PolicySpec) -> TraceMeta {
        TraceMeta {
            substrate: self.substrate.name().to_string(),
            scenario: self.scenario.name.clone(),
            policy: policy.to_string(),
            cpus: self.scenario.config.cpus,
            tenants: self.scenario.tenants.clone(),
        }
    }

    /// Runs the scenario under one policy with full event recording,
    /// returning the report together with the recorded [`EventTrace`].
    pub fn run_recorded<P>(&self, policy: P) -> Result<(RunReport, EventTrace), ExperimentError>
    where
        P: TryInto<PolicySpec>,
        ExperimentError: From<P::Error>,
    {
        let spec = policy.try_into()?;
        let rec = TraceRecorder::new(self.trace_meta(&spec));
        let report = self
            .substrate
            .run_traced(&self.scenario, &spec, rec.clone())?;
        Ok((report, rec.finish()))
    }

    /// Runs the scenario under one policy, validates the recorded
    /// trace, and writes it as a Perfetto file (open it in
    /// <https://ui.perfetto.dev>). The returned report carries the path
    /// in [`RunReport::trace_path`].
    pub fn run_with_trace<P>(
        &self,
        policy: P,
        path: impl AsRef<Path>,
    ) -> Result<RunReport, ExperimentError>
    where
        P: TryInto<PolicySpec>,
        ExperimentError: From<P::Error>,
    {
        let path = path.as_ref();
        let (mut report, trace) = self.run_recorded(policy)?;
        trace
            .validate()
            .map_err(|e| ExperimentError::Capture(e.to_string()))?;
        let bytes = sfs_trace::perfetto::encode(&trace);
        std::fs::write(path, bytes).map_err(|e| ExperimentError::Io {
            path: path.display().to_string(),
            msg: e.to_string(),
        })?;
        report.trace_path = Some(path.to_path_buf());
        Ok(report)
    }

    /// Runs the scenario under one policy with full event recording and
    /// packages the run as a self-contained [`Capture`]: scenario (with
    /// its RNG seed), policy, and the recorded event stream. Feed it to
    /// [`Experiment::replay`] — typically after an [`RtSubstrate`] run,
    /// to re-drive the same scenario on the simulator.
    pub fn capture<P>(&self, policy: P) -> Result<(RunReport, Capture), ExperimentError>
    where
        P: TryInto<PolicySpec>,
        ExperimentError: From<P::Error>,
    {
        let spec = policy.try_into()?;
        let (report, trace) = self.run_recorded::<&PolicySpec>(&spec)?;
        Ok((
            report,
            Capture {
                scenario: self.scenario.clone(),
                policy: spec,
                trace,
            },
        ))
    }

    /// Re-drives a captured run on the deterministic simulator and
    /// returns both context-switch sequences for lockstep comparison.
    /// Sequences are compared as `(cpu, task name)` in timestamp order —
    /// names, not [`sfs_core::task::TaskId`]s, because the substrates
    /// assign ids in different orders.
    pub fn replay(capture: &Capture) -> Result<ReplayReport, ExperimentError> {
        let exp = Experiment::new(capture.scenario.clone());
        let (report, trace) = exp.run_recorded(&capture.policy)?;
        Ok(ReplayReport {
            captured: capture.trace.ctx_switch_sequence(),
            replayed: trace.ctx_switch_sequence(),
            report,
        })
    }

    /// Runs the same scenario under every policy in the matrix and
    /// returns the comparative report. The first policy is the
    /// baseline that fairness deltas are measured against. Policies
    /// convert like in [`Experiment::run`], so a string slice works:
    /// `exp.compare(["sfs", "ts"])`.
    pub fn compare<P>(
        &self,
        policies: impl IntoIterator<Item = P>,
    ) -> Result<ComparisonReport, ExperimentError>
    where
        P: TryInto<PolicySpec>,
        ExperimentError: From<P::Error>,
    {
        let mut runs = Vec::new();
        for p in policies {
            runs.push(self.run(p)?);
        }
        Ok(ComparisonReport {
            scenario: self.scenario.name.clone(),
            runs,
        })
    }
}

/// The outcome of re-driving a [`Capture`] on the simulator
/// ([`Experiment::replay`]).
#[derive(Debug)]
pub struct ReplayReport {
    /// The replay's run report (simulator substrate).
    pub report: RunReport,
    /// The captured run's context switches, `(cpu, task name)` in
    /// timestamp order.
    pub captured: Vec<(u32, String)>,
    /// The replay's context switches, same encoding.
    pub replayed: Vec<(u32, String)>,
}

impl ReplayReport {
    /// Whether the replay reproduced the captured context-switch
    /// sequence exactly.
    #[must_use]
    pub fn sequences_match(&self) -> bool {
        self.captured == self.replayed
    }

    /// The first index where the sequences diverge (`None` when they
    /// match; the length of the shorter one when it is a prefix of the
    /// other).
    #[must_use]
    pub fn first_divergence(&self) -> Option<usize> {
        if self.sequences_match() {
            return None;
        }
        let i = self
            .captured
            .iter()
            .zip(&self.replayed)
            .position(|(a, b)| a != b);
        Some(i.unwrap_or_else(|| self.captured.len().min(self.replayed.len())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_core::time::Duration;
    use sfs_sim::{SimConfig, TaskSpec};
    use sfs_workloads::BehaviorSpec;

    fn scenario() -> Scenario {
        let cfg = SimConfig {
            cpus: 2,
            duration: Duration::from_secs(2),
            ..SimConfig::default()
        };
        Scenario::new("t", cfg)
            .task(TaskSpec::new("a", 2, BehaviorSpec::Inf))
            .task(TaskSpec::new("b", 1, BehaviorSpec::Inf))
            .task(TaskSpec::new("c", 1, BehaviorSpec::Inf))
    }

    #[test]
    fn run_and_compare_on_the_simulator() {
        let exp = Experiment::new(scenario());
        // `run` accepts strings, owned specs and borrowed specs alike.
        let rep = exp.run("sfs:quantum=10ms").unwrap();
        let spec: PolicySpec = "sfs:quantum=10ms".parse().unwrap();
        assert_eq!(exp.run(&spec).unwrap().sched_name, rep.sched_name);
        assert_eq!(exp.run(spec).unwrap().sched_name, rep.sched_name);
        assert_eq!(rep.substrate, "sim");
        assert_eq!(rep.cpus, 2);
        assert!(rep.task("a").unwrap().service > rep.task("b").unwrap().service);
        assert!(rep.sim.is_some());

        let cmp = exp.compare(["sfs:quantum=10ms", "ts"]).unwrap();
        assert_eq!(cmp.runs.len(), 2);
        let deltas = cmp.deltas();
        // SFS honours 2:1:1; time sharing equalises → worse share error.
        assert!(deltas[1].share_error_delta > 0.0, "{deltas:?}");
        assert!(cmp.to_table().contains("SFS"));
    }

    #[test]
    fn malformed_scenario_surfaces_typed_error() {
        let cfg = SimConfig {
            cpus: 2,
            duration: Duration::from_millis(10),
            ..SimConfig::default()
        };
        let exp = Experiment::new(Scenario::new("bad", cfg).task(TaskSpec::new(
            "z",
            0,
            BehaviorSpec::Inf,
        )));
        let err = exp.run("sfs").unwrap_err();
        assert!(matches!(err, ExperimentError::Scenario(_)), "{err}");
        let err = exp.run("not-a-policy").unwrap_err();
        assert!(matches!(err, ExperimentError::Policy(_)), "{err}");

        // A zero-CPU machine must be a typed error, not a scheduler
        // constructor panic.
        let cfg = SimConfig {
            cpus: 0,
            duration: Duration::from_millis(10),
            ..SimConfig::default()
        };
        let exp = Experiment::new(Scenario::new("nocpu", cfg).task(TaskSpec::new(
            "t",
            1,
            BehaviorSpec::Inf,
        )));
        let err = exp.run("sfs").unwrap_err();
        assert!(
            matches!(err, ExperimentError::Scenario(ScenarioError::NoCpus)),
            "{err}"
        );
    }

    #[test]
    fn unknown_tenant_under_grouped_policy_is_a_typed_error() {
        let cfg = SimConfig {
            cpus: 2,
            duration: Duration::from_millis(50),
            ..SimConfig::default()
        };
        let scenario = Scenario::new("tenants", cfg)
            .tenant("batch", [TaskSpec::new("j", 1, BehaviorSpec::Inf)])
            .tenant("webapp", [TaskSpec::new("w", 1, BehaviorSpec::Inf)]);
        let exp = Experiment::new(scenario);
        // The policy only declares `batch`: `webapp` must not silently
        // run outside every group.
        let err = exp.run("sfs:groups(batch=sfs)").unwrap_err();
        assert_eq!(
            err,
            ExperimentError::UnknownTenant {
                tenant: "webapp".into()
            }
        );
        // A flat policy ignores tenants entirely.
        assert!(exp.run("sfs").is_ok());
        // A policy declaring both runs fine, with tenants in the report.
        let rep = exp.run("sfs:groups(batch=sfs,webapp=sfs)").unwrap();
        assert!(rep.task("j").unwrap().tenant.is_some());
        assert!(rep.task("w").unwrap().tenant.is_some());
    }
}
