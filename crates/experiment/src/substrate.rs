//! Execution substrates: anything that can run a [`Scenario`] under a
//! [`PolicySpec`] and produce a common [`RunReport`].
//!
//! Two are provided, mirroring the repository's two run-time stacks:
//!
//! * [`SimSubstrate`] — the deterministic discrete-event simulator
//!   (`sfs-sim`). Exact, fast, bit-reproducible; the default.
//! * [`RtSubstrate`] — the real-thread runtime (`sfs-rt`). The same
//!   declarative scenario drives actual OS threads through the
//!   userspace executor: arrivals become delayed spawns, kill times
//!   become behaviour deadlines, and sequential job streams become
//!   spawn-join loops. Runs take the scenario's duration in *wall
//!   clock* time, so keep rt scenarios short.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

use sfs_core::fault::FaultKind;
use sfs_core::policy::PolicySpec;
use sfs_core::task::{TenantId, Weight};
use sfs_core::time::{Duration, Time};
use sfs_metrics::Summary;
use sfs_rt::{drive_recording_until, DriveRecord, Executor, RtConfig};
use sfs_sim::{RunHealth, Scenario, StreamSpec, TaskSpec};
use sfs_trace::TraceRecorder;

use crate::report::{RunReport, TaskFate, TaskOutcome};
use crate::ExperimentError;

/// An execution environment for scenarios.
pub trait Substrate {
    /// Short substrate name for reports (`"sim"`, `"rt"`).
    fn name(&self) -> &'static str;

    /// Runs the scenario under the policy with scheduling events
    /// recorded into `rec` (pass [`TraceRecorder::off`] for a traceless
    /// run — the recorder hooks then cost one atomic load each).
    fn run_traced(
        &self,
        scenario: &Scenario,
        policy: &PolicySpec,
        rec: TraceRecorder,
    ) -> Result<RunReport, ExperimentError>;

    /// Runs the scenario under the policy, producing the common report.
    fn run(&self, scenario: &Scenario, policy: &PolicySpec) -> Result<RunReport, ExperimentError> {
        self.run_traced(scenario, policy, TraceRecorder::off())
    }
}

/// Rejects scenario tenants the policy's `groups(...)` clause does not
/// declare. Flat policies ignore tenant bindings entirely (the tenant
/// builder then only names tasks), but under a hierarchical policy an
/// unmatched tenant would silently run outside every group — a typed
/// error is the only honest outcome.
fn check_tenants(scenario: &Scenario, policy: &PolicySpec) -> Result<(), ExperimentError> {
    if policy.groups().is_empty() {
        return Ok(());
    }
    for spec in &scenario.tasks {
        if let Some(t) = &spec.tenant {
            if !policy.groups().iter().any(|g| g.name() == t.as_str()) {
                return Err(ExperimentError::UnknownTenant { tenant: t.clone() });
            }
        }
    }
    Ok(())
}

/// The deterministic discrete-event simulator substrate.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimSubstrate;

impl Substrate for SimSubstrate {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run_traced(
        &self,
        scenario: &Scenario,
        policy: &PolicySpec,
        rec: TraceRecorder,
    ) -> Result<RunReport, ExperimentError> {
        // Validate before building: scheduler constructors assert on a
        // zero-CPU machine, and that must be a typed error, not a panic.
        scenario.validate()?;
        check_tenants(scenario, policy)?;
        // The policy's `admit(...)` clause (if any) gates arrivals; the
        // scenario's fault plan (if any) rides inside `try_run_*`.
        let rep = scenario.try_run_traced_admitted(
            policy.build(scenario.config.cpus),
            rec,
            policy.admission().copied(),
        )?;
        Ok(RunReport::from_sim(&scenario.name, policy.clone(), rep))
    }
}

/// The real-thread runtime substrate: the scenario plays out in wall
/// clock time on OS threads gated by virtual CPUs.
#[derive(Debug, Clone, Copy)]
pub struct RtSubstrate {
    /// Quantum-expiry scan interval of the executor's timer thread.
    pub timer_interval: Duration,
}

impl Default for RtSubstrate {
    fn default() -> RtSubstrate {
        RtSubstrate {
            timer_interval: Duration::from_micros(250),
        }
    }
}

fn now_time(epoch: Instant) -> Time {
    Time(u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX))
}

fn sleep_until(epoch: Instant, t: Time) {
    let now = now_time(epoch);
    if t > now {
        std::thread::sleep(t.since(now).to_std());
    }
}

/// Spawns one executor task driving `spec`'s behaviour (bounded by
/// `stop_at`, if any), waits for it to finish, and returns its outcome.
///
/// `panic_at` wires an injected [`FaultKind::Panic`]: the body behaves
/// normally until that instant, then panics — the executor's reap path
/// must recover. A spawn refused by the policy's admission control
/// yields a zero-service [`TaskFate::Rejected`] outcome.
#[allow(clippy::too_many_arguments)]
fn run_rt_task(
    ex: &Executor,
    epoch: Instant,
    name: &str,
    weight: Weight,
    spec: &TaskSpec,
    tenant: Option<TenantId>,
    seed: u64,
    arrived: Time,
    panic_at: Option<Time>,
) -> TaskOutcome {
    let (tx, rx) = mpsc::channel::<(DriveRecord, Time)>();
    let behavior_spec = spec.behavior.clone();
    let stop_at = spec.stop_at;
    let spawned = ex.try_spawn_in_tenant(name, weight, tenant, move |ctx| {
        let behavior = behavior_spec.build(seed);
        // `stop_at` becomes a drive deadline: the phase in flight is
        // aborted without counting a completion, matching the
        // simulator's kill event. An injected panic caps the drive the
        // same way, then unwinds instead of exiting.
        let deadline = match panic_at {
            Some(at) => Some(stop_at.map_or(at, |s| s.min(at))),
            None => stop_at,
        };
        let rec = drive_recording_until(ctx, behavior, epoch, deadline);
        if let Some(at) = panic_at {
            if now_time(epoch) >= at {
                // Dropping `tx` tells the waiter the body unwound.
                panic!("injected fault: panic at {}ns", at.as_nanos());
            }
        }
        let _ = tx.send((rec, now_time(epoch)));
    });
    let handle = match spawned {
        Ok(h) => h,
        Err(_reason) => {
            return TaskOutcome {
                name: name.to_string(),
                weight: weight.get(),
                tenant,
                service: Duration::ZERO,
                completions: 0,
                responses: None,
                arrived,
                exited: Some(arrived),
                fate: TaskFate::Rejected,
            }
        }
    };
    // A panicking body drops the sender; fall back to an empty record.
    let (rec, ended, reaped) = match rx.recv() {
        Ok((rec, ended)) => (rec, ended, false),
        Err(_) => (DriveRecord::default(), now_time(epoch), true),
    };
    let service = handle.join_service();
    TaskOutcome {
        name: name.to_string(),
        weight: weight.get(),
        tenant,
        service,
        completions: rec.completions,
        responses: if rec.responses_ms.is_empty() {
            None
        } else {
            Some(Summary::from(rec.responses_ms.iter().copied()))
        },
        arrived,
        // Killed tasks record their kill time as the exit, like the
        // simulator does; reaped tasks exit at the reap.
        exited: (rec.finished || rec.deadline_hit || reaped).then_some(ended),
        fate: if reaped {
            TaskFate::Reaped
        } else {
            TaskFate::Ran
        },
    }
}

/// Issues a stream's jobs back to back until its horizon; each job is a
/// fresh executor task, arriving when the previous one exits (plus the
/// configured gap) — exactly the simulator's stream semantics.
fn run_rt_stream(
    ex: &Executor,
    epoch: Instant,
    stream: &StreamSpec,
    horizon: Time,
    seeds: &AtomicU64,
    outcomes: &Mutex<Vec<TaskOutcome>>,
) {
    let weight = Weight::new(stream.weight).expect("validated non-zero");
    let horizon = horizon.min(stream.until);
    let mut next = stream.first;
    let mut n = 0u64;
    while next < horizon {
        sleep_until(epoch, next);
        if now_time(epoch) >= horizon {
            break;
        }
        n += 1;
        let job = TaskSpec::new(
            &format!("{}#{}", stream.name, n),
            stream.weight,
            stream.job.clone(),
        );
        let arrived = now_time(epoch);
        let outcome = run_rt_task(
            ex,
            epoch,
            &job.name,
            weight,
            &job,
            None,
            // relaxed: unique-id counter; only atomicity matters.
            seeds.fetch_add(1, Ordering::Relaxed),
            arrived,
            None,
        );
        outcomes.lock().expect("outcome lock").push(outcome);
        next = now_time(epoch) + stream.gap;
    }
}

impl Substrate for RtSubstrate {
    fn name(&self) -> &'static str {
        "rt"
    }

    fn run_traced(
        &self,
        scenario: &Scenario,
        policy: &PolicySpec,
        rec: TraceRecorder,
    ) -> Result<RunReport, ExperimentError> {
        scenario.validate()?;
        check_tenants(scenario, policy)?;
        let cpus = scenario.config.cpus;
        let duration = scenario.config.duration;
        let horizon = Time(duration.as_nanos());
        // Sharded specs split the executor into per-shard locks; the
        // scheduler name is reconstructed from a throwaway build so the
        // report matches the simulator substrate's.
        let sched_name = policy.build(cpus).name().to_string();
        let ex = Executor::from_spec_traced(
            RtConfig {
                cpus,
                timer_interval: self.timer_interval,
            },
            policy,
            rec,
        );
        let epoch = Instant::now();
        let seeds = AtomicU64::new(scenario.config.seed);
        let outcomes: Mutex<Vec<TaskOutcome>> = Mutex::new(Vec::new());

        // Map the scenario's fault plan onto real-thread analogues:
        // `Panic{task}` wraps the body of the task at that spawn-order
        // index; `Stall`/`Jitter` delay the executor's timer thread (a
        // stalled quantum scan is the observable effect of either);
        // `WakeDrop` has no rt analogue — swallowing a real condvar
        // notify would deadlock an OS thread — and is skipped.
        let mut panic_ats: std::collections::HashMap<u64, Time> = std::collections::HashMap::new();
        let mut faults_wired = 0u64;
        if let Some(plan) = &scenario.faults {
            for ev in plan.sorted() {
                if ev.at > horizon {
                    continue;
                }
                match ev.kind {
                    FaultKind::Panic { task } => {
                        panic_ats.entry(task).or_insert(ev.at);
                        faults_wired += 1;
                    }
                    FaultKind::Stall { .. } | FaultKind::Jitter { .. } => faults_wired += 1,
                    FaultKind::WakeDrop { .. } => {}
                }
            }
        }

        std::thread::scope(|s| {
            let mut flat_index = 0u64;
            for spec in &scenario.tasks {
                let weight = Weight::new(spec.weight).expect("validated non-zero");
                // Like the simulator substrate: tenant names the policy
                // does not know run tenant-less (check_tenants already
                // rejected unknown names under hierarchical policies).
                let tenant = spec.tenant.as_deref().and_then(|g| ex.bind_tenant(g));
                for k in 0..spec.count.max(1) {
                    let name = if spec.count > 1 {
                        format!("{}#{}", spec.name, k + 1)
                    } else {
                        spec.name.clone()
                    };
                    // relaxed: unique-id counter; only atomicity matters.
                    let seed = seeds.fetch_add(1, Ordering::Relaxed);
                    let panic_at = panic_ats.get(&flat_index).copied();
                    flat_index += 1;
                    let (ex, outcomes) = (&ex, &outcomes);
                    s.spawn(move || {
                        // The simulator still processes an arrival landing
                        // exactly at the end of the run (zero service), so
                        // only strictly-later arrivals are dropped.
                        if spec.arrive > horizon {
                            return;
                        }
                        sleep_until(epoch, spec.arrive);
                        let outcome = run_rt_task(
                            ex,
                            epoch,
                            &name,
                            weight,
                            spec,
                            tenant,
                            seed,
                            spec.arrive,
                            panic_at,
                        );
                        outcomes.lock().expect("outcome lock").push(outcome);
                    });
                }
            }
            for stream in &scenario.streams {
                let (ex, outcomes, seeds) = (&ex, &outcomes, &seeds);
                s.spawn(move || run_rt_stream(ex, epoch, stream, horizon, seeds, outcomes));
            }
            if let Some(plan) = &scenario.faults {
                let faults = plan.sorted();
                let ex = &ex;
                s.spawn(move || {
                    for ev in faults {
                        if ev.at > horizon {
                            break;
                        }
                        sleep_until(epoch, ev.at);
                        match ev.kind {
                            FaultKind::Stall { dur, .. } | FaultKind::Jitter { dur, .. } => {
                                ex.inject_timer_jitter(dur);
                            }
                            FaultKind::Panic { .. } | FaultKind::WakeDrop { .. } => {}
                        }
                    }
                });
            }
            // The experiment clock: let the scenario play out, then stop
            // every cooperative loop.
            std::thread::sleep(duration.to_std());
            ex.stop();
        });
        ex.wait();

        let mut tasks = outcomes.into_inner().expect("outcome lock");
        tasks.sort_by(|a, b| a.arrived.cmp(&b.arrived).then_with(|| a.name.cmp(&b.name)));
        let sched_stats = ex.sched_stats();
        // Recovery is operational on this substrate: `ex.wait()`
        // returned, so every wired fault was survived — panics were
        // reaped, late timers caught up. A wedged executor would never
        // get here.
        let health = RunHealth {
            rejected: ex.rejected(),
            faults_injected: faults_wired,
            faults_recovered: faults_wired,
            invariant_violations: ex.invariant_violations(),
        };
        Ok(RunReport {
            scenario: scenario.name.clone(),
            substrate: self.name(),
            policy: policy.clone(),
            sched_name,
            cpus,
            duration,
            tasks,
            sched_stats,
            ctx_switches: ex.switches(),
            sim: None,
            trace_path: None,
            health,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_core::fault::FaultPlan;
    use sfs_sim::SimConfig;
    use sfs_workloads::BehaviorSpec;

    fn quick_cfg(cpus: u32, ms: u64) -> SimConfig {
        SimConfig {
            cpus,
            duration: Duration::from_millis(ms),
            ..SimConfig::default()
        }
    }

    #[test]
    fn rt_substrate_tracks_weights() {
        let scenario = Scenario::new("rt-weights", quick_cfg(1, 400))
            .task(TaskSpec::new("w3", 3, BehaviorSpec::Inf))
            .task(TaskSpec::new("w1", 1, BehaviorSpec::Inf));
        let policy: PolicySpec = "sfs:quantum=2ms".parse().unwrap();
        let rep = RtSubstrate::default().run(&scenario, &policy).unwrap();
        assert_eq!(rep.substrate, "rt");
        assert!(rep.sim.is_none());
        let heavy = rep.task("w3").unwrap().service.as_secs_f64();
        let light = rep.task("w1").unwrap().service.as_secs_f64();
        let ratio = heavy / light.max(1e-9);
        assert!((1.8..4.5).contains(&ratio), "w3:w1 = {ratio:.2}");
    }

    #[test]
    fn both_substrates_drive_sharded_specs() {
        // The same declarative scenario runs under a sharded spec on
        // the simulator (via PolicySpec::build) and on real threads
        // (via the per-shard-lock executor), with weights honoured.
        // Weights 3:1:1:1 on 2 CPUs are feasible: the heavy task
        // deserves a full CPU, each light one a third of the other.
        let scenario = Scenario::new("sharded", quick_cfg(2, 400))
            .task(TaskSpec::new("w3", 3, BehaviorSpec::Inf))
            .task(TaskSpec::new("w1", 1, BehaviorSpec::Inf).replicated(3));
        let policy: PolicySpec = "sfs:quantum=2ms,shards=2,rebalance=20ms".parse().unwrap();
        let sim = SimSubstrate.run(&scenario, &policy).unwrap();
        assert_eq!(sim.sched_name, "SFS(sharded)");
        let light = |rep: &crate::RunReport| {
            rep.tasks
                .iter()
                .filter(|t| t.name.starts_with("w1"))
                .map(|t| t.service.as_secs_f64())
                .sum::<f64>()
                / 3.0
        };
        let ratio = sim.task("w3").unwrap().service.as_secs_f64() / light(&sim);
        assert!((2.2..4.0).contains(&ratio), "sim w3:w1 = {ratio:.2}");
        let rt = RtSubstrate::default().run(&scenario, &policy).unwrap();
        assert_eq!(rt.sched_name, "SFS(sharded)");
        let ratio = rt.task("w3").unwrap().service.as_secs_f64() / light(&rt).max(1e-9);
        assert!((1.8..5.0).contains(&ratio), "rt w3:w1 = {ratio:.2}");
    }

    #[test]
    fn rt_substrate_honours_tenant_groups() {
        // Two tenants with shares 3:1, two infinitely hungry tasks
        // each: the hierarchical top level must apportion the CPU
        // between the tenants, not the four tasks.
        let scenario = Scenario::new("rt-tenants", quick_cfg(1, 400))
            .tenant(
                "gold",
                [TaskSpec::new("g", 1, BehaviorSpec::Inf).replicated(2)],
            )
            .tenant(
                "dev",
                [TaskSpec::new("d", 1, BehaviorSpec::Inf).replicated(2)],
            );
        let policy: PolicySpec = "sfs:groups(gold*3=sfs:quantum=2ms,dev=sfs:quantum=2ms)"
            .parse()
            .unwrap();
        let rep = RtSubstrate::default().run(&scenario, &policy).unwrap();
        assert_eq!(rep.sched_name, "SFS(hier)");
        let shares = rep.tenant_shares();
        assert_eq!(shares.len(), 2, "{shares:?}");
        let ratio = shares[0].1 / shares[1].1.max(1e-9);
        assert!((2.0..4.5).contains(&ratio), "gold:dev = {ratio:.2}");
        // Every task's outcome carries its tenant.
        for t in &rep.tasks {
            assert!(t.tenant.is_some(), "{} lost its tenant", t.name);
        }
    }

    #[test]
    fn rt_substrate_handles_arrivals_stops_and_streams() {
        let scenario = Scenario::new("rt-dynamics", quick_cfg(1, 350))
            .task(TaskSpec::new("base", 1, BehaviorSpec::Inf))
            .task(
                TaskSpec::new("late", 1, BehaviorSpec::Inf)
                    .arrive_at(Time::from_millis(150))
                    .stop_at(Time::from_millis(250)),
            )
            .stream(
                StreamSpec::new("job", 1, BehaviorSpec::Finite(Duration::from_millis(15)))
                    .until(Time::from_millis(200)),
            );
        let policy: PolicySpec = "sfs:quantum=2ms".parse().unwrap();
        let rep = RtSubstrate::default().run(&scenario, &policy).unwrap();
        let late = rep.task("late").unwrap();
        assert_eq!(late.arrived, Time::from_millis(150));
        assert!(late.exited.is_some(), "stop_at must exit the task");
        assert!(
            rep.tasks.iter().any(|t| t.name.starts_with("job#")),
            "stream issued no jobs: {:?}",
            rep.tasks.iter().map(|t| &t.name).collect::<Vec<_>>()
        );
        // Jobs are sequential: job#2 exists only if job#1 finished.
        if let Some(j2) = rep.task("job#2") {
            let j1 = rep.task("job#1").unwrap();
            assert!(j2.arrived >= j1.arrived);
        }
    }

    #[test]
    fn sim_substrate_applies_admission_and_faults() {
        let scenario = Scenario::new("armor", quick_cfg(1, 400))
            .task(TaskSpec::new("a", 1, BehaviorSpec::Inf).replicated(4))
            .with_faults(
                FaultPlan::new().with(Time::from_millis(100), FaultKind::Panic { task: 0 }),
            );
        let policy: PolicySpec = "sfs:quantum=2ms,admit(max=2)".parse().unwrap();
        let rep = SimSubstrate.run(&scenario, &policy).unwrap();
        assert_eq!(rep.health.rejected, 2, "{:?}", rep.health);
        assert_eq!(rep.health.faults_injected, 1);
        assert_eq!(rep.health.faults_recovered, 1);
        assert_eq!(rep.health.invariant_violations, 0);
        let rejected = rep
            .tasks
            .iter()
            .filter(|t| t.fate == TaskFate::Rejected)
            .count();
        assert_eq!(rejected, 2);
        assert!(
            rep.tasks.iter().any(|t| t.fate == TaskFate::Reaped),
            "panic fault must reap its target"
        );
        // Rejected tasks got exactly nothing.
        for t in &rep.tasks {
            if t.fate == TaskFate::Rejected {
                assert_eq!(t.service, Duration::ZERO, "{}", t.name);
            }
        }
    }

    #[test]
    fn rt_substrate_wires_fault_plans() {
        let scenario = Scenario::new("rt-chaos", quick_cfg(1, 300))
            .task(TaskSpec::new("victim", 1, BehaviorSpec::Inf))
            .task(TaskSpec::new("survivor", 1, BehaviorSpec::Inf))
            .with_faults(
                FaultPlan::new()
                    .with(Time::from_millis(80), FaultKind::Panic { task: 0 })
                    .with(
                        Time::from_millis(120),
                        FaultKind::Jitter {
                            cpu: 0,
                            dur: Duration::from_millis(5),
                        },
                    ),
            );
        let policy: PolicySpec = "sfs:quantum=2ms".parse().unwrap();
        let rep = RtSubstrate::default().run(&scenario, &policy).unwrap();
        assert_eq!(rep.task("victim").unwrap().fate, TaskFate::Reaped);
        assert_eq!(rep.task("survivor").unwrap().fate, TaskFate::Ran);
        assert_eq!(rep.health.faults_injected, 2);
        assert_eq!(rep.health.faults_recovered, 2);
        assert_eq!(rep.health.invariant_violations, 0);
        // The survivor inherits the whole CPU after the reap.
        assert!(
            rep.task("survivor").unwrap().service > rep.task("victim").unwrap().service,
            "survivor {:?} vs victim {:?}",
            rep.task("survivor").unwrap().service,
            rep.task("victim").unwrap().service
        );
    }
}
