//! Deterministic capture/replay: a run's scenario, policy and recorded
//! event stream serialized together, so a real-thread run can later be
//! re-driven on the simulator (or anywhere else) for lockstep
//! comparison.
//!
//! A [`Capture`] is self-contained JSON: the declarative [`Scenario`]
//! (including its base RNG seed — every per-task seed derives from it
//! in spec order on both substrates), the policy string, and the full
//! [`EventTrace`]. [`crate::Experiment::capture`] produces one;
//! [`crate::Experiment::replay`] consumes one.

use std::path::Path;

use sfs_core::fault::FaultPlan;
use sfs_core::policy::PolicySpec;
use sfs_core::time::{Duration, Time};
use sfs_sim::{Scenario, SimConfig, StreamSpec, TaskSpec};
use sfs_trace::json::{obj, want, want_arr, want_str, want_u64};
use sfs_trace::{EventTrace, Json};
use sfs_workloads::BehaviorSpec;

use crate::ExperimentError;

/// A serialized run: scenario + policy + recorded event stream.
#[derive(Debug, Clone)]
pub struct Capture {
    /// The declarative scenario the run executed (carries the base RNG
    /// seed in `config.seed`).
    pub scenario: Scenario,
    /// The policy it ran under.
    pub policy: PolicySpec,
    /// Every scheduling event the run recorded.
    pub trace: EventTrace,
}

fn dur_json(d: Duration) -> Json {
    Json::Int(i128::from(d.as_nanos()))
}

fn time_json(t: Time) -> Json {
    Json::Int(i128::from(t.as_nanos()))
}

fn want_dur(v: &Json, key: &str) -> Result<Duration, String> {
    Ok(Duration::from_nanos(
        want_u64(v, key).map_err(|e| e.to_string())?,
    ))
}

fn want_time(v: &Json, key: &str) -> Result<Time, String> {
    Ok(Time(want_u64(v, key).map_err(|e| e.to_string())?))
}

fn behavior_json(b: &BehaviorSpec) -> Json {
    match *b {
        BehaviorSpec::Inf => obj(vec![("kind", Json::Str("inf".into()))]),
        BehaviorSpec::Dhrystone => obj(vec![("kind", Json::Str("dhrystone".into()))]),
        BehaviorSpec::Finite(total) => obj(vec![
            ("kind", Json::Str("finite".into())),
            ("total", dur_json(total)),
        ]),
        BehaviorSpec::Interact { think, burst } => obj(vec![
            ("kind", Json::Str("interact".into())),
            ("think", dur_json(think)),
            ("burst", dur_json(burst)),
        ]),
        BehaviorSpec::Mpeg { fps, frame_cost } => obj(vec![
            ("kind", Json::Str("mpeg".into())),
            ("fps", Json::Int(i128::from(fps))),
            ("frame_cost", dur_json(frame_cost)),
        ]),
        BehaviorSpec::Compile { burst, io } => obj(vec![
            ("kind", Json::Str("compile".into())),
            ("burst", dur_json(burst)),
            ("io", dur_json(io)),
        ]),
        BehaviorSpec::Sim { burst, io } => obj(vec![
            ("kind", Json::Str("sim".into())),
            ("burst", dur_json(burst)),
            ("io", dur_json(io)),
        ]),
    }
}

fn behavior_from_json(v: &Json) -> Result<BehaviorSpec, String> {
    match want_str(v, "kind").map_err(|e| e.to_string())? {
        "inf" => Ok(BehaviorSpec::Inf),
        "dhrystone" => Ok(BehaviorSpec::Dhrystone),
        "finite" => Ok(BehaviorSpec::Finite(want_dur(v, "total")?)),
        "interact" => Ok(BehaviorSpec::Interact {
            think: want_dur(v, "think")?,
            burst: want_dur(v, "burst")?,
        }),
        "mpeg" => Ok(BehaviorSpec::Mpeg {
            fps: want_u64(v, "fps").map_err(|e| e.to_string())?,
            frame_cost: want_dur(v, "frame_cost")?,
        }),
        "compile" => Ok(BehaviorSpec::Compile {
            burst: want_dur(v, "burst")?,
            io: want_dur(v, "io")?,
        }),
        "sim" => Ok(BehaviorSpec::Sim {
            burst: want_dur(v, "burst")?,
            io: want_dur(v, "io")?,
        }),
        other => Err(format!("unknown behavior kind {other:?}")),
    }
}

fn task_json(t: &TaskSpec) -> Json {
    obj(vec![
        ("name", Json::Str(t.name.clone())),
        ("weight", Json::Int(i128::from(t.weight))),
        ("arrive", time_json(t.arrive)),
        ("stop_at", t.stop_at.map_or(Json::Null, time_json)),
        ("behavior", behavior_json(&t.behavior)),
        ("count", Json::Int(t.count as i128)),
        (
            "tenant",
            t.tenant
                .as_ref()
                .map_or(Json::Null, |s| Json::Str(s.clone())),
        ),
    ])
}

fn task_from_json(v: &Json) -> Result<TaskSpec, String> {
    Ok(TaskSpec {
        name: want_str(v, "name").map_err(|e| e.to_string())?.to_string(),
        weight: want_u64(v, "weight").map_err(|e| e.to_string())?,
        arrive: want_time(v, "arrive")?,
        stop_at: match want(v, "stop_at").map_err(|e| e.to_string())? {
            Json::Null => None,
            t => Some(Time(t.as_u64().ok_or("stop_at must be nanoseconds")?)),
        },
        behavior: behavior_from_json(want(v, "behavior").map_err(|e| e.to_string())?)?,
        count: usize::try_from(want_u64(v, "count").map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?,
        tenant: match want(v, "tenant").map_err(|e| e.to_string())? {
            Json::Null => None,
            t => Some(t.as_str().ok_or("tenant must be a string")?.to_string()),
        },
    })
}

fn stream_json(s: &StreamSpec) -> Json {
    obj(vec![
        ("name", Json::Str(s.name.clone())),
        ("weight", Json::Int(i128::from(s.weight))),
        ("first", time_json(s.first)),
        ("job", behavior_json(&s.job)),
        ("gap", dur_json(s.gap)),
        ("until", time_json(s.until)),
    ])
}

fn stream_from_json(v: &Json) -> Result<StreamSpec, String> {
    Ok(StreamSpec {
        name: want_str(v, "name").map_err(|e| e.to_string())?.to_string(),
        weight: want_u64(v, "weight").map_err(|e| e.to_string())?,
        first: want_time(v, "first")?,
        job: behavior_from_json(want(v, "job").map_err(|e| e.to_string())?)?,
        gap: want_dur(v, "gap")?,
        until: want_time(v, "until")?,
    })
}

fn config_json(c: &SimConfig) -> Json {
    obj(vec![
        ("cpus", Json::Int(i128::from(c.cpus))),
        ("duration", dur_json(c.duration)),
        ("ctx_switch", dur_json(c.ctx_switch)),
        ("sample_every", dur_json(c.sample_every)),
        ("track_gms", Json::Bool(c.track_gms)),
        ("seed", Json::Int(i128::from(c.seed))),
        ("lean", Json::Bool(c.lean)),
    ])
}

fn config_from_json(v: &Json) -> Result<SimConfig, String> {
    Ok(SimConfig {
        cpus: u32::try_from(want_u64(v, "cpus").map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?,
        duration: want_dur(v, "duration")?,
        ctx_switch: want_dur(v, "ctx_switch")?,
        sample_every: want_dur(v, "sample_every")?,
        track_gms: want(v, "track_gms")
            .map_err(|e| e.to_string())?
            .as_bool()
            .ok_or("track_gms must be a bool")?,
        seed: want_u64(v, "seed").map_err(|e| e.to_string())?,
        // Absent in captures taken before lean mode existed.
        lean: want(v, "lean")
            .ok()
            .and_then(Json::as_bool)
            .unwrap_or(false),
    })
}

fn scenario_json(s: &Scenario) -> Json {
    obj(vec![
        ("name", Json::Str(s.name.clone())),
        ("config", config_json(&s.config)),
        ("tasks", Json::Arr(s.tasks.iter().map(task_json).collect())),
        (
            "streams",
            Json::Arr(s.streams.iter().map(stream_json).collect()),
        ),
        (
            "tenants",
            Json::Arr(s.tenants.iter().map(|t| Json::Str(t.clone())).collect()),
        ),
        (
            "faults",
            s.faults
                .as_ref()
                .map_or(Json::Null, |p| Json::Str(p.to_string())),
        ),
    ])
}

fn scenario_from_json(v: &Json) -> Result<Scenario, String> {
    let mut tasks = Vec::new();
    for t in want_arr(v, "tasks").map_err(|e| e.to_string())? {
        tasks.push(task_from_json(t)?);
    }
    let mut streams = Vec::new();
    for s in want_arr(v, "streams").map_err(|e| e.to_string())? {
        streams.push(stream_from_json(s)?);
    }
    let mut tenants = Vec::new();
    for t in want_arr(v, "tenants").map_err(|e| e.to_string())? {
        tenants.push(t.as_str().ok_or("tenants must be strings")?.to_string());
    }
    // Absent in captures taken before fault injection existed.
    let faults = match want(v, "faults").ok() {
        None | Some(Json::Null) => None,
        Some(f) => Some(
            f.as_str()
                .ok_or("faults must be a fault-plan string")?
                .parse::<FaultPlan>()
                .map_err(|e| e.to_string())?,
        ),
    };
    Ok(Scenario {
        name: want_str(v, "name").map_err(|e| e.to_string())?.to_string(),
        config: config_from_json(want(v, "config").map_err(|e| e.to_string())?)?,
        tasks,
        streams,
        tenants,
        faults,
    })
}

impl Capture {
    /// Serializes the capture to its JSON document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("version", Json::Int(1)),
            ("scenario", scenario_json(&self.scenario)),
            ("policy", Json::Str(self.policy.to_string())),
            ("trace", self.trace.to_json()),
        ])
    }

    /// Rebuilds a capture from its JSON document.
    pub fn from_json(v: &Json) -> Result<Capture, String> {
        let version = want_u64(v, "version").map_err(|e| e.to_string())?;
        if version != 1 {
            return Err(format!("unsupported capture version {version}"));
        }
        let policy: PolicySpec = want_str(v, "policy")
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|e| format!("capture policy: {e}"))?;
        Ok(Capture {
            scenario: scenario_from_json(want(v, "scenario").map_err(|e| e.to_string())?)?,
            policy,
            trace: EventTrace::from_json(want(v, "trace").map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?,
        })
    }

    /// Writes the capture as JSON to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ExperimentError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json().to_string()).map_err(|e| ExperimentError::Io {
            path: path.display().to_string(),
            msg: e.to_string(),
        })
    }

    /// Reads a capture back from a JSON file written by
    /// [`Capture::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Capture, ExperimentError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| ExperimentError::Io {
            path: path.display().to_string(),
            msg: e.to_string(),
        })?;
        let json = Json::parse(&text).map_err(|e| ExperimentError::Capture(e.to_string()))?;
        Capture::from_json(&json).map_err(ExperimentError::Capture)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_trace::TraceMeta;

    fn sample_scenario() -> Scenario {
        Scenario::new(
            "roundtrip",
            SimConfig {
                cpus: 3,
                duration: Duration::from_millis(123),
                seed: 0xdead_beef_dead_beef,
                ..SimConfig::default()
            },
        )
        .task(
            TaskSpec::new("a", 2, BehaviorSpec::Finite(Duration::from_millis(7)))
                .arrive_at(Time::from_millis(1))
                .stop_at(Time::from_millis(99)),
        )
        .task(
            TaskSpec::new(
                "b",
                1,
                BehaviorSpec::Mpeg {
                    fps: 30,
                    frame_cost: Duration::from_millis(3),
                },
            )
            .replicated(4),
        )
        .tenant(
            "gold",
            [TaskSpec::new(
                "g",
                1,
                BehaviorSpec::Interact {
                    think: Duration::from_millis(5),
                    burst: Duration::from_micros(700),
                },
            )],
        )
        .stream(
            StreamSpec::new(
                "jobs",
                3,
                BehaviorSpec::Compile {
                    burst: Duration::from_millis(4),
                    io: Duration::from_millis(1),
                },
            )
            .until(Time::from_millis(80)),
        )
        .with_faults(
            FaultPlan::new()
                .with(
                    Time::from_millis(10),
                    sfs_core::fault::FaultKind::Panic { task: 1 },
                )
                .with(
                    Time::from_millis(20),
                    sfs_core::fault::FaultKind::Stall {
                        cpu: 0,
                        dur: Duration::from_millis(2),
                    },
                ),
        )
    }

    #[test]
    fn capture_round_trips_through_json() {
        let cap = Capture {
            scenario: sample_scenario(),
            policy: "sfs:quantum=5ms".parse().unwrap(),
            trace: EventTrace::new(TraceMeta {
                substrate: "rt".into(),
                scenario: "roundtrip".into(),
                policy: "sfs:quantum=5ms".into(),
                cpus: 3,
                tenants: vec!["gold".into()],
            }),
        };
        let text = cap.to_json().to_string();
        let back = Capture::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.scenario.name, cap.scenario.name);
        assert_eq!(back.scenario.config, cap.scenario.config);
        assert_eq!(back.scenario.tasks, cap.scenario.tasks);
        assert_eq!(back.scenario.streams, cap.scenario.streams);
        assert_eq!(back.scenario.tenants, cap.scenario.tenants);
        assert_eq!(back.scenario.faults, cap.scenario.faults);
        assert_eq!(back.policy, cap.policy);
        assert_eq!(back.trace.meta.scenario, "roundtrip");
        // The 64-bit seed survives exactly (integers are not parsed
        // through f64).
        assert_eq!(back.scenario.config.seed, 0xdead_beef_dead_beef);
    }

    #[test]
    fn malformed_captures_are_typed_errors() {
        assert!(Capture::from_json(&Json::parse("{}").unwrap()).is_err());
        let bad = r#"{"version": 2, "scenario": {}, "policy": "sfs", "trace": {}}"#;
        assert!(Capture::from_json(&Json::parse(bad).unwrap())
            .unwrap_err()
            .contains("version"));
    }
}
