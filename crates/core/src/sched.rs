//! The scheduler interface shared by all policies and substrates.
//!
//! Schedulers are pure run-queue policies: a substrate (the discrete-event
//! simulator in `sfs-sim` or the thread runtime in `sfs-rt`) owns the
//! clock and the processors and drives the policy through the events
//! below, mirroring how the Linux kernel invokes its scheduler (§3.1):
//! "whenever a quantum expires or one of the currently running threads
//! blocks, the kernel invokes the SFS scheduler".
//!
//! # Protocol
//!
//! * [`Scheduler::attach`] introduces a new runnable task.
//! * [`Scheduler::pick_next`] selects a ready task to run on a CPU and
//!   marks it running. The quantum length need *not* be fixed here; the
//!   substrate reports actual usage later (a property SFS is explicitly
//!   designed around, §2.3).
//! * [`Scheduler::put_prev`] returns a running task with the CPU time it
//!   actually consumed and why it stopped (quantum expiry, voluntary
//!   yield, block, or exit). Tag updates happen here.
//! * [`Scheduler::wake`] makes a blocked task runnable again.
//! * [`Scheduler::detach`] removes a non-running task (e.g. killed while
//!   ready or blocked).
//!
//! Every mutation that changes the runnable set must trigger weight
//! readjustment inside the policy (§3.1).

use crate::fixed::Fixed;
use crate::task::{CpuId, TaskId, Weight};
use crate::time::{Duration, Time};

/// Why a running task is giving up its processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchReason {
    /// The quantum expired (or a wakeup preempted the task); the task is
    /// still runnable and goes back on the run queue.
    Preempted,
    /// The task voluntarily yielded but remains runnable.
    Yielded,
    /// The task blocked on I/O or a synchronisation event.
    Blocked,
    /// The task exited; the scheduler forgets it entirely.
    Exited,
}

impl SwitchReason {
    /// True if the task remains runnable after the switch.
    pub fn still_runnable(self) -> bool {
        matches!(self, SwitchReason::Preempted | SwitchReason::Yielded)
    }
}

/// Counters describing the work a scheduler has done; used by the
/// overhead experiments (Table 1, Fig. 7) and the heuristic-accuracy
/// experiment (Fig. 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Calls to `pick_next` that returned a task.
    pub picks: u64,
    /// Scheduling instances at which the virtual time advanced.
    pub vt_changes: u64,
    /// Bulk surplus recomputations + re-sorts of the surplus queue.
    pub full_resorts: u64,
    /// Individual queue nodes moved during re-sorts.
    pub nodes_moved: u64,
    /// Invocations of the weight readjustment algorithm.
    pub readjust_calls: u64,
    /// Threads whose weight was clamped across all readjustments.
    pub weights_clamped: u64,
    /// Picks served by the bounded-lookahead heuristic (§3.2).
    pub heuristic_picks: u64,
    /// Queue entries examined across all heuristic picks.
    pub heuristic_scans: u64,
    /// Heuristic picks audited against the exact algorithm (Fig. 3).
    pub heuristic_audits: u64,
    /// Audited picks where the heuristic chose a true minimum-surplus task.
    pub heuristic_hits: u64,
    /// Tag renormalisations (wrap-around handling, §3.2).
    pub renormalizations: u64,
    /// Picks that moved a task to a different processor than its last.
    pub migrations: u64,
    /// Tasks migrated between per-φ buckets after readjustment-driven
    /// weight changes (SFS bucket queue).
    pub bucket_migrations: u64,
    /// Queue entries examined across all exact bucket-queue picks (SFS);
    /// `bucket_scans / picks` is the measured per-decision scan cost.
    pub bucket_scans: u64,
    /// Distinct weight-class buckets at the instant the stats were read
    /// (a gauge, not a counter; SFS bucket queue).
    pub weight_classes: u64,
    /// Runnable-set mutations processed: arrivals (`attach`), departures
    /// (`detach`), wakeups, weight changes and quantum-end requeues
    /// (`put_prev`). This is the *event* path, complementary to the
    /// pick path counted by `picks`.
    pub events: u64,
    /// Data-structure steps consumed across all events: queue search
    /// hops plus readjustment bookkeeping. `event_steps / events` is the
    /// measured per-event cost; the `repro churn` sweep tracks it
    /// against the runnable-set size.
    pub event_steps: u64,
}

/// A proportional-share (or baseline) CPU scheduling policy.
///
/// All methods take the current time so tag-based policies can account
/// service precisely; policies that do not need it ignore it.
///
/// Implementations must be deterministic: given the same event sequence
/// they must make the same decisions (ties broken by task id / FIFO).
pub trait Scheduler: Send {
    /// A short human-readable policy name (e.g. `"SFS"`).
    fn name(&self) -> &'static str;

    /// Number of processors this policy schedules for.
    fn cpus(&self) -> u32;

    /// Introduces a new task in the runnable state.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `id` is already attached.
    fn attach(&mut self, id: TaskId, w: Weight, now: Time);

    /// Removes a task that is **not currently running** (ready or
    /// blocked). Running tasks leave via [`Scheduler::put_prev`] with
    /// [`SwitchReason::Exited`].
    fn detach(&mut self, id: TaskId, now: Time);

    /// Changes a task's weight on the fly (the `setweight` syscall, §3.1).
    fn set_weight(&mut self, id: TaskId, w: Weight, now: Time);

    /// Returns the task's user-assigned weight, if attached.
    fn weight_of(&self, id: TaskId) -> Option<Weight>;

    /// Returns the task's instantaneous (readjusted) weight `φ_i`, if the
    /// policy computes one.
    fn adjusted_weight_of(&self, _id: TaskId) -> Option<Fixed> {
        None
    }

    /// Makes a blocked task runnable.
    fn wake(&mut self, id: TaskId, now: Time);

    /// Picks a ready task to run on `cpu`, marking it running.
    /// Returns `None` if no ready task exists.
    fn pick_next(&mut self, cpu: CpuId, now: Time) -> Option<TaskId>;

    /// Returns the previously picked task, reporting the CPU time `ran`
    /// it actually consumed and the reason it stopped.
    fn put_prev(&mut self, id: TaskId, ran: Duration, reason: SwitchReason, now: Time);

    /// The quantum to grant the task at dispatch. Policies with epoch
    /// budgets (time sharing) return the remaining budget; tag-based
    /// policies return their fixed maximum quantum.
    fn time_slice(&self, id: TaskId) -> Duration;

    /// Whether waking `woken` should preempt `running` (which has been on
    /// a CPU for `ran_so_far`). Default: never (pure quantum-driven).
    fn wake_preempts(
        &self,
        _woken: TaskId,
        _running: TaskId,
        _ran_so_far: Duration,
        _now: Time,
    ) -> bool {
        false
    }

    /// Number of runnable (ready + running) tasks.
    fn nr_runnable(&self) -> usize;

    /// Total number of attached tasks (runnable + blocked).
    fn nr_tasks(&self) -> usize;

    /// Work counters for overhead reporting.
    fn stats(&self) -> SchedStats;

    /// The policy's virtual time, if it maintains one.
    fn virtual_time(&self) -> Option<Fixed> {
        None
    }

    /// Verifies internal data-structure invariants, panicking on any
    /// violation. The default does nothing; policies with a checker
    /// (SFS) override it so stress tests can audit any boxed policy.
    fn check_invariants(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_reason_runnability() {
        assert!(SwitchReason::Preempted.still_runnable());
        assert!(SwitchReason::Yielded.still_runnable());
        assert!(!SwitchReason::Blocked.still_runnable());
        assert!(!SwitchReason::Exited.still_runnable());
    }

    #[test]
    fn stats_default_is_zero() {
        let s = SchedStats::default();
        assert_eq!(s.picks, 0);
        assert_eq!(s.readjust_calls, 0);
        assert_eq!(s.full_resorts, 0);
    }
}
