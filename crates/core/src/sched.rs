//! The scheduler interface shared by all policies and substrates.
//!
//! Schedulers are pure run-queue policies: a substrate (the discrete-event
//! simulator in `sfs-sim` or the thread runtime in `sfs-rt`) owns the
//! clock and the processors and drives the policy through the events
//! below, mirroring how the Linux kernel invokes its scheduler (§3.1):
//! "whenever a quantum expires or one of the currently running threads
//! blocks, the kernel invokes the SFS scheduler".
//!
//! # Protocol
//!
//! * [`Scheduler::attach`] introduces a new runnable task.
//! * [`Scheduler::pick_next`] selects a ready task to run on a CPU and
//!   marks it running. The quantum length need *not* be fixed here; the
//!   substrate reports actual usage later (a property SFS is explicitly
//!   designed around, §2.3).
//! * [`Scheduler::put_prev`] returns a running task with the CPU time it
//!   actually consumed and why it stopped (quantum expiry, voluntary
//!   yield, block, or exit). Tag updates happen here.
//! * [`Scheduler::wake`] makes a blocked task runnable again.
//! * [`Scheduler::detach`] removes a non-running task (e.g. killed while
//!   ready or blocked).
//!
//! Every mutation that changes the runnable set must trigger weight
//! readjustment inside the policy (§3.1).

use crate::fixed::Fixed;
use crate::task::{CpuId, TaskId, TenantId, Weight};
use crate::time::{Duration, Time};

/// Why a running task is giving up its processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchReason {
    /// The quantum expired (or a wakeup preempted the task); the task is
    /// still runnable and goes back on the run queue.
    Preempted,
    /// The task voluntarily yielded but remains runnable.
    Yielded,
    /// The task blocked on I/O or a synchronisation event.
    Blocked,
    /// The task exited; the scheduler forgets it entirely.
    Exited,
}

impl SwitchReason {
    /// True if the task remains runnable after the switch.
    pub fn still_runnable(self) -> bool {
        matches!(self, SwitchReason::Preempted | SwitchReason::Yielded)
    }
}

/// Counters describing the work a scheduler has done; used by the
/// overhead experiments (Table 1, Fig. 7) and the heuristic-accuracy
/// experiment (Fig. 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Calls to `pick_next` that returned a task.
    pub picks: u64,
    /// Scheduling instances at which the virtual time advanced.
    pub vt_changes: u64,
    /// Bulk surplus recomputations + re-sorts of the surplus queue.
    pub full_resorts: u64,
    /// Individual queue nodes moved during re-sorts.
    pub nodes_moved: u64,
    /// Invocations of the weight readjustment algorithm.
    pub readjust_calls: u64,
    /// Threads whose weight was clamped across all readjustments.
    pub weights_clamped: u64,
    /// Picks served by the bounded-lookahead heuristic (§3.2).
    pub heuristic_picks: u64,
    /// Queue entries examined across all heuristic picks.
    pub heuristic_scans: u64,
    /// Heuristic picks audited against the exact algorithm (Fig. 3).
    pub heuristic_audits: u64,
    /// Audited picks where the heuristic chose a true minimum-surplus task.
    pub heuristic_hits: u64,
    /// Tag renormalisations (wrap-around handling, §3.2).
    pub renormalizations: u64,
    /// Picks that moved a task to a different processor than its last.
    pub migrations: u64,
    /// Tasks migrated between per-φ buckets after readjustment-driven
    /// weight changes (SFS bucket queue).
    pub bucket_migrations: u64,
    /// Queue entries examined across all exact bucket-queue picks (SFS);
    /// `bucket_scans / picks` is the measured per-decision scan cost.
    pub bucket_scans: u64,
    /// Distinct weight-class buckets at the instant the stats were read
    /// (a gauge, not a counter; SFS bucket queue).
    pub weight_classes: u64,
    /// Runnable-set mutations processed: arrivals (`attach`), departures
    /// (`detach`), wakeups, weight changes and quantum-end requeues
    /// (`put_prev`). This is the *event* path, complementary to the
    /// pick path counted by `picks`.
    pub events: u64,
    /// Data-structure steps consumed across all events: queue search
    /// hops plus readjustment bookkeeping. `event_steps / events` is the
    /// measured per-event cost; the `repro churn` sweep tracks it
    /// against the runnable-set size.
    pub event_steps: u64,
    /// Ready tasks migrated between run-queue shards by an idle
    /// processor's steal path (sharded scheduling only).
    pub shard_steals: u64,
    /// Ready tasks migrated by the periodic surplus-rebalance pass
    /// (sharded scheduling only).
    pub shard_rebalances: u64,
    /// Wakeups placed on a different shard than the one the task last
    /// ran on because its home shard was overloaded (sharded only).
    pub shard_wake_migrations: u64,
}

impl SchedStats {
    /// Field-wise sum of two stats blocks, used to aggregate per-shard
    /// policy instances into one machine-wide view. `weight_classes` is
    /// a gauge, not a counter, so it takes the maximum instead.
    #[must_use]
    pub fn merged(self, o: SchedStats) -> SchedStats {
        SchedStats {
            picks: self.picks + o.picks,
            vt_changes: self.vt_changes + o.vt_changes,
            full_resorts: self.full_resorts + o.full_resorts,
            nodes_moved: self.nodes_moved + o.nodes_moved,
            readjust_calls: self.readjust_calls + o.readjust_calls,
            weights_clamped: self.weights_clamped + o.weights_clamped,
            heuristic_picks: self.heuristic_picks + o.heuristic_picks,
            heuristic_scans: self.heuristic_scans + o.heuristic_scans,
            heuristic_audits: self.heuristic_audits + o.heuristic_audits,
            heuristic_hits: self.heuristic_hits + o.heuristic_hits,
            renormalizations: self.renormalizations + o.renormalizations,
            migrations: self.migrations + o.migrations,
            bucket_migrations: self.bucket_migrations + o.bucket_migrations,
            bucket_scans: self.bucket_scans + o.bucket_scans,
            weight_classes: self.weight_classes.max(o.weight_classes),
            events: self.events + o.events,
            event_steps: self.event_steps + o.event_steps,
            shard_steals: self.shard_steals + o.shard_steals,
            shard_rebalances: self.shard_rebalances + o.shard_rebalances,
            shard_wake_migrations: self.shard_wake_migrations + o.shard_wake_migrations,
        }
    }
}

/// A proportional-share (or baseline) CPU scheduling policy.
///
/// All methods take the current time so tag-based policies can account
/// service precisely; policies that do not need it ignore it.
///
/// Implementations must be deterministic: given the same event sequence
/// they must make the same decisions (ties broken by task id / FIFO).
pub trait Scheduler: Send {
    /// A short human-readable policy name (e.g. `"SFS"`).
    fn name(&self) -> &'static str;

    /// Number of processors this policy schedules for.
    fn cpus(&self) -> u32;

    /// Introduces a new task in the runnable state.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `id` is already attached.
    fn attach(&mut self, id: TaskId, w: Weight, now: Time);

    /// Resolves a tenant group name to the [`TenantId`] this policy
    /// schedules it under, for policies with hierarchical groups.
    /// Returns `None` (the default) when the policy is flat or does not
    /// know the name; substrates treat that as "no tenant routing".
    fn bind_tenant(&self, _group: &str) -> Option<TenantId> {
        None
    }

    /// Introduces a new runnable task under a tenant group. Flat
    /// policies ignore the tenant (the default forwards to
    /// [`Scheduler::attach`]); hierarchical policies route the task
    /// into the tenant's group queue.
    fn attach_tenant(&mut self, id: TaskId, w: Weight, _tenant: Option<TenantId>, now: Time) {
        self.attach(id, w, now);
    }

    /// Introduces a whole batch of runnable tasks at once. Equivalent
    /// to one [`Scheduler::attach_tenant`] call per entry (the
    /// default); policies whose attach path does work global to the
    /// runnable set — e.g. the hierarchical §2.1 readjustment walk —
    /// override this to run that work once per batch instead of once
    /// per task.
    fn attach_batch(&mut self, batch: &[(TaskId, Weight, Option<TenantId>)], now: Time) {
        for &(id, w, tenant) in batch {
            self.attach_tenant(id, w, tenant, now);
        }
    }

    /// [`Scheduler::attach_batch`] under the name event substrates use
    /// for a run of same-tick arrival events. Kept separate so a
    /// substrate can batch arrivals without implying anything about
    /// wakeups; the default forwards to `attach_batch`.
    fn arrive_batch(&mut self, batch: &[(TaskId, Weight, Option<TenantId>)], now: Time) {
        self.attach_batch(batch, now);
    }

    /// Makes a batch of blocked tasks runnable at once, in slice order.
    /// Equivalent to one [`Scheduler::wake`] call per entry (the
    /// default); policies whose wake path does per-event work global to
    /// the runnable set — weight readjustment, group re-enqueue —
    /// override this to run that work once per batch.
    fn wake_batch(&mut self, ids: &[TaskId], now: Time) {
        for &id in ids {
            self.wake(id, now);
        }
    }

    /// The tenant group a task was attached under, if the policy
    /// tracks one.
    fn tenant_of(&self, _id: TaskId) -> Option<TenantId> {
        None
    }

    /// Removes a task that is **not currently running** (ready or
    /// blocked). Running tasks leave via [`Scheduler::put_prev`] with
    /// [`SwitchReason::Exited`].
    fn detach(&mut self, id: TaskId, now: Time);

    /// Forcibly removes a task on an abnormal exit (a panic, a kill, a
    /// watchdog recovery) — the detach-with-release path. The task may
    /// be ready or blocked, but not running (stop it via
    /// [`Scheduler::put_prev`] with [`SwitchReason::Exited`] first).
    ///
    /// Semantically identical to [`Scheduler::detach`] — the weight is
    /// released and the §2.1 readjustment re-run so surviving tasks'
    /// shares stay exact — but kept as a separate entry point so
    /// substrates can route *every* forced-exit path through one
    /// method and policies can instrument reaps distinctly if they
    /// need to. The default forwards to `detach`.
    fn reap(&mut self, id: TaskId, now: Time) {
        self.detach(id, now);
    }

    /// Changes a task's weight on the fly (the `setweight` syscall, §3.1).
    fn set_weight(&mut self, id: TaskId, w: Weight, now: Time);

    /// Returns the task's user-assigned weight, if attached.
    fn weight_of(&self, id: TaskId) -> Option<Weight>;

    /// Returns the task's instantaneous (readjusted) weight `φ_i`, if the
    /// policy computes one.
    fn adjusted_weight_of(&self, _id: TaskId) -> Option<Fixed> {
        None
    }

    /// Makes a blocked task runnable.
    fn wake(&mut self, id: TaskId, now: Time);

    /// Picks a ready task to run on `cpu`, marking it running.
    /// Returns `None` if no ready task exists.
    fn pick_next(&mut self, cpu: CpuId, now: Time) -> Option<TaskId>;

    /// Returns the previously picked task, reporting the CPU time `ran`
    /// it actually consumed and the reason it stopped.
    fn put_prev(&mut self, id: TaskId, ran: Duration, reason: SwitchReason, now: Time);

    /// The quantum to grant the task at dispatch. Policies with epoch
    /// budgets (time sharing) return the remaining budget; tag-based
    /// policies return their fixed maximum quantum.
    fn time_slice(&self, id: TaskId) -> Duration;

    /// Whether waking `woken` should preempt `running` (which has been on
    /// a CPU for `ran_so_far`). Default: never (pure quantum-driven).
    fn wake_preempts(
        &self,
        _woken: TaskId,
        _running: TaskId,
        _ran_so_far: Duration,
        _now: Time,
    ) -> bool {
        false
    }

    /// The ready task this policy can best afford to hand to another
    /// run queue — the *highest*-surplus (most-ahead) ready task — for
    /// shard rebalancing. `None` when no ready task exists or the
    /// policy has no ordering to nominate one (stealing is then
    /// disabled for it; placement balancing still applies).
    fn steal_candidate(&self) -> Option<TaskId> {
        None
    }

    /// The task's surplus charged with `ran_so_far` of in-flight CPU
    /// time, on the policy's own scale. Substrates use it to rank
    /// wake-preemption victims: among the running tasks a wakeup may
    /// preempt, the one with the largest charged surplus is the worst
    /// (lowest-priority) victim. `None` if the policy has no surplus
    /// notion; substrates then preempt the first eligible victim.
    fn charged_surplus(&self, _id: TaskId, _ran_so_far: Duration, _now: Time) -> Option<Fixed> {
        None
    }

    /// Number of runnable (ready + running) tasks.
    fn nr_runnable(&self) -> usize;

    /// Total number of attached tasks (runnable + blocked).
    fn nr_tasks(&self) -> usize;

    /// Work counters for overhead reporting.
    fn stats(&self) -> SchedStats;

    /// The policy's virtual time, if it maintains one.
    fn virtual_time(&self) -> Option<Fixed> {
        None
    }

    /// Verifies internal data-structure invariants, panicking on any
    /// violation. The default does nothing; policies with a checker
    /// (SFS) override it so stress tests can audit any boxed policy.
    fn check_invariants(&self) {}
}

/// Picks which running task a wakeup should preempt: among every
/// processor whose running task loses to the woken one (per
/// [`Scheduler::wake_preempts`]), the *worst* victim — the one with
/// the largest charged surplus (lowest priority). For policies that
/// expose no surplus, the first eligible processor is kept (their
/// `wake_preempts` is all-or-nothing anyway). Candidates are
/// `(slot, running task, time on CPU)` triples; returns the winning
/// `(slot, running task)`.
///
/// Shared by both substrates so the victim rule cannot drift between
/// them: the simulator's `preempt_check` and the rt executor's wake
/// paths both call this.
pub fn select_preemption_victim(
    sched: &dyn Scheduler,
    woken: TaskId,
    candidates: &[(usize, TaskId, Duration)],
    now: Time,
) -> Option<(usize, TaskId)> {
    let mut worst: Option<(Fixed, usize, TaskId)> = None;
    let mut first: Option<(usize, TaskId)> = None;
    for &(slot, running, ran) in candidates {
        if !sched.wake_preempts(woken, running, ran, now) {
            continue;
        }
        if first.is_none() {
            first = Some((slot, running));
        }
        if let Some(alpha) = sched.charged_surplus(running, ran, now) {
            if worst.is_none_or(|(b, _, _)| alpha > b) {
                worst = Some((alpha, slot, running));
            }
        }
    }
    worst.map(|(_, slot, id)| (slot, id)).or(first)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_reason_runnability() {
        assert!(SwitchReason::Preempted.still_runnable());
        assert!(SwitchReason::Yielded.still_runnable());
        assert!(!SwitchReason::Blocked.still_runnable());
        assert!(!SwitchReason::Exited.still_runnable());
    }

    #[test]
    fn stats_default_is_zero() {
        let s = SchedStats::default();
        assert_eq!(s.picks, 0);
        assert_eq!(s.readjust_calls, 0);
        assert_eq!(s.full_resorts, 0);
    }
}
