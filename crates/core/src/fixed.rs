//! Fixed-point arithmetic for virtual-time tags.
//!
//! The paper's kernel implementation (§3.2) cannot use floating point
//! inside Linux 2.2, so start tags, finish tags and surplus values are
//! kept in integers scaled by a constant factor `10^n`; the authors found
//! `n = 4` adequate. We reproduce that representation: a [`Fixed`] is an
//! `i128` mantissa interpreted as `mantissa / SCALE` with
//! `SCALE = 10_000`.
//!
//! A 128-bit mantissa gives enormous headroom (the paper instead
//! periodically renormalises 32-bit tags against the minimum start tag;
//! we implement the same renormalisation in the schedulers as a
//! behaviour-preserving port of their wrap-around handling, and keep the
//! wide mantissa as a safety net).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// The paper's scaling factor: captures 4 digits past the decimal point.
pub const SCALE: i128 = 10_000;

/// A fixed-point number with [`SCALE`] fractional resolution.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fixed(i128);

impl Fixed {
    /// Zero.
    pub const ZERO: Fixed = Fixed(0);
    /// One.
    pub const ONE: Fixed = Fixed(SCALE);
    /// The maximum representable value; used as an "infinity" sentinel.
    pub const MAX: Fixed = Fixed(i128::MAX);

    /// Constructs the fixed-point representation of an integer.
    pub const fn from_int(v: i64) -> Fixed {
        Fixed(v as i128 * SCALE)
    }

    /// Constructs the fixed-point representation of `num / den`.
    ///
    /// Rounds toward zero, exactly like the kernel's integer division.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub const fn from_ratio(num: i64, den: i64) -> Fixed {
        assert!(den != 0, "from_ratio: zero denominator");
        Fixed(num as i128 * SCALE / den as i128)
    }

    /// Constructs a value from a raw scaled mantissa.
    pub const fn from_raw(raw: i128) -> Fixed {
        Fixed(raw)
    }

    /// Returns the raw scaled mantissa.
    pub const fn raw(self) -> i128 {
        self.0
    }

    /// Converts to `f64` (reporting only; never used in scheduling).
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / SCALE as f64
    }

    /// Truncates to an integer (toward zero).
    pub const fn trunc(self) -> i64 {
        (self.0 / SCALE) as i64
    }

    /// True if the value is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the smaller of two values.
    pub fn min(self, other: Fixed) -> Fixed {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two values.
    pub fn max(self, other: Fixed) -> Fixed {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Absolute value.
    pub const fn abs(self) -> Fixed {
        Fixed(self.0.abs())
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Fixed) -> Fixed {
        Fixed(self.0.saturating_add(rhs.0))
    }

    /// Multiplies two fixed-point values, rescaling the product.
    ///
    /// `(a * SCALE) * (b * SCALE) / SCALE = a*b * SCALE`.
    pub fn mul_fixed(self, rhs: Fixed) -> Fixed {
        Fixed(self.0 * rhs.0 / SCALE)
    }

    /// Divides two fixed-point values, rescaling the quotient.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_fixed(self, rhs: Fixed) -> Fixed {
        assert!(rhs.0 != 0, "div_fixed: division by zero");
        Fixed(self.0 * SCALE / rhs.0)
    }

    /// Divides an unscaled integer quantity (e.g. a quantum length in
    /// nanoseconds) by this fixed-point weight, producing a fixed-point
    /// result. This is the `q / φ_i` operation used in tag updates; in the
    /// kernel it is written `q * 10^n / φ_i` (§3.2).
    ///
    /// # Panics
    ///
    /// Panics if the weight is zero.
    pub fn div_into_int(self, q: u64) -> Fixed {
        assert!(self.0 != 0, "div_into_int: zero weight");
        // `q * SCALE * SCALE / mantissa` keeps the result in fixed-point:
        // q/(mantissa/SCALE) scaled by SCALE.
        Fixed(q as i128 * SCALE * SCALE / self.0)
    }
}

impl Add for Fixed {
    type Output = Fixed;
    fn add(self, rhs: Fixed) -> Fixed {
        Fixed(self.0 + rhs.0)
    }
}

impl AddAssign for Fixed {
    fn add_assign(&mut self, rhs: Fixed) {
        self.0 += rhs.0;
    }
}

impl Sub for Fixed {
    type Output = Fixed;
    fn sub(self, rhs: Fixed) -> Fixed {
        Fixed(self.0 - rhs.0)
    }
}

impl SubAssign for Fixed {
    fn sub_assign(&mut self, rhs: Fixed) {
        self.0 -= rhs.0;
    }
}

impl Neg for Fixed {
    type Output = Fixed;
    fn neg(self) -> Fixed {
        Fixed(-self.0)
    }
}

impl Mul<i64> for Fixed {
    type Output = Fixed;
    fn mul(self, rhs: i64) -> Fixed {
        Fixed(self.0 * rhs as i128)
    }
}

impl Div<i64> for Fixed {
    type Output = Fixed;
    fn div(self, rhs: i64) -> Fixed {
        Fixed(self.0 / rhs as i128)
    }
}

impl fmt::Debug for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fixed({})", self.to_f64())
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let int = self.0 / SCALE;
        let frac = (self.0 % SCALE).unsigned_abs();
        if self.0 < 0 && int == 0 {
            write!(f, "-0.{frac:04}")
        } else {
            write!(f, "{int}.{frac:04}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn integer_roundtrip() {
        assert_eq!(Fixed::from_int(0), Fixed::ZERO);
        assert_eq!(Fixed::from_int(1), Fixed::ONE);
        assert_eq!(Fixed::from_int(42).trunc(), 42);
        assert_eq!(Fixed::from_int(-3).trunc(), -3);
    }

    #[test]
    fn ratio_truncates_like_kernel_division() {
        // 1/3 with 4 fractional digits is 0.3333.
        assert_eq!(Fixed::from_ratio(1, 3).raw(), 3_333);
        assert_eq!(Fixed::from_ratio(2, 3).raw(), 6_666);
        assert_eq!(Fixed::from_ratio(10, 1), Fixed::from_int(10));
    }

    #[test]
    fn tag_update_matches_paper_example() {
        // SFQ counter from Example 1: S_i += q / w_i with q = 1ms and
        // w = 10 advances the tag by 0.1 per quantum.
        let w = Fixed::from_int(10);
        let q_ns = 1u64; // abstract unit; the ratio is what matters
        let delta = w.div_into_int(q_ns);
        assert_eq!(delta, Fixed::from_ratio(1, 10));
        // After 1000 quanta the tag reaches 100.
        let mut s = Fixed::ZERO;
        for _ in 0..1000 {
            s += delta;
        }
        assert_eq!(s, Fixed::from_int(100));
    }

    #[test]
    fn mul_div_fixed() {
        let a = Fixed::from_ratio(3, 2); // 1.5
        let b = Fixed::from_int(4);
        assert_eq!(a.mul_fixed(b), Fixed::from_int(6));
        assert_eq!(b.div_fixed(a), Fixed::from_ratio(8, 3));
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Fixed::from_ratio(1, 2);
        let b = Fixed::from_ratio(2, 3);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!((-a).abs(), a);
    }

    #[test]
    fn display_formats_fractions() {
        assert_eq!(format!("{}", Fixed::from_ratio(1, 2)), "0.5000");
        assert_eq!(format!("{}", Fixed::from_int(3)), "3.0000");
        assert_eq!(format!("{}", -Fixed::from_ratio(1, 4)), "-0.2500");
    }

    #[test]
    fn div_into_int_is_q_over_phi() {
        // q = 200ms in ns, phi = 3: expect 200e6/3 with 4-digit precision.
        let phi = Fixed::from_int(3);
        let got = phi.div_into_int(200_000_000);
        let want = Fixed::from_raw(200_000_000i128 * SCALE / 3);
        assert_eq!(got, want);
    }

    proptest! {
        #[test]
        fn from_int_ordering_is_preserved(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
            let (fa, fb) = (Fixed::from_int(a), Fixed::from_int(b));
            prop_assert_eq!(a.cmp(&b), fa.cmp(&fb));
        }

        #[test]
        fn add_sub_roundtrip(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
            let (fa, fb) = (Fixed::from_int(a), Fixed::from_int(b));
            prop_assert_eq!(fa + fb - fb, fa);
        }

        #[test]
        fn ratio_error_is_below_one_ulp(num in 0i64..1_000_000, den in 1i64..1_000_000) {
            let f = Fixed::from_ratio(num, den);
            let exact = num as f64 / den as f64;
            let err = (f.to_f64() - exact).abs();
            prop_assert!(err < 1.0 / SCALE as f64, "err = {err}");
        }

        #[test]
        fn div_into_int_error_is_small(q in 1u64..1_000_000_000, w in 1i64..100_000) {
            let phi = Fixed::from_int(w);
            let got = phi.div_into_int(q).to_f64();
            let exact = q as f64 / w as f64;
            // Relative error bounded by the fixed-point resolution.
            prop_assert!((got - exact).abs() <= 1.0 / SCALE as f64 + exact * 1e-12);
        }
    }
}
