//! Borrowed virtual time (BVT) [Duda & Cheriton, SOSP'99].
//!
//! BVT is "a derivative of SFQ with an additional latency parameter"
//! (§1.2): each thread's *actual* virtual time `A_i` advances by
//! `q / w_i` as it runs, and the scheduler picks the minimum *effective*
//! virtual time `E_i = A_i − (warp_i if warped)`. Latency-sensitive
//! threads are given a positive warp so they jump ahead of the queue on
//! wakeup while their long-run share is still governed by their weight.
//! With every warp at zero BVT reduces to SFQ, which a unit test checks.
//!
//! Like the other GPS instantiations, BVT inherits the infeasible-weights
//! pathology on SMPs; the optional readjustment wrapper (§2.1) repairs
//! it.

use std::collections::HashMap;

use crate::feasible::FeasibleWeights;
use crate::fixed::Fixed;
use crate::queues::{IndexedList, KeyCounter, NodeRef, Order};
use crate::sched::{SchedStats, Scheduler, SwitchReason};
use crate::task::{CpuId, TaskId, TaskState, Weight};
use crate::time::{Duration, Time};

/// Tuning knobs for [`Bvt`].
#[derive(Debug, Clone)]
pub struct BvtConfig {
    /// Maximum quantum granted per dispatch.
    pub quantum: Duration,
    /// Apply weight readjustment (§2.1).
    pub readjust: bool,
}

impl Default for BvtConfig {
    fn default() -> BvtConfig {
        BvtConfig {
            quantum: Duration::from_millis(200),
            readjust: false,
        }
    }
}

#[derive(Debug)]
struct BvtTask {
    weight: Weight,
    /// Actual virtual time `A_i`.
    avt: Fixed,
    /// Warp offset granted to this thread (virtual-time units).
    warp: Fixed,
    /// Whether the warp is currently applied (set on wakeup).
    warped: bool,
    state: TaskState,
    node: Option<NodeRef>,
}

impl BvtTask {
    fn evt(&self) -> Fixed {
        if self.warped {
            self.avt - self.warp
        } else {
            self.avt
        }
    }
}

/// The borrowed-virtual-time scheduler.
pub struct Bvt {
    cfg: BvtConfig,
    cpus: u32,
    tasks: HashMap<TaskId, BvtTask>,
    feas: FeasibleWeights,
    /// Ready+running tasks ordered by effective virtual time.
    evt_q: IndexedList,
    /// Runnable *actual* virtual times, tracked incrementally: the
    /// queue above is EVT-ordered (warped entries jump ahead), so the
    /// wakeup floor (minimum AVT) would otherwise need an O(n) scan
    /// per arrival or wakeup.
    avts: KeyCounter,
    /// Scheduler virtual time: minimum AVT seen, for wakeup flooring.
    svt: Fixed,
    stats: SchedStats,
}

impl Bvt {
    /// BVT with all warps zero (SFQ-equivalent).
    pub fn new(cpus: u32) -> Bvt {
        Bvt::with_config(cpus, BvtConfig::default())
    }

    /// BVT with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn with_config(cpus: u32, cfg: BvtConfig) -> Bvt {
        assert!(cpus > 0, "need at least one processor");
        let readjust = cfg.readjust;
        Bvt {
            cfg,
            cpus,
            tasks: HashMap::new(),
            feas: FeasibleWeights::new(cpus, readjust),
            evt_q: IndexedList::new(Order::Ascending),
            avts: KeyCounter::new(),
            svt: Fixed::ZERO,
            stats: SchedStats::default(),
        }
    }

    /// Grants a warp (in virtual-time units) to a latency-sensitive task.
    pub fn set_warp(&mut self, id: TaskId, warp: Fixed) {
        self.tasks.get_mut(&id).expect("unknown task").warp = warp;
    }

    fn min_avt(&self) -> Fixed {
        // Minimum AVT over runnable threads, in O(log n).
        self.avts.min().unwrap_or(self.svt)
    }

    fn link(&mut self, id: TaskId) {
        let evt = self.tasks[&id].evt();
        let node = self.evt_q.insert(evt, id);
        self.tasks.get_mut(&id).unwrap().node = Some(node);
    }

    fn unlink(&mut self, id: TaskId) {
        if let Some(n) = self.tasks.get_mut(&id).unwrap().node.take() {
            self.evt_q.remove(n);
        }
    }
}

impl Scheduler for Bvt {
    fn name(&self) -> &'static str {
        if self.cfg.readjust {
            "BVT+readjust"
        } else {
            "BVT"
        }
    }

    fn cpus(&self) -> u32 {
        self.cpus
    }

    fn attach(&mut self, id: TaskId, w: Weight, _now: Time) {
        assert!(!self.tasks.contains_key(&id), "task {id} attached twice");
        self.stats.events += 1;
        let avt = self.min_avt();
        self.avts.insert(avt);
        self.tasks.insert(
            id,
            BvtTask {
                weight: w,
                avt,
                warp: Fixed::ZERO,
                warped: false,
                state: TaskState::Ready,
                node: None,
            },
        );
        self.feas.insert(id, w);
        self.link(id);
    }

    fn detach(&mut self, id: TaskId, _now: Time) {
        self.stats.events += 1;
        let state = self.tasks[&id].state;
        assert!(!state.is_running(), "detach of running task {id}");
        if state.is_runnable() {
            let w = self.tasks[&id].weight;
            self.avts.remove(self.tasks[&id].avt);
            self.unlink(id);
            self.feas.remove(id, w);
        }
        self.tasks.remove(&id);
    }

    fn set_weight(&mut self, id: TaskId, w: Weight, _now: Time) {
        let old = self.tasks[&id].weight;
        if old == w {
            return;
        }
        self.stats.events += 1;
        self.tasks.get_mut(&id).unwrap().weight = w;
        if self.tasks[&id].state.is_runnable() {
            self.feas.set_weight(id, old, w);
        }
    }

    fn weight_of(&self, id: TaskId) -> Option<Weight> {
        self.tasks.get(&id).map(|t| t.weight)
    }

    fn adjusted_weight_of(&self, id: TaskId) -> Option<Fixed> {
        let t = self.tasks.get(&id)?;
        Some(self.feas.phi(id, t.weight))
    }

    fn wake(&mut self, id: TaskId, _now: Time) {
        self.stats.events += 1;
        self.svt = self.min_avt();
        {
            let svt = self.svt;
            let t = self.tasks.get_mut(&id).expect("waking unknown task");
            assert!(matches!(t.state, TaskState::Blocked));
            // BVT floors a waking thread's AVT at the scheduler virtual
            // time (no sleeper credit) and applies its warp.
            t.avt = t.avt.max(svt);
            t.warped = !t.warp.is_zero();
            t.state = TaskState::Ready;
        }
        self.avts.insert(self.tasks[&id].avt);
        let w = self.tasks[&id].weight;
        self.feas.insert(id, w);
        self.link(id);
    }

    fn pick_next(&mut self, cpu: CpuId, _now: Time) -> Option<TaskId> {
        let picked = self
            .evt_q
            .iter()
            .map(|(_, id)| id)
            .find(|id| matches!(self.tasks[id].state, TaskState::Ready))?;
        self.tasks.get_mut(&picked).unwrap().state = TaskState::Running(cpu);
        self.stats.picks += 1;
        Some(picked)
    }

    fn put_prev(&mut self, id: TaskId, ran: Duration, reason: SwitchReason, _now: Time) {
        self.stats.events += 1;
        let w = {
            let t = &self.tasks[&id];
            assert!(t.state.is_running(), "put_prev of non-running {id}");
            t.weight
        };
        let phi = self.feas.phi(id, w);
        let old_avt = {
            let t = self.tasks.get_mut(&id).unwrap();
            let old_avt = t.avt;
            t.avt += phi.div_into_int(ran.as_nanos());
            // The warp applies only to the dispatch straight after a
            // wakeup; once the thread has run it competes normally.
            t.warped = false;
            old_avt
        };
        match reason {
            SwitchReason::Preempted | SwitchReason::Yielded => {
                self.avts.update(old_avt, self.tasks[&id].avt);
                let evt = self.tasks[&id].evt();
                let node = self.tasks[&id].node.expect("runnable without node");
                self.evt_q.update_key(node, evt);
                self.tasks.get_mut(&id).unwrap().state = TaskState::Ready;
            }
            SwitchReason::Blocked => {
                self.avts.remove(old_avt);
                self.unlink(id);
                self.tasks.get_mut(&id).unwrap().state = TaskState::Blocked;
                self.feas.remove(id, w);
            }
            SwitchReason::Exited => {
                self.avts.remove(old_avt);
                self.unlink(id);
                self.feas.remove(id, w);
                self.tasks.remove(&id);
            }
        }
    }

    fn time_slice(&self, _id: TaskId) -> Duration {
        self.cfg.quantum
    }

    fn nr_runnable(&self) -> usize {
        self.evt_q.len()
    }

    fn nr_tasks(&self) -> usize {
        self.tasks.len()
    }

    fn stats(&self) -> SchedStats {
        let mut s = self.stats;
        s.readjust_calls = self.feas.calls;
        s.weights_clamped = self.feas.clamps;
        s.event_steps = self.evt_q.steps() + self.avts.steps() + self.feas.event_steps();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sfq::Sfq;
    use crate::testkit::{assert_close, MiniSim};

    #[test]
    fn proportional_on_uniprocessor() {
        let mut sim = MiniSim::new(Bvt::new(1));
        sim.spawn(1, 1);
        sim.spawn(2, 5);
        sim.run_quanta(6000);
        assert_close(sim.ratio(2, 1), 5.0, 0.01, "5:1");
    }

    #[test]
    fn zero_warp_matches_sfq_decisions() {
        let mut bvt = Bvt::new(1);
        let mut sfq = Sfq::new(1);
        let mut now = Time::ZERO;
        for (i, w) in [2u64, 1, 3].iter().enumerate() {
            bvt.attach(TaskId(i as u64), Weight::new(*w).unwrap(), now);
            sfq.attach(TaskId(i as u64), Weight::new(*w).unwrap(), now);
        }
        for step in 0..300 {
            let a = bvt.pick_next(CpuId(0), now);
            let b = sfq.pick_next(CpuId(0), now);
            assert_eq!(a, b, "diverged at step {step}");
            let id = a.unwrap();
            now += Duration::from_millis(1);
            bvt.put_prev(id, Duration::from_millis(1), SwitchReason::Preempted, now);
            sfq.put_prev(id, Duration::from_millis(1), SwitchReason::Preempted, now);
        }
    }

    #[test]
    fn warped_wakeup_jumps_the_queue() {
        let mut s = Bvt::new(1);
        s.attach(TaskId(1), Weight::DEFAULT, Time::ZERO);
        s.attach(TaskId(2), Weight::DEFAULT, Time::ZERO);
        s.set_warp(TaskId(2), Fixed::from_int(1_000_000_000));
        // T2 blocks; T1 runs a while.
        let first = s.pick_next(CpuId(0), Time::ZERO).unwrap();
        if first == TaskId(2) {
            s.put_prev(
                first,
                Duration::from_millis(1),
                SwitchReason::Blocked,
                Time::ZERO,
            );
        } else {
            s.put_prev(
                first,
                Duration::from_millis(1),
                SwitchReason::Preempted,
                Time::ZERO,
            );
            let t2 = s.pick_next(CpuId(0), Time::ZERO).unwrap();
            assert_eq!(t2, TaskId(2));
            s.put_prev(
                t2,
                Duration::from_millis(1),
                SwitchReason::Blocked,
                Time::ZERO,
            );
        }
        for _ in 0..5 {
            let id = s.pick_next(CpuId(0), Time::ZERO).unwrap();
            assert_eq!(id, TaskId(1));
            s.put_prev(
                id,
                Duration::from_millis(1),
                SwitchReason::Preempted,
                Time::ZERO,
            );
        }
        // On wakeup the warped task is dispatched first.
        s.wake(TaskId(2), Time::ZERO);
        assert_eq!(s.pick_next(CpuId(0), Time::ZERO), Some(TaskId(2)));
    }

    #[test]
    fn readjustment_clamps_on_smp() {
        let mut sim = MiniSim::new(Bvt::with_config(
            2,
            BvtConfig {
                readjust: true,
                ..BvtConfig::default()
            },
        ));
        sim.spawn(1, 1);
        sim.spawn(2, 10);
        sim.run_quanta(400);
        assert_close(sim.ratio(2, 1), 1.0, 0.02, "clamped 1:1");
    }
}
