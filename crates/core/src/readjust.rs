//! The weight readjustment algorithm (§2.1, Figure 2).
//!
//! A weight assignment is *feasible* on a `p`-processor machine iff no
//! thread demands more than the capacity of one processor:
//!
//! ```text
//! w_i / Σ_j w_j  ≤  1/p        (feasibility constraint, Eq. 1)
//! ```
//!
//! The readjustment algorithm translates an infeasible assignment into the
//! *closest* feasible one: threads violating the constraint are clamped so
//! their requested share becomes exactly `1/p`, and all other weights are
//! untouched. The paper proves at most `p − 1` threads can be infeasible,
//! so the algorithm only inspects a prefix of the weight-sorted run queue
//! and runs in `O(p)` given that ordering.
//!
//! Two implementations are provided:
//!
//! * [`readjust_reference`] — a direct transliteration of the recursive
//!   procedure in Figure 2, using exact rational arithmetic. Used as the
//!   test oracle.
//! * [`readjust`] — the production `O(p)` iterative form used by the
//!   schedulers, based on the closed form derived below.
//!
//! **Closed form.** Let the runnable weights be sorted in descending
//! order. Walk the prefix: thread `i` (0-based) is infeasible iff
//! `w_i · (p − i) > Σ_{j ≥ i} w_j`. Let `m` be the number of infeasible
//! threads found before the walk stops and `T = Σ_{j ≥ m} w_j` the weight
//! of the feasible tail. Unfolding the recursion in Figure 2 shows every
//! infeasible thread receives the *same* adjusted weight
//! `φ = T / (p − m)`, which makes each of their shares exactly
//! `φ / (m·φ + T) = 1/p`. The reference implementation and a property
//! test confirm the equivalence.

use crate::fixed::Fixed;

/// Outcome of a readjustment pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Readjustment {
    /// Number of threads (a prefix of the weight-descending order) whose
    /// weights were clamped. At most `p − 1`.
    pub clamped: usize,
    /// The common adjusted weight assigned to each clamped thread,
    /// or `None` when nothing was clamped.
    pub cap: Option<Fixed>,
}

impl Readjustment {
    /// A pass that found every weight feasible.
    pub const UNCHANGED: Readjustment = Readjustment {
        clamped: 0,
        cap: None,
    };

    /// Returns the instantaneous weight `φ_i` for the thread at
    /// `rank` (0-based position in the weight-descending order) whose raw
    /// weight is `w`.
    pub fn phi(&self, rank: usize, w: u64) -> Fixed {
        match self.cap {
            Some(cap) if rank < self.clamped => cap,
            _ => Fixed::from_int(w as i64),
        }
    }
}

/// Checks the feasibility constraint (Eq. 1) for every weight.
///
/// `weights` need not be sorted. Returns `true` iff
/// `w_i · p ≤ Σ_j w_j` for all `i`.
pub fn is_feasible(weights: &[u64], cpus: u32) -> bool {
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    weights.iter().all(|&w| (w as u128) * cpus as u128 <= total)
}

/// Checks feasibility of fixed-point instantaneous weights.
pub fn is_feasible_fixed(phis: &[Fixed], cpus: u32) -> bool {
    let total: i128 = phis.iter().map(|f| f.raw()).sum();
    phis.iter().all(|f| f.raw() * cpus as i128 <= total)
}

/// Runs the iterative `O(p)` readjustment over weights sorted in
/// descending order.
///
/// Only the first `min(p − 1, t)` entries are ever inspected; the walk
/// stops at the first feasible thread (all later threads have smaller
/// weights and are therefore feasible too, §2.1).
///
/// Degenerate case: if *every* runnable thread is clamped the feasible
/// tail is empty (`T = 0`), which happens only when `t < p`. Each thread
/// can then run on its own processor continuously, so any equal assignment
/// is exact; we use `φ = 1`.
///
/// # Panics
///
/// Panics (debug builds) if `weights_desc` is not sorted descending.
pub fn readjust(weights_desc: &[u64], cpus: u32) -> Readjustment {
    debug_assert!(
        weights_desc.windows(2).all(|w| w[0] >= w[1]),
        "weights must be sorted in descending order"
    );
    let p = cpus as u128;
    if p <= 1 || weights_desc.is_empty() {
        // On a uniprocessor every assignment is feasible.
        return Readjustment::UNCHANGED;
    }

    let total: u128 = weights_desc.iter().map(|&w| w as u128).sum();
    let mut rem_sum = total;
    let mut rem_p = p;
    let mut clamped = 0usize;

    for &w in weights_desc {
        if rem_p <= 1 {
            break;
        }
        // Infeasible iff w / rem_sum > 1 / rem_p  ⇔  w · rem_p > rem_sum.
        if (w as u128) * rem_p > rem_sum {
            rem_sum -= w as u128;
            rem_p -= 1;
            clamped += 1;
        } else {
            break;
        }
    }

    if clamped == 0 {
        return Readjustment::UNCHANGED;
    }

    let cap = if rem_sum == 0 {
        // Fewer runnable threads than processors; equal weights are exact.
        Fixed::ONE
    } else {
        Fixed::from_ratio(rem_sum as i64, rem_p as i64)
    };
    Readjustment {
        clamped,
        cap: Some(cap),
    }
}

/// Capacity-generalized readjustment, used for *group*-level
/// feasibility in [`crate::hier`].
///
/// §2.1 assumes each entity is a thread that can consume at most one
/// processor. A tenant **group** with `c` runnable members can consume
/// up to `c` processors, so the feasibility constraint generalizes to
///
/// ```text
/// φ_g · p  ≤  c_g · Σ_h φ_h        (group feasibility)
/// ```
///
/// with `c_g = min(runnable members, p)`. The same greedy argument
/// applies with entities ordered by `w/c` descending: entity `g` is
/// infeasible iff `w_g · rem_p > c_g · rem_w` (remaining sums excluding
/// already-clamped entities), each clamp removes `c_g` processors of
/// capacity, and every clamped entity lands exactly *at* its capacity:
/// `φ_g = c_g · T / (p − Σ_clamped c)` where `T` is the weight of the
/// feasible tail. With all capacities 1 this reduces to [`readjust`]
/// (a property test below pins the equivalence).
///
/// `entries` is a slice of `(weight, capacity)` pairs in any order;
/// capacities must be ≥ 1. Returns the instantaneous weights in input
/// order plus the number of clamped entries. At most `p − 1` entries
/// are ever clamped, so only the top `p − 1` by `w/c` are inspected
/// (selected in O(n), not sorted).
pub fn readjust_capped(entries: &[(u64, u32)], cpus: u32) -> (Vec<Fixed>, usize) {
    debug_assert!(entries.iter().all(|&(_, c)| c >= 1), "capacities are >= 1");
    let mut phis: Vec<Fixed> = entries
        .iter()
        .map(|&(w, _)| Fixed::from_int(w as i64))
        .collect();
    if cpus <= 1 || entries.is_empty() {
        return (phis, 0);
    }
    let p = u128::from(cpus);
    let ratio_desc = |&a: &usize, &b: &usize| {
        // w_a/c_a vs w_b/c_b, descending, by cross-multiplication.
        let (wa, ca) = entries[a];
        let (wb, cb) = entries[b];
        (u128::from(wb) * u128::from(ca)).cmp(&(u128::from(wa) * u128::from(cb)))
    };
    let mut order: Vec<usize> = (0..entries.len()).collect();
    let prefix = (cpus as usize - 1).min(order.len());
    if order.len() > prefix {
        order.select_nth_unstable_by(prefix - 1, ratio_desc);
    }
    order[..prefix].sort_unstable_by(ratio_desc);

    let mut rem_w: u128 = entries.iter().map(|&(w, _)| u128::from(w)).sum();
    let mut rem_p = p;
    let mut clamped: Vec<usize> = Vec::new();
    for &i in &order[..prefix] {
        let (w, c) = entries[i];
        let (w, c) = (u128::from(w), u128::from(c));
        // Infeasible iff (w/c) / rem_w > 1 / rem_p. Note the clamp
        // condition together with rem_w ≥ w forces rem_p > c, so the
        // remaining capacity stays positive throughout.
        if w * rem_p > c * rem_w {
            rem_w -= w;
            rem_p -= c;
            clamped.push(i);
        } else {
            break;
        }
    }
    for &i in &clamped {
        let c = u128::from(entries[i].1);
        phis[i] = if rem_w == 0 {
            // Less total demand than processors: every clamped entity
            // can hold its full capacity continuously, so capacities
            // themselves are an exact assignment.
            Fixed::from_int(entries[i].1 as i64)
        } else {
            let num = (c * rem_w).min(i64::MAX as u128) as i64;
            Fixed::from_ratio(num, rem_p as i64)
        };
    }
    (phis, clamped.len())
}

/// Exact rational number used by the reference implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ratio {
    num: i128,
    den: i128,
}

impl Ratio {
    fn int(v: i128) -> Ratio {
        Ratio { num: v, den: 1 }
    }

    fn new(num: i128, den: i128) -> Ratio {
        assert!(den != 0);
        let g = gcd(num.unsigned_abs(), den.unsigned_abs()) as i128;
        let sign = if den < 0 { -1 } else { 1 };
        Ratio {
            num: sign * num / g.max(1),
            den: sign * den / g.max(1),
        }
    }

    fn add(self, o: Ratio) -> Ratio {
        Ratio::new(self.num * o.den + o.num * self.den, self.den * o.den)
    }

    fn div_int(self, k: i128) -> Ratio {
        Ratio::new(self.num, self.den * k)
    }

    /// `self / total > 1 / p`  ⇔  `self · p > total`.
    fn exceeds_share(self, total: Ratio, p: i128) -> bool {
        // self·p > total  ⇔  num·p·total.den > total.num·den
        self.num * p * total.den > total.num * self.den
    }

    fn to_fixed(self) -> Fixed {
        Fixed::from_raw(self.num * crate::fixed::SCALE / self.den)
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    if a == 0 {
        1
    } else {
        a
    }
}

/// Direct transliteration of Figure 2, with exact rational arithmetic.
///
/// ```text
/// readjust(w[1..t], i, p):
///     if w[i] / Σ_{j=i..t} w[j] > 1/p:
///         readjust(w, i+1, p−1)
///         sum = Σ_{j=i+1..t} w[j]
///         w[i] = sum / (p−1)
/// ```
///
/// Returns the full vector of instantaneous weights `φ_i` (fixed-point),
/// in the same (descending) order as the input. Used as the oracle for
/// [`readjust`].
pub fn readjust_reference(weights_desc: &[u64], cpus: u32) -> Vec<Fixed> {
    // Degenerate case first (empty feasible tail, only possible when
    // t < p): match the iterative convention of equal unit weights. The
    // recursion in Figure 2 divides by an empty tail here, so the paper
    // leaves this case undefined.
    let adj = readjust(weights_desc, cpus);
    if adj.clamped == weights_desc.len() && !weights_desc.is_empty() {
        return vec![Fixed::ONE; weights_desc.len()];
    }
    let mut w: Vec<Ratio> = weights_desc
        .iter()
        .map(|&x| Ratio::int(x as i128))
        .collect();
    if cpus > 1 {
        readjust_rec(&mut w, 0, cpus as i128);
    }
    w.into_iter().map(Ratio::to_fixed).collect()
}

fn readjust_rec(w: &mut [Ratio], i: usize, p: i128) {
    if i >= w.len() || p <= 1 {
        return;
    }
    let total = w[i..].iter().fold(Ratio::int(0), |acc, &x| acc.add(x));
    if w[i].exceeds_share(total, p) {
        readjust_rec(w, i + 1, p - 1);
        let sum = w[i + 1..].iter().fold(Ratio::int(0), |acc, &x| acc.add(x));
        w[i] = if sum.num == 0 {
            // Degenerate tail (t < p): match the iterative convention.
            Ratio::int(1)
        } else {
            sum.div_int(p - 1)
        };
    }
}

/// Applies a [`Readjustment`] to a descending weight slice, producing the
/// vector of instantaneous weights. Convenience for tests and the fluid
/// reference.
pub fn apply(weights_desc: &[u64], adj: &Readjustment) -> Vec<Fixed> {
    weights_desc
        .iter()
        .enumerate()
        .map(|(i, &w)| adj.phi(i, w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn phis(weights_desc: &[u64], cpus: u32) -> Vec<Fixed> {
        apply(weights_desc, &readjust(weights_desc, cpus))
    }

    #[test]
    fn feasible_assignment_is_unchanged() {
        // 1:1:2 on two CPUs is feasible (max share 1/2).
        let w = [2, 1, 1];
        assert!(is_feasible(&w, 2));
        assert_eq!(readjust(&w, 2), Readjustment::UNCHANGED);
    }

    #[test]
    fn example1_infeasible_pair_is_clamped() {
        // Example 1: weights 10:1 on a dual-processor. Thread with weight
        // 10 demands 10/11 > 1/2, so it is clamped to the feasible tail:
        // phi = 1/(2−1) = 1, giving shares 1/2 : 1/2.
        let w = [10, 1];
        assert!(!is_feasible(&w, 2));
        let adj = readjust(&w, 2);
        assert_eq!(adj.clamped, 1);
        assert_eq!(adj.cap, Some(Fixed::from_int(1)));
        let phi = apply(&w, &adj);
        assert!(is_feasible_fixed(&phi, 2));
    }

    #[test]
    fn blocking_makes_feasible_set_infeasible() {
        // §1.2: 1:1:2 on two CPUs is feasible, but when one weight-1
        // thread blocks, 1:2 is not: the weight-2 thread asks for 2/3.
        let w = [2, 1];
        assert!(!is_feasible(&w, 2));
        let adj = readjust(&w, 2);
        assert_eq!(adj.clamped, 1);
        // phi = 1/(2-1) = 1: shares become 1/2 each.
        assert_eq!(adj.cap, Some(Fixed::from_int(1)));
    }

    #[test]
    fn uniprocessor_never_clamps() {
        let w = [1_000_000, 1];
        assert!(is_feasible(&w, 1));
        assert_eq!(readjust(&w, 1), Readjustment::UNCHANGED);
    }

    #[test]
    fn capped_readjustment_respects_capacities() {
        // Two CPUs, shares 3:1, both entities able to use both CPUs
        // (3 members each): 3/4 of 2 CPUs = 1.5 ≤ capacity 2, feasible.
        let (phi, clamps) = readjust_capped(&[(3, 2), (1, 2)], 2);
        assert_eq!(clamps, 0);
        assert_eq!(phi, vec![Fixed::from_int(3), Fixed::from_int(1)]);

        // Same shares but the big entity has a single member: it can
        // hold only one CPU, so its weight clamps to the tail (1/(2−1)).
        let (phi, clamps) = readjust_capped(&[(3, 1), (1, 2)], 2);
        assert_eq!(clamps, 1);
        assert_eq!(phi[0], Fixed::from_int(1));
        assert_eq!(phi[1], Fixed::from_int(1));

        // Input order does not matter.
        let (phi, clamps) = readjust_capped(&[(1, 2), (3, 1)], 2);
        assert_eq!(clamps, 1);
        assert_eq!(phi[1], Fixed::from_int(1));
    }

    #[test]
    fn capped_degenerate_tail_uses_capacities() {
        // One entity with one member on four CPUs: clamped with an
        // empty tail; its capacity is the exact assignment.
        let (phi, clamps) = readjust_capped(&[(100, 1)], 4);
        assert_eq!(clamps, 1);
        assert_eq!(phi[0], Fixed::from_int(1));
        // Two members: capacity 2.
        let (phi, _) = readjust_capped(&[(100, 2)], 4);
        assert_eq!(phi[0], Fixed::from_int(2));
    }

    #[test]
    fn capped_clamp_lands_exactly_at_capacity() {
        // Three CPUs, entity (10, c=2) vs two (1, c=1): 10/12 of 3 CPUs
        // = 2.5 > 2, so it clamps to φ = 2·2/(3−2) = 4 — exactly 4/6 of
        // 3 CPUs = 2 CPUs, its capacity.
        let (phi, clamps) = readjust_capped(&[(10, 2), (1, 1), (1, 1)], 3);
        assert_eq!(clamps, 1);
        assert_eq!(phi[0], Fixed::from_int(4));
        let total: i128 = phi.iter().map(|f| f.raw()).sum();
        assert_eq!(phi[0].raw() * 3, 2 * total);
    }

    proptest! {
        /// With every capacity equal to 1, the capacity-generalized
        /// walk IS §2.1: it must agree with [`readjust`] exactly.
        #[test]
        fn capped_with_unit_capacities_matches_flat(
            mut weights in proptest::collection::vec(1u64..1_000, 1..12),
            cpus in 1u32..6,
        ) {
            weights.sort_unstable_by(|a, b| b.cmp(a));
            let entries: Vec<(u64, u32)> = weights.iter().map(|&w| (w, 1)).collect();
            let (phi, clamps) = readjust_capped(&entries, cpus);
            let adj = readjust(&weights, cpus);
            prop_assert_eq!(clamps, adj.clamped);
            prop_assert_eq!(phi, apply(&weights, &adj));
        }

        /// On a saturable machine (Σc ≥ p) the result satisfies the
        /// generalized feasibility constraint φ_g·p ≤ c_g·Σφ (up to
        /// fixed-point rounding); with less total capacity than
        /// processors every entity just holds its capacity.
        #[test]
        fn capped_result_is_feasible(
            entries in proptest::collection::vec((1u64..1_000, 1u32..5), 1..12),
            cpus in 2u32..6,
        ) {
            let (phi, _) = readjust_capped(&entries, cpus);
            let cap_total: u64 = entries.iter().map(|&(_, c)| u64::from(c)).sum();
            if cap_total < u64::from(cpus) {
                for (k, &(_, c)) in entries.iter().enumerate() {
                    prop_assert_eq!(phi[k], Fixed::from_int(c as i64));
                }
                return Ok(());
            }
            let total: i128 = phi.iter().map(|f| f.raw()).sum();
            for (k, &(_, c)) in entries.iter().enumerate() {
                prop_assert!(
                    phi[k].raw() * i128::from(cpus)
                        <= i128::from(c) * total + i128::from(cpus),
                    "entity {} over capacity: phi={} c={} total={}",
                    k, phi[k], c, total
                );
            }
        }
    }

    #[test]
    fn cascade_of_infeasible_threads() {
        // Four CPUs, weights 100:10:1:1. 100·4 > 112 (infeasible);
        // then 10·3 > 12 (infeasible); then 1·2 ≤ 2 (feasible).
        let w = [100, 10, 1, 1];
        let adj = readjust(&w, 4);
        assert_eq!(adj.clamped, 2);
        // T = 2, p − m = 2: cap = 1.
        assert_eq!(adj.cap, Some(Fixed::from_int(1)));
        let phi = apply(&w, &adj);
        assert!(is_feasible_fixed(&phi, 4));
        // Each clamped thread's share is exactly 1/p = 1/4 of total 4.
        assert_eq!(phi[0], Fixed::from_int(1));
        assert_eq!(phi[1], Fixed::from_int(1));
        assert_eq!(phi[2], Fixed::from_int(1));
    }

    #[test]
    fn fewer_tasks_than_processors_degenerates_to_equal_weights() {
        // One thread on two CPUs: the constraint cannot be satisfied at
        // all (its share of itself is 1). Convention: equal weights.
        let w = [10];
        let adj = readjust(&w, 2);
        assert_eq!(adj.clamped, 1);
        assert_eq!(adj.cap, Some(Fixed::ONE));

        // Two threads with wild weights on four CPUs.
        let w = [1_000, 1];
        let adj = readjust(&w, 4);
        assert_eq!(adj.clamped, 2);
        assert_eq!(adj.cap, Some(Fixed::ONE));
    }

    #[test]
    fn clamp_count_is_bounded_by_p_minus_1() {
        // With t ≥ p at most p−1 threads can be clamped (§2.1).
        let w = [100, 100, 100, 100, 1, 1, 1, 1];
        for p in 2..=4u32 {
            let adj = readjust(&w, p);
            assert!(adj.clamped <= (p - 1) as usize, "p={p}: {adj:?}");
        }
    }

    #[test]
    fn matches_recursive_reference_on_known_cases() {
        let cases: &[(&[u64], u32)] = &[
            (&[10, 1], 2),
            (&[2, 1, 1], 2),
            (&[100, 10, 1, 1], 4),
            (&[10_000, 100, 1, 1, 1], 2),
            (&[5, 4, 3, 2, 1], 3),
            (&[7, 7, 7], 3),
            (&[1], 2),
            (&[1000, 1], 4),
        ];
        for &(w, p) in cases {
            assert_eq!(
                phis(w, p),
                readjust_reference(w, p),
                "weights {w:?} on {p} cpus"
            );
        }
    }

    #[test]
    fn clamped_share_is_exactly_one_over_p() {
        let w = [10_000u64, 100, 1, 1, 1];
        let adj = readjust(&w, 2);
        let phi = apply(&w, &adj);
        let total: f64 = phi.iter().map(|f| f.to_f64()).sum();
        for p in phi.iter().take(adj.clamped) {
            let share = p.to_f64() / total;
            assert!((share - 0.5).abs() < 1e-3, "share {share}");
        }
    }

    proptest! {
        #[test]
        fn readjusted_weights_are_always_feasible(
            mut w in proptest::collection::vec(1u64..1_000_000, 1..40),
            p in 2u32..9,
        ) {
            w.sort_unstable_by(|a, b| b.cmp(a));
            let phi = phis(&w, p);
            // When t >= p the result must satisfy Eq. 1 exactly.
            if w.len() >= p as usize {
                prop_assert!(is_feasible_fixed(&phi, p), "w={w:?} p={p} phi={phi:?}");
            }
        }

        #[test]
        fn feasible_tail_is_never_modified(
            mut w in proptest::collection::vec(1u64..1_000_000, 1..40),
            p in 2u32..9,
        ) {
            w.sort_unstable_by(|a, b| b.cmp(a));
            let adj = readjust(&w, p);
            let phi = apply(&w, &adj);
            for i in adj.clamped..w.len() {
                prop_assert_eq!(phi[i], Fixed::from_int(w[i] as i64));
            }
        }

        #[test]
        fn clamp_count_bound(
            mut w in proptest::collection::vec(1u64..1_000_000, 1..40),
            p in 2u32..9,
        ) {
            w.sort_unstable_by(|a, b| b.cmp(a));
            let adj = readjust(&w, p);
            prop_assert!(adj.clamped <= (p as usize - 1).min(w.len()));
        }

        #[test]
        fn nearly_idempotent_after_one_pass(
            mut w in proptest::collection::vec(1u64..1_000_000, 2..40),
            p in 2u32..9,
        ) {
            // Re-running readjustment on an already-feasible set (clamped
            // weights included, re-expressed as integer mantissas) changes
            // each weight by at most a few fixed-point ULPs: the cap
            // `T/(p−m)` truncates, so the second pass may nudge a weight
            // that sits exactly on the feasibility boundary.
            w.sort_unstable_by(|a, b| b.cmp(a));
            if w.len() < p as usize { return Ok(()); }
            let phi = phis(&w, p);
            let as_int: Vec<u64> = phi.iter().map(|f| f.raw() as u64).collect();
            let mut sorted = as_int.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let phi2 = phis(&sorted, p);
            for (a, b) in sorted.iter().zip(phi2.iter()) {
                let before = *a as i128; // mantissa, SCALE-scaled input
                let after = b.raw() / crate::fixed::SCALE; // phi of mantissa-valued weight
                let drift = (before - after).abs();
                prop_assert!(drift <= p as i128, "before={before} after={after}");
            }
        }

        #[test]
        fn iterative_matches_recursive_reference(
            mut w in proptest::collection::vec(1u64..100_000, 1..24),
            p in 2u32..9,
        ) {
            w.sort_unstable_by(|a, b| b.cmp(a));
            prop_assert_eq!(phis(&w, p), readjust_reference(&w, p));
        }

        #[test]
        fn descending_order_is_preserved(
            mut w in proptest::collection::vec(1u64..1_000_000, 1..40),
            p in 2u32..9,
        ) {
            w.sort_unstable_by(|a, b| b.cmp(a));
            let phi = phis(&w, p);
            for win in phi.windows(2) {
                prop_assert!(win[0] >= win[1], "phi not descending: {phi:?}");
            }
        }
    }
}
