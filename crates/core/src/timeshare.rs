//! The Linux 2.2-style time-sharing scheduler, the paper's second
//! baseline (Figs. 6(b), 6(c), 7 and Table 1).
//!
//! Linux 2.2 scheduling in brief: every task has a `priority` (its nice
//! level translated to timer ticks; the default gives about 200 ms) and a
//! `counter` of remaining ticks in the current epoch. The scheduler picks
//! the ready task with the highest *goodness* — essentially
//! `counter + priority` — and a task's counter is consumed as it runs.
//! When every ready task has exhausted its counter the scheduler starts a
//! new epoch, recharging **all** tasks with `counter = counter/2 +
//! priority`. Blocked tasks keep half of their unused budget, which is
//! exactly the implicit I/O-bound boost that gives interactive tasks good
//! response times (and which Fig. 6(c) measures).
//!
//! This reimplementation keeps the essential behaviours the paper's
//! experiments depend on:
//!
//! * equal CPU sharing among compute-bound tasks regardless of weights
//!   (the scheduler is weight-oblivious, which is why the MPEG decoder in
//!   Fig. 6(b) loses bandwidth as compilations pile up);
//! * epoch recharge with counter carry-over for sleepers;
//! * wakeup preemption when the woken task's goodness exceeds the
//!   running task's remaining goodness (Linux's `reschedule_idle`);
//! * an O(t) scan of the ready list at every decision, like the original
//!   `schedule()` loop.

use std::collections::HashMap;

use crate::sched::{SchedStats, Scheduler, SwitchReason};
use crate::task::{CpuId, TaskId, TaskState, Weight};
use crate::time::{Duration, Time};

/// One timer tick; Linux 2.2 on x86 used 10 ms.
pub const TICK: Duration = Duration::from_millis(10);

/// Default priority in ticks: a 200 ms maximum quantum, matching both
/// Linux 2.2's default and the paper's test-bed quantum.
pub const DEFAULT_PRIORITY: i64 = 20;

/// Tuning knobs for [`TimeSharing`].
#[derive(Debug, Clone)]
pub struct TimeSharingConfig {
    /// Ticks granted per epoch to every task (the `priority` field).
    pub priority_ticks: i64,
    /// Enable wakeup preemption (`reschedule_idle`).
    pub wake_preemption: bool,
}

impl Default for TimeSharingConfig {
    fn default() -> TimeSharingConfig {
        TimeSharingConfig {
            priority_ticks: DEFAULT_PRIORITY,
            wake_preemption: true,
        }
    }
}

#[derive(Debug, Clone)]
struct TsTask {
    weight: Weight,
    counter: i64,
    state: TaskState,
    /// Sub-tick remainder of consumed CPU time, in nanoseconds.
    partial_ns: u64,
    service: Duration,
}

/// The epoch/goodness time-sharing scheduler.
pub struct TimeSharing {
    cfg: TimeSharingConfig,
    cpus: u32,
    tasks: HashMap<TaskId, TsTask>,
    stats: SchedStats,
}

impl TimeSharing {
    /// Creates the scheduler with default (Linux 2.2) parameters.
    pub fn new(cpus: u32) -> TimeSharing {
        TimeSharing::with_config(cpus, TimeSharingConfig::default())
    }

    /// Creates the scheduler with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero or `priority_ticks` is not positive.
    pub fn with_config(cpus: u32, cfg: TimeSharingConfig) -> TimeSharing {
        assert!(cpus > 0, "need at least one processor");
        assert!(cfg.priority_ticks > 0, "priority must be positive");
        TimeSharing {
            cfg,
            cpus,
            tasks: HashMap::new(),
            stats: SchedStats::default(),
        }
    }

    /// Linux 2.2 `goodness()`: 0 for an exhausted counter, otherwise
    /// `counter + priority`.
    fn goodness(&self, t: &TsTask) -> i64 {
        if t.counter <= 0 {
            0
        } else {
            t.counter + self.cfg.priority_ticks
        }
    }

    /// Starts a new epoch: `counter = counter/2 + priority` for every
    /// task in the system (blocked tasks accumulate up to 2×priority).
    fn recharge(&mut self) {
        for t in self.tasks.values_mut() {
            t.counter = t.counter / 2 + self.cfg.priority_ticks;
        }
        // Reuse the resort counter to record epochs for the stats report.
        self.stats.full_resorts += 1;
    }

    fn charge(&mut self, id: TaskId, ran: Duration) {
        let t = self.tasks.get_mut(&id).unwrap();
        t.service += ran;
        let total_ns = t.partial_ns + ran.as_nanos();
        let ticks = (total_ns / TICK.as_nanos()) as i64;
        t.partial_ns = total_ns % TICK.as_nanos();
        t.counter -= ticks;
        if t.counter < 0 {
            t.counter = 0;
        }
    }

    /// The remaining epoch budget of a task, for tests.
    pub fn counter_of(&self, id: TaskId) -> Option<i64> {
        self.tasks.get(&id).map(|t| t.counter)
    }

    fn best_ready(&self) -> Option<(TaskId, i64)> {
        // O(t) goodness scan, ties broken by lowest id for determinism.
        self.tasks
            .iter()
            .filter(|(_, t)| matches!(t.state, TaskState::Ready))
            .map(|(&id, t)| (id, self.goodness(t)))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }
}

impl Scheduler for TimeSharing {
    fn name(&self) -> &'static str {
        "TimeSharing"
    }

    fn cpus(&self) -> u32 {
        self.cpus
    }

    fn attach(&mut self, id: TaskId, w: Weight, _now: Time) {
        let prev = self.tasks.insert(
            id,
            TsTask {
                weight: w,
                counter: self.cfg.priority_ticks,
                state: TaskState::Ready,
                partial_ns: 0,
                service: Duration::ZERO,
            },
        );
        assert!(prev.is_none(), "task {id} attached twice");
    }

    fn detach(&mut self, id: TaskId, _now: Time) {
        let t = self.tasks.remove(&id).expect("detaching unknown task");
        assert!(!t.state.is_running(), "detach of running task {id}");
    }

    fn set_weight(&mut self, id: TaskId, w: Weight, _now: Time) {
        // Weights exist only for API parity; time sharing ignores them.
        self.tasks.get_mut(&id).expect("unknown task").weight = w;
    }

    fn weight_of(&self, id: TaskId) -> Option<Weight> {
        self.tasks.get(&id).map(|t| t.weight)
    }

    fn wake(&mut self, id: TaskId, _now: Time) {
        let t = self.tasks.get_mut(&id).expect("waking unknown task");
        assert!(matches!(t.state, TaskState::Blocked));
        t.state = TaskState::Ready;
    }

    fn pick_next(&mut self, cpu: CpuId, _now: Time) -> Option<TaskId> {
        let mut best = self.best_ready()?;
        if best.1 == 0 {
            // Every ready task has exhausted its quantum: new epoch.
            self.recharge();
            best = self.best_ready()?;
        }
        let t = self.tasks.get_mut(&best.0).unwrap();
        t.state = TaskState::Running(cpu);
        self.stats.picks += 1;
        Some(best.0)
    }

    fn put_prev(&mut self, id: TaskId, ran: Duration, reason: SwitchReason, _now: Time) {
        assert!(
            self.tasks[&id].state.is_running(),
            "put_prev of non-running task {id}"
        );
        self.charge(id, ran);
        let t = self.tasks.get_mut(&id).unwrap();
        match reason {
            SwitchReason::Preempted | SwitchReason::Yielded => t.state = TaskState::Ready,
            SwitchReason::Blocked => t.state = TaskState::Blocked,
            SwitchReason::Exited => {
                self.tasks.remove(&id);
            }
        }
    }

    fn time_slice(&self, id: TaskId) -> Duration {
        // The task runs until its counter is exhausted.
        let ticks = self.tasks.get(&id).map(|t| t.counter.max(1)).unwrap_or(1);
        TICK * ticks as u64
    }

    fn wake_preempts(
        &self,
        woken: TaskId,
        running: TaskId,
        ran_so_far: Duration,
        _now: Time,
    ) -> bool {
        if !self.cfg.wake_preemption {
            return false;
        }
        let (Some(w), Some(r)) = (self.tasks.get(&woken), self.tasks.get(&running)) else {
            return false;
        };
        if !matches!(w.state, TaskState::Ready) || !r.state.is_running() {
            return false;
        }
        // Charge the running task its in-flight ticks before comparing.
        let spent = ((r.partial_ns + ran_so_far.as_nanos()) / TICK.as_nanos()) as i64;
        let mut charged = r.clone();
        charged.counter = (charged.counter - spent).max(0);
        self.goodness(w) > self.goodness(&charged)
    }

    fn nr_runnable(&self) -> usize {
        self.tasks
            .values()
            .filter(|t| t.state.is_runnable())
            .count()
    }

    fn nr_tasks(&self) -> usize {
        self.tasks.len()
    }

    fn stats(&self) -> SchedStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{assert_close, MiniSim};

    #[test]
    fn equal_sharing_regardless_of_weights() {
        // The baseline is weight-oblivious: 1:10 still shares equally.
        let mut sim = MiniSim::new(TimeSharing::new(1));
        sim.quantum = TICK;
        sim.spawn(1, 1);
        sim.spawn(2, 10);
        sim.run_quanta(2000);
        assert_close(sim.ratio(2, 1), 1.0, 0.02, "weight-oblivious");
    }

    #[test]
    fn counter_depletes_and_epoch_recharges() {
        let mut s = TimeSharing::new(1);
        s.attach(TaskId(1), Weight::DEFAULT, Time::ZERO);
        let id = s.pick_next(CpuId(0), Time::ZERO).unwrap();
        assert_eq!(s.counter_of(id), Some(DEFAULT_PRIORITY));
        // Consume 5 ticks.
        s.put_prev(id, TICK * 5, SwitchReason::Preempted, Time::ZERO);
        assert_eq!(s.counter_of(id), Some(DEFAULT_PRIORITY - 5));
        // Exhaust; next pick recharges: counter/2 + priority.
        let next = s.pick_next(CpuId(0), Time::ZERO).unwrap();
        s.put_prev(next, TICK * 100, SwitchReason::Preempted, Time::ZERO);
        assert_eq!(s.counter_of(id), Some(0));
        let again = s.pick_next(CpuId(0), Time::ZERO).unwrap();
        assert_eq!(again, id);
        assert_eq!(s.counter_of(id), Some(DEFAULT_PRIORITY));
    }

    #[test]
    fn sleeper_accumulates_goodness_boost() {
        let mut s = TimeSharing::new(1);
        s.attach(TaskId(1), Weight::DEFAULT, Time::ZERO);
        s.attach(TaskId(2), Weight::DEFAULT, Time::ZERO);
        // T1 runs and blocks immediately with most budget intact.
        let first = s.pick_next(CpuId(0), Time::ZERO).unwrap();
        s.put_prev(first, TICK, SwitchReason::Blocked, Time::ZERO);
        // The other task burns several epochs.
        for _ in 0..6 {
            let id = s.pick_next(CpuId(0), Time::ZERO).unwrap();
            s.put_prev(id, TICK * 50, SwitchReason::Preempted, Time::ZERO);
        }
        // The sleeper's counter grew beyond one priority quantum.
        assert!(
            s.counter_of(first).unwrap() > DEFAULT_PRIORITY,
            "sleeper counter: {:?}",
            s.counter_of(first)
        );
        // On wake it preempts the CPU-bound task.
        let running = s.pick_next(CpuId(0), Time::ZERO).unwrap();
        s.wake(first, Time::ZERO);
        assert!(s.wake_preempts(first, running, TICK, Time::ZERO));
    }

    #[test]
    fn time_slice_tracks_counter() {
        let mut s = TimeSharing::new(1);
        s.attach(TaskId(1), Weight::DEFAULT, Time::ZERO);
        assert_eq!(s.time_slice(TaskId(1)), Duration::from_millis(200));
        let id = s.pick_next(CpuId(0), Time::ZERO).unwrap();
        s.put_prev(id, TICK * 15, SwitchReason::Preempted, Time::ZERO);
        assert_eq!(s.time_slice(id), Duration::from_millis(50));
    }

    #[test]
    fn two_cpus_share_among_three_tasks() {
        let mut sim = MiniSim::new(TimeSharing::new(2));
        sim.quantum = TICK;
        sim.spawn(1, 1);
        sim.spawn(2, 1);
        sim.spawn(3, 1);
        sim.run_quanta(3000);
        assert_close(sim.ratio(1, 2), 1.0, 0.05, "equal shares");
        assert_close(sim.ratio(2, 3), 1.0, 0.05, "equal shares");
    }

    #[test]
    fn partial_tick_accounting_accumulates() {
        let mut s = TimeSharing::new(1);
        s.attach(TaskId(1), Weight::DEFAULT, Time::ZERO);
        // 4 × 2.5 ms = 1 tick.
        for _ in 0..4 {
            let id = s.pick_next(CpuId(0), Time::ZERO).unwrap();
            s.put_prev(
                id,
                Duration::from_micros(2_500),
                SwitchReason::Preempted,
                Time::ZERO,
            );
        }
        assert_eq!(s.counter_of(TaskId(1)), Some(DEFAULT_PRIORITY - 1));
    }

    #[test]
    fn exited_task_disappears() {
        let mut s = TimeSharing::new(1);
        s.attach(TaskId(1), Weight::DEFAULT, Time::ZERO);
        let id = s.pick_next(CpuId(0), Time::ZERO).unwrap();
        s.put_prev(id, TICK, SwitchReason::Exited, Time::ZERO);
        assert_eq!(s.nr_tasks(), 0);
        assert_eq!(s.pick_next(CpuId(0), Time::ZERO), None);
    }
}
