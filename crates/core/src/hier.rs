//! Hierarchical SFS: surplus fair scheduling over tenant groups.
//!
//! The paper schedules one flat weight space, but a multi-tenant
//! machine wants *shares per tenant*: tenant A is entitled to its share
//! of the machine no matter how many tasks it spawns or how heavy it
//! declares them. [`HierSfs`] nests the algorithm: the **top level is
//! SFS over groups** — each group's share is its weight, group virtual
//! tags advance by `q / φ_g` exactly as thread tags do (§2.3), and
//! capacity-aware group-level readjustment
//! ([`readjust_capped`]) clamps
//! infeasible shares: a group with `c` runnable members can consume up
//! to `min(c, p)` processors, not the single processor §2.1 assumes of
//! a thread — while each
//! group's member tasks are scheduled by that group's own policy (any
//! registered [`PolicySpec`] kind).
//!
//! A pick is two-level: the minimum-surplus group that has a ready
//! member is chosen from the group-level [`BucketQueue`], then that
//! group's child policy picks the member. A group is charged for *all*
//! CPU time its members consume (several members may run concurrently;
//! each `put_prev` advances the group's tags), so the top level
//! enforces each tenant's share against the others regardless of the
//! tenant's internal task count or weights — the isolation property a
//! flat weight space cannot give: a tenant flooding the machine with
//! heavy tasks only competes with itself.
//!
//! Members never migrate between groups, and the scheduler nominates no
//! steal candidates: in a sharded machine tenants move between shards
//! only as whole groups (see [`crate::shard`]), keeping per-tenant
//! isolation intact.
//!
//! [`PolicySpec`]: crate::policy::PolicySpec

use std::collections::HashMap;

use crate::buckets::BucketQueue;
use crate::fixed::Fixed;
use crate::policy::GroupSpec;
use crate::readjust::readjust_capped;
use crate::sched::{SchedStats, Scheduler, SwitchReason};
use crate::task::{CpuId, TaskId, TenantId, Weight};
use crate::time::{Duration, Time};

/// One tenant group: its share, its child policy instance and its
/// group-level SFS tags.
struct Group {
    name: String,
    share: Weight,
    sched: Box<dyn Scheduler>,
    /// Instantaneous group weight `φ_g` (share, clamped by group-level
    /// readjustment while queued).
    phi: Fixed,
    /// Group start tag `S_g`.
    start_tag: Fixed,
    /// Group finish tag `F_g`.
    finish_tag: Fixed,
    /// Members currently on a processor.
    running: usize,
    /// Capacity used by the last group-level readjustment:
    /// `min(runnable members, p)` processors. Valid while queued.
    cap: u32,
}

impl Group {
    /// Runnable members (ready + running), as tracked by the child.
    fn runnable(&self) -> usize {
        self.sched.nr_runnable()
    }

    /// Members waiting for a processor.
    fn ready(&self) -> usize {
        self.runnable() - self.running
    }
}

/// SFS over tenant groups, delegating intra-group picks to each
/// group's own policy. Built from a `sfs:groups(...)` spec via
/// [`PolicySpec::build`](crate::policy::PolicySpec::build).
pub struct HierSfs {
    cpus: u32,
    groups: Vec<Group>,
    /// Which group each attached task belongs to.
    task_group: HashMap<TaskId, usize>,
    /// Group-level run queue, keyed by group index as a `TaskId`.
    buckets: BucketQueue,
    /// Sum of the queued groups' raw shares (conservation invariant).
    queued_share_total: u128,
    /// Group-level virtual time floor (last finish tag when idle).
    v: Fixed,
    renorm_threshold: Fixed,
    stats: SchedStats,
}

impl HierSfs {
    /// Builds the hierarchy: one child scheduler per group, each over
    /// the full machine (groups share the processors; the top level
    /// decides which group a free processor serves).
    ///
    /// # Panics
    ///
    /// Panics on zero CPUs or an empty group list.
    pub fn new(cpus: u32, groups: &[GroupSpec]) -> HierSfs {
        assert!(cpus > 0, "need at least one CPU");
        assert!(!groups.is_empty(), "need at least one group");
        let groups = groups
            .iter()
            .map(|g| Group {
                name: g.name().to_string(),
                share: Weight::new(g.share()).expect("GroupSpec validates share > 0"),
                sched: g.policy().build(cpus),
                phi: Fixed::from_int(g.share() as i64),
                start_tag: Fixed::ZERO,
                finish_tag: Fixed::ZERO,
                running: 0,
                cap: 1,
            })
            .collect();
        HierSfs {
            cpus,
            groups,
            task_group: HashMap::new(),
            buckets: BucketQueue::new(),
            queued_share_total: 0,
            v: Fixed::ZERO,
            renorm_threshold: Fixed::from_int(100_000_000_000_000),
            stats: SchedStats::default(),
        }
    }

    /// The group index a tenant id addresses.
    fn group_index(&self, tenant: Option<TenantId>) -> usize {
        match tenant {
            Some(t) => {
                let gi = t.0 as usize;
                assert!(gi < self.groups.len(), "unknown tenant {t}");
                gi
            }
            // Tenant-less attaches (plain `Scheduler::attach`) land in
            // the first group, so flat substrates keep working.
            None => 0,
        }
    }

    fn gid(gi: usize) -> TaskId {
        TaskId(gi as u64)
    }

    /// Group-level virtual time: minimum group start tag, or the stored
    /// value when no group is queued (§2.3).
    fn current_v(&self) -> Fixed {
        self.buckets.min_start().unwrap_or(self.v)
    }

    fn sync_v(&mut self) {
        let vk = self.current_v();
        if vk != self.v {
            debug_assert!(vk > self.v, "group virtual time went backwards");
            self.v = vk;
            self.stats.vt_changes += 1;
        }
    }

    /// Enters a group into the run queue when its first member becomes
    /// runnable: `S_g = max(F_g, v)` — a tenant idle for a while gets
    /// no credit, exactly the thread-level wake rule.
    fn enqueue_group(&mut self, gi: usize) {
        self.enqueue_group_raw(gi);
        self.readjust_groups();
    }

    /// [`HierSfs::enqueue_group`] without the trailing readjustment —
    /// the batch-attach path queues many groups and readjusts once at
    /// the end. Queued groups carry their raw share as `φ_g` until
    /// that walk runs, so callers must follow up with
    /// [`HierSfs::readjust_groups`] before any scheduling decision.
    fn enqueue_group_raw(&mut self, gi: usize) {
        let gid = HierSfs::gid(gi);
        debug_assert!(!self.buckets.contains(gid), "group queued twice");
        let v_now = self.current_v();
        self.groups[gi].start_tag = self.groups[gi].finish_tag.max(v_now);
        self.groups[gi].phi = Fixed::from_int(self.groups[gi].share.get() as i64);
        let start = self.groups[gi].start_tag;
        self.buckets.insert(gid, self.groups[gi].phi, start);
        self.queued_share_total += u128::from(self.groups[gi].share.get());
    }

    /// Removes a group whose last runnable member left; freezes the
    /// virtual time at its finish tag if the whole machine idles.
    fn dequeue_group(&mut self, gi: usize) {
        let gid = HierSfs::gid(gi);
        self.buckets.remove(gid);
        self.queued_share_total -= u128::from(self.groups[gi].share.get());
        if self.buckets.is_empty() {
            self.v = self.groups[gi].finish_tag;
        }
        self.readjust_groups();
    }

    /// The number of processors group `gi` could actually use right
    /// now: one per runnable member, at most the whole machine.
    fn capacity_of(&self, gi: usize) -> u32 {
        (self.groups[gi].runnable() as u32).min(self.cpus).max(1)
    }

    /// Re-runs the capacity-aware readjustment if group `gi`'s
    /// capacity changed while queued (a member arrived, blocked or
    /// left without emptying the group). In the common saturated case
    /// — runnable members ≥ p before and after — this is a no-op.
    fn maybe_readjust(&mut self, gi: usize) {
        if self.buckets.contains(HierSfs::gid(gi)) && self.groups[gi].cap != self.capacity_of(gi) {
            self.readjust_groups();
        }
    }

    /// Recomputes every queued group's instantaneous weight `φ_g` via
    /// the capacity-generalized §2.1 walk and migrates changed groups
    /// to their new weight-class buckets.
    fn readjust_groups(&mut self) {
        self.stats.readjust_calls += 1;
        let mut idx = Vec::new();
        let mut entries = Vec::new();
        for (gi, g) in self.groups.iter().enumerate() {
            if self.buckets.contains(HierSfs::gid(gi)) {
                idx.push(gi);
                entries.push((g.share.get(), (g.runnable() as u32).min(self.cpus).max(1)));
            }
        }
        self.stats.event_steps += entries.len() as u64;
        let (phis, clamps) = readjust_capped(&entries, self.cpus);
        self.stats.weights_clamped += clamps as u64;
        for (k, &gi) in idx.iter().enumerate() {
            self.groups[gi].cap = entries[k].1;
            if self.groups[gi].phi != phis[k] {
                self.groups[gi].phi = phis[k];
                if self.buckets.set_phi(HierSfs::gid(gi), phis[k]) {
                    self.stats.bucket_migrations += 1;
                }
            }
        }
    }

    /// §3.2 wrap-around handling at the group level.
    fn maybe_renormalize(&mut self) {
        if self.v <= self.renorm_threshold {
            return;
        }
        let delta = self.current_v().min(self.v);
        for g in &mut self.groups {
            g.start_tag -= delta;
            g.finish_tag -= delta;
        }
        self.v -= delta;
        self.buckets.shift_keys(-delta);
        self.stats.renormalizations += 1;
    }

    /// Asserts the two-level structural invariants: the group queue's
    /// own invariants, every child's, queue membership ⇔ runnable
    /// members, and conservation of the queued groups' shares in the
    /// readjustment tracker.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.buckets
            .check_invariants(|gid| self.groups[gid.0 as usize].start_tag);
        let v = self.current_v();
        let mut share_total: u128 = 0;
        let mut queued: Vec<usize> = Vec::new();
        for (gi, g) in self.groups.iter().enumerate() {
            g.sched.check_invariants();
            let gid = HierSfs::gid(gi);
            assert!(
                g.running <= g.runnable(),
                "group {:?} running > runnable",
                g.name
            );
            assert_eq!(
                self.buckets.contains(gid),
                g.runnable() > 0,
                "group {:?} queue membership out of sync",
                g.name
            );
            if self.buckets.contains(gid) {
                queued.push(gi);
                share_total += u128::from(g.share.get());
                assert!(
                    g.start_tag >= v,
                    "group {:?} start tag below virtual time",
                    g.name
                );
                assert_eq!(
                    self.buckets.phi_of(gid),
                    Some(g.phi),
                    "group {:?} in wrong weight-class bucket",
                    g.name
                );
                assert_eq!(
                    g.cap,
                    self.capacity_of(gi),
                    "group {:?} stale capacity",
                    g.name
                );
            }
        }
        assert_eq!(
            self.queued_share_total, share_total,
            "group shares conserve"
        );
        // The held φ_g must be exactly what a fresh capacity-aware
        // readjustment over the queued shares produces...
        let entries: Vec<(u64, u32)> = queued
            .iter()
            .map(|&gi| (self.groups[gi].share.get(), self.capacity_of(gi)))
            .collect();
        let (phis, _) = readjust_capped(&entries, self.cpus);
        let total: i128 = phis.iter().map(|f| f.raw()).sum();
        let cap_total: u64 = entries.iter().map(|&(_, c)| u64::from(c)).sum();
        for (k, &gi) in queued.iter().enumerate() {
            assert_eq!(
                self.groups[gi].phi, phis[k],
                "group {:?} stale φ_g",
                self.groups[gi].name
            );
            // ...and, whenever the queued members could saturate the
            // machine, satisfy the generalized feasibility constraint
            // φ_g·p ≤ c_g·Σφ (fixed-point rounding slack of p raw
            // units). With Σc < p there is spare capacity and every
            // group simply holds its capacity.
            assert!(
                cap_total < u64::from(self.cpus)
                    || phis[k].raw() * i128::from(self.cpus)
                        <= i128::from(entries[k].1) * total + i128::from(self.cpus),
                "group {:?} exceeds its capacity share",
                self.groups[gi].name
            );
        }
    }
}

impl Scheduler for HierSfs {
    fn name(&self) -> &'static str {
        "SFS(hier)"
    }

    fn cpus(&self) -> u32 {
        self.cpus
    }

    fn attach(&mut self, id: TaskId, w: Weight, now: Time) {
        self.attach_tenant(id, w, None, now);
    }

    fn bind_tenant(&self, group: &str) -> Option<TenantId> {
        self.groups
            .iter()
            .position(|g| g.name == group)
            .map(|gi| TenantId(gi as u32))
    }

    fn attach_tenant(&mut self, id: TaskId, w: Weight, tenant: Option<TenantId>, now: Time) {
        assert!(
            !self.task_group.contains_key(&id),
            "task {id} attached twice"
        );
        let gi = self.group_index(tenant);
        let was_idle = self.groups[gi].runnable() == 0;
        self.groups[gi].sched.attach(id, w, now);
        self.task_group.insert(id, gi);
        if was_idle {
            self.enqueue_group(gi);
        } else {
            self.maybe_readjust(gi);
        }
    }

    /// Bulk attach with one §2.1 readjustment: each task does only its
    /// per-group work (child attach, group queueing), and the global
    /// capacity-aware walk runs once at the end instead of once per
    /// attach — turning an n-tenant bulk attach from O(n²) group-walk
    /// steps into O(n).
    fn attach_batch(&mut self, batch: &[(TaskId, Weight, Option<TenantId>)], now: Time) {
        if batch.is_empty() {
            return;
        }
        for &(id, w, tenant) in batch {
            assert!(
                !self.task_group.contains_key(&id),
                "task {id} attached twice"
            );
            let gi = self.group_index(tenant);
            let was_idle = self.groups[gi].runnable() == 0;
            self.groups[gi].sched.attach(id, w, now);
            self.task_group.insert(id, gi);
            if was_idle {
                self.enqueue_group_raw(gi);
            }
        }
        self.readjust_groups();
    }

    fn tenant_of(&self, id: TaskId) -> Option<TenantId> {
        self.task_group.get(&id).map(|&gi| TenantId(gi as u32))
    }

    fn detach(&mut self, id: TaskId, now: Time) {
        let gi = self.task_group.remove(&id).expect("detach of unknown task");
        self.groups[gi].sched.detach(id, now);
        if self.groups[gi].runnable() == 0 && self.buckets.contains(HierSfs::gid(gi)) {
            self.dequeue_group(gi);
        } else {
            self.maybe_readjust(gi);
        }
    }

    fn set_weight(&mut self, id: TaskId, w: Weight, now: Time) {
        // Task weights act *within* the group; the group's share is
        // fixed by the spec. This is the isolation property: a tenant
        // inflating its tasks' weights only reapportions its own share.
        let gi = self.task_group[&id];
        self.groups[gi].sched.set_weight(id, w, now);
    }

    fn weight_of(&self, id: TaskId) -> Option<Weight> {
        let &gi = self.task_group.get(&id)?;
        self.groups[gi].sched.weight_of(id)
    }

    fn adjusted_weight_of(&self, id: TaskId) -> Option<Fixed> {
        let &gi = self.task_group.get(&id)?;
        self.groups[gi].sched.adjusted_weight_of(id)
    }

    fn wake(&mut self, id: TaskId, now: Time) {
        let gi = *self.task_group.get(&id).expect("waking unknown task");
        let was_idle = self.groups[gi].runnable() == 0;
        self.groups[gi].sched.wake(id, now);
        if was_idle {
            self.enqueue_group(gi);
        } else {
            self.maybe_readjust(gi);
        }
    }

    /// Bulk wake with one group-level §2.1 readjustment, the wake-side
    /// twin of [`HierSfs::attach_batch`]: each wake does only its
    /// per-group work (child wake, group queueing) and the global
    /// capacity-aware walk runs once at the end.
    fn wake_batch(&mut self, ids: &[TaskId], now: Time) {
        if ids.is_empty() {
            return;
        }
        for &id in ids {
            let gi = *self.task_group.get(&id).expect("waking unknown task");
            let was_idle = self.groups[gi].runnable() == 0;
            self.groups[gi].sched.wake(id, now);
            if was_idle {
                self.enqueue_group_raw(gi);
            }
        }
        self.readjust_groups();
    }

    fn pick_next(&mut self, cpu: CpuId, now: Time) -> Option<TaskId> {
        if self.buckets.is_empty() {
            return None;
        }
        self.sync_v();
        // Level 1: minimum-surplus group with a ready member. Groups
        // already saturating the machine with running members are
        // skipped, not dequeued — they stay queued (and accumulating
        // surplus) until their last runnable member leaves.
        let groups = &self.groups;
        let (best, scanned) = self
            .buckets
            .min_surplus(self.v, |gid| groups[gid.0 as usize].ready() > 0);
        self.stats.bucket_scans += scanned;
        let (_, _, gid) = best?;
        let gi = gid.0 as usize;
        // Level 2: the group's own policy picks the member.
        let picked = self.groups[gi].sched.pick_next(cpu, now)?;
        self.groups[gi].running += 1;
        Some(picked)
    }

    fn put_prev(&mut self, id: TaskId, ran: Duration, reason: SwitchReason, now: Time) {
        let gi = *self.task_group.get(&id).expect("put_prev of unknown task");
        let gid = HierSfs::gid(gi);
        // The child updates the member's tags (and forgets it on exit).
        self.groups[gi].sched.put_prev(id, ran, reason, now);
        self.groups[gi].running -= 1;
        if reason == SwitchReason::Exited {
            self.task_group.remove(&id);
        }
        // Charge the group: F_g = S_g + q / φ_g with the actual usage,
        // once per member quantum — concurrent members each advance the
        // tags, so the group pays for its aggregate consumption.
        let phi = self.groups[gi].phi;
        let f = self.groups[gi].start_tag + phi.div_into_int(ran.as_nanos());
        self.groups[gi].finish_tag = f;
        if self.groups[gi].runnable() > 0 {
            // "S_i = F_i if continuously runnable", at group level.
            self.groups[gi].start_tag = f;
            self.buckets.update_start(gid, f);
            // A blocked or exited member may have shrunk the group's
            // usable capacity.
            self.maybe_readjust(gi);
        } else {
            self.dequeue_group(gi);
        }
        self.maybe_renormalize();
    }

    fn time_slice(&self, id: TaskId) -> Duration {
        match self.task_group.get(&id) {
            Some(&gi) => self.groups[gi].sched.time_slice(id),
            None => self.groups[0].sched.time_slice(id),
        }
    }

    fn nr_runnable(&self) -> usize {
        self.groups.iter().map(Group::runnable).sum()
    }

    fn nr_tasks(&self) -> usize {
        self.task_group.len()
    }

    fn stats(&self) -> SchedStats {
        // Children already count picks and events; the hierarchy adds
        // its group-level queue and readjustment work on top.
        let mut s = self
            .groups
            .iter()
            .fold(self.stats, |acc, g| acc.merged(g.sched.stats()));
        s.event_steps += self.buckets.steps();
        s.weight_classes = s.weight_classes.max(self.buckets.num_buckets() as u64);
        s
    }

    fn virtual_time(&self) -> Option<Fixed> {
        Some(self.current_v())
    }

    fn check_invariants(&self) {
        HierSfs::check_invariants(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySpec;
    use crate::task::weight;

    fn hier(cpus: u32, shares: &[(&str, u64)]) -> HierSfs {
        let spec = PolicySpec::sfs_over(
            shares
                .iter()
                .map(|&(n, s)| GroupSpec::new(n, PolicySpec::sfs()).with_share(s)),
        );
        HierSfs::new(cpus, spec.groups())
    }

    /// Runs a fixed-quantum loop and returns per-task service in
    /// quantum units.
    fn run_quanta(
        sched: &mut HierSfs,
        cpus: u32,
        quanta: u64,
        q: Duration,
    ) -> HashMap<TaskId, u64> {
        let mut service: HashMap<TaskId, u64> = HashMap::new();
        let mut now = Time::ZERO;
        for _ in 0..quanta {
            let mut picked = Vec::new();
            for c in 0..cpus {
                if let Some(id) = sched.pick_next(CpuId(c), now) {
                    picked.push(id);
                }
            }
            now += q;
            for id in picked {
                *service.entry(id).or_default() += 1;
                sched.put_prev(id, q, SwitchReason::Preempted, now);
            }
            sched.check_invariants();
        }
        service
    }

    #[test]
    fn attach_batch_readjusts_once_and_matches_per_attach_state() {
        let shares: Vec<(String, u64)> = (0..60).map(|i| (format!("g{i}"), i % 7 + 1)).collect();
        let shares_ref: Vec<(&str, u64)> = shares.iter().map(|(n, s)| (n.as_str(), *s)).collect();
        let batch: Vec<(TaskId, Weight, Option<TenantId>)> = (0..60)
            .map(|i| (TaskId(i), weight(1), Some(TenantId(i as u32))))
            .collect();

        // Per-attach: one global readjustment walk for every tenant.
        let mut one_by_one = hier(4, &shares_ref);
        for &(id, w, t) in &batch {
            one_by_one.attach_tenant(id, w, t, Time::ZERO);
        }
        // 60 group-level walks plus 60 one-member child walks.
        assert_eq!(one_by_one.stats().readjust_calls, 120);

        // Batched: the identical end state from a single walk.
        let mut batched = hier(4, &shares_ref);
        batched.attach_batch(&batch, Time::ZERO);
        batched.check_invariants();
        // The 60 child walks remain (each child attaches its own one
        // task), but the global group walk ran exactly once.
        assert_eq!(batched.stats().readjust_calls, 61);
        for &(id, ..) in &batch {
            assert_eq!(
                batched.adjusted_weight_of(id),
                one_by_one.adjusted_weight_of(id),
                "φ diverged for {id}"
            );
            assert_eq!(batched.tenant_of(id), one_by_one.tenant_of(id));
        }

        // The batch path must stay usable mid-lifecycle: an empty batch
        // is free, and later batches coexist with singular attaches.
        batched.attach_batch(&[], Time::ZERO);
        assert_eq!(batched.stats().readjust_calls, 61);
        batched.attach_tenant(TaskId(1000), weight(2), Some(TenantId(0)), Time::ZERO);
        batched.check_invariants();
    }

    #[test]
    fn equal_shares_split_regardless_of_task_count() {
        // Tenant a: 1 task; tenant b: 4 tasks. Equal shares ⇒ equal
        // group service; flat SFS would give b 4/5 of the machine.
        let mut s = hier(1, &[("a", 1), ("b", 1)]);
        let ta = TenantId(0);
        let tb = TenantId(1);
        s.attach_tenant(TaskId(100), weight(1), Some(ta), Time::ZERO);
        for k in 0..4 {
            s.attach_tenant(TaskId(200 + k), weight(1), Some(tb), Time::ZERO);
        }
        let q = Duration::from_millis(10);
        let service = run_quanta(&mut s, 1, 1000, q);
        let a: u64 = service[&TaskId(100)];
        let b: u64 = (0..4).map(|k| service[&TaskId(200 + k)]).sum();
        let total = a + b;
        assert!(total >= 999, "work conserving: {total}");
        assert!(
            (a as i64 - b as i64).unsigned_abs() <= 2,
            "groups split unequally: a={a} b={b}"
        );
    }

    #[test]
    fn shares_apportion_three_to_one() {
        let mut s = hier(2, &[("big", 3), ("small", 1)]);
        for k in 0..3 {
            s.attach_tenant(TaskId(k), weight(1), Some(TenantId(0)), Time::ZERO);
        }
        for k in 3..6 {
            s.attach_tenant(TaskId(k), weight(1), Some(TenantId(1)), Time::ZERO);
        }
        let q = Duration::from_millis(5);
        let service = run_quanta(&mut s, 2, 2000, q);
        let big: u64 = (0..3)
            .map(|k| service.get(&TaskId(k)).copied().unwrap_or(0))
            .sum();
        let small: u64 = (3..6)
            .map(|k| service.get(&TaskId(k)).copied().unwrap_or(0))
            .sum();
        // Share 3 of 4 on 2 CPUs is 1.5 processors — more than one
        // thread could hold, but fine for a group with 3 members
        // (capacity 2), so no clamp binds and service splits 3:1.
        let ratio = big as f64 / small.max(1) as f64;
        assert!(
            (2.7..=3.3).contains(&ratio),
            "ratio {ratio} (big={big} small={small})"
        );
    }

    #[test]
    fn weight_inflation_stays_inside_the_tenant() {
        // Tenant b floods with heavy tasks; tenant a must keep half.
        let mut s = hier(1, &[("a", 1), ("b", 1)]);
        s.attach_tenant(TaskId(1), weight(1), Some(TenantId(0)), Time::ZERO);
        for k in 0..10 {
            s.attach_tenant(TaskId(100 + k), weight(100), Some(TenantId(1)), Time::ZERO);
        }
        let q = Duration::from_millis(10);
        let service = run_quanta(&mut s, 1, 1000, q);
        let a = service[&TaskId(1)];
        assert!(a >= 498, "tenant a pushed below its share: {a}/1000");
    }

    #[test]
    fn idle_groups_get_no_credit() {
        let mut s = hier(1, &[("a", 1), ("b", 1)]);
        s.attach_tenant(TaskId(1), weight(1), Some(TenantId(0)), Time::ZERO);
        let q = Duration::from_millis(10);
        // a runs alone for a while...
        let _ = run_quanta(&mut s, 1, 100, q);
        // ...then b arrives; it must not be owed the backlog.
        s.attach_tenant(TaskId(2), weight(1), Some(TenantId(1)), Time::from_secs(1));
        let service = run_quanta(&mut s, 1, 200, q);
        let a = service[&TaskId(1)];
        let b = service[&TaskId(2)];
        assert!(
            (a as i64 - b as i64).unsigned_abs() <= 2,
            "late group over-credited: a={a} b={b}"
        );
    }

    #[test]
    fn block_wake_and_detach_keep_the_queue_consistent() {
        let mut s = hier(2, &[("a", 2), ("b", 1)]);
        s.attach_tenant(TaskId(1), weight(1), Some(TenantId(0)), Time::ZERO);
        s.attach_tenant(TaskId(2), weight(2), Some(TenantId(1)), Time::ZERO);
        let q = Duration::from_millis(1);
        let t1 = s.pick_next(CpuId(0), Time::ZERO).unwrap();
        s.put_prev(t1, q, SwitchReason::Blocked, Time::from_millis(1));
        s.check_invariants();
        assert_eq!(s.nr_runnable(), 1);
        s.wake(t1, Time::from_millis(5));
        s.check_invariants();
        assert_eq!(s.nr_runnable(), 2);
        assert_eq!(s.tenant_of(TaskId(1)), Some(TenantId(0)));
        assert_eq!(s.tenant_of(TaskId(2)), Some(TenantId(1)));
        assert_eq!(s.bind_tenant("b"), Some(TenantId(1)));
        assert_eq!(s.bind_tenant("zzz"), None);
        s.detach(TaskId(1), Time::from_millis(6));
        s.detach(TaskId(2), Time::from_millis(6));
        s.check_invariants();
        assert_eq!(s.nr_tasks(), 0);
        assert_eq!(s.nr_runnable(), 0);
    }

    #[test]
    fn infeasible_group_share_is_clamped() {
        // One group with share 100 vs one with share 1 on 2 CPUs: the
        // big group cannot use more than one CPU per ready member, so
        // §2.1 clamps its φ_g; the small group still gets a full CPU.
        let mut s = hier(2, &[("big", 100), ("small", 1)]);
        s.attach_tenant(TaskId(1), weight(1), Some(TenantId(0)), Time::ZERO);
        s.attach_tenant(TaskId(2), weight(1), Some(TenantId(1)), Time::ZERO);
        let q = Duration::from_millis(10);
        let service = run_quanta(&mut s, 2, 500, q);
        let small = service[&TaskId(2)];
        assert!(small >= 498, "small group starved: {small}/500");
        assert!(s.stats().weights_clamped > 0, "expected a group clamp");
    }

    #[test]
    fn mixed_child_policies_build_and_run() {
        let spec = PolicySpec::sfs_over([
            GroupSpec::new("batch", PolicySpec::sfq()),
            GroupSpec::new("rt", PolicySpec::round_robin()),
        ]);
        let mut s = HierSfs::new(1, spec.groups());
        s.attach_tenant(TaskId(1), weight(1), Some(TenantId(0)), Time::ZERO);
        s.attach_tenant(TaskId(2), weight(1), Some(TenantId(1)), Time::ZERO);
        let q = Duration::from_millis(10);
        let service = run_quanta(&mut s, 1, 100, q);
        assert!(service[&TaskId(1)] >= 45);
        assert!(service[&TaskId(2)] >= 45);
    }

    #[test]
    #[should_panic(expected = "unknown tenant")]
    fn attach_rejects_unknown_tenant() {
        let mut s = hier(1, &[("a", 1)]);
        s.attach_tenant(TaskId(1), weight(1), Some(TenantId(9)), Time::ZERO);
    }
}
