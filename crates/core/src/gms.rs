//! Generalized multiprocessor sharing (GMS), the fluid-flow ideal (§2.2).
//!
//! GMS is the multiprocessor analogue of GPS: threads are served in
//! infinitesimally small quanta, `p` at a time, in proportion to their
//! instantaneous (readjusted) weights. For any interval in which two
//! threads are continuously runnable with fixed instantaneous weights,
//!
//! ```text
//! A_i(t1, t2) / A_j(t1, t2) = φ_i / φ_j        (Eq. 2)
//! ```
//!
//! GMS is not implementable with finite quanta; this module provides the
//! *fluid simulation* of it, used (a) as the reference against which the
//! surplus of a practical schedule is defined (Eq. 3) and (b) by the test
//! suite to bound SFS's deviation from the ideal.
//!
//! Between runnable-set changes the per-thread service rate is constant:
//! `r_i = p · C · φ_i / Σ_j φ_j`, which the feasibility constraint keeps
//! at or below the capacity `C` of one processor. [`FluidGms::advance`]
//! integrates those rates; every mutation re-runs weight readjustment,
//! so infeasible raw weights saturate at one full processor exactly as
//! water-filling would.
//!
//! Service is accumulated in `f64` nanoseconds: this is a measurement
//! reference, not kernel code, and the relative error over any experiment
//! horizon is far below the fixed-point resolution used by the schedulers.

use std::collections::HashMap;

use crate::readjust::{apply, readjust};
use crate::task::{TaskId, Weight};
use crate::time::Duration;

#[derive(Debug, Clone)]
struct FluidTask {
    weight: Weight,
    phi: f64,
    runnable: bool,
    service_ns: f64,
}

/// The fluid-flow GMS reference simulator.
#[derive(Debug, Clone)]
pub struct FluidGms {
    cpus: u32,
    capacity: f64,
    tasks: HashMap<TaskId, FluidTask>,
    total_phi: f64,
}

impl FluidGms {
    /// Creates a fluid machine with `cpus` processors of unit capacity
    /// (one second of service per second of wall time).
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn new(cpus: u32) -> FluidGms {
        assert!(cpus > 0, "need at least one processor");
        FluidGms {
            cpus,
            capacity: 1.0,
            tasks: HashMap::new(),
            total_phi: 0.0,
        }
    }

    /// Adds a task in the given runnable state.
    pub fn add(&mut self, id: TaskId, w: Weight, runnable: bool) {
        let prev = self.tasks.insert(
            id,
            FluidTask {
                weight: w,
                phi: w.get() as f64,
                runnable,
                service_ns: 0.0,
            },
        );
        assert!(prev.is_none(), "task {id} added twice");
        self.readjust_all();
    }

    /// Removes a task entirely.
    pub fn remove(&mut self, id: TaskId) {
        self.tasks.remove(&id).expect("removing unknown task");
        self.readjust_all();
    }

    /// Marks a task runnable or blocked.
    pub fn set_runnable(&mut self, id: TaskId, runnable: bool) {
        self.tasks.get_mut(&id).expect("unknown task").runnable = runnable;
        self.readjust_all();
    }

    /// Changes a task's weight.
    pub fn set_weight(&mut self, id: TaskId, w: Weight) {
        let t = self.tasks.get_mut(&id).expect("unknown task");
        t.weight = w;
        self.readjust_all();
    }

    /// True if the task is currently runnable.
    pub fn is_runnable(&self, id: TaskId) -> bool {
        self.tasks.get(&id).is_some_and(|t| t.runnable)
    }

    /// The task's current instantaneous weight `φ_i`.
    pub fn phi(&self, id: TaskId) -> Option<f64> {
        self.tasks.get(&id).map(|t| t.phi)
    }

    /// The task's current fluid service rate, in CPUs (0.0 ..= 1.0).
    pub fn rate(&self, id: TaskId) -> f64 {
        let Some(t) = self.tasks.get(&id) else {
            return 0.0;
        };
        if !t.runnable || self.total_phi == 0.0 {
            return 0.0;
        }
        let runnable = self.tasks.values().filter(|t| t.runnable).count() as f64;
        let share = self.cpus as f64 * t.phi / self.total_phi;
        // With fewer runnable threads than processors every thread gets a
        // full CPU; otherwise readjustment already capped shares at 1/p.
        if runnable <= self.cpus as f64 {
            self.capacity
        } else {
            share.min(1.0) * self.capacity
        }
    }

    /// Integrates the fluid for `dt` of wall time.
    pub fn advance(&mut self, dt: Duration) {
        if self.total_phi == 0.0 {
            return;
        }
        let ids: Vec<TaskId> = self.tasks.keys().copied().collect();
        for id in ids {
            let r = self.rate(id);
            if r > 0.0 {
                self.tasks.get_mut(&id).unwrap().service_ns += r * dt.as_nanos() as f64;
            }
        }
    }

    /// Cumulative fluid service `A_i^GMS`.
    pub fn service(&self, id: TaskId) -> Duration {
        Duration::from_nanos(
            self.tasks
                .get(&id)
                .map(|t| t.service_ns)
                .unwrap_or(0.0)
                .round() as u64,
        )
    }

    /// Cumulative fluid service in fractional nanoseconds.
    pub fn service_ns_f64(&self, id: TaskId) -> f64 {
        self.tasks.get(&id).map(|t| t.service_ns).unwrap_or(0.0)
    }

    fn readjust_all(&mut self) {
        let mut runnable: Vec<(TaskId, u64)> = self
            .tasks
            .iter()
            .filter(|(_, t)| t.runnable)
            .map(|(&id, t)| (id, t.weight.get()))
            .collect();
        // Descending weight, deterministic tie-break by id.
        runnable.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let weights: Vec<u64> = runnable.iter().map(|&(_, w)| w).collect();
        let phis = apply(&weights, &readjust(&weights, self.cpus));
        self.total_phi = 0.0;
        for ((id, _), phi) in runnable.iter().zip(phis.iter()) {
            let phi = phi.to_f64();
            self.tasks.get_mut(id).unwrap().phi = phi;
            self.total_phi += phi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::weight;
    use crate::testkit::assert_close;

    #[test]
    fn proportional_rates_for_feasible_weights() {
        let mut g = FluidGms::new(2);
        g.add(TaskId(1), weight(2), true);
        g.add(TaskId(2), weight(1), true);
        g.add(TaskId(3), weight(1), true);
        // Shares of 2 CPUs: 1, 0.5, 0.5.
        assert_close(g.rate(TaskId(1)), 1.0, 1e-9, "heavy rate");
        assert_close(g.rate(TaskId(2)), 0.5, 1e-9, "light rate");
        g.advance(Duration::from_secs(10));
        assert_close(
            g.service(TaskId(1)).as_secs_f64(),
            10.0,
            1e-9,
            "heavy service",
        );
        assert_close(
            g.service(TaskId(3)).as_secs_f64(),
            5.0,
            1e-9,
            "light service",
        );
    }

    #[test]
    fn infeasible_weight_saturates_at_one_cpu() {
        let mut g = FluidGms::new(2);
        g.add(TaskId(1), weight(1), true);
        g.add(TaskId(2), weight(100), true);
        assert_close(g.rate(TaskId(2)), 1.0, 1e-9, "clamped to one CPU");
        assert_close(g.rate(TaskId(1)), 1.0, 1e-9, "leftover CPU");
    }

    #[test]
    fn eq2_ratio_holds_for_fixed_interval() {
        let mut g = FluidGms::new(2);
        g.add(TaskId(1), weight(3), true);
        g.add(TaskId(2), weight(1), true);
        g.add(TaskId(3), weight(1), true);
        g.add(TaskId(4), weight(1), true);
        g.advance(Duration::from_secs(6));
        let a1 = g.service_ns_f64(TaskId(1));
        let a2 = g.service_ns_f64(TaskId(2));
        assert_close(a1 / a2, 3.0, 1e-9, "A1/A2 = phi1/phi2");
    }

    #[test]
    fn blocking_redistributes_bandwidth() {
        let mut g = FluidGms::new(1);
        g.add(TaskId(1), weight(1), true);
        g.add(TaskId(2), weight(1), true);
        g.advance(Duration::from_secs(2));
        g.set_runnable(TaskId(2), false);
        g.advance(Duration::from_secs(2));
        assert_close(g.service(TaskId(1)).as_secs_f64(), 3.0, 1e-9, "1+2");
        assert_close(g.service(TaskId(2)).as_secs_f64(), 1.0, 1e-9, "1");
        g.set_runnable(TaskId(2), true);
        g.advance(Duration::from_secs(2));
        assert_close(g.service(TaskId(2)).as_secs_f64(), 2.0, 1e-9, "1+1");
    }

    #[test]
    fn fewer_threads_than_cpus_each_get_full_cpu() {
        let mut g = FluidGms::new(4);
        g.add(TaskId(1), weight(100), true);
        g.add(TaskId(2), weight(1), true);
        assert_close(g.rate(TaskId(1)), 1.0, 1e-9, "full CPU");
        assert_close(g.rate(TaskId(2)), 1.0, 1e-9, "full CPU");
    }

    #[test]
    fn set_weight_changes_rates() {
        let mut g = FluidGms::new(1);
        g.add(TaskId(1), weight(1), true);
        g.add(TaskId(2), weight(1), true);
        g.set_weight(TaskId(2), weight(3));
        assert_close(g.rate(TaskId(2)), 0.75, 1e-9, "3/4");
        assert_close(g.rate(TaskId(1)), 0.25, 1e-9, "1/4");
    }

    #[test]
    fn work_conserving_total_rate() {
        let mut g = FluidGms::new(3);
        for i in 0..8 {
            g.add(TaskId(i), weight(1 + i % 3), true);
        }
        let total: f64 = (0..8).map(|i| g.rate(TaskId(i))).sum();
        assert_close(total, 3.0, 1e-6, "total rate = p");
    }
}
