//! A typed, parseable description of a scheduling policy.
//!
//! Every experiment in this repository compares policies — SFS against
//! SFQ, time sharing, stride, BVT, WFQ, round-robin (§4) — so the
//! policy-plus-configuration pair is itself a first-class value:
//! [`PolicySpec`] is a small, serialisable registry entry that
//!
//! * round-trips through strings (`"sfs:quantum=5ms"`,
//!   `"sfq:quantum=1ms,readjust"`, `"ts"`, `"rr"`), so harness CLIs,
//!   result files and test matrices all speak the same dialect;
//! * builds a ready [`Scheduler`] for any CPU count via
//!   [`PolicySpec::build`], replacing ad-hoc constructor calls at every
//!   comparison site;
//! * enumerates the registry via [`PolicySpec::registered`], so generic
//!   properties (conservation, churn survival) run against *every*
//!   policy automatically.
//!
//! The grammar is `kind[:opt,opt,...]` where each `opt` is `key=value`
//! or a bare flag. Options are validated against the kind — `ts:readjust`
//! is a parse error, not a silent no-op — and [`fmt::Display`] prints a
//! canonical form, so `parse ∘ to_string` is the identity on every
//! constructible spec. Top-level options may also be separated by `:`
//! (an accepted alternate spelling, convenient for clause-shaped
//! options: `sfs:groups(a=sfs,b=sfs):admit(max=1000,rate=500/s)`);
//! `Display` always emits commas.

use core::fmt;
use core::str::FromStr;
use std::sync::Arc;

use crate::admit::{AdmissionPolicy, ParseAdmitError};
use crate::bvt::{Bvt, BvtConfig};
use crate::hier::HierSfs;
use crate::rr::RoundRobin;
use crate::sched::Scheduler;
use crate::sfq::{Sfq, SfqConfig};
use crate::sfs::{Sfs, SfsConfig};
use crate::shard::{ShardedScheduler, SnapshotCell};
use crate::stride::{Stride, StrideConfig};
use crate::task::TenantId;
use crate::time::Duration;
use crate::timeshare::{TimeSharing, TimeSharingConfig};
use crate::wfq::{Wfq, WfqConfig};

/// The algorithms registered with [`PolicySpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Surplus fair scheduling (§2.3, §3).
    Sfs,
    /// Start-time fair queueing (Goyal et al.), optionally readjusted.
    Sfq,
    /// The Linux 2.2 epoch/goodness time-sharing scheduler.
    TimeSharing,
    /// Stride scheduling (Waldspurger & Weihl).
    Stride,
    /// Borrowed virtual time (Duda & Cheriton).
    Bvt,
    /// Weighted fair queueing (finish-tag based).
    Wfq,
    /// Plain round-robin.
    RoundRobin,
}

impl PolicyKind {
    /// Every registered kind, in canonical order.
    pub const ALL: [PolicyKind; 7] = [
        PolicyKind::Sfs,
        PolicyKind::Sfq,
        PolicyKind::TimeSharing,
        PolicyKind::Stride,
        PolicyKind::Bvt,
        PolicyKind::Wfq,
        PolicyKind::RoundRobin,
    ];

    /// The canonical string token (`"sfs"`, `"ts"`, ...).
    pub fn token(self) -> &'static str {
        match self {
            PolicyKind::Sfs => "sfs",
            PolicyKind::Sfq => "sfq",
            PolicyKind::TimeSharing => "ts",
            PolicyKind::Stride => "stride",
            PolicyKind::Bvt => "bvt",
            PolicyKind::Wfq => "wfq",
            PolicyKind::RoundRobin => "rr",
        }
    }

    /// Whether the `quantum` option applies to this kind.
    fn has_quantum(self) -> bool {
        !matches!(self, PolicyKind::TimeSharing)
    }

    /// Whether the `readjust` flag applies to this kind (SFS always
    /// readjusts; time sharing and round-robin ignore weights).
    fn has_readjust(self) -> bool {
        matches!(
            self,
            PolicyKind::Sfq | PolicyKind::Stride | PolicyKind::Bvt | PolicyKind::Wfq
        )
    }

    fn parse(token: &str) -> Option<PolicyKind> {
        Some(match token {
            "sfs" => PolicyKind::Sfs,
            "sfq" => PolicyKind::Sfq,
            "ts" | "timeshare" | "timesharing" => PolicyKind::TimeSharing,
            "stride" => PolicyKind::Stride,
            "bvt" => PolicyKind::Bvt,
            "wfq" => PolicyKind::Wfq,
            "rr" | "roundrobin" => PolicyKind::RoundRobin,
            _ => return None,
        })
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One tenant group of a hierarchical spec: a name, a share (the group
/// weight SFS enforces at the top level) and the policy scheduling
/// *within* the group.
///
/// The string form is `name=policy` inside a `groups(...)` clause, or
/// `name*share=policy` for shares other than 1:
///
/// ```
/// use sfs_core::policy::{GroupSpec, PolicySpec};
///
/// let spec = PolicySpec::sfs_over([
///     GroupSpec::new("batch", PolicySpec::sfq()),
///     GroupSpec::new("frontend", PolicySpec::sfs().with_heuristic(4)).with_share(3),
/// ]);
/// assert_eq!(spec.to_string(), "sfs:groups(batch=sfq,frontend*3=sfs:heuristic=4)");
/// assert_eq!(spec, spec.to_string().parse().unwrap());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupSpec {
    name: String,
    share: u64,
    policy: PolicySpec,
}

impl GroupSpec {
    /// A group with share 1 under the given intra-group policy.
    ///
    /// # Panics
    ///
    /// Panics if the name is empty or contains characters outside
    /// `[A-Za-z0-9_-]`, or if the policy is itself sharded or grouped
    /// (hierarchies are two-level).
    #[must_use]
    pub fn new(name: &str, policy: PolicySpec) -> GroupSpec {
        assert!(
            !name.is_empty() && name.chars().all(valid_group_char),
            "invalid group name {name:?} (want [A-Za-z0-9_-]+)"
        );
        assert!(
            policy.shards.is_none(),
            "group policies cannot be sharded: {policy}"
        );
        assert!(policy.groups.is_empty(), "groups cannot nest: {policy}");
        assert!(
            policy.admission.is_none(),
            "admission control applies to the whole spec, not a group: {policy}"
        );
        GroupSpec {
            name: name.to_string(),
            share: 1,
            policy,
        }
    }

    /// Sets the group's share (its weight in the top-level SFS).
    ///
    /// # Panics
    ///
    /// Panics if the share is zero.
    #[must_use]
    pub fn with_share(mut self, share: u64) -> GroupSpec {
        assert!(share > 0, "group share must be positive");
        self.share = share;
        self
    }

    /// The group (tenant) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The group's share.
    pub fn share(&self) -> u64 {
        self.share
    }

    /// The intra-group policy.
    pub fn policy(&self) -> &PolicySpec {
        &self.policy
    }
}

impl fmt::Display for GroupSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.share == 1 {
            write!(f, "{}=", self.name)?;
        } else {
            write!(f, "{}*{}=", self.name, self.share)?;
        }
        // A sub-spec with several options contains commas, which would
        // read as new group entries; parenthesise it so the clause
        // round-trips.
        let policy = self.policy.to_string();
        if policy.contains(',') {
            write!(f, "({policy})")
        } else {
            f.write_str(&policy)
        }
    }
}

fn valid_group_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// A serialisable policy + configuration description.
///
/// Construct one with the per-kind builders ([`PolicySpec::sfs`],
/// [`PolicySpec::sfq`], ...), refine it with the `with_*` methods, or
/// parse it from its string form. Build a live scheduler for a machine
/// with [`PolicySpec::build`].
///
/// ```
/// use sfs_core::policy::PolicySpec;
/// use sfs_core::time::Duration;
///
/// let spec: PolicySpec = "sfs:quantum=5ms".parse().unwrap();
/// assert_eq!(spec, PolicySpec::sfs().with_quantum(Duration::from_millis(5)));
/// assert_eq!(spec.to_string(), "sfs:quantum=5ms");
/// let sched = spec.build(2);
/// assert_eq!(sched.cpus(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PolicySpec {
    kind: PolicyKind,
    quantum: Option<Duration>,
    readjust: bool,
    heuristic: Option<usize>,
    refresh_every: Option<u64>,
    affinity_margin: Option<Duration>,
    audit: bool,
    ticks: Option<i64>,
    shards: Option<u32>,
    rebalance: Option<Duration>,
    groups: Vec<GroupSpec>,
    admission: Option<AdmissionPolicy>,
}

impl PolicySpec {
    /// A spec of the given kind with every option at its default.
    pub fn new(kind: PolicyKind) -> PolicySpec {
        PolicySpec {
            kind,
            quantum: None,
            readjust: false,
            heuristic: None,
            refresh_every: None,
            affinity_margin: None,
            audit: false,
            ticks: None,
            shards: None,
            rebalance: None,
            groups: Vec::new(),
            admission: None,
        }
    }

    /// Surplus fair scheduling with default configuration.
    #[must_use]
    pub fn sfs() -> PolicySpec {
        PolicySpec::new(PolicyKind::Sfs)
    }

    /// Start-time fair queueing (no readjustment).
    #[must_use]
    pub fn sfq() -> PolicySpec {
        PolicySpec::new(PolicyKind::Sfq)
    }

    /// The Linux 2.2 time-sharing baseline.
    #[must_use]
    pub fn time_sharing() -> PolicySpec {
        PolicySpec::new(PolicyKind::TimeSharing)
    }

    /// Stride scheduling.
    #[must_use]
    pub fn stride() -> PolicySpec {
        PolicySpec::new(PolicyKind::Stride)
    }

    /// Borrowed virtual time.
    #[must_use]
    pub fn bvt() -> PolicySpec {
        PolicySpec::new(PolicyKind::Bvt)
    }

    /// Weighted fair queueing.
    #[must_use]
    pub fn wfq() -> PolicySpec {
        PolicySpec::new(PolicyKind::Wfq)
    }

    /// Round-robin.
    #[must_use]
    pub fn round_robin() -> PolicySpec {
        PolicySpec::new(PolicyKind::RoundRobin)
    }

    /// Hierarchical SFS over tenant groups: the top level runs SFS with
    /// each group's share as its weight (group-level §2.1 readjustment
    /// included), and each group's member tasks are scheduled by that
    /// group's own policy. String form: `sfs:groups(name=policy,...)`.
    ///
    /// ```
    /// use sfs_core::policy::{GroupSpec, PolicySpec};
    ///
    /// let spec = PolicySpec::sfs_over([
    ///     GroupSpec::new("batch", PolicySpec::sfq()),
    ///     GroupSpec::new("frontend", PolicySpec::sfs()),
    /// ]);
    /// let sched = spec.build(2);
    /// assert_eq!(sched.name(), "SFS(hier)");
    /// assert_eq!(spec.tenant_of("frontend").unwrap().0, 1);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the group list is empty or contains duplicate names.
    #[must_use]
    pub fn sfs_over(groups: impl IntoIterator<Item = GroupSpec>) -> PolicySpec {
        let groups: Vec<GroupSpec> = groups.into_iter().collect();
        assert!(!groups.is_empty(), "need at least one group");
        for (i, g) in groups.iter().enumerate() {
            assert!(
                !groups[..i].iter().any(|o| o.name == g.name),
                "duplicate group name {:?}",
                g.name
            );
        }
        let mut spec = PolicySpec::new(PolicyKind::Sfs);
        spec.groups = groups;
        spec
    }

    /// The tenant groups of a hierarchical spec (empty when flat).
    pub fn groups(&self) -> &[GroupSpec] {
        &self.groups
    }

    /// Resolves a group name to its [`TenantId`] — the group's position
    /// in the `groups(...)` clause, stable across the parse ∘ `Display`
    /// round-trip. `None` for flat specs or unknown names.
    pub fn tenant_of(&self, name: &str) -> Option<TenantId> {
        self.groups
            .iter()
            .position(|g| g.name == name)
            .map(|i| TenantId(i as u32))
    }

    /// One canonical (all-defaults) spec per registered kind — the
    /// registry that generic cross-policy tests iterate.
    pub fn registered() -> Vec<PolicySpec> {
        PolicyKind::ALL
            .iter()
            .copied()
            .map(PolicySpec::new)
            .collect()
    }

    /// The policy kind.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// The configured quantum, if overridden.
    pub fn quantum(&self) -> Option<Duration> {
        self.quantum
    }

    /// Sets the scheduling quantum.
    ///
    /// # Panics
    ///
    /// Panics for time sharing, which derives its quantum from epoch
    /// ticks (use [`PolicySpec::with_ticks`]).
    #[must_use]
    pub fn with_quantum(mut self, q: Duration) -> PolicySpec {
        assert!(
            self.kind.has_quantum(),
            "`quantum` does not apply to {}",
            self.kind
        );
        self.assert_flat("quantum");
        self.quantum = Some(q);
        self
    }

    /// Per-task options live on the group policies of a hierarchical
    /// spec, not on the outer `sfs:groups(...)` level.
    fn assert_flat(&self, opt: &str) {
        assert!(
            self.groups.is_empty(),
            "`{opt}` does not apply to a hierarchical spec; set it on the group policies"
        );
    }

    /// Enables §2.1 weight readjustment (SFQ / stride / BVT / WFQ only;
    /// SFS always readjusts).
    ///
    /// # Panics
    ///
    /// Panics for kinds that do not take the flag.
    #[must_use]
    pub fn with_readjustment(mut self) -> PolicySpec {
        assert!(
            self.kind.has_readjust(),
            "`readjust` does not apply to {}",
            self.kind
        );
        self.readjust = true;
        self
    }

    /// Enables the §3.2 bounded-lookahead heuristic, examining `k`
    /// entries per queue (SFS only).
    ///
    /// # Panics
    ///
    /// Panics for non-SFS kinds.
    #[must_use]
    pub fn with_heuristic(mut self, k: usize) -> PolicySpec {
        assert!(
            self.kind == PolicyKind::Sfs,
            "`heuristic` does not apply to {}",
            self.kind
        );
        self.assert_flat("heuristic");
        self.heuristic = Some(k);
        self
    }

    /// Forces a full surplus refresh every `n` heuristic picks (SFS
    /// only).
    ///
    /// # Panics
    ///
    /// Panics for non-SFS kinds.
    #[must_use]
    pub fn with_refresh_every(mut self, n: u64) -> PolicySpec {
        assert!(
            self.kind == PolicyKind::Sfs,
            "`refresh` does not apply to {}",
            self.kind
        );
        self.assert_flat("refresh");
        self.refresh_every = Some(n);
        self
    }

    /// Enables the §5 processor-affinity extension with the given
    /// surplus margin (SFS only).
    ///
    /// # Panics
    ///
    /// Panics for non-SFS kinds.
    #[must_use]
    pub fn with_affinity_margin(mut self, margin: Duration) -> PolicySpec {
        assert!(
            self.kind == PolicyKind::Sfs,
            "`affinity` does not apply to {}",
            self.kind
        );
        self.assert_flat("affinity");
        self.affinity_margin = Some(margin);
        self
    }

    /// Audits every heuristic pick against the exact choice (Fig. 3;
    /// SFS only).
    ///
    /// # Panics
    ///
    /// Panics for non-SFS kinds.
    #[must_use]
    pub fn with_audit(mut self) -> PolicySpec {
        assert!(
            self.kind == PolicyKind::Sfs,
            "`audit` does not apply to {}",
            self.kind
        );
        self.assert_flat("audit");
        self.audit = true;
        self
    }

    /// Sets the per-epoch tick grant (time sharing only).
    ///
    /// # Panics
    ///
    /// Panics for non-time-sharing kinds.
    #[must_use]
    pub fn with_ticks(mut self, ticks: i64) -> PolicySpec {
        assert!(
            self.kind == PolicyKind::TimeSharing,
            "`ticks` does not apply to {}",
            self.kind
        );
        self.ticks = Some(ticks);
        self
    }

    /// Splits the machine into per-CPU run-queue shards, each running
    /// its own instance of this policy behind surplus-balanced
    /// placement and stealing (any kind; see [`crate::shard`]). The
    /// shard count is clamped to the CPU count at build time.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn with_shards(mut self, n: u32) -> PolicySpec {
        assert!(n > 0, "need at least one shard");
        self.shards = Some(n);
        self
    }

    /// Sets the sharded scheduler's rebalance interval (requires
    /// [`PolicySpec::with_shards`] first).
    ///
    /// # Panics
    ///
    /// Panics if the spec is not sharded.
    #[must_use]
    pub fn with_rebalance_every(mut self, every: Duration) -> PolicySpec {
        assert!(
            self.shards.is_some(),
            "`rebalance` requires `shards` on {self}"
        );
        self.rebalance = Some(every);
        self
    }

    /// Attaches an admission-control policy (`admit(...)` in the
    /// string form). Admission is enforced by the *substrate* — sim or
    /// rt — before an arrival ever reaches the scheduler, so it
    /// composes with any kind, flat or hierarchical; the policy itself
    /// never sees rejected tasks. Rejections surface as typed
    /// outcomes, not silent drops.
    ///
    /// # Panics
    ///
    /// Panics if the policy has no limit set.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> PolicySpec {
        assert!(
            !admission.is_none(),
            "admission policy must set at least one limit"
        );
        self.admission = Some(admission);
        self
    }

    /// The attached admission-control policy, if any.
    pub fn admission(&self) -> Option<&AdmissionPolicy> {
        self.admission.as_ref()
    }

    /// The configured shard count (1 when unsharded).
    pub fn shard_count(&self) -> u32 {
        self.shards.unwrap_or(1)
    }

    /// The configured rebalance interval, if sharded with an override.
    pub fn rebalance_every(&self) -> Option<Duration> {
        self.rebalance
    }

    /// This spec with sharding removed — the per-shard inner policy.
    #[must_use]
    pub fn without_sharding(&self) -> PolicySpec {
        PolicySpec {
            shards: None,
            rebalance: None,
            ..self.clone()
        }
    }

    /// Builds a live scheduler for a `cpus`-processor machine. Sharded
    /// specs produce a [`ShardedScheduler`] wrapping one inner policy
    /// instance per shard.
    pub fn build(&self, cpus: u32) -> Box<dyn Scheduler> {
        match self.shards {
            Some(n) => Box::new(ShardedScheduler::build(
                &self.without_sharding(),
                n,
                cpus,
                self.rebalance,
            )),
            None => self.build_base(cpus, None),
        }
    }

    /// Builds the (unsharded) policy with an externally owned global
    /// feasibility snapshot attached, for use as one shard of a sharded
    /// scheduler. Policies without snapshot support (everything but
    /// SFS) ignore the cell.
    ///
    /// # Panics
    ///
    /// Panics if this spec is itself sharded.
    pub fn build_with_phi_snapshot(
        &self,
        cpus: u32,
        cell: &Arc<SnapshotCell>,
    ) -> Box<dyn Scheduler> {
        assert!(self.shards.is_none(), "cannot nest sharding: {self}");
        self.build_base(cpus, Some(cell))
    }

    fn build_base(&self, cpus: u32, snapshot: Option<&Arc<SnapshotCell>>) -> Box<dyn Scheduler> {
        if !self.groups.is_empty() {
            debug_assert_eq!(self.kind, PolicyKind::Sfs);
            // Hierarchical: SFS over the groups, each scheduling its
            // members with its own policy. The cross-shard φ snapshot
            // does not apply — group shares are readjusted at the
            // group level, per shard.
            return Box::new(HierSfs::new(cpus, &self.groups));
        }
        match self.kind {
            PolicyKind::Sfs => {
                let mut cfg = SfsConfig::default();
                if let Some(q) = self.quantum {
                    cfg.quantum = q;
                }
                cfg.heuristic = self.heuristic;
                if let Some(n) = self.refresh_every {
                    cfg.refresh_every = n;
                }
                cfg.affinity_margin = self.affinity_margin;
                cfg.audit_heuristic = self.audit;
                cfg.phi_snapshot = snapshot.map(Arc::clone);
                Box::new(Sfs::with_config(cpus, cfg))
            }
            PolicyKind::Sfq => {
                let mut cfg = SfqConfig::default();
                if let Some(q) = self.quantum {
                    cfg.quantum = q;
                }
                cfg.readjust = self.readjust;
                Box::new(Sfq::with_config(cpus, cfg))
            }
            PolicyKind::TimeSharing => {
                let mut cfg = TimeSharingConfig::default();
                if let Some(t) = self.ticks {
                    cfg.priority_ticks = t;
                }
                Box::new(TimeSharing::with_config(cpus, cfg))
            }
            PolicyKind::Stride => {
                let mut cfg = StrideConfig::default();
                if let Some(q) = self.quantum {
                    cfg.quantum = q;
                }
                cfg.readjust = self.readjust;
                Box::new(Stride::with_config(cpus, cfg))
            }
            PolicyKind::Bvt => {
                let mut cfg = BvtConfig::default();
                if let Some(q) = self.quantum {
                    cfg.quantum = q;
                }
                cfg.readjust = self.readjust;
                Box::new(Bvt::with_config(cpus, cfg))
            }
            PolicyKind::Wfq => {
                let mut cfg = WfqConfig::default();
                if let Some(q) = self.quantum {
                    cfg.quantum = q;
                }
                cfg.readjust = self.readjust;
                Box::new(Wfq::with_config(cpus, cfg))
            }
            PolicyKind::RoundRobin => {
                let q = self.quantum.unwrap_or(Duration::from_millis(200));
                Box::new(RoundRobin::new(cpus, q))
            }
        }
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.kind.token())?;
        let mut sep = ':';
        let mut emit = |f: &mut fmt::Formatter<'_>, opt: fmt::Arguments<'_>| -> fmt::Result {
            write!(f, "{sep}{opt}")?;
            sep = ',';
            Ok(())
        };
        if let Some(q) = self.quantum {
            emit(f, format_args!("quantum={}", FmtDuration(q)))?;
        }
        if let Some(t) = self.ticks {
            emit(f, format_args!("ticks={t}"))?;
        }
        if let Some(k) = self.heuristic {
            emit(f, format_args!("heuristic={k}"))?;
        }
        if let Some(n) = self.refresh_every {
            emit(f, format_args!("refresh={n}"))?;
        }
        if let Some(m) = self.affinity_margin {
            emit(f, format_args!("affinity={}", FmtDuration(m)))?;
        }
        if !self.groups.is_empty() {
            let inner = self
                .groups
                .iter()
                .map(GroupSpec::to_string)
                .collect::<Vec<_>>()
                .join(",");
            emit(f, format_args!("groups({inner})"))?;
        }
        if let Some(a) = &self.admission {
            emit(f, format_args!("admit({a})"))?;
        }
        if let Some(n) = self.shards {
            emit(f, format_args!("shards={n}"))?;
        }
        if let Some(r) = self.rebalance {
            emit(f, format_args!("rebalance={}", FmtDuration(r)))?;
        }
        if self.readjust {
            emit(f, format_args!("readjust"))?;
        }
        if self.audit {
            emit(f, format_args!("audit"))?;
        }
        Ok(())
    }
}

/// Error from parsing a [`PolicySpec`] string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    message: String,
}

impl ParsePolicyError {
    fn new(message: impl Into<String>) -> ParsePolicyError {
        ParsePolicyError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid policy spec: {}", self.message)
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for PolicySpec {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<PolicySpec, ParsePolicyError> {
        let s = s.trim();
        let (kind_tok, opts) = match s.split_once(':') {
            Some((k, o)) => (k, Some(o)),
            None => (s, None),
        };
        let kind = PolicyKind::parse(kind_tok).ok_or_else(|| {
            ParsePolicyError::new(format!(
                "unknown policy {kind_tok:?}; known: {}",
                PolicyKind::ALL.map(PolicyKind::token).join(" ")
            ))
        })?;
        let mut spec = PolicySpec::new(kind);
        let Some(opts) = opts else { return Ok(spec) };
        if opts.is_empty() {
            return Err(ParsePolicyError::new("trailing `:` with no options"));
        }
        for opt in split_options(opts) {
            let opt = opt.trim();
            // `groups(...)` carries a nested spec list whose commas and
            // `=` belong to the sub-specs, so it is handled before the
            // generic key[=value] split.
            if let Some(rest) = opt.strip_prefix("groups(") {
                if kind != PolicyKind::Sfs {
                    return Err(ParsePolicyError::new(format!(
                        "option \"groups\" does not apply to policy {kind}"
                    )));
                }
                let inner = rest
                    .strip_suffix(')')
                    .ok_or_else(|| ParsePolicyError::new("unclosed `groups(` (missing `)`)"))?;
                if !spec.groups.is_empty() {
                    return Err(ParsePolicyError::new("`groups` given twice"));
                }
                spec.groups = parse_groups(inner)?;
                continue;
            }
            // `admit(...)` likewise carries its own key=value list.
            if let Some(rest) = opt.strip_prefix("admit(") {
                let inner = rest
                    .strip_suffix(')')
                    .ok_or_else(|| ParsePolicyError::new("unclosed `admit(` (missing `)`)"))?;
                if spec.admission.is_some() {
                    return Err(ParsePolicyError::new("`admit` given twice"));
                }
                spec.admission = Some(inner.parse().map_err(|e: ParseAdmitError| {
                    ParsePolicyError::new(format!("in admit(...): {}", e.0))
                })?);
                continue;
            }
            let (key, value) = match opt.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (opt, None),
            };
            let check = |ok: bool| -> Result<(), ParsePolicyError> {
                if ok {
                    Ok(())
                } else {
                    Err(ParsePolicyError::new(format!(
                        "option {key:?} does not apply to policy {kind}"
                    )))
                }
            };
            let want_value = || -> Result<&str, ParsePolicyError> {
                value.ok_or_else(|| ParsePolicyError::new(format!("option {key:?} needs a value")))
            };
            let want_flag = |v: Option<&str>| -> Result<(), ParsePolicyError> {
                if v.is_some() {
                    Err(ParsePolicyError::new(format!(
                        "flag {key:?} does not take a value"
                    )))
                } else {
                    Ok(())
                }
            };
            match key {
                "quantum" => {
                    check(kind.has_quantum())?;
                    spec.quantum = Some(parse_duration(want_value()?)?);
                }
                "readjust" => {
                    check(kind.has_readjust())?;
                    want_flag(value)?;
                    spec.readjust = true;
                }
                "heuristic" => {
                    check(kind == PolicyKind::Sfs)?;
                    spec.heuristic = Some(parse_num(want_value()?, "heuristic")?);
                }
                "refresh" => {
                    check(kind == PolicyKind::Sfs)?;
                    spec.refresh_every = Some(parse_num(want_value()?, "refresh")?);
                }
                "affinity" => {
                    check(kind == PolicyKind::Sfs)?;
                    spec.affinity_margin = Some(parse_duration(want_value()?)?);
                }
                "audit" => {
                    check(kind == PolicyKind::Sfs)?;
                    want_flag(value)?;
                    spec.audit = true;
                }
                "ticks" => {
                    check(kind == PolicyKind::TimeSharing)?;
                    spec.ticks = Some(parse_num(want_value()?, "ticks")?);
                }
                "shards" => {
                    let n: u32 = parse_num(want_value()?, "shards")?;
                    if n == 0 {
                        return Err(ParsePolicyError::new("`shards` must be at least 1"));
                    }
                    spec.shards = Some(n);
                }
                "rebalance" => {
                    spec.rebalance = Some(parse_duration(want_value()?)?);
                }
                other => {
                    return Err(ParsePolicyError::new(format!("unknown option {other:?}")));
                }
            }
        }
        if spec.rebalance.is_some() && spec.shards.is_none() {
            return Err(ParsePolicyError::new("`rebalance` requires `shards`"));
        }
        if !spec.groups.is_empty()
            && (spec.quantum.is_some()
                || spec.heuristic.is_some()
                || spec.refresh_every.is_some()
                || spec.affinity_margin.is_some()
                || spec.audit)
        {
            return Err(ParsePolicyError::new(
                "per-task options do not apply to a `groups(...)` spec; \
                 set them on the group policies",
            ));
        }
        Ok(spec)
    }
}

/// Splits an option list on commas outside parentheses, so the commas
/// inside a `groups(...)` clause stay with the clause.
fn split_top_level(s: &str) -> impl Iterator<Item = &str> {
    let mut depth = 0usize;
    s.split(move |c: char| {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            _ => {}
        }
        c == ',' && depth == 0
    })
}

/// Splits a spec's *top-level option list*, where `:` is accepted as
/// an alternate separator alongside `,` (outside parentheses), so
/// clause chains like `groups(...):admit(...)` parse. Group entries
/// keep using [`split_top_level`] — a group's `name=kind:opt` embeds a
/// `:` that belongs to the sub-spec.
fn split_options(s: &str) -> impl Iterator<Item = &str> {
    let mut depth = 0usize;
    s.split(move |c: char| {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            _ => {}
        }
        (c == ',' || c == ':') && depth == 0
    })
}

/// Parses the inside of a `groups(...)` clause: comma-separated
/// `name[*share]=policy` entries.
fn parse_groups(inner: &str) -> Result<Vec<GroupSpec>, ParsePolicyError> {
    if inner.trim().is_empty() {
        return Err(ParsePolicyError::new("empty `groups(...)`"));
    }
    let mut groups: Vec<GroupSpec> = Vec::new();
    for entry in split_top_level(inner) {
        let entry = entry.trim();
        let (head, sub) = entry.split_once('=').ok_or_else(|| {
            ParsePolicyError::new(format!("group entry {entry:?} wants `name=policy`"))
        })?;
        let head = head.trim();
        let (name, share) = match head.split_once('*') {
            Some((n, s)) => (n.trim(), parse_num::<u64>(s.trim(), "group share")?),
            None => (head, 1),
        };
        if name.is_empty() || !name.chars().all(valid_group_char) {
            return Err(ParsePolicyError::new(format!(
                "invalid group name {name:?} (want [A-Za-z0-9_-]+)"
            )));
        }
        if share == 0 {
            return Err(ParsePolicyError::new(format!(
                "group {name:?} has zero share (shares must be ≥ 1)"
            )));
        }
        if groups.iter().any(|g| g.name() == name) {
            return Err(ParsePolicyError::new(format!(
                "duplicate group name {name:?}"
            )));
        }
        let sub = sub.trim();
        let sub = match sub.strip_prefix('(') {
            Some(rest) => rest
                .strip_suffix(')')
                .ok_or_else(|| ParsePolicyError::new(format!("group {name:?}: unclosed `(`")))?,
            None => sub,
        };
        let policy: PolicySpec = sub.trim().parse().map_err(|e: ParsePolicyError| {
            ParsePolicyError::new(format!("in group {name:?}: {}", e.message))
        })?;
        if policy.shards.is_some() {
            return Err(ParsePolicyError::new(format!(
                "group {name:?}: group policies cannot be sharded"
            )));
        }
        if !policy.groups.is_empty() {
            return Err(ParsePolicyError::new(format!(
                "group {name:?}: groups cannot nest"
            )));
        }
        if policy.admission.is_some() {
            return Err(ParsePolicyError::new(format!(
                "group {name:?}: admission control applies to the whole spec, not a group"
            )));
        }
        groups.push(GroupSpec {
            name: name.to_string(),
            share,
            policy,
        });
    }
    Ok(groups)
}

/// `&str → PolicySpec` for APIs taking `impl TryInto<PolicySpec>`
/// (e.g. `Experiment::run("sfs:quantum=5ms")`).
impl TryFrom<&str> for PolicySpec {
    type Error = ParsePolicyError;

    fn try_from(s: &str) -> Result<PolicySpec, ParsePolicyError> {
        s.parse()
    }
}

impl TryFrom<&String> for PolicySpec {
    type Error = ParsePolicyError;

    fn try_from(s: &String) -> Result<PolicySpec, ParsePolicyError> {
        s.parse()
    }
}

/// Borrowed specs convert by cloning, so `impl TryInto<PolicySpec>`
/// APIs accept `&PolicySpec` alongside owned specs and strings.
impl From<&PolicySpec> for PolicySpec {
    fn from(spec: &PolicySpec) -> PolicySpec {
        spec.clone()
    }
}

fn parse_num<T: FromStr>(v: &str, key: &str) -> Result<T, ParsePolicyError> {
    v.parse()
        .map_err(|_| ParsePolicyError::new(format!("bad {key} value {v:?}")))
}

/// Parses a duration literal: an unsigned integer followed by `ns`,
/// `us`, `ms` or `s` (e.g. `5ms`, `300us`, `2s`).
fn parse_duration(v: &str) -> Result<Duration, ParsePolicyError> {
    let bad = || ParsePolicyError::new(format!("bad duration {v:?} (want e.g. `5ms`, `300us`)"));
    let split = v
        .find(|c: char| !c.is_ascii_digit())
        .filter(|&i| i > 0)
        .ok_or_else(bad)?;
    let (digits, unit) = v.split_at(split);
    let n: u64 = digits.parse().map_err(|_| bad())?;
    let scale = match unit {
        "ns" => 1,
        "us" => 1_000,
        "ms" => 1_000_000,
        "s" => 1_000_000_000,
        _ => return Err(bad()),
    };
    n.checked_mul(scale)
        .map(Duration::from_nanos)
        .ok_or_else(bad)
}

/// Renders a duration with the largest unit that divides it exactly,
/// so `parse_duration ∘ to_string` round-trips.
struct FmtDuration(Duration);

impl fmt::Display for FmtDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0.as_nanos();
        if ns == 0 || ns.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", ns / 1_000_000_000)
        } else if ns.is_multiple_of(1_000_000) {
            write!(f, "{}ms", ns / 1_000_000)
        } else if ns.is_multiple_of(1_000) {
            write!(f, "{}us", ns / 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_specs_round_trip() {
        for spec in PolicySpec::registered() {
            let s = spec.to_string();
            let back: PolicySpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(back, spec, "{s}");
        }
    }

    #[test]
    fn configured_specs_round_trip() {
        let specs = [
            PolicySpec::sfs()
                .with_quantum(Duration::from_millis(5))
                .with_heuristic(20)
                .with_refresh_every(100)
                .with_affinity_margin(Duration::from_millis(10))
                .with_audit(),
            PolicySpec::sfq()
                .with_quantum(Duration::from_micros(1500))
                .with_readjustment(),
            PolicySpec::time_sharing().with_ticks(2),
            PolicySpec::stride().with_readjustment(),
            PolicySpec::bvt().with_quantum(Duration::from_secs(1)),
            PolicySpec::wfq().with_readjustment(),
            PolicySpec::round_robin().with_quantum(Duration::from_nanos(777)),
            PolicySpec::sfs()
                .with_quantum(Duration::from_millis(5))
                .with_shards(4)
                .with_rebalance_every(Duration::from_millis(25)),
            PolicySpec::sfq().with_readjustment().with_shards(2),
        ];
        for spec in specs {
            let s = spec.to_string();
            assert_eq!(s.parse::<PolicySpec>().unwrap(), spec, "{s}");
        }
    }

    #[test]
    fn sharded_specs_build_and_report() {
        let spec: PolicySpec = "sfs:quantum=5ms,shards=2,rebalance=10ms".parse().unwrap();
        assert_eq!(spec.shard_count(), 2);
        assert_eq!(spec.rebalance_every(), Some(Duration::from_millis(10)));
        assert_eq!(spec.without_sharding().shard_count(), 1);
        let sched = spec.build(4);
        assert_eq!(sched.cpus(), 4);
        assert_eq!(sched.name(), "SFS(sharded)");
        assert_eq!(spec.to_string(), "sfs:quantum=5ms,shards=2,rebalance=10ms");
        // An unsharded spec reports one shard and builds the bare policy.
        let flat: PolicySpec = "sfs".parse().unwrap();
        assert_eq!(flat.shard_count(), 1);
        assert_eq!(flat.build(2).name(), "SFS");
        // Sharding applies to any registered kind.
        for spec in PolicySpec::registered() {
            let sharded = spec.with_shards(2).build(4);
            assert_eq!(sharded.cpus(), 4, "{sharded:?}", sharded = sharded.name());
        }
    }

    #[test]
    fn parse_examples_from_the_docs() {
        let spec: PolicySpec = "sfs:quantum=5ms".parse().unwrap();
        assert_eq!(spec.quantum(), Some(Duration::from_millis(5)));
        assert_eq!(spec.to_string(), "sfs:quantum=5ms");
        let spec: PolicySpec = "sfq:quantum=1ms,readjust".parse().unwrap();
        assert_eq!(spec.to_string(), "sfq:quantum=1ms,readjust");
        assert_eq!(
            "timeshare".parse::<PolicySpec>().unwrap().kind(),
            PolicyKind::TimeSharing
        );
    }

    #[test]
    fn parse_rejects_nonsense() {
        for bad in [
            "cfs",
            "sfs:",
            "sfs:quantum",
            "sfs:quantum=",
            "sfs:quantum=5parsecs",
            "sfs:readjust",
            "ts:quantum=5ms",
            "rr:heuristic=3",
            "sfs:audit=1",
            "sfq:bogus=2",
            "sfs:shards=0",
            "sfs:shards",
            "sfs:rebalance=5ms",
        ] {
            assert!(bad.parse::<PolicySpec>().is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn grouped_specs_round_trip() {
        let specs = [
            PolicySpec::sfs_over([
                GroupSpec::new("batch", PolicySpec::sfq()),
                GroupSpec::new("frontend", PolicySpec::sfs().with_heuristic(4)),
            ]),
            PolicySpec::sfs_over([
                GroupSpec::new("a", PolicySpec::round_robin()).with_share(3),
                GroupSpec::new(
                    "b",
                    PolicySpec::sfq()
                        .with_quantum(Duration::from_millis(1))
                        .with_readjustment(),
                ),
                GroupSpec::new("c-2", PolicySpec::time_sharing().with_ticks(2)),
            ]),
            PolicySpec::sfs_over([
                GroupSpec::new("x", PolicySpec::sfs()),
                GroupSpec::new("y", PolicySpec::sfs()).with_share(7),
            ])
            .with_shards(2)
            .with_rebalance_every(Duration::from_millis(20)),
        ];
        for spec in specs {
            let s = spec.to_string();
            assert_eq!(s.parse::<PolicySpec>().unwrap(), spec, "{s}");
        }
    }

    #[test]
    fn grouped_grammar_examples() {
        // The issue's literal example parses and round-trips.
        let spec: PolicySpec = "sfs:groups(batch=sfq,frontend=sfs:heuristic=4)"
            .parse()
            .unwrap();
        assert_eq!(spec.groups().len(), 2);
        assert_eq!(spec.groups()[0].name(), "batch");
        assert_eq!(spec.groups()[1].policy().kind(), PolicyKind::Sfs);
        assert_eq!(spec.tenant_of("batch"), Some(crate::task::TenantId(0)));
        assert_eq!(spec.tenant_of("frontend"), Some(crate::task::TenantId(1)));
        assert_eq!(spec.tenant_of("nope"), None);
        assert_eq!(
            spec.to_string(),
            "sfs:groups(batch=sfq,frontend=sfs:heuristic=4)"
        );
        // Shares and parenthesised multi-option sub-specs.
        let spec: PolicySpec = "sfs:groups(a*3=rr,b=(sfq:quantum=1ms,readjust))"
            .parse()
            .unwrap();
        assert_eq!(spec.groups()[0].share(), 3);
        assert_eq!(
            spec.groups()[1].policy(),
            &PolicySpec::sfq()
                .with_quantum(Duration::from_millis(1))
                .with_readjustment()
        );
        assert_eq!(
            spec.to_string(),
            "sfs:groups(a*3=rr,b=(sfq:quantum=1ms,readjust))"
        );
        // groups × shards composition.
        let spec: PolicySpec = "sfs:groups(a=sfs,b=rr),shards=2".parse().unwrap();
        assert_eq!(spec.shard_count(), 2);
        assert_eq!(spec.without_sharding().groups().len(), 2);
    }

    #[test]
    fn grouped_grammar_rejects_nonsense() {
        for bad in [
            "sfs:groups()",
            "sfs:groups(",
            "sfs:groups(a=sfs",
            "sfs:groups(a)",
            "sfs:groups(a=cfs)",
            "sfs:groups(a*0=sfs)",
            "sfs:groups(a*x=sfs)",
            "sfs:groups(a=sfs,a=rr)",
            "sfs:groups(a=sfs:shards=2)",
            "sfs:groups(a=(sfs:groups(b=rr)))",
            "sfs:groups(a=(sfq:readjust)",
            "sfs:groups(a b=sfs)",
            "sfq:groups(a=sfs)",
            "sfs:groups(a=sfs),quantum=5ms",
            "sfs:heuristic=4,groups(a=sfs)",
            "sfs:groups(a=sfs),groups(b=sfs)",
        ] {
            assert!(bad.parse::<PolicySpec>().is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn admission_specs_round_trip() {
        let specs = [
            PolicySpec::sfs().with_admission(AdmissionPolicy::none().with_max_live(1000)),
            PolicySpec::sfs()
                .with_quantum(Duration::from_millis(5))
                .with_admission(
                    AdmissionPolicy::none()
                        .with_max_live(1000)
                        .with_rate(500)
                        .with_burst(750)
                        .with_shed_above(100_000),
                )
                .with_shards(2),
            PolicySpec::sfs_over([
                GroupSpec::new("a", PolicySpec::sfs()),
                GroupSpec::new("b", PolicySpec::sfq()).with_share(3),
            ])
            .with_admission(AdmissionPolicy::none().with_rate(500)),
            PolicySpec::round_robin().with_admission(AdmissionPolicy::none().with_shed_above(64)),
        ];
        for spec in specs {
            let s = spec.to_string();
            assert_eq!(s.parse::<PolicySpec>().unwrap(), spec, "{s}");
        }
    }

    #[test]
    fn admission_grammar_examples() {
        // The issue's literal colon-chained spelling parses...
        let spec: PolicySpec =
            "sfs:groups(batch=sfq,frontend=sfs:heuristic=4):admit(max=1000,rate=500/s)"
                .parse()
                .unwrap();
        let admit = spec.admission().expect("admission parsed");
        assert_eq!(admit.max_live, Some(1000));
        assert_eq!(admit.rate_per_sec, Some(500));
        assert_eq!(spec.groups().len(), 2);
        // ...and Display emits the canonical comma form, which parses
        // back to the same spec (exact parse ∘ Display round-trip).
        assert_eq!(
            spec.to_string(),
            "sfs:groups(batch=sfq,frontend=sfs:heuristic=4),admit(max=1000,rate=500/s)"
        );
        assert_eq!(spec.to_string().parse::<PolicySpec>().unwrap(), spec);
        // Colons also separate plain options.
        assert_eq!(
            "sfs:quantum=5ms:shards=2".parse::<PolicySpec>().unwrap(),
            "sfs:quantum=5ms,shards=2".parse::<PolicySpec>().unwrap()
        );
    }

    #[test]
    fn admission_grammar_rejects_nonsense() {
        for bad in [
            "sfs:admit()",
            "sfs:admit(",
            "sfs:admit(burst=5)",
            "sfs:admit(max=abc)",
            "sfs:admit(rate=0/s)",
            "sfs:admit(max=1),admit(max=2)",
            "sfs:admit(frobnicate=1)",
            "sfs:groups(a=(sfs:admit(max=1)))",
        ] {
            assert!(bad.parse::<PolicySpec>().is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    #[should_panic(expected = "at least one limit")]
    fn builder_rejects_empty_admission() {
        let _ = PolicySpec::sfs().with_admission(AdmissionPolicy::none());
    }

    #[test]
    fn spec_conversions() {
        let spec = PolicySpec::try_from("sfs:quantum=5ms").unwrap();
        assert_eq!(spec, "sfs:quantum=5ms".parse().unwrap());
        assert!(PolicySpec::try_from("bogus").is_err());
        assert_eq!(PolicySpec::from(&spec), spec);
    }

    #[test]
    #[should_panic(expected = "does not apply to a hierarchical spec")]
    fn builder_rejects_per_task_option_on_hier() {
        let _ = PolicySpec::sfs_over([GroupSpec::new("a", PolicySpec::sfs())]).with_heuristic(4);
    }

    #[test]
    #[should_panic(expected = "duplicate group name")]
    fn builder_rejects_duplicate_groups() {
        let _ = PolicySpec::sfs_over([
            GroupSpec::new("a", PolicySpec::sfs()),
            GroupSpec::new("a", PolicySpec::sfq()),
        ]);
    }

    #[test]
    fn build_respects_cpu_count_and_name() {
        for spec in PolicySpec::registered() {
            let sched = spec.build(3);
            assert_eq!(sched.cpus(), 3, "{spec}");
            assert!(!sched.name().is_empty());
        }
    }

    #[test]
    fn build_applies_options() {
        let sched = PolicySpec::sfs()
            .with_quantum(Duration::from_millis(7))
            .build(1);
        assert_eq!(
            sched.time_slice(crate::task::TaskId(0)),
            Duration::from_millis(7)
        );
        let sched = PolicySpec::round_robin()
            .with_quantum(Duration::from_millis(3))
            .build(1);
        assert_eq!(
            sched.time_slice(crate::task::TaskId(0)),
            Duration::from_millis(3)
        );
    }

    #[test]
    #[should_panic(expected = "does not apply")]
    fn builder_rejects_misapplied_option() {
        let _ = PolicySpec::time_sharing().with_quantum(Duration::from_millis(1));
    }
}
