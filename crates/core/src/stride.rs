//! Stride scheduling [Waldspurger & Weihl, 1995], a GPS-based baseline.
//!
//! Each task holds `tickets` (its weight) and a `stride = STRIDE1 /
//! tickets`; its `pass` advances by `stride` per quantum consumed, and
//! the scheduler always runs the minimum-pass task. The paper lists
//! stride scheduling among the GPS instantiations that inherit the
//! infeasible-weights pathology on SMPs (§1.2); the optional
//! readjustment wrapper demonstrates the paper's claim that the §2.1
//! algorithm "can be combined with most existing GPS-based scheduling
//! algorithms".
//!
//! Variable-length quanta are charged proportionally:
//! `pass += stride · q / Q_nominal`.

use std::collections::HashMap;

use crate::feasible::FeasibleWeights;
use crate::fixed::Fixed;
use crate::queues::{IndexedList, NodeRef, Order};
use crate::sched::{SchedStats, Scheduler, SwitchReason};
use crate::task::{CpuId, TaskId, TaskState, Weight};
use crate::time::{Duration, Time};

/// The classic stride constant.
const STRIDE1: i64 = 1 << 20;

/// Tuning knobs for [`Stride`].
#[derive(Debug, Clone)]
pub struct StrideConfig {
    /// Nominal quantum; `pass` advances by one full stride per quantum.
    pub quantum: Duration,
    /// Apply weight readjustment (§2.1) to the ticket values.
    pub readjust: bool,
}

impl Default for StrideConfig {
    fn default() -> StrideConfig {
        StrideConfig {
            quantum: Duration::from_millis(200),
            readjust: false,
        }
    }
}

#[derive(Debug)]
struct StrideTask {
    weight: Weight,
    pass: Fixed,
    remain: Fixed,
    state: TaskState,
    node: Option<NodeRef>,
}

/// The stride scheduler.
pub struct Stride {
    cfg: StrideConfig,
    cpus: u32,
    tasks: HashMap<TaskId, StrideTask>,
    feas: FeasibleWeights,
    /// Ready+running tasks ordered by pass (ascending).
    pass_q: IndexedList,
    global_pass: Fixed,
    stats: SchedStats,
}

impl Stride {
    /// Plain stride scheduling.
    pub fn new(cpus: u32) -> Stride {
        Stride::with_config(cpus, StrideConfig::default())
    }

    /// Stride scheduling with the readjustment wrapper.
    pub fn with_readjustment(cpus: u32) -> Stride {
        Stride::with_config(
            cpus,
            StrideConfig {
                readjust: true,
                ..StrideConfig::default()
            },
        )
    }

    /// Stride scheduling with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn with_config(cpus: u32, cfg: StrideConfig) -> Stride {
        assert!(cpus > 0, "need at least one processor");
        let readjust = cfg.readjust;
        Stride {
            cfg,
            cpus,
            tasks: HashMap::new(),
            feas: FeasibleWeights::new(cpus, readjust),
            pass_q: IndexedList::new(Order::Ascending),
            global_pass: Fixed::ZERO,
            stats: SchedStats::default(),
        }
    }

    fn stride_of(&self, id: TaskId, w: Weight) -> Fixed {
        let phi = self.feas.phi(id, w);
        Fixed::from_int(STRIDE1).div_fixed(phi)
    }

    fn min_pass(&self) -> Fixed {
        self.pass_q
            .head()
            .map(|(k, _)| k)
            .unwrap_or(self.global_pass)
    }

    fn link(&mut self, id: TaskId) {
        let pass = self.tasks[&id].pass;
        let node = self.pass_q.insert(pass, id);
        self.tasks.get_mut(&id).unwrap().node = Some(node);
    }

    fn unlink(&mut self, id: TaskId) {
        if let Some(n) = self.tasks.get_mut(&id).unwrap().node.take() {
            self.pass_q.remove(n);
        }
    }
}

impl Scheduler for Stride {
    fn name(&self) -> &'static str {
        if self.cfg.readjust {
            "Stride+readjust"
        } else {
            "Stride"
        }
    }

    fn cpus(&self) -> u32 {
        self.cpus
    }

    fn attach(&mut self, id: TaskId, w: Weight, _now: Time) {
        assert!(!self.tasks.contains_key(&id), "task {id} attached twice");
        self.stats.events += 1;
        let pass = self.min_pass();
        self.tasks.insert(
            id,
            StrideTask {
                weight: w,
                pass,
                remain: Fixed::ZERO,
                state: TaskState::Ready,
                node: None,
            },
        );
        self.feas.insert(id, w);
        self.link(id);
    }

    fn detach(&mut self, id: TaskId, _now: Time) {
        self.stats.events += 1;
        let state = self.tasks[&id].state;
        assert!(!state.is_running(), "detach of running task {id}");
        if state.is_runnable() {
            let w = self.tasks[&id].weight;
            self.unlink(id);
            self.feas.remove(id, w);
        }
        self.tasks.remove(&id);
    }

    fn set_weight(&mut self, id: TaskId, w: Weight, _now: Time) {
        let old = self.tasks[&id].weight;
        if old == w {
            return;
        }
        self.stats.events += 1;
        self.tasks.get_mut(&id).unwrap().weight = w;
        if self.tasks[&id].state.is_runnable() {
            self.feas.set_weight(id, old, w);
        }
    }

    fn weight_of(&self, id: TaskId) -> Option<Weight> {
        self.tasks.get(&id).map(|t| t.weight)
    }

    fn adjusted_weight_of(&self, id: TaskId) -> Option<Fixed> {
        let t = self.tasks.get(&id)?;
        Some(self.feas.phi(id, t.weight))
    }

    fn wake(&mut self, id: TaskId, _now: Time) {
        self.stats.events += 1;
        let floor = self.min_pass();
        {
            let t = self.tasks.get_mut(&id).expect("waking unknown task");
            assert!(matches!(t.state, TaskState::Blocked));
            // Exhausted-ticket sleepers resume from the system pass plus
            // any leftover fractional pass they still owed.
            t.pass = t.pass.max(floor) + t.remain;
            t.remain = Fixed::ZERO;
            t.state = TaskState::Ready;
        }
        let w = self.tasks[&id].weight;
        self.feas.insert(id, w);
        self.link(id);
    }

    fn pick_next(&mut self, cpu: CpuId, _now: Time) -> Option<TaskId> {
        let picked = self
            .pass_q
            .iter()
            .map(|(_, id)| id)
            .find(|id| matches!(self.tasks[id].state, TaskState::Ready))?;
        self.tasks.get_mut(&picked).unwrap().state = TaskState::Running(cpu);
        self.global_pass = self.min_pass();
        self.stats.picks += 1;
        Some(picked)
    }

    fn put_prev(&mut self, id: TaskId, ran: Duration, reason: SwitchReason, _now: Time) {
        self.stats.events += 1;
        let w = {
            let t = &self.tasks[&id];
            assert!(t.state.is_running(), "put_prev of non-running {id}");
            t.weight
        };
        let stride = self.stride_of(id, w);
        // pass += stride * q / Q_nominal.
        let advance = Fixed::from_raw(
            stride.raw() * ran.as_nanos() as i128 / self.cfg.quantum.as_nanos() as i128,
        );
        {
            let t = self.tasks.get_mut(&id).unwrap();
            t.pass += advance;
        }
        match reason {
            SwitchReason::Preempted | SwitchReason::Yielded => {
                let pass = self.tasks[&id].pass;
                let node = self.tasks[&id].node.expect("runnable without node");
                self.pass_q.update_key(node, pass);
                self.tasks.get_mut(&id).unwrap().state = TaskState::Ready;
            }
            SwitchReason::Blocked => {
                self.unlink(id);
                self.tasks.get_mut(&id).unwrap().state = TaskState::Blocked;
                self.feas.remove(id, w);
            }
            SwitchReason::Exited => {
                self.unlink(id);
                self.feas.remove(id, w);
                self.tasks.remove(&id);
            }
        }
    }

    fn time_slice(&self, _id: TaskId) -> Duration {
        self.cfg.quantum
    }

    fn nr_runnable(&self) -> usize {
        self.pass_q.len()
    }

    fn nr_tasks(&self) -> usize {
        self.tasks.len()
    }

    fn stats(&self) -> SchedStats {
        let mut s = self.stats;
        s.readjust_calls = self.feas.calls;
        s.weights_clamped = self.feas.clamps;
        s.event_steps = self.pass_q.steps() + self.feas.event_steps();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{assert_close, MiniSim};

    #[test]
    fn proportional_on_uniprocessor() {
        let mut sim = MiniSim::new(Stride::new(1));
        sim.spawn(1, 1);
        sim.spawn(2, 4);
        sim.run_quanta(5000);
        assert_close(sim.ratio(2, 1), 4.0, 0.01, "4:1");
    }

    #[test]
    fn infeasible_weights_unfair_without_readjustment() {
        // 1:10 on 2 CPUs: both run continuously, but after a third task
        // arrives, plain stride starves the light original task just
        // like SFQ (§1.2 applies to all GPS instantiations).
        let mut sim = MiniSim::new(Stride::new(2));
        sim.spawn(1, 1);
        sim.spawn(2, 10);
        sim.run_quanta(500);
        sim.spawn(3, 1);
        let before = sim.service(1);
        sim.run_quanta(300);
        let gained = sim.service(1) - before;
        assert!(
            gained < Duration::from_millis(30),
            "expected near-starvation, gained {gained}"
        );
    }

    #[test]
    fn readjustment_fixes_starvation() {
        let mut sim = MiniSim::new(Stride::with_readjustment(2));
        sim.spawn(1, 1);
        sim.spawn(2, 10);
        sim.run_quanta(500);
        sim.spawn(3, 1);
        let before = sim.service(1);
        sim.run_quanta(300);
        let gained = sim.service(1) - before;
        assert!(
            gained > Duration::from_millis(100),
            "starved despite readjustment: {gained}"
        );
    }

    #[test]
    fn arrival_inherits_min_pass() {
        let mut sim = MiniSim::new(Stride::new(1));
        sim.spawn(1, 1);
        sim.run_quanta(50);
        sim.spawn(2, 1);
        sim.run_quanta(100);
        // The newcomer shares from its arrival onward; it must not be
        // starved nor monopolise.
        let s2 = sim.service(2);
        assert_close(s2.as_millis() as f64, 50.0, 0.1, "half of 100 quanta");
    }

    #[test]
    fn partial_quantum_charges_proportionally() {
        let mut s = Stride::new(1);
        s.attach(TaskId(1), Weight::DEFAULT, Time::ZERO);
        let id = s.pick_next(CpuId(0), Time::ZERO).unwrap();
        let full = Duration::from_millis(200);
        s.put_prev(id, full / 2, SwitchReason::Preempted, Time::ZERO);
        let pass = s.tasks[&TaskId(1)].pass;
        assert_eq!(pass, Fixed::from_int(STRIDE1) / 2);
    }
}
