//! Start-time fair queueing (SFQ), the paper's principal baseline.
//!
//! SFQ [Goyal et al., OSDI'96] is a GPS-based scheduler: every thread
//! carries a start tag `S_i`, initialised to the system virtual time on
//! arrival, and incremented by `q / w_i` each time the thread runs for
//! `q`. Each scheduling instance picks the runnable thread with the
//! minimum start tag.
//!
//! On a uniprocessor SFQ has strong fairness bounds, but Example 1 of the
//! paper shows it can starve threads for unbounded stretches on an SMP
//! when the weight assignment is infeasible, and Example 2 shows it
//! misallocates under frequent arrivals/departures even when weights are
//! feasible. Both pathologies are reproduced by this implementation's
//! tests and by the Fig. 4/Fig. 5 experiments.
//!
//! The `readjust` configuration flag applies the paper's weight
//! readjustment algorithm (§2.1) on every runnable-set change, which
//! repairs the infeasible-weights pathology (Fig. 4b) but not the
//! short-jobs one (Fig. 5a).

use std::collections::HashMap;

use crate::feasible::FeasibleWeights;
use crate::fixed::Fixed;
use crate::queues::{IndexedList, NodeRef, Order};
use crate::sched::{SchedStats, Scheduler, SwitchReason};
use crate::task::{CpuId, TagTask, TaskId, TaskState, Weight};
use crate::time::{Duration, Time};

/// Tuning knobs for [`Sfq`].
#[derive(Debug, Clone)]
pub struct SfqConfig {
    /// Maximum quantum granted per dispatch.
    pub quantum: Duration,
    /// Apply the weight readjustment algorithm (§2.1). Off reproduces the
    /// unmodified SFQ of Example 1 / Fig. 4(a).
    pub readjust: bool,
    /// Allow wakeups to preempt a running thread with a larger start tag.
    pub wake_preemption: bool,
    /// Tag renormalisation threshold (wrap-around handling).
    pub renorm_threshold: Fixed,
}

impl Default for SfqConfig {
    fn default() -> SfqConfig {
        SfqConfig {
            quantum: Duration::from_millis(200),
            readjust: false,
            wake_preemption: true,
            renorm_threshold: Fixed::from_int(100_000_000_000_000),
        }
    }
}

#[derive(Debug)]
struct Entry {
    task: TagTask,
    s_node: Option<NodeRef>,
}

/// The start-time fair queueing scheduler.
pub struct Sfq {
    cfg: SfqConfig,
    cpus: u32,
    tasks: HashMap<TaskId, Entry>,
    feas: FeasibleWeights,
    start_q: IndexedList,
    v: Fixed,
    nr_running: usize,
    stats: SchedStats,
}

impl Sfq {
    /// Plain SFQ (no readjustment), as in Example 1.
    pub fn new(cpus: u32) -> Sfq {
        Sfq::with_config(cpus, SfqConfig::default())
    }

    /// SFQ with the weight readjustment algorithm enabled (Fig. 4b).
    pub fn with_readjustment(cpus: u32) -> Sfq {
        Sfq::with_config(
            cpus,
            SfqConfig {
                readjust: true,
                ..SfqConfig::default()
            },
        )
    }

    /// SFQ with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn with_config(cpus: u32, cfg: SfqConfig) -> Sfq {
        assert!(cpus > 0, "need at least one processor");
        let readjust = cfg.readjust;
        Sfq {
            cfg,
            cpus,
            tasks: HashMap::new(),
            feas: FeasibleWeights::new(cpus, readjust),
            start_q: IndexedList::new(Order::Ascending),
            v: Fixed::ZERO,
            nr_running: 0,
            stats: SchedStats::default(),
        }
    }

    fn current_v(&self) -> Fixed {
        self.start_q.head().map(|(k, _)| k).unwrap_or(self.v)
    }

    fn phi(&self, id: TaskId, w: Weight) -> Fixed {
        self.feas.phi(id, w)
    }

    fn link(&mut self, id: TaskId) {
        let s = self.tasks[&id].task.start_tag;
        let node = self.start_q.insert(s, id);
        self.tasks.get_mut(&id).unwrap().s_node = Some(node);
    }

    fn unlink(&mut self, id: TaskId) {
        if let Some(n) = self.tasks.get_mut(&id).unwrap().s_node.take() {
            self.start_q.remove(n);
        }
    }

    fn maybe_renormalize(&mut self) {
        if self.v <= self.cfg.renorm_threshold && self.current_v() <= self.cfg.renorm_threshold {
            return;
        }
        let delta = self.current_v().min(self.v);
        for e in self.tasks.values_mut() {
            e.task.start_tag -= delta;
            e.task.finish_tag -= delta;
        }
        self.v -= delta;
        let Sfq { start_q, tasks, .. } = self;
        let moved = start_q.resort_with(|id| tasks[&id].task.start_tag);
        debug_assert_eq!(moved, 0);
        self.stats.renormalizations += 1;
    }

    /// Immutable view of a task's tag state, for tests and tracing.
    pub fn tags_of(&self, id: TaskId) -> Option<&TagTask> {
        self.tasks.get(&id).map(|e| &e.task)
    }
}

impl Scheduler for Sfq {
    fn name(&self) -> &'static str {
        if self.cfg.readjust {
            "SFQ+readjust"
        } else {
            "SFQ"
        }
    }

    fn cpus(&self) -> u32 {
        self.cpus
    }

    fn attach(&mut self, id: TaskId, w: Weight, _now: Time) {
        assert!(!self.tasks.contains_key(&id), "task {id} attached twice");
        self.stats.events += 1;
        // "Newly arriving threads are assigned the minimum value of S_i
        // over all runnable threads" (Example 1).
        let task = TagTask::new(id, w, self.current_v());
        self.tasks.insert(id, Entry { task, s_node: None });
        self.feas.insert(id, w);
        self.link(id);
    }

    fn detach(&mut self, id: TaskId, _now: Time) {
        self.stats.events += 1;
        let state = self.tasks[&id].task.state;
        assert!(!state.is_running(), "detach of running task {id}");
        if state.is_runnable() {
            let w = self.tasks[&id].task.weight;
            self.unlink(id);
            self.feas.remove(id, w);
        }
        self.tasks.remove(&id);
    }

    fn set_weight(&mut self, id: TaskId, w: Weight, _now: Time) {
        let old = self.tasks[&id].task.weight;
        if old == w {
            return;
        }
        self.stats.events += 1;
        self.tasks.get_mut(&id).unwrap().task.weight = w;
        if self.tasks[&id].task.state.is_runnable() {
            self.feas.set_weight(id, old, w);
        }
    }

    fn weight_of(&self, id: TaskId) -> Option<Weight> {
        self.tasks.get(&id).map(|e| e.task.weight)
    }

    fn adjusted_weight_of(&self, id: TaskId) -> Option<Fixed> {
        let e = self.tasks.get(&id)?;
        if e.task.state.is_runnable() {
            Some(self.phi(id, e.task.weight))
        } else {
            Some(e.task.phi)
        }
    }

    fn wake(&mut self, id: TaskId, _now: Time) {
        self.stats.events += 1;
        let v_now = self.current_v();
        {
            let e = self.tasks.get_mut(&id).expect("waking unknown task");
            assert!(matches!(e.task.state, TaskState::Blocked));
            e.task.start_tag = e.task.finish_tag.max(v_now);
            e.task.state = TaskState::Ready;
        }
        let w = self.tasks[&id].task.weight;
        self.feas.insert(id, w);
        self.link(id);
    }

    fn pick_next(&mut self, cpu: CpuId, now: Time) -> Option<TaskId> {
        let picked = self
            .start_q
            .iter()
            .map(|(_, id)| id)
            .find(|id| matches!(self.tasks[id].task.state, TaskState::Ready))?;
        let e = self.tasks.get_mut(&picked).unwrap();
        e.task.state = TaskState::Running(cpu);
        e.task.dispatched_at = now;
        self.nr_running += 1;
        self.stats.picks += 1;
        Some(picked)
    }

    fn put_prev(&mut self, id: TaskId, ran: Duration, reason: SwitchReason, _now: Time) {
        self.stats.events += 1;
        let w = {
            let e = &self.tasks[&id];
            assert!(e.task.state.is_running(), "put_prev of non-running {id}");
            e.task.weight
        };
        self.nr_running -= 1;
        let phi = self.phi(id, w);
        let finish_tag = {
            let e = self.tasks.get_mut(&id).unwrap();
            e.task.phi = phi;
            let f = e.task.start_tag + phi.div_into_int(ran.as_nanos());
            e.task.finish_tag = f;
            e.task.service += ran;
            f
        };
        match reason {
            SwitchReason::Preempted | SwitchReason::Yielded => {
                let e = self.tasks.get_mut(&id).unwrap();
                e.task.start_tag = finish_tag;
                e.task.state = TaskState::Ready;
                let node = e.s_node.expect("runnable task missing node");
                self.start_q.update_key(node, finish_tag);
            }
            SwitchReason::Blocked => {
                self.unlink(id);
                let e = self.tasks.get_mut(&id).unwrap();
                e.task.state = TaskState::Blocked;
                self.feas.remove(id, w);
                if self.start_q.is_empty() {
                    self.v = finish_tag;
                }
            }
            SwitchReason::Exited => {
                self.unlink(id);
                self.feas.remove(id, w);
                self.tasks.remove(&id);
                if self.start_q.is_empty() {
                    self.v = finish_tag;
                }
            }
        }
        self.maybe_renormalize();
    }

    fn time_slice(&self, _id: TaskId) -> Duration {
        self.cfg.quantum
    }

    fn wake_preempts(
        &self,
        woken: TaskId,
        running: TaskId,
        ran_so_far: Duration,
        _now: Time,
    ) -> bool {
        if !self.cfg.wake_preemption {
            return false;
        }
        let (Some(we), Some(re)) = (self.tasks.get(&woken), self.tasks.get(&running)) else {
            return false;
        };
        if !matches!(we.task.state, TaskState::Ready) || !re.task.state.is_running() {
            return false;
        }
        // Charge the running thread its in-flight time before comparing.
        let phi = self.phi(running, re.task.weight);
        let charged = re.task.start_tag + phi.div_into_int(ran_so_far.as_nanos());
        we.task.start_tag < charged
    }

    fn nr_runnable(&self) -> usize {
        self.start_q.len()
    }

    fn nr_tasks(&self) -> usize {
        self.tasks.len()
    }

    fn stats(&self) -> SchedStats {
        let mut s = self.stats;
        s.readjust_calls = self.feas.calls;
        s.weights_clamped = self.feas.clamps;
        s.event_steps = self.start_q.steps() + self.feas.event_steps();
        s
    }

    fn virtual_time(&self) -> Option<Fixed> {
        Some(self.current_v())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{assert_close, MiniSim};

    /// Example 1 (Fig. 1): plain SFQ starves the weight-1 thread after a
    /// same-weight thread arrives, because 1:10 is infeasible on 2 CPUs.
    #[test]
    fn example1_plain_sfq_starves() {
        let mut sim = MiniSim::new(Sfq::new(2));
        sim.spawn(1, 1);
        sim.spawn(2, 10);
        sim.run_quanta(1000);
        // Both compute-bound threads ran continuously so far.
        assert_eq!(sim.service(1), Duration::from_millis(1000));
        assert_eq!(sim.service(2), Duration::from_millis(1000));
        sim.spawn(3, 1);
        let before = sim.service(1);
        sim.run_quanta(800);
        // T1 starves: S1 = 1000 tag units, S2 = S3 = 100; SFQ runs
        // threads 2 and 3 until they catch up (~900 quanta for T3).
        let gained = sim.service(1) - before;
        // T1 may finish the quantum it already held when T3 arrived, but
        // nothing more: it starves until S2/S3 catch up with S1.
        assert!(
            gained <= Duration::from_millis(1),
            "plain SFQ should starve T1, yet it gained {gained}"
        );
        // ... but after the catch-up period T1 runs again.
        sim.run_quanta(400);
        assert!(sim.service(1) > before, "T1 should eventually resume");
    }

    /// Fig. 4(b): the readjustment algorithm prevents the starvation.
    #[test]
    fn example1_readjusted_sfq_does_not_starve() {
        let mut sim = MiniSim::new(Sfq::with_readjustment(2));
        sim.spawn(1, 1);
        sim.spawn(2, 10);
        sim.run_quanta(1000);
        sim.spawn(3, 1);
        let before = sim.service(1);
        sim.run_quanta(200);
        let gained = sim.service(1) - before;
        // Readjusted weights are 1:2:1 (shares 1/4:1/2:1/4 of 2 CPUs):
        // T1 receives ≈ half a CPU immediately.
        assert!(
            gained >= Duration::from_millis(80),
            "T1 starved under readjusted SFQ: {gained}"
        );
    }

    #[test]
    fn uniprocessor_proportional_shares() {
        let mut sim = MiniSim::new(Sfq::new(1));
        sim.spawn(1, 1);
        sim.spawn(2, 3);
        sim.run_quanta(4000);
        assert_close(sim.ratio(2, 1), 3.0, 0.01, "3:1 on uniprocessor");
    }

    #[test]
    fn readjusted_shares_follow_instantaneous_weights() {
        // 1:10 clamped to 1:1 on a dual-processor.
        let mut sim = MiniSim::new(Sfq::with_readjustment(2));
        sim.spawn(1, 1);
        sim.spawn(2, 10);
        sim.run_quanta(500);
        assert_close(sim.ratio(2, 1), 1.0, 0.01, "clamped 1:1");
    }

    #[test]
    fn new_arrival_gets_min_start_tag() {
        let mut sim = MiniSim::new(Sfq::new(1));
        sim.spawn(1, 1);
        sim.run_quanta(100);
        sim.spawn(2, 1);
        let s1 = sim.sched.tags_of(TaskId(1)).unwrap().start_tag;
        let s2 = sim.sched.tags_of(TaskId(2)).unwrap().start_tag;
        assert_eq!(s2, s1, "arrival initialised to current min start tag");
    }

    #[test]
    fn sleeper_gets_no_credit() {
        let mut sim = MiniSim::new(Sfq::new(1));
        sim.spawn(1, 1);
        sim.spawn(2, 1);
        sim.run_quanta(4);
        sim.block(2, Duration::ZERO);
        sim.run_quanta(500);
        sim.wake(2);
        let s2 = sim.sched.tags_of(TaskId(2)).unwrap().start_tag;
        let s1 = sim.sched.tags_of(TaskId(1)).unwrap().start_tag;
        // S2 was floored at v (≈ S1): no banked credit.
        assert!(s2 >= s1 - Fixed::from_int(2_000_000), "s2={s2:?} s1={s1:?}");
        let before = sim.service(1);
        sim.run_quanta(100);
        let gain1 = sim.service(1) - before;
        assert!(
            gain1 >= Duration::from_millis(40),
            "T1 starved by returning sleeper: {gain1}"
        );
    }

    #[test]
    fn idle_system_freezes_virtual_time() {
        let mut sim = MiniSim::new(Sfq::new(1));
        sim.spawn(1, 1);
        sim.run_quanta(10);
        sim.block(1, Duration::ZERO);
        let v = sim.sched.virtual_time().unwrap();
        assert_eq!(v, sim.sched.tags_of(TaskId(1)).unwrap().finish_tag);
        // A task arriving while idle starts at the frozen v.
        sim.spawn(2, 1);
        assert_eq!(sim.sched.tags_of(TaskId(2)).unwrap().start_tag, v);
    }

    #[test]
    fn renormalization_is_transparent() {
        let tiny = SfqConfig {
            quantum: Duration::from_millis(1),
            renorm_threshold: Fixed::from_int(20_000_000),
            ..SfqConfig::default()
        };
        let mut a = MiniSim::new(Sfq::with_config(1, tiny));
        let mut b = MiniSim::new(Sfq::new(1));
        for sim in [&mut a, &mut b] {
            sim.spawn(1, 2);
            sim.spawn(2, 5);
            sim.run_quanta(1500);
        }
        assert!(a.sched.stats().renormalizations > 0);
        assert_eq!(a.service(1), b.service(1));
        assert_eq!(a.service(2), b.service(2));
    }

    #[test]
    fn wake_preemption_compares_start_tags() {
        let mut s = Sfq::new(1);
        s.attach(TaskId(1), Weight::DEFAULT, Time::ZERO);
        s.attach(TaskId(2), Weight::DEFAULT, Time::ZERO);
        let first = s.pick_next(CpuId(0), Time::ZERO).unwrap();
        // The other thread has an equal start tag; only after the running
        // thread is charged some time does preemption trigger.
        let other = if first == TaskId(1) {
            TaskId(2)
        } else {
            TaskId(1)
        };
        assert!(!s.wake_preempts(other, first, Duration::ZERO, Time::ZERO));
        assert!(s.wake_preempts(other, first, Duration::from_millis(10), Time::ZERO));
    }
}
