//! Indexed run-queue structures.
//!
//! The kernel implementation (§3.1) keeps three doubly-linked lists of
//! runnable threads: sorted by weight (descending), by start tag
//! (ascending) and by surplus (ascending). Insertions use a sorted scan
//! — O(position) per arrival, wakeup or tag update — which is exactly
//! the event-path cost this module eliminates.
//!
//! [`IndexedList`] keeps the same contract as those kernel lists — a
//! totally ordered sequence with FIFO tie order, an arena-backed node
//! per task, and an owner-held [`NodeRef`] handle — but layers a
//! deterministic skip-list index over the bottom-level doubly-linked
//! list. Costs:
//!
//! * `insert` / `update_key`: O(log n) expected search instead of the
//!   O(position) sorted scan;
//! * `remove`: O(1) expected (the node stores its own tower links, so
//!   unlinking touches only its own height, expected constant);
//! * `head` / `tail`: O(1) — the bottom level is still a plain
//!   doubly-linked list.
//!
//! The index heights come from a fixed-seed xorshift64* stream per
//! list, so runs are bit-for-bit reproducible: rebuilding a scheduler
//! and replaying the same events yields the same structure, the same
//! step counts, and the same iteration order.

use crate::fixed::Fixed;
use crate::task::TaskId;

const NIL: u32 = u32::MAX;

/// The O(log) cost estimate for one balanced-tree operation over `len`
/// entries: the comparison depth, floor(log2 len) + 1. Shared by every
/// event-path step counter (bucket queue, weight-class map, clamp-set
/// probes, [`KeyCounter`]) so the CI-gated `steps_per_event` metric
/// uses one cost model.
pub(crate) fn tree_steps(len: usize) -> u64 {
    (usize::BITS - len.leading_zeros()) as u64 + 1
}

/// Tallest tower a node can carry; enough index levels for ~10⁶ nodes
/// at the 1/2 promotion rate before the top level saturates.
const MAX_HEIGHT: usize = 24;

/// A handle to a node in an [`IndexedList`], held by the task's owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef(u32);

#[derive(Debug, Clone)]
struct Node {
    key: Fixed,
    id: TaskId,
    /// Interleaved tower links, one heap allocation per node:
    /// `links[2l]` is the level-`l` successor, `links[2l + 1]` the
    /// level-`l` predecessor; level 0 is the complete doubly-linked
    /// list, upper levels are the index.
    links: Vec<u32>,
    linked: bool,
}

impl Node {
    fn height(&self) -> usize {
        self.links.len() / 2
    }

    fn next(&self, l: usize) -> u32 {
        self.links[2 * l]
    }

    fn prev(&self, l: usize) -> u32 {
        self.links[2 * l + 1]
    }

    fn set_next(&mut self, l: usize, v: u32) {
        self.links[2 * l] = v;
    }

    fn set_prev(&mut self, l: usize, v: u32) {
        self.links[2 * l + 1] = v;
    }
}

/// Direction of the sort order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Smallest key at the head (start-tag and surplus queues).
    Ascending,
    /// Largest key at the head (the weight queue).
    Descending,
}

/// An arena-backed skip list keyed by [`Fixed`].
///
/// Ties are FIFO: a newly inserted node goes after existing nodes with
/// an equal key, matching the "ties are broken arbitrarily" licence in
/// §2.3 while keeping behaviour deterministic — and identical to the
/// sorted-scan list this structure replaced.
#[derive(Debug, Clone)]
pub struct IndexedList {
    nodes: Vec<Node>,
    free: Vec<u32>,
    /// Head pointer per level; `head[0]` is the list head.
    head: [u32; MAX_HEIGHT],
    /// Bottom-level tail.
    tail: u32,
    /// Number of index levels currently in use (≥ 1 when non-empty).
    levels: usize,
    len: usize,
    order: Order,
    /// Deterministic tower-height stream (xorshift64*).
    rng: u64,
    steps: u64,
}

impl IndexedList {
    /// Creates an empty list with the given order.
    pub fn new(order: Order) -> IndexedList {
        IndexedList {
            nodes: Vec::new(),
            free: Vec::new(),
            head: [NIL; MAX_HEIGHT],
            tail: NIL,
            levels: 1,
            len: 0,
            order,
            rng: 0x9e37_79b9_7f4a_7c15,
            steps: 0,
        }
    }

    /// Number of linked nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no nodes are linked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cumulative structure steps (search hops and link/unlink level
    /// work) across all mutations; the event-path cost counter read by
    /// the policies.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// `a` sorts strictly before `b` under this list's order.
    fn before(&self, a: Fixed, b: Fixed) -> bool {
        match self.order {
            Order::Ascending => a < b,
            Order::Descending => a > b,
        }
    }

    /// Next deterministic tower height: geometric with promotion
    /// probability 1/2, capped at [`MAX_HEIGHT`].
    fn random_height(&mut self) -> usize {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        let r = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
        (1 + r.trailing_ones() as usize).min(MAX_HEIGHT)
    }

    /// The successor of `at` on level `l`; `NIL` stands for the head
    /// sentinel.
    fn next_of(&self, at: u32, l: usize) -> u32 {
        if at == NIL {
            self.head[l]
        } else {
            self.nodes[at as usize].next(l)
        }
    }

    fn alloc(&mut self, key: Fixed, id: TaskId) -> u32 {
        let height = self.random_height();
        if let Some(idx) = self.free.pop() {
            let n = &mut self.nodes[idx as usize];
            n.key = key;
            n.id = id;
            n.links.clear();
            n.links.resize(2 * height, NIL);
            n.linked = false;
            idx
        } else {
            self.nodes.push(Node {
                key,
                id,
                links: vec![NIL; 2 * height],
                linked: false,
            });
            (self.nodes.len() - 1) as u32
        }
    }

    /// Inserts `(key, id)` at its sorted position in O(log n) expected
    /// hops. Returns a handle for later O(1) removal.
    pub fn insert(&mut self, key: Fixed, id: TaskId) -> NodeRef {
        let idx = self.alloc(key, id);
        self.link_sorted(idx);
        NodeRef(idx)
    }

    /// Finds the insertion point for the node's key on every level and
    /// splices the node in after all equal keys (FIFO tie order).
    fn link_sorted(&mut self, idx: u32) {
        let key = self.nodes[idx as usize].key;
        let height = self.nodes[idx as usize].height();
        debug_assert!(!self.nodes[idx as usize].linked);
        if height > self.levels {
            self.levels = height;
        }
        // Walk down from the top level, advancing while the next node
        // sorts at-or-before `key` (past equals: FIFO).
        let mut update = [NIL; MAX_HEIGHT];
        let mut at = NIL;
        for l in (0..self.levels).rev() {
            self.steps += 1;
            loop {
                let nxt = self.next_of(at, l);
                if nxt == NIL || self.before(key, self.nodes[nxt as usize].key) {
                    break;
                }
                at = nxt;
                self.steps += 1;
            }
            update[l] = at;
        }
        for (l, &after) in update.iter().enumerate().take(height) {
            let next = self.next_of(after, l);
            {
                let n = &mut self.nodes[idx as usize];
                n.set_prev(l, after);
                n.set_next(l, next);
            }
            if after == NIL {
                self.head[l] = idx;
            } else {
                self.nodes[after as usize].set_next(l, idx);
            }
            if next != NIL {
                self.nodes[next as usize].set_prev(l, idx);
            } else if l == 0 {
                self.tail = idx;
            }
        }
        self.nodes[idx as usize].linked = true;
        self.len += 1;
    }

    fn unlink_idx(&mut self, idx: u32) {
        debug_assert!(self.nodes[idx as usize].linked);
        let height = self.nodes[idx as usize].height();
        for l in 0..height {
            self.steps += 1;
            let (prev, next) = {
                let n = &self.nodes[idx as usize];
                (n.prev(l), n.next(l))
            };
            if prev == NIL {
                self.head[l] = next;
            } else {
                self.nodes[prev as usize].set_next(l, next);
            }
            if next == NIL {
                if l == 0 {
                    self.tail = prev;
                }
            } else {
                self.nodes[next as usize].set_prev(l, prev);
            }
            let n = &mut self.nodes[idx as usize];
            n.set_prev(l, NIL);
            n.set_next(l, NIL);
        }
        self.nodes[idx as usize].linked = false;
        self.len -= 1;
        while self.levels > 1 && self.head[self.levels - 1] == NIL {
            self.levels -= 1;
        }
    }

    /// Removes the node and frees its slot. The handle must not be
    /// reused. O(1) expected: only the node's own tower is touched.
    pub fn remove(&mut self, r: NodeRef) {
        self.unlink_idx(r.0);
        self.free.push(r.0);
    }

    /// Changes a node's key and moves it to its new sorted position in
    /// O(log n) expected hops (the sorted-scan list paid O(displacement)
    /// here, which degenerated to O(n) for wakeups landing near the
    /// virtual time).
    pub fn update_key(&mut self, r: NodeRef, key: Fixed) {
        let idx = r.0;
        self.unlink_idx(idx);
        self.nodes[idx as usize].key = key;
        self.link_sorted(idx);
    }

    /// Returns the key currently stored for the node.
    pub fn key(&self, r: NodeRef) -> Fixed {
        self.nodes[r.0 as usize].key
    }

    /// The task at the head of the list, if any. O(1).
    pub fn head(&self) -> Option<(Fixed, TaskId)> {
        if self.head[0] == NIL {
            None
        } else {
            let n = &self.nodes[self.head[0] as usize];
            Some((n.key, n.id))
        }
    }

    /// The task at the tail of the list, if any. O(1).
    pub fn tail(&self) -> Option<(Fixed, TaskId)> {
        if self.tail == NIL {
            None
        } else {
            let n = &self.nodes[self.tail as usize];
            Some((n.key, n.id))
        }
    }

    /// Iterates `(key, id)` pairs in list order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            list: self,
            at: self.head[0],
        }
    }

    /// Iterates `(key, id)` pairs from the tail backwards.
    pub fn iter_rev(&self) -> IterRev<'_> {
        IterRev {
            list: self,
            at: self.tail,
        }
    }

    /// Re-sorts the whole list after bulk key updates; `new_key`
    /// supplies the fresh key for each task. Node handles remain valid
    /// and FIFO runs of equal keys keep their relative order (the
    /// rebuild is stable, like the insertion sort it replaced).
    ///
    /// This is the §3.2 "re-sort after the virtual time changes" path;
    /// with the indexed queues its only remaining caller is tag
    /// renormalisation, whose uniform shift never reorders anything —
    /// the O(n log n) rebuild below exists for API parity and tests.
    /// Returns the number of nodes found out of place (for stats).
    pub fn resort_with(&mut self, mut new_key: impl FnMut(TaskId) -> Fixed) -> u64 {
        // First pass: rewrite keys in place, counting out-of-place
        // nodes (a node sorting strictly before its predecessor). No
        // allocation yet: the production caller (tag renormalisation)
        // shifts uniformly and always takes the moved == 0 exit.
        let mut moved = 0u64;
        let mut at = self.head[0];
        let mut prev_key: Option<Fixed> = None;
        while at != NIL {
            let id = self.nodes[at as usize].id;
            let key = new_key(id);
            self.nodes[at as usize].key = key;
            if let Some(pk) = prev_key {
                if self.before(key, pk) {
                    moved += 1;
                }
            }
            prev_key = Some(key);
            at = self.nodes[at as usize].next(0);
            self.steps += 1;
        }
        if moved == 0 {
            return 0;
        }
        // Second pass: stable re-link of every level in sorted order,
        // collecting the bottom-level sequence only now that a rebuild
        // is actually needed.
        let mut order: Vec<u32> = Vec::with_capacity(self.len);
        let mut at = self.head[0];
        while at != NIL {
            order.push(at);
            at = self.nodes[at as usize].next(0);
        }
        let desc = self.order == Order::Descending;
        let keys: Vec<Fixed> = order.iter().map(|&i| self.nodes[i as usize].key).collect();
        let mut perm: Vec<usize> = (0..order.len()).collect();
        perm.sort_by(|&a, &b| {
            if desc {
                keys[b].cmp(&keys[a])
            } else {
                keys[a].cmp(&keys[b])
            }
        });
        self.head = [NIL; MAX_HEIGHT];
        self.tail = NIL;
        let mut last = [NIL; MAX_HEIGHT];
        for &p in &perm {
            let idx = order[p];
            let height = self.nodes[idx as usize].height();
            for (l, slot) in last.iter_mut().enumerate().take(height) {
                self.nodes[idx as usize].set_prev(l, *slot);
                self.nodes[idx as usize].set_next(l, NIL);
                if *slot == NIL {
                    self.head[l] = idx;
                } else {
                    self.nodes[*slot as usize].set_next(l, idx);
                }
                *slot = idx;
            }
            self.tail = idx;
            self.steps += 1;
        }
        moved
    }

    /// Debug invariant check: every level is sorted and consistent with
    /// the level below, pointers line up, and `len` matches.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut count = 0;
        for l in 0..MAX_HEIGHT {
            let mut at = self.head[l];
            let mut prev_key: Option<Fixed> = None;
            let mut prev_idx = NIL;
            while at != NIL {
                let n = &self.nodes[at as usize];
                assert!(n.linked, "unlinked node reachable at level {l}");
                assert!(n.height() > l, "node too short for level {l}");
                assert_eq!(n.prev(l), prev_idx, "prev pointer corrupt at level {l}");
                if let Some(pk) = prev_key {
                    assert!(
                        !self.before(n.key, pk),
                        "level {l} out of order: {pk:?} then {:?}",
                        n.key
                    );
                }
                prev_key = Some(n.key);
                prev_idx = at;
                at = n.next(l);
                if l == 0 {
                    count += 1;
                }
            }
            if l == 0 {
                assert_eq!(self.tail, prev_idx, "tail pointer corrupt");
            }
            if l >= self.levels {
                assert_eq!(self.head[l], NIL, "level above `levels` in use");
            }
        }
        assert_eq!(count, self.len, "len mismatch");
    }
}

/// An ordered multiset of [`Fixed`] keys with an O(log n) minimum.
///
/// Policies that key their run queue by one tag but define the virtual
/// time as the minimum of *another* tag (WFQ orders by finish tag but
/// floors wakeups at the minimum start tag; BVT orders by effective
/// virtual time but floors at the minimum actual virtual time) used to
/// recompute that minimum with a full scan over every attached task on
/// each arrival and wakeup — an O(n) event-path residue. This counter
/// tracks the runnable tags incrementally instead.
#[derive(Debug, Clone, Default)]
pub struct KeyCounter {
    keys: std::collections::BTreeMap<Fixed, u32>,
    len: usize,
    steps: u64,
}

impl KeyCounter {
    /// Creates an empty counter.
    pub fn new() -> KeyCounter {
        KeyCounter::default()
    }

    /// Number of keys tracked (with multiplicity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no key is tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cumulative structure steps (the comparison depth of each map
    /// operation); the event-path cost counter read by the policies.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The O(log) cost estimate of one map operation at the current
    /// number of distinct keys.
    fn op_steps(&self) -> u64 {
        tree_steps(self.keys.len())
    }

    /// Adds one occurrence of `key`.
    pub fn insert(&mut self, key: Fixed) {
        self.steps += self.op_steps();
        *self.keys.entry(key).or_insert(0) += 1;
        self.len += 1;
    }

    /// Removes one occurrence of `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not tracked.
    pub fn remove(&mut self, key: Fixed) {
        self.steps += self.op_steps();
        let count = self.keys.get_mut(&key).expect("removing untracked key");
        *count -= 1;
        if *count == 0 {
            self.keys.remove(&key);
        }
        self.len -= 1;
    }

    /// Moves one occurrence from `old` to `new`.
    pub fn update(&mut self, old: Fixed, new: Fixed) {
        if old != new {
            self.remove(old);
            self.insert(new);
        }
    }

    /// The minimum tracked key, in O(log n).
    pub fn min(&self) -> Option<Fixed> {
        self.keys.first_key_value().map(|(&k, _)| k)
    }
}

/// Forward iterator over an [`IndexedList`].
pub struct Iter<'a> {
    list: &'a IndexedList,
    at: u32,
}

impl Iterator for Iter<'_> {
    type Item = (Fixed, TaskId);
    fn next(&mut self) -> Option<Self::Item> {
        if self.at == NIL {
            return None;
        }
        let n = &self.list.nodes[self.at as usize];
        self.at = n.next(0);
        Some((n.key, n.id))
    }
}

/// Reverse iterator over an [`IndexedList`].
pub struct IterRev<'a> {
    list: &'a IndexedList,
    at: u32,
}

impl Iterator for IterRev<'_> {
    type Item = (Fixed, TaskId);
    fn next(&mut self) -> Option<Self::Item> {
        if self.at == NIL {
            return None;
        }
        let n = &self.list.nodes[self.at as usize];
        self.at = n.prev(0);
        Some((n.key, n.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids(list: &IndexedList) -> Vec<u64> {
        list.iter().map(|(_, id)| id.0).collect()
    }

    #[test]
    fn ascending_insert_orders_by_key() {
        let mut l = IndexedList::new(Order::Ascending);
        l.insert(Fixed::from_int(5), TaskId(1));
        l.insert(Fixed::from_int(2), TaskId(2));
        l.insert(Fixed::from_int(8), TaskId(3));
        l.insert(Fixed::from_int(2), TaskId(4)); // tie: after T2
        assert_eq!(ids(&l), vec![2, 4, 1, 3]);
        assert_eq!(l.head().unwrap().1, TaskId(2));
        assert_eq!(l.tail().unwrap().1, TaskId(3));
        l.check_invariants();
    }

    #[test]
    fn descending_insert_orders_by_key() {
        let mut l = IndexedList::new(Order::Descending);
        l.insert(Fixed::from_int(1), TaskId(1));
        l.insert(Fixed::from_int(10), TaskId(2));
        l.insert(Fixed::from_int(5), TaskId(3));
        assert_eq!(ids(&l), vec![2, 3, 1]);
        l.check_invariants();
    }

    #[test]
    fn remove_unlinks_in_o1() {
        let mut l = IndexedList::new(Order::Ascending);
        let a = l.insert(Fixed::from_int(1), TaskId(1));
        let b = l.insert(Fixed::from_int(2), TaskId(2));
        let c = l.insert(Fixed::from_int(3), TaskId(3));
        l.remove(b);
        assert_eq!(ids(&l), vec![1, 3]);
        l.remove(a);
        assert_eq!(ids(&l), vec![3]);
        l.remove(c);
        assert!(l.is_empty());
        assert_eq!(l.head(), None);
        l.check_invariants();
    }

    #[test]
    fn slots_are_reused_after_removal() {
        let mut l = IndexedList::new(Order::Ascending);
        let a = l.insert(Fixed::from_int(1), TaskId(1));
        l.remove(a);
        let _b = l.insert(Fixed::from_int(2), TaskId(2));
        // The arena should not have grown.
        assert_eq!(l.nodes.len(), 1);
    }

    #[test]
    fn update_key_repositions() {
        let mut l = IndexedList::new(Order::Ascending);
        let a = l.insert(Fixed::from_int(1), TaskId(1));
        let _b = l.insert(Fixed::from_int(2), TaskId(2));
        let _c = l.insert(Fixed::from_int(3), TaskId(3));
        l.update_key(a, Fixed::from_int(10));
        assert_eq!(ids(&l), vec![2, 3, 1]);
        assert_eq!(l.key(a), Fixed::from_int(10));
        l.check_invariants();
    }

    #[test]
    fn tie_updates_go_after_equals() {
        let mut l = IndexedList::new(Order::Ascending);
        let a = l.insert(Fixed::from_int(5), TaskId(1));
        l.insert(Fixed::from_int(5), TaskId(2));
        l.update_key(a, Fixed::from_int(5));
        // Re-inserting an equal key lands after the existing run.
        assert_eq!(ids(&l), vec![2, 1]);
    }

    #[test]
    fn resort_with_fixes_mostly_sorted_list() {
        let mut l = IndexedList::new(Order::Ascending);
        for i in 0..10 {
            l.insert(Fixed::from_int(i), TaskId(i as u64));
        }
        // Shift every key down by its id parity: odd ids become smaller.
        let moved = l.resort_with(|id| {
            if id.0 % 2 == 1 {
                Fixed::from_int(id.0 as i64 - 5)
            } else {
                Fixed::from_int(id.0 as i64)
            }
        });
        l.check_invariants();
        assert!(moved > 0);
        let keys: Vec<i64> = l.iter().map(|(k, _)| k.trunc()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn resort_on_sorted_list_moves_nothing() {
        let mut l = IndexedList::new(Order::Ascending);
        for i in 0..10 {
            l.insert(Fixed::from_int(i), TaskId(i as u64));
        }
        let moved = l.resort_with(|id| Fixed::from_int(id.0 as i64));
        assert_eq!(moved, 0);
    }

    #[test]
    fn resort_is_stable_for_tied_keys() {
        let mut l = IndexedList::new(Order::Ascending);
        for i in 0..6 {
            l.insert(Fixed::from_int(i), TaskId(i as u64));
        }
        // Collapse everything onto two keys; runs of equal keys must
        // keep their previous relative order (ids 0,2,4 then 1,3,5).
        let moved = l.resort_with(|id| Fixed::from_int((id.0 % 2) as i64));
        assert!(moved > 0);
        assert_eq!(ids(&l), vec![0, 2, 4, 1, 3, 5]);
        l.check_invariants();
    }

    #[test]
    fn iter_rev_matches_forward() {
        let mut l = IndexedList::new(Order::Ascending);
        for i in [3i64, 1, 4, 1, 5] {
            l.insert(Fixed::from_int(i), TaskId(i as u64 * 10));
        }
        let fwd: Vec<_> = l.iter().collect();
        let mut rev: Vec<_> = l.iter_rev().collect();
        rev.reverse();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn search_cost_is_logarithmic_not_linear() {
        // 4096 keys inserted in ascending order, then mid-range
        // insertions: each must cost far fewer hops than the ~n/2 a
        // sorted scan from either end would pay.
        let mut l = IndexedList::new(Order::Ascending);
        for i in 0..4096 {
            l.insert(Fixed::from_int(2 * i), TaskId(i as u64));
        }
        let before = l.steps();
        for i in 0..64i64 {
            l.insert(
                Fixed::from_int(2 * (i * 61 % 4096) + 1),
                TaskId(90_000 + i as u64),
            );
        }
        let per_insert = (l.steps() - before) as f64 / 64.0;
        assert!(
            per_insert < 200.0,
            "mid-list insert cost {per_insert:.1} hops — not logarithmic"
        );
        l.check_invariants();
    }

    proptest! {
        #[test]
        fn random_ops_preserve_invariants(ops in proptest::collection::vec((0u8..3, 0i64..100), 1..200)) {
            let mut l = IndexedList::new(Order::Ascending);
            let mut live: Vec<NodeRef> = Vec::new();
            let mut next_id = 0u64;
            for (op, val) in ops {
                match op {
                    0 => {
                        next_id += 1;
                        live.push(l.insert(Fixed::from_int(val), TaskId(next_id)));
                    }
                    1 => {
                        if !live.is_empty() {
                            let r = live.remove(val as usize % live.len());
                            l.remove(r);
                        }
                    }
                    _ => {
                        if !live.is_empty() {
                            let r = live[val as usize % live.len()];
                            l.update_key(r, Fixed::from_int(val));
                        }
                    }
                }
                l.check_invariants();
            }
            prop_assert_eq!(l.len(), live.len());
        }

        #[test]
        fn resort_always_sorts(keys in proptest::collection::vec(-50i64..50, 1..80),
                               new_keys in proptest::collection::vec(-50i64..50, 1..80)) {
            let mut l = IndexedList::new(Order::Ascending);
            for (i, k) in keys.iter().enumerate() {
                l.insert(Fixed::from_int(*k), TaskId(i as u64));
            }
            l.resort_with(|id| {
                let i = id.0 as usize % new_keys.len();
                Fixed::from_int(new_keys[i])
            });
            l.check_invariants();
        }
    }
}
