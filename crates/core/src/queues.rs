//! Sorted run-queue structures.
//!
//! The kernel implementation (§3.1) keeps three doubly-linked lists of
//! runnable threads: sorted by weight (descending), by start tag
//! (ascending) and by surplus (ascending). Insertions use a sorted scan,
//! removals are O(1) unlinks, and the periodic bulk re-sort after a
//! virtual-time change uses insertion sort because the list is mostly
//! sorted already (§3.2).
//!
//! [`SortedList`] reproduces that design as an arena-backed intrusive
//! list: nodes live in a slab indexed by `u32`, and owners hold a
//! [`NodeRef`] per task for O(1) unlinking, exactly as a kernel task
//! struct embeds its list nodes.

use crate::fixed::Fixed;
use crate::task::TaskId;

const NIL: u32 = u32::MAX;

/// A handle to a node in a [`SortedList`], held by the task's owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef(u32);

#[derive(Debug, Clone)]
struct Node {
    key: Fixed,
    id: TaskId,
    prev: u32,
    next: u32,
    linked: bool,
}

/// Direction of the sort order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Smallest key at the head (start-tag and surplus queues).
    Ascending,
    /// Largest key at the head (the weight queue).
    Descending,
}

/// An arena-backed sorted doubly-linked list keyed by [`Fixed`].
///
/// Ties are FIFO: a newly inserted node goes after existing nodes with an
/// equal key, matching the "ties are broken arbitrarily" licence in §2.3
/// while keeping behaviour deterministic.
#[derive(Debug, Clone)]
pub struct SortedList {
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
    order: Order,
}

impl SortedList {
    /// Creates an empty list with the given order.
    pub fn new(order: Order) -> SortedList {
        SortedList {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
            order,
        }
    }

    /// Number of linked nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no nodes are linked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `a` sorts strictly before `b` under this list's order.
    fn before(&self, a: Fixed, b: Fixed) -> bool {
        match self.order {
            Order::Ascending => a < b,
            Order::Descending => a > b,
        }
    }

    fn alloc(&mut self, key: Fixed, id: TaskId) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = Node {
                key,
                id,
                prev: NIL,
                next: NIL,
                linked: false,
            };
            idx
        } else {
            self.nodes.push(Node {
                key,
                id,
                prev: NIL,
                next: NIL,
                linked: false,
            });
            (self.nodes.len() - 1) as u32
        }
    }

    /// Inserts `(key, id)` at its sorted position, scanning from the tail
    /// (the common case for tag updates is near-tail insertion).
    /// Returns a handle for later O(1) removal.
    pub fn insert(&mut self, key: Fixed, id: TaskId) -> NodeRef {
        let idx = self.alloc(key, id);
        self.link_sorted_from_tail(idx);
        NodeRef(idx)
    }

    fn link_sorted_from_tail(&mut self, idx: u32) {
        let key = self.nodes[idx as usize].key;
        // Find the last node that sorts at-or-before `key`; insert after it.
        let mut at = self.tail;
        while at != NIL && self.before(key, self.nodes[at as usize].key) {
            at = self.nodes[at as usize].prev;
        }
        self.link_after(idx, at);
    }

    /// Links `idx` immediately after `after` (or at the head if `after`
    /// is `NIL`).
    fn link_after(&mut self, idx: u32, after: u32) {
        debug_assert!(!self.nodes[idx as usize].linked);
        let next = if after == NIL {
            self.head
        } else {
            self.nodes[after as usize].next
        };
        self.nodes[idx as usize].prev = after;
        self.nodes[idx as usize].next = next;
        if after == NIL {
            self.head = idx;
        } else {
            self.nodes[after as usize].next = idx;
        }
        if next == NIL {
            self.tail = idx;
        } else {
            self.nodes[next as usize].prev = idx;
        }
        self.nodes[idx as usize].linked = true;
        self.len += 1;
    }

    fn unlink_idx(&mut self, idx: u32) {
        debug_assert!(self.nodes[idx as usize].linked);
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
        let n = &mut self.nodes[idx as usize];
        n.prev = NIL;
        n.next = NIL;
        n.linked = false;
        self.len -= 1;
    }

    /// Removes the node and frees its slot. The handle must not be reused.
    pub fn remove(&mut self, r: NodeRef) {
        self.unlink_idx(r.0);
        self.free.push(r.0);
    }

    /// Changes a node's key and moves it to its new sorted position.
    ///
    /// The search starts from the node's old neighbours, so small key
    /// changes cost O(displacement) — the insertion-sort property the
    /// kernel implementation relies on.
    pub fn update_key(&mut self, r: NodeRef, key: Fixed) {
        let idx = r.0;
        self.unlink_idx(idx);
        self.nodes[idx as usize].key = key;
        self.link_sorted_from_tail(idx);
    }

    /// Returns the key currently stored for the node.
    pub fn key(&self, r: NodeRef) -> Fixed {
        self.nodes[r.0 as usize].key
    }

    /// The task at the head of the list, if any.
    pub fn head(&self) -> Option<(Fixed, TaskId)> {
        if self.head == NIL {
            None
        } else {
            let n = &self.nodes[self.head as usize];
            Some((n.key, n.id))
        }
    }

    /// The task at the tail of the list, if any.
    pub fn tail(&self) -> Option<(Fixed, TaskId)> {
        if self.tail == NIL {
            None
        } else {
            let n = &self.nodes[self.tail as usize];
            Some((n.key, n.id))
        }
    }

    /// Iterates `(key, id)` pairs in list order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            list: self,
            at: self.head,
        }
    }

    /// Iterates `(key, id)` pairs from the tail backwards.
    pub fn iter_rev(&self) -> IterRev<'_> {
        IterRev {
            list: self,
            at: self.tail,
        }
    }

    /// Re-sorts the whole list after bulk key updates, using insertion
    /// sort (O(n + inversions)); `new_key` supplies the fresh key for each
    /// task. Node handles remain valid.
    ///
    /// This is the §3.2 "re-sort after the virtual time changes" path.
    /// Returns the number of nodes that had to move (for stats).
    pub fn resort_with(&mut self, mut new_key: impl FnMut(TaskId) -> Fixed) -> u64 {
        // First pass: rewrite keys in place.
        let mut at = self.head;
        while at != NIL {
            let id = self.nodes[at as usize].id;
            self.nodes[at as usize].key = new_key(id);
            at = self.nodes[at as usize].next;
        }
        // Second pass: insertion sort over the linked list.
        let mut moved = 0u64;
        let mut cur = self.head;
        while cur != NIL {
            let next = self.nodes[cur as usize].next;
            let key = self.nodes[cur as usize].key;
            let prev = self.nodes[cur as usize].prev;
            if prev != NIL && self.before(key, self.nodes[prev as usize].key) {
                // Walk back to the insertion point.
                let mut at = self.nodes[prev as usize].prev;
                while at != NIL && self.before(key, self.nodes[at as usize].key) {
                    at = self.nodes[at as usize].prev;
                }
                self.unlink_idx(cur);
                self.link_after(cur, at);
                moved += 1;
            }
            cur = next;
        }
        moved
    }

    /// Debug invariant check: the list is sorted and `len` matches.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut count = 0;
        let mut at = self.head;
        let mut prev_key: Option<Fixed> = None;
        let mut prev_idx = NIL;
        while at != NIL {
            let n = &self.nodes[at as usize];
            assert!(n.linked, "unlinked node reachable");
            assert_eq!(n.prev, prev_idx, "prev pointer corrupt");
            if let Some(pk) = prev_key {
                assert!(
                    !self.before(n.key, pk),
                    "list out of order: {:?} then {:?}",
                    pk,
                    n.key
                );
            }
            prev_key = Some(n.key);
            prev_idx = at;
            at = n.next;
            count += 1;
        }
        assert_eq!(count, self.len, "len mismatch");
        assert_eq!(self.tail, prev_idx, "tail pointer corrupt");
    }
}

/// Forward iterator over a [`SortedList`].
pub struct Iter<'a> {
    list: &'a SortedList,
    at: u32,
}

impl Iterator for Iter<'_> {
    type Item = (Fixed, TaskId);
    fn next(&mut self) -> Option<Self::Item> {
        if self.at == NIL {
            return None;
        }
        let n = &self.list.nodes[self.at as usize];
        self.at = n.next;
        Some((n.key, n.id))
    }
}

/// Reverse iterator over a [`SortedList`].
pub struct IterRev<'a> {
    list: &'a SortedList,
    at: u32,
}

impl Iterator for IterRev<'_> {
    type Item = (Fixed, TaskId);
    fn next(&mut self) -> Option<Self::Item> {
        if self.at == NIL {
            return None;
        }
        let n = &self.list.nodes[self.at as usize];
        self.at = n.prev;
        Some((n.key, n.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids(list: &SortedList) -> Vec<u64> {
        list.iter().map(|(_, id)| id.0).collect()
    }

    #[test]
    fn ascending_insert_orders_by_key() {
        let mut l = SortedList::new(Order::Ascending);
        l.insert(Fixed::from_int(5), TaskId(1));
        l.insert(Fixed::from_int(2), TaskId(2));
        l.insert(Fixed::from_int(8), TaskId(3));
        l.insert(Fixed::from_int(2), TaskId(4)); // tie: after T2
        assert_eq!(ids(&l), vec![2, 4, 1, 3]);
        assert_eq!(l.head().unwrap().1, TaskId(2));
        assert_eq!(l.tail().unwrap().1, TaskId(3));
        l.check_invariants();
    }

    #[test]
    fn descending_insert_orders_by_key() {
        let mut l = SortedList::new(Order::Descending);
        l.insert(Fixed::from_int(1), TaskId(1));
        l.insert(Fixed::from_int(10), TaskId(2));
        l.insert(Fixed::from_int(5), TaskId(3));
        assert_eq!(ids(&l), vec![2, 3, 1]);
        l.check_invariants();
    }

    #[test]
    fn remove_unlinks_in_o1() {
        let mut l = SortedList::new(Order::Ascending);
        let a = l.insert(Fixed::from_int(1), TaskId(1));
        let b = l.insert(Fixed::from_int(2), TaskId(2));
        let c = l.insert(Fixed::from_int(3), TaskId(3));
        l.remove(b);
        assert_eq!(ids(&l), vec![1, 3]);
        l.remove(a);
        assert_eq!(ids(&l), vec![3]);
        l.remove(c);
        assert!(l.is_empty());
        assert_eq!(l.head(), None);
        l.check_invariants();
    }

    #[test]
    fn slots_are_reused_after_removal() {
        let mut l = SortedList::new(Order::Ascending);
        let a = l.insert(Fixed::from_int(1), TaskId(1));
        l.remove(a);
        let _b = l.insert(Fixed::from_int(2), TaskId(2));
        // The arena should not have grown.
        assert_eq!(l.nodes.len(), 1);
    }

    #[test]
    fn update_key_repositions() {
        let mut l = SortedList::new(Order::Ascending);
        let a = l.insert(Fixed::from_int(1), TaskId(1));
        let _b = l.insert(Fixed::from_int(2), TaskId(2));
        let _c = l.insert(Fixed::from_int(3), TaskId(3));
        l.update_key(a, Fixed::from_int(10));
        assert_eq!(ids(&l), vec![2, 3, 1]);
        assert_eq!(l.key(a), Fixed::from_int(10));
        l.check_invariants();
    }

    #[test]
    fn tie_updates_go_after_equals() {
        let mut l = SortedList::new(Order::Ascending);
        let a = l.insert(Fixed::from_int(5), TaskId(1));
        l.insert(Fixed::from_int(5), TaskId(2));
        l.update_key(a, Fixed::from_int(5));
        // Re-inserting an equal key lands after the existing run.
        assert_eq!(ids(&l), vec![2, 1]);
    }

    #[test]
    fn resort_with_fixes_mostly_sorted_list() {
        let mut l = SortedList::new(Order::Ascending);
        for i in 0..10 {
            l.insert(Fixed::from_int(i), TaskId(i as u64));
        }
        // Shift every key down by its id parity: odd ids become smaller.
        let moved = l.resort_with(|id| {
            if id.0 % 2 == 1 {
                Fixed::from_int(id.0 as i64 - 5)
            } else {
                Fixed::from_int(id.0 as i64)
            }
        });
        l.check_invariants();
        assert!(moved > 0);
        let keys: Vec<i64> = l.iter().map(|(k, _)| k.trunc()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn resort_on_sorted_list_moves_nothing() {
        let mut l = SortedList::new(Order::Ascending);
        for i in 0..10 {
            l.insert(Fixed::from_int(i), TaskId(i as u64));
        }
        let moved = l.resort_with(|id| Fixed::from_int(id.0 as i64));
        assert_eq!(moved, 0);
    }

    #[test]
    fn iter_rev_matches_forward() {
        let mut l = SortedList::new(Order::Ascending);
        for i in [3i64, 1, 4, 1, 5] {
            l.insert(Fixed::from_int(i), TaskId(i as u64 * 10));
        }
        let fwd: Vec<_> = l.iter().collect();
        let mut rev: Vec<_> = l.iter_rev().collect();
        rev.reverse();
        assert_eq!(fwd, rev);
    }

    proptest! {
        #[test]
        fn random_ops_preserve_invariants(ops in proptest::collection::vec((0u8..3, 0i64..100), 1..200)) {
            let mut l = SortedList::new(Order::Ascending);
            let mut live: Vec<NodeRef> = Vec::new();
            let mut next_id = 0u64;
            for (op, val) in ops {
                match op {
                    0 => {
                        next_id += 1;
                        live.push(l.insert(Fixed::from_int(val), TaskId(next_id)));
                    }
                    1 => {
                        if !live.is_empty() {
                            let r = live.remove(val as usize % live.len());
                            l.remove(r);
                        }
                    }
                    _ => {
                        if !live.is_empty() {
                            let r = live[val as usize % live.len()];
                            l.update_key(r, Fixed::from_int(val));
                        }
                    }
                }
                l.check_invariants();
            }
            prop_assert_eq!(l.len(), live.len());
        }

        #[test]
        fn resort_always_sorts(keys in proptest::collection::vec(-50i64..50, 1..80),
                               new_keys in proptest::collection::vec(-50i64..50, 1..80)) {
            let mut l = SortedList::new(Order::Ascending);
            for (i, k) in keys.iter().enumerate() {
                l.insert(Fixed::from_int(*k), TaskId(i as u64));
            }
            l.resort_with(|id| {
                let i = id.0 as usize % new_keys.len();
                Fixed::from_int(new_keys[i])
            });
            l.check_invariants();
        }
    }
}
