//! # sfs-core — proportional-share SMP scheduling algorithms
//!
//! A from-scratch reproduction of the scheduling machinery in
//! *Surplus Fair Scheduling: A Proportional-Share CPU Scheduling
//! Algorithm for Symmetric Multiprocessors* (Chandra, Adler, Goyal,
//! Shenoy; OSDI 2000):
//!
//! * [`mod@readjust`] — the optimal weight readjustment algorithm (§2.1)
//!   that maps infeasible weight assignments to the closest feasible
//!   ones, plus [`feasible::FeasibleWeights`], which re-runs it on every
//!   runnable-set change as the kernel implementation does (§3.1).
//! * [`gms`] — generalized multiprocessor sharing, the idealized
//!   fluid-flow reference (§2.2).
//! * [`sfs`] — surplus fair scheduling itself (§2.3), with the §3.1
//!   kernel queue structure upgraded to a per-weight-class bucket queue
//!   ([`mod@buckets`]) that makes the exact pick O(#weight-classes)
//!   instead of O(n), plus the bounded-lookahead heuristic and
//!   fixed-point tags with renormalisation (§3).
//! * [`hier`] — hierarchical SFS over tenant groups (`sfs:groups(...)`):
//!   the top level runs SFS with each group's share as its weight
//!   (group-level §2.1 readjustment included) and each group's member
//!   tasks are scheduled by that group's own policy, giving per-tenant
//!   isolation no flat weight space can.
//! * [`mod@shard`] — sharded run queues (§5 scaling direction): per-CPU
//!   instances of any registered policy behind surplus-balanced
//!   placement, steal-on-idle and a periodic rebalance pass, with the
//!   §2.1 readjustment kept logically global through an epoch-published
//!   snapshot (`sfs:shards=4`).
//! * Baselines the paper compares against or cites: [`sfq`] (start-time
//!   fair queueing, with optional readjustment — Figs. 4/5),
//!   [`timeshare`] (the Linux 2.2 epoch/goodness scheduler — Figs. 6/7,
//!   Table 1), and [`stride`], [`bvt`], [`wfq`], [`rr`].
//! * Overload armor: [`admit`] — admission control and per-tenant
//!   rate limits (`admit(max=...,rate=.../s)` on any spec), and
//!   [`fault`] — deterministic fault-injection plans the substrates
//!   replay bit-for-bit.
//!
//! Schedulers are pure run-queue policies behind the [`sched::Scheduler`]
//! trait; the `sfs-sim` crate drives them in a discrete-event simulator
//! and `sfs-rt` drives them over real OS threads.
//!
//! ## Quick example
//!
//! ```
//! use sfs_core::prelude::*;
//!
//! // Two CPUs, three threads with weights 2:1:1 (feasible).
//! let mut sched = Sfs::new(2);
//! let now = Time::ZERO;
//! sched.attach(TaskId(1), weight(2), now);
//! sched.attach(TaskId(2), weight(1), now);
//! sched.attach(TaskId(3), weight(1), now);
//!
//! let first = sched.pick_next(CpuId(0), now).unwrap();
//! let second = sched.pick_next(CpuId(1), now).unwrap();
//! assert_ne!(first, second);
//!
//! // After a 10ms quantum, report actual usage; tags advance by q/φ.
//! let later = now + Duration::from_millis(10);
//! sched.put_prev(first, Duration::from_millis(10), SwitchReason::Preempted, later);
//! ```

pub mod admit;
pub mod buckets;
pub mod bvt;
pub mod fault;
pub mod feasible;
pub mod fixed;
pub mod gms;
pub mod hier;
pub mod policy;
pub mod queues;
pub mod readjust;
pub mod rr;
pub mod sched;
pub mod sfq;
pub mod sfs;
pub mod shard;
pub mod stride;
pub mod task;
#[doc(hidden)]
pub mod testkit;
pub mod time;
pub mod timeshare;
pub mod wfq;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::admit::{AdmissionControl, AdmissionPolicy, RejectReason};
    pub use crate::bvt::{Bvt, BvtConfig};
    pub use crate::fault::{FaultEvent, FaultKind, FaultPlan};
    pub use crate::fixed::Fixed;
    pub use crate::gms::FluidGms;
    pub use crate::hier::HierSfs;
    pub use crate::policy::{GroupSpec, ParsePolicyError, PolicyKind, PolicySpec};
    pub use crate::readjust::{is_feasible, readjust, Readjustment};
    pub use crate::rr::RoundRobin;
    pub use crate::sched::{SchedStats, Scheduler, SwitchReason};
    pub use crate::sfq::{Sfq, SfqConfig};
    pub use crate::sfs::{Sfs, SfsConfig};
    pub use crate::shard::{ShardLayout, ShardedScheduler};
    pub use crate::stride::{Stride, StrideConfig};
    pub use crate::task::{weight, CpuId, TaskId, TaskState, TenantId, Weight};
    pub use crate::time::{Duration, Time};
    pub use crate::timeshare::{TimeSharing, TimeSharingConfig};
    pub use crate::wfq::{Wfq, WfqConfig};
}

pub use prelude::*;
