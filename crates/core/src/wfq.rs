//! Weighted fair queueing (WFQ) [Parekh & Gallager / Demers et al.],
//! translated to CPU scheduling.
//!
//! WFQ picks the minimum *finish* tag, where a finish tag is computed at
//! enqueue time as `F_i = S_i + Q / φ_i` with `Q` the *expected* quantum.
//! This is the packet-scheduling discipline the paper groups with the
//! other GPS instantiations (§1.2); it contrasts with SFS in a way the
//! paper highlights: WFQ needs the quantum length **a priori**, whereas
//! SFS only needs actual usage after the fact (§2.3). When a thread
//! blocks early, WFQ's finish-tag estimate was wrong and is corrected
//! retroactively from the actual usage.
//!
//! Supports the optional readjustment wrapper (§2.1) like the other
//! baselines.

use std::collections::HashMap;

use crate::feasible::FeasibleWeights;
use crate::fixed::Fixed;
use crate::queues::{IndexedList, KeyCounter, NodeRef, Order};
use crate::sched::{SchedStats, Scheduler, SwitchReason};
use crate::task::{CpuId, TagTask, TaskId, TaskState, Weight};
use crate::time::{Duration, Time};

/// Tuning knobs for [`Wfq`].
#[derive(Debug, Clone)]
pub struct WfqConfig {
    /// Expected quantum used to precompute finish tags.
    pub quantum: Duration,
    /// Apply weight readjustment (§2.1).
    pub readjust: bool,
}

impl Default for WfqConfig {
    fn default() -> WfqConfig {
        WfqConfig {
            quantum: Duration::from_millis(200),
            readjust: false,
        }
    }
}

#[derive(Debug)]
struct Entry {
    task: TagTask,
    node: Option<NodeRef>,
}

/// The weighted-fair-queueing scheduler.
pub struct Wfq {
    cfg: WfqConfig,
    cpus: u32,
    tasks: HashMap<TaskId, Entry>,
    feas: FeasibleWeights,
    /// Ready+running tasks ordered by precomputed finish tag.
    finish_q: IndexedList,
    /// Runnable start tags, tracked incrementally: the queue above is
    /// finish-tag-ordered, so the virtual time (minimum *start* tag)
    /// would otherwise need an O(n) scan per arrival or wakeup.
    start_tags: KeyCounter,
    v: Fixed,
    stats: SchedStats,
}

impl Wfq {
    /// Plain WFQ.
    pub fn new(cpus: u32) -> Wfq {
        Wfq::with_config(cpus, WfqConfig::default())
    }

    /// WFQ with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn with_config(cpus: u32, cfg: WfqConfig) -> Wfq {
        assert!(cpus > 0, "need at least one processor");
        let readjust = cfg.readjust;
        Wfq {
            cfg,
            cpus,
            tasks: HashMap::new(),
            feas: FeasibleWeights::new(cpus, readjust),
            finish_q: IndexedList::new(Order::Ascending),
            start_tags: KeyCounter::new(),
            v: Fixed::ZERO,
            stats: SchedStats::default(),
        }
    }

    fn current_v(&self) -> Fixed {
        // Minimum start tag over runnable threads, in O(log n).
        self.start_tags.min().unwrap_or(self.v)
    }

    /// Precomputes the finish tag for the task's *next* quantum.
    fn expected_finish(&self, id: TaskId, e: &TagTask) -> Fixed {
        let phi = self.feas.phi(id, e.weight);
        e.start_tag + phi.div_into_int(self.cfg.quantum.as_nanos())
    }

    fn link(&mut self, id: TaskId) {
        let f = self.expected_finish(id, &self.tasks[&id].task);
        self.tasks.get_mut(&id).unwrap().task.finish_tag = f;
        let node = self.finish_q.insert(f, id);
        self.tasks.get_mut(&id).unwrap().node = Some(node);
    }

    fn unlink(&mut self, id: TaskId) {
        if let Some(n) = self.tasks.get_mut(&id).unwrap().node.take() {
            self.finish_q.remove(n);
        }
    }
}

impl Scheduler for Wfq {
    fn name(&self) -> &'static str {
        if self.cfg.readjust {
            "WFQ+readjust"
        } else {
            "WFQ"
        }
    }

    fn cpus(&self) -> u32 {
        self.cpus
    }

    fn attach(&mut self, id: TaskId, w: Weight, _now: Time) {
        assert!(!self.tasks.contains_key(&id), "task {id} attached twice");
        self.stats.events += 1;
        let task = TagTask::new(id, w, self.current_v());
        self.start_tags.insert(task.start_tag);
        self.tasks.insert(id, Entry { task, node: None });
        self.feas.insert(id, w);
        self.link(id);
    }

    fn detach(&mut self, id: TaskId, _now: Time) {
        self.stats.events += 1;
        let state = self.tasks[&id].task.state;
        assert!(!state.is_running(), "detach of running task {id}");
        if state.is_runnable() {
            let w = self.tasks[&id].task.weight;
            self.start_tags.remove(self.tasks[&id].task.start_tag);
            self.unlink(id);
            self.feas.remove(id, w);
        }
        self.tasks.remove(&id);
    }

    fn set_weight(&mut self, id: TaskId, w: Weight, _now: Time) {
        let old = self.tasks[&id].task.weight;
        if old == w {
            return;
        }
        self.stats.events += 1;
        self.tasks.get_mut(&id).unwrap().task.weight = w;
        if self.tasks[&id].task.state.is_runnable() {
            self.feas.set_weight(id, old, w);
        }
    }

    fn weight_of(&self, id: TaskId) -> Option<Weight> {
        self.tasks.get(&id).map(|e| e.task.weight)
    }

    fn adjusted_weight_of(&self, id: TaskId) -> Option<Fixed> {
        let e = self.tasks.get(&id)?;
        Some(self.feas.phi(id, e.task.weight))
    }

    fn wake(&mut self, id: TaskId, _now: Time) {
        self.stats.events += 1;
        let v_now = self.current_v();
        {
            let e = self.tasks.get_mut(&id).expect("waking unknown task");
            assert!(matches!(e.task.state, TaskState::Blocked));
            e.task.start_tag = e.task.start_tag.max(v_now);
            e.task.state = TaskState::Ready;
        }
        self.start_tags.insert(self.tasks[&id].task.start_tag);
        let w = self.tasks[&id].task.weight;
        self.feas.insert(id, w);
        self.link(id);
    }

    fn pick_next(&mut self, cpu: CpuId, _now: Time) -> Option<TaskId> {
        let picked = self
            .finish_q
            .iter()
            .map(|(_, id)| id)
            .find(|id| matches!(self.tasks[id].task.state, TaskState::Ready))?;
        self.tasks.get_mut(&picked).unwrap().task.state = TaskState::Running(cpu);
        self.stats.picks += 1;
        Some(picked)
    }

    fn put_prev(&mut self, id: TaskId, ran: Duration, reason: SwitchReason, _now: Time) {
        self.stats.events += 1;
        let w = {
            let e = &self.tasks[&id];
            assert!(e.task.state.is_running(), "put_prev of non-running {id}");
            e.task.weight
        };
        let phi = self.feas.phi(id, w);
        let (old_start, actual_finish) = {
            let e = self.tasks.get_mut(&id).unwrap();
            // Correct the precomputed estimate with actual usage.
            let old_start = e.task.start_tag;
            let f = old_start + phi.div_into_int(ran.as_nanos());
            e.task.service += ran;
            e.task.start_tag = f;
            (old_start, f)
        };
        match reason {
            SwitchReason::Preempted | SwitchReason::Yielded => {
                self.start_tags.update(old_start, actual_finish);
                self.tasks.get_mut(&id).unwrap().task.state = TaskState::Ready;
                // Re-key with the next quantum's expected finish tag.
                let f = self.expected_finish(id, &self.tasks[&id].task);
                self.tasks.get_mut(&id).unwrap().task.finish_tag = f;
                let node = self.tasks[&id].node.expect("runnable without node");
                self.finish_q.update_key(node, f);
            }
            SwitchReason::Blocked => {
                self.start_tags.remove(old_start);
                self.unlink(id);
                self.tasks.get_mut(&id).unwrap().task.state = TaskState::Blocked;
                self.feas.remove(id, w);
                if self.feas.is_empty() {
                    self.v = actual_finish;
                }
            }
            SwitchReason::Exited => {
                self.start_tags.remove(old_start);
                self.unlink(id);
                self.feas.remove(id, w);
                self.tasks.remove(&id);
                if self.feas.is_empty() {
                    self.v = actual_finish;
                }
            }
        }
    }

    fn time_slice(&self, _id: TaskId) -> Duration {
        self.cfg.quantum
    }

    fn nr_runnable(&self) -> usize {
        self.finish_q.len()
    }

    fn nr_tasks(&self) -> usize {
        self.tasks.len()
    }

    fn stats(&self) -> SchedStats {
        let mut s = self.stats;
        s.readjust_calls = self.feas.calls;
        s.weights_clamped = self.feas.clamps;
        s.event_steps = self.finish_q.steps() + self.start_tags.steps() + self.feas.event_steps();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{assert_close, MiniSim};

    #[test]
    fn proportional_on_uniprocessor() {
        // Match the expected quantum to the driver's actual quantum so
        // the precomputed finish tags are exact.
        let mut sim = MiniSim::new(Wfq::with_config(
            1,
            WfqConfig {
                quantum: Duration::from_millis(1),
                ..WfqConfig::default()
            },
        ));
        sim.spawn(1, 2);
        sim.spawn(2, 6);
        sim.run_quanta(4000);
        assert_close(sim.ratio(2, 1), 3.0, 0.01, "3:1");
    }

    #[test]
    fn picks_min_finish_tag() {
        let mut s = Wfq::new(1);
        s.attach(TaskId(1), Weight::new(1).unwrap(), Time::ZERO);
        s.attach(TaskId(2), Weight::new(10).unwrap(), Time::ZERO);
        // Heavy task has the smaller expected finish tag.
        assert_eq!(s.pick_next(CpuId(0), Time::ZERO), Some(TaskId(2)));
    }

    #[test]
    fn early_block_is_charged_actual_usage() {
        let mut s = Wfq::new(1);
        s.attach(TaskId(1), Weight::DEFAULT, Time::ZERO);
        let id = s.pick_next(CpuId(0), Time::ZERO).unwrap();
        // Runs 1 ms of a 200 ms quantum, then blocks.
        s.put_prev(
            id,
            Duration::from_millis(1),
            SwitchReason::Blocked,
            Time::ZERO,
        );
        // Start tag advanced by 1 ms / 1, not 200 ms.
        let e = &s.tasks[&TaskId(1)].task;
        assert_eq!(
            e.start_tag,
            Fixed::from_raw(1_000_000 * crate::fixed::SCALE)
        );
    }

    #[test]
    fn readjustment_clamps_on_smp() {
        let mut sim = MiniSim::new(Wfq::with_config(
            2,
            WfqConfig {
                readjust: true,
                ..WfqConfig::default()
            },
        ));
        sim.spawn(1, 1);
        sim.spawn(2, 10);
        sim.run_quanta(600);
        assert_close(sim.ratio(2, 1), 1.0, 0.02, "clamped 1:1");
    }
}
