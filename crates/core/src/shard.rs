//! Sharded run queues: per-CPU policy instances with surplus-balanced
//! placement and stealing.
//!
//! The paper implements SFS with a single global run queue (§5), and
//! both substrates in this repository reproduced that faithfully —
//! every pick, wake and tick serialised through one scheduler object.
//! Adding processors then adds contention, not throughput. This module
//! shards the machine instead: the `p` processors are partitioned into
//! shards, each shard runs its *own* instance of any registered policy
//! over its own CPUs, and three mechanisms keep the per-task CPU shares
//! close to what the global scheduler would allocate:
//!
//! 1. **Surplus-balanced placement** — arrivals go to the shard with
//!    the least adjusted-weight sum per CPU; wakeups stay on the shard
//!    where the task last ran (preserving the `last_cpu` affinity
//!    extension inside that shard) unless its per-CPU load exceeds the
//!    least-loaded shard's by more than the waking task's own
//!    contribution.
//! 2. **Steal-on-idle** — a processor whose shard has no ready task
//!    takes the *highest-surplus* ready task (the one most ahead of
//!    its GMS share, i.e. the one that can best afford to wait — and
//!    therefore to pay a migration) from the most loaded shard that
//!    has more runnable tasks than processors. This restores work
//!    conservation across shards.
//! 3. **Periodic rebalance** — every [`ShardedScheduler`] rebalance
//!    interval, highest-surplus ready tasks migrate from overloaded to
//!    underloaded shards while each move strictly reduces the larger of
//!    the two per-CPU loads.
//!
//! **Rebalance bound.** Greedy moves stop exactly when no single
//! migration reduces the worse per-CPU load, so immediately after a
//! rebalance pass every shard's adjusted-weight sum per CPU is within
//! `φ_max` (the largest single task weight) of every other's. Between
//! passes the imbalance is bounded by the weight churn of one window,
//! so a task's service rate deviates from the global scheduler's by at
//! most the relative load gap of its shard over one rebalance window —
//! the bound the differential test (`tests/shard_differential.rs`) and
//! the `repro scale` fairness sweep check.
//!
//! **Global feasibility.** The §2.1 infeasible-weight readjustment is
//! inherently global: a weight can be infeasible on the whole machine
//! while locally feasible inside its shard. The [`Balancer`] therefore
//! keeps one machine-wide [`FeasibleWeights`] and publishes its clamp
//! set through an epoch-versioned [`SnapshotCell`]; SFS shards check
//! the epoch with a single atomic load on their pick path (lock-free
//! unless a new epoch was actually published) and cap each task's
//! local `φ` at the global value. Non-SFS shard policies ignore the
//! snapshot and get placement balancing only.
//!
//! **Tenant groups place as units.** When the shard policy is
//! hierarchical (`sfs:groups(...)`, see [`crate::hier`]), every task
//! carries a [`TenantId`] and per-tenant isolation is only meaningful
//! while all of a tenant's tasks share one group instance. The
//! balancer therefore anchors each tenant to a home shard — the
//! least-loaded shard at the moment the tenant's *first* task arrives
//! — and every later arrival, wakeup and rebalance decision keeps the
//! tenant's tasks there: wakers with a tenant never migrate, and
//! [`Balancer::plan_move`] refuses candidates that belong to a tenant
//! (hierarchical shards nominate no steal candidates in the first
//! place). A tenant moves between shards only as a whole group, which
//! happens naturally when its last task exits and the next one
//! re-anchors it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sfs_analyze::lockorder::{rank, OrderedMutex};

use crate::feasible::FeasibleWeights;
use crate::fixed::Fixed;
use crate::policy::PolicySpec;
use crate::sched::{SchedStats, Scheduler, SwitchReason};
use crate::task::{CpuId, TaskId, TenantId, Weight};
use crate::time::{Duration, Time};

/// One published epoch of the machine-wide weight readjustment: the
/// clamp cap and the ids currently clamped to it. Tasks outside
/// `clamped` run at their raw (or locally readjusted) weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhiSnapshot {
    /// Monotonically increasing publication counter.
    pub epoch: u64,
    /// The feasible cap; meaningful only when `clamped` is non-empty.
    pub cap: Fixed,
    /// Ids clamped to `cap`, sorted; at most `p − 1` entries (§2.1).
    pub clamped: Vec<TaskId>,
}

impl PhiSnapshot {
    /// The globally imposed cap for `id`, if it is clamped.
    pub fn cap_of(&self, id: TaskId) -> Option<Fixed> {
        if self.clamped.binary_search(&id).is_ok() {
            Some(self.cap)
        } else {
            None
        }
    }
}

/// An epoch-versioned, shared publication slot for [`PhiSnapshot`]s.
///
/// Readers poll [`SnapshotCell::load_if_newer`] with the epoch they
/// last applied: the no-change fast path is one atomic load, so a
/// shard's pick path never takes a lock unless the global section
/// actually republished. Publications that would not change the cap or
/// clamp set are skipped, keeping steady-state scheduling entirely on
/// the fast path.
#[derive(Debug)]
pub struct SnapshotCell {
    epoch: AtomicU64,
    slot: OrderedMutex<Arc<PhiSnapshot>>,
}

impl Default for SnapshotCell {
    fn default() -> SnapshotCell {
        SnapshotCell::new()
    }
}

impl SnapshotCell {
    /// Creates a cell holding the empty (nothing clamped) snapshot.
    pub fn new() -> SnapshotCell {
        SnapshotCell {
            epoch: AtomicU64::new(0),
            slot: OrderedMutex::new(
                rank::SNAPSHOT,
                Arc::new(PhiSnapshot {
                    epoch: 0,
                    cap: Fixed::ZERO,
                    clamped: Vec::new(),
                }),
            ),
        }
    }

    /// The currently published snapshot.
    pub fn load(&self) -> Arc<PhiSnapshot> {
        Arc::clone(&self.slot.lock())
    }

    /// The published snapshot if its epoch is newer than `seen`, else
    /// `None` without taking the slot lock.
    pub fn load_if_newer(&self, seen: u64) -> Option<Arc<PhiSnapshot>> {
        if self.epoch.load(Ordering::Acquire) == seen {
            None
        } else {
            Some(self.load())
        }
    }

    /// Publishes a new clamp state, bumping the epoch — unless it is
    /// identical to the current one, in which case nothing happens and
    /// readers stay on their lock-free fast path.
    pub fn publish(&self, cap: Option<Fixed>, clamped: &[TaskId]) {
        let mut slot = self.slot.lock();
        let cap = cap.unwrap_or(Fixed::ZERO);
        if slot.cap == cap && slot.clamped == clamped {
            return;
        }
        let epoch = slot.epoch + 1;
        *slot = Arc::new(PhiSnapshot {
            epoch,
            cap,
            clamped: clamped.to_vec(),
        });
        self.epoch.store(epoch, Ordering::Release);
    }
}

/// The partition of the machine's processors into shards: shard `s`
/// owns the contiguous CPU range `starts[s]..starts[s+1]`. Remainder
/// CPUs go to the lowest-indexed shards, so any `1 ≤ shards ≤ cpus`
/// split is valid.
#[derive(Debug, Clone)]
pub struct ShardLayout {
    starts: Vec<u32>,
}

impl ShardLayout {
    /// Partitions `cpus` processors into `shards` contiguous shards
    /// (clamped to `1..=cpus`).
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn new(cpus: u32, shards: u32) -> ShardLayout {
        assert!(cpus > 0, "need at least one processor");
        let shards = shards.clamp(1, cpus);
        let (base, rem) = (cpus / shards, cpus % shards);
        let mut starts = Vec::with_capacity(shards as usize + 1);
        let mut at = 0u32;
        starts.push(at);
        for s in 0..shards {
            at += base + u32::from(s < rem);
            starts.push(at);
        }
        ShardLayout { starts }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total processors across all shards.
    pub fn cpus(&self) -> u32 {
        *self.starts.last().expect("layout non-empty")
    }

    /// Processors owned by shard `s`.
    pub fn shard_cpus(&self, s: usize) -> u32 {
        self.starts[s + 1] - self.starts[s]
    }

    /// The shard owning a machine-level CPU id.
    pub fn shard_of(&self, cpu: CpuId) -> usize {
        debug_assert!(cpu.0 < self.cpus(), "cpu {cpu} outside the machine");
        self.starts.partition_point(|&st| st <= cpu.0) - 1
    }

    /// Translates a machine-level CPU id into the owning shard's local
    /// id space (shard policies are built over `0..shard_cpus`).
    pub fn local(&self, cpu: CpuId) -> CpuId {
        CpuId(cpu.0 - self.starts[self.shard_of(cpu)])
    }
}

#[derive(Debug)]
struct BalTask {
    weight: Weight,
    /// The task's last-accounted global adjusted weight (its
    /// contribution to its shard's load sum while runnable).
    phi: Fixed,
    shard: usize,
    runnable: bool,
    /// The tenant group this task belongs to, when the shard policy is
    /// hierarchical. Tenant tasks are pinned to the tenant's home
    /// shard.
    tenant: Option<TenantId>,
}

/// The sharded scheduler's global section: machine-wide weight
/// readjustment, per-shard adjusted-weight load sums, task placement,
/// and the [`SnapshotCell`] publication of the clamp state.
///
/// Substrates that lock shards independently (the rt executor, the
/// `repro scale` driver) keep exactly one `Balancer` behind one lock;
/// it is touched only on runnable-set changes (arrival, block, wake,
/// exit, reweight) and rebalance — never on the per-shard pick path.
#[derive(Debug)]
pub struct Balancer {
    feas: FeasibleWeights,
    cell: Arc<SnapshotCell>,
    tasks: HashMap<TaskId, BalTask>,
    shard_phi: Vec<Fixed>,
    shard_cpus: Vec<u32>,
    /// Each tenant's home shard and its live task count. The anchor is
    /// dropped when the count reaches zero, so an empty tenant can
    /// re-place onto the then-least-loaded shard.
    tenant_home: HashMap<TenantId, (usize, usize)>,
}

impl Balancer {
    /// Creates the global section for a shard layout, publishing into
    /// `cell`.
    pub fn new(layout: &ShardLayout, cell: Arc<SnapshotCell>) -> Balancer {
        Balancer {
            feas: FeasibleWeights::new(layout.cpus(), true),
            cell,
            tasks: HashMap::new(),
            shard_phi: vec![Fixed::ZERO; layout.shards()],
            shard_cpus: (0..layout.shards()).map(|s| layout.shard_cpus(s)).collect(),
            tenant_home: HashMap::new(),
        }
    }

    /// The snapshot cell shard policies subscribe to.
    pub fn cell(&self) -> &Arc<SnapshotCell> {
        &self.cell
    }

    /// Adjusted-weight load per processor of shard `s`.
    pub fn load(&self, s: usize) -> Fixed {
        self.shard_phi[s] / self.shard_cpus[s] as i64
    }

    /// The shard with the smallest per-CPU load (lowest index on ties).
    pub fn least_loaded(&self) -> usize {
        (0..self.shard_phi.len())
            .min_by_key(|&s| self.load(s))
            .expect("at least one shard")
    }

    /// The shard with the largest per-CPU load (lowest index on ties).
    pub fn most_loaded(&self) -> usize {
        (0..self.shard_phi.len())
            .max_by_key(|&s| (self.load(s), std::cmp::Reverse(s)))
            .expect("at least one shard")
    }

    /// The shard a known task currently belongs to.
    pub fn shard_of(&self, id: TaskId) -> Option<usize> {
        self.tasks.get(&id).map(|t| t.shard)
    }

    /// Folds the φ deltas the last readjustment produced into the
    /// per-shard load sums.
    fn apply_changes(&mut self) {
        for id in self.feas.take_changed() {
            let Some(t) = self.tasks.get_mut(&id) else {
                continue;
            };
            if !t.runnable {
                continue;
            }
            let phi = self.feas.phi(id, t.weight);
            self.shard_phi[t.shard] += phi - t.phi;
            t.phi = phi;
        }
    }

    fn publish(&self) {
        self.cell.publish(self.feas.cap(), self.feas.clamped());
    }

    /// Places a new runnable task on the least-loaded shard, updates
    /// the global readjustment and publishes. Returns the chosen shard.
    pub fn attach(&mut self, id: TaskId, w: Weight) -> usize {
        self.attach_tenant(id, w, None)
    }

    /// Places a new runnable task, honouring tenant anchoring: the
    /// first task of a tenant anchors the tenant to the least-loaded
    /// shard; every later task of that tenant joins it there, so the
    /// tenant's group is never split across shard policies. Returns
    /// the chosen shard.
    pub fn attach_tenant(&mut self, id: TaskId, w: Weight, tenant: Option<TenantId>) -> usize {
        let shard = match tenant {
            Some(t) => {
                let least = self.least_loaded();
                let entry = self.tenant_home.entry(t).or_insert((least, 0));
                entry.1 += 1;
                entry.0
            }
            None => self.least_loaded(),
        };
        self.feas.insert(id, w);
        self.apply_changes();
        let phi = self.feas.phi(id, w);
        self.shard_phi[shard] += phi;
        let prev = self.tasks.insert(
            id,
            BalTask {
                weight: w,
                phi,
                shard,
                runnable: true,
                tenant,
            },
        );
        debug_assert!(prev.is_none(), "task {id} placed twice");
        self.publish();
        shard
    }

    /// The tenant a tracked task belongs to, if any.
    pub fn tenant_of(&self, id: TaskId) -> Option<TenantId> {
        self.tasks.get(&id)?.tenant
    }

    /// The home shard a tenant is anchored to, while it has tasks.
    pub fn tenant_shard(&self, t: TenantId) -> Option<usize> {
        self.tenant_home.get(&t).map(|&(s, _)| s)
    }

    /// Records a task leaving the runnable set (blocking).
    pub fn block(&mut self, id: TaskId) {
        let t = self.tasks.get_mut(&id).expect("blocking unknown task");
        debug_assert!(t.runnable, "blocking non-runnable task {id}");
        t.runnable = false;
        let (shard, phi, w) = (t.shard, t.phi, t.weight);
        self.shard_phi[shard] -= phi;
        self.feas.remove(id, w);
        self.apply_changes();
        self.publish();
    }

    /// Re-admits a blocked task, choosing its shard: it stays on the
    /// shard it last ran on (keeping `last_cpu` affinity meaningful)
    /// unless that shard's per-CPU load exceeds the least-loaded
    /// shard's by more than the waker's own per-CPU contribution.
    /// Returns `(home, target)`; the caller migrates the task between
    /// shard policies when they differ.
    pub fn wake(&mut self, id: TaskId) -> (usize, usize) {
        self.readmit(id, true)
    }

    /// Re-admits a blocked task on its home shard unconditionally
    /// (shutdown path, where migration would be pointless churn).
    pub fn wake_in_place(&mut self, id: TaskId) -> usize {
        self.readmit(id, false).1
    }

    fn readmit(&mut self, id: TaskId, allow_migration: bool) -> (usize, usize) {
        let (home, w, pinned) = {
            let t = self.tasks.get(&id).expect("waking unknown task");
            debug_assert!(!t.runnable, "waking runnable task {id}");
            (t.shard, t.weight, t.tenant.is_some())
        };
        // A tenant task never leaves its tenant's home shard.
        let allow_migration = allow_migration && !pinned;
        self.feas.insert(id, w);
        self.apply_changes();
        let phi = self.feas.phi(id, w);
        let least = self.least_loaded();
        let hysteresis = phi / self.shard_cpus[home] as i64;
        let target = if allow_migration
            && least != home
            && self.load(home) - self.load(least) > hysteresis
        {
            least
        } else {
            home
        };
        self.shard_phi[target] += phi;
        let t = self.tasks.get_mut(&id).expect("waking unknown task");
        t.runnable = true;
        t.phi = phi;
        t.shard = target;
        self.publish();
        (home, target)
    }

    /// Updates a task's weight, readjusting and republishing if it is
    /// runnable.
    pub fn set_weight(&mut self, id: TaskId, w: Weight) {
        let t = self.tasks.get_mut(&id).expect("re-weighting unknown task");
        let old = t.weight;
        if old == w {
            return;
        }
        t.weight = w;
        if t.runnable {
            self.feas.set_weight(id, old, w);
            // `apply_changes` may itself re-account this task (its
            // clamp state can change with its weight), so the final
            // delta is taken against the currently accounted φ.
            self.apply_changes();
            let phi = self.feas.phi(id, w);
            let t = self.tasks.get_mut(&id).expect("just seen");
            let (shard, accounted) = (t.shard, t.phi);
            t.phi = phi;
            self.shard_phi[shard] += phi - accounted;
            self.publish();
        }
    }

    /// Forgets a task entirely (exit or detach). A tenant whose last
    /// task leaves loses its anchor and re-places on its next arrival.
    pub fn remove(&mut self, id: TaskId) {
        let t = self.tasks.remove(&id).expect("removing unknown task");
        if let Some(tenant) = t.tenant {
            let count = self
                .tenant_home
                .get_mut(&tenant)
                .expect("tenant anchor missing");
            count.1 -= 1;
            if count.1 == 0 {
                self.tenant_home.remove(&tenant);
            }
        }
        if t.runnable {
            self.shard_phi[t.shard] -= t.phi;
            self.feas.remove(id, t.weight);
            self.apply_changes();
            self.publish();
        }
    }

    /// Accounts a ready task's migration from its current shard to
    /// `to`. The caller performs the policy-level detach/attach.
    pub fn migrate(&mut self, id: TaskId, to: usize) {
        let t = self.tasks.get_mut(&id).expect("migrating unknown task");
        debug_assert!(t.runnable, "migrating non-runnable task {id}");
        debug_assert!(t.tenant.is_none(), "migrating would split tenant {id}");
        let (from, phi) = (t.shard, t.phi);
        t.shard = to;
        self.shard_phi[from] -= phi;
        self.shard_phi[to] += phi;
    }

    /// True if moving `id` from its shard to `to` strictly reduces the
    /// larger of the two per-CPU loads — the greedy rebalance
    /// condition. Stopping when it fails leaves every pair of shards
    /// within one task weight per CPU of each other.
    pub fn steal_gain(&self, id: TaskId, to: usize) -> bool {
        let t = &self.tasks[&id];
        let from = t.shard;
        if from == to {
            return false;
        }
        let before = self.load(from).max(self.load(to));
        let after = ((self.shard_phi[from] - t.phi) / self.shard_cpus[from] as i64)
            .max((self.shard_phi[to] + t.phi) / self.shard_cpus[to] as i64);
        after < before
    }

    /// The (most-loaded, least-loaded) shard pair when they differ —
    /// the source/target of the next greedy rebalance move.
    pub fn imbalanced_pair(&self) -> Option<(usize, usize)> {
        let (from, to) = (self.most_loaded(), self.least_loaded());
        (from != to).then_some((from, to))
    }

    /// Decides one greedy rebalance move, shared by both substrates
    /// (the single-threaded [`ShardedScheduler`] and the rt executor's
    /// lock-split rebalance pass) so the rebalance invariant has one
    /// implementation. `donor_spare(s)` reports whether shard `s` has
    /// more runnable tasks than processors (never drain a shard below
    /// its own CPU count); `candidate(s)` nominates its
    /// highest-surplus ready task. Returns the approved
    /// `(task, from, to)`, or `None` when the shards are balanced, the
    /// donor cannot spare a task, or the move would not strictly
    /// reduce the worse per-CPU load.
    pub fn plan_move(
        &self,
        donor_spare: impl Fn(usize) -> bool,
        candidate: impl Fn(usize) -> Option<TaskId>,
    ) -> Option<(TaskId, usize, usize)> {
        let (from, to) = self.imbalanced_pair()?;
        if !donor_spare(from) {
            return None;
        }
        let id = candidate(from)?;
        // Never split a tenant: its group is whole on its home shard.
        if self.tasks.get(&id).is_some_and(|t| t.tenant.is_some()) {
            return None;
        }
        self.steal_gain(id, to).then_some((id, from, to))
    }

    /// Total tasks tracked (runnable + blocked).
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if no task is tracked.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Asserts internal consistency: load sums match the per-task
    /// records, and the global readjustment tracks exactly the runnable
    /// tasks.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut sums = vec![Fixed::ZERO; self.shard_phi.len()];
        let mut runnable = 0usize;
        let mut tenant_counts: HashMap<TenantId, usize> = HashMap::new();
        for (id, t) in &self.tasks {
            if t.runnable {
                runnable += 1;
                sums[t.shard] += t.phi;
                assert_eq!(
                    t.phi,
                    self.feas.phi(*id, t.weight),
                    "stale global φ for {id}"
                );
            }
            if let Some(tenant) = t.tenant {
                *tenant_counts.entry(tenant).or_default() += 1;
                assert_eq!(
                    self.tenant_home.get(&tenant).map(|&(s, _)| s),
                    Some(t.shard),
                    "task {id} strayed from tenant {tenant}'s home shard"
                );
            }
        }
        assert_eq!(runnable, self.feas.len(), "readjustment tracks runnable");
        assert_eq!(sums, self.shard_phi, "shard load sums out of sync");
        assert_eq!(
            tenant_counts,
            self.tenant_home
                .iter()
                .map(|(&t, &(_, n))| (t, n))
                .collect(),
            "tenant anchors track live tasks"
        );
    }
}

/// A machine-wide scheduler built from per-shard instances of any
/// registered policy — the single-threaded form (one object behind the
/// [`Scheduler`] trait) that the simulator and `Experiment` drive; the
/// rt executor uses [`ShardedScheduler::into_parts`] to put each shard
/// behind its own lock instead.
pub struct ShardedScheduler {
    layout: ShardLayout,
    shards: Vec<Box<dyn Scheduler>>,
    bal: Balancer,
    rebalance_every: Duration,
    next_rebalance: Time,
    name: &'static str,
    steals: u64,
    rebalances: u64,
    wake_migrations: u64,
}

impl ShardedScheduler {
    /// The default rebalance interval.
    pub const DEFAULT_REBALANCE: Duration = Duration::from_millis(50);

    /// Builds `shards` instances of `inner` (which must not itself be
    /// sharded) over a `cpus`-processor machine. SFS shards subscribe
    /// to the balancer's feasibility snapshot; other policies run with
    /// placement balancing only.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero or `inner` is itself sharded.
    pub fn build(
        inner: &PolicySpec,
        shards: u32,
        cpus: u32,
        rebalance_every: Option<Duration>,
    ) -> ShardedScheduler {
        assert_eq!(inner.shard_count(), 1, "inner policy must be unsharded");
        let layout = ShardLayout::new(cpus, shards);
        let cell = Arc::new(SnapshotCell::new());
        let shards: Vec<Box<dyn Scheduler>> = (0..layout.shards())
            .map(|s| inner.build_with_phi_snapshot(layout.shard_cpus(s), &cell))
            .collect();
        let bal = Balancer::new(&layout, cell);
        let name = match shards[0].name() {
            "SFS" => "SFS(sharded)",
            "SFS(heuristic)" => "SFS(heuristic,sharded)",
            "SFS(hier)" => "SFS(hier,sharded)",
            "SFQ" => "SFQ(sharded)",
            "SFQ+readjust" => "SFQ+readjust(sharded)",
            "WFQ" => "WFQ(sharded)",
            "WFQ+readjust" => "WFQ+readjust(sharded)",
            "Stride" => "Stride(sharded)",
            "Stride+readjust" => "Stride+readjust(sharded)",
            "BVT" => "BVT(sharded)",
            "BVT+readjust" => "BVT+readjust(sharded)",
            "TimeSharing" => "TimeSharing(sharded)",
            "RoundRobin" => "RoundRobin(sharded)",
            _ => "sharded",
        };
        ShardedScheduler {
            layout,
            shards,
            bal,
            rebalance_every: rebalance_every.unwrap_or(Self::DEFAULT_REBALANCE),
            next_rebalance: Time::ZERO + rebalance_every.unwrap_or(Self::DEFAULT_REBALANCE),
            name,
            steals: 0,
            rebalances: 0,
            wake_migrations: 0,
        }
    }

    /// Decomposes into the shard layout, the per-shard policies and the
    /// global balancer, for substrates that lock shards independently.
    pub fn into_parts(self) -> (ShardLayout, Vec<Box<dyn Scheduler>>, Balancer) {
        (self.layout, self.shards, self.bal)
    }

    /// The shard layout.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// Read access to one shard's policy (tests and tracing).
    pub fn shard(&self, s: usize) -> &dyn Scheduler {
        self.shards[s].as_ref()
    }

    fn home(&self, id: TaskId) -> usize {
        self.bal.shard_of(id).expect("task on no shard")
    }

    /// Moves a ready task between shard policies. The task re-arrives
    /// on the target shard at its virtual time — migration carries no
    /// tag credit or debt, exactly like the no-sleeper-credit rule at
    /// wakeup (§2.3). Substrate-side service accounting is unaffected.
    fn migrate_ready(&mut self, id: TaskId, from: usize, to: usize, now: Time) {
        let w = self.shards[from].weight_of(id).expect("migrating stranger");
        self.shards[from].detach(id, now);
        self.bal.migrate(id, to);
        self.shards[to].attach(id, w, now);
    }

    /// The periodic rebalance pass: migrate highest-surplus ready tasks
    /// from overloaded to underloaded shards while each move strictly
    /// reduces the worse per-CPU load.
    fn maybe_rebalance(&mut self, now: Time) {
        if now < self.next_rebalance {
            return;
        }
        self.next_rebalance = now + self.rebalance_every;
        for _ in 0..self.layout.shards() * 2 {
            let (shards, layout) = (&self.shards, &self.layout);
            let Some((id, from, to)) = self.bal.plan_move(
                |s| shards[s].nr_runnable() > layout.shard_cpus(s) as usize,
                |s| shards[s].steal_candidate(),
            ) else {
                break;
            };
            self.migrate_ready(id, from, to, now);
            self.rebalances += 1;
        }
    }

    /// Steal-on-idle: called when shard `s` has no ready task. Takes
    /// the highest-surplus ready task from the most loaded shard that
    /// has more runnable tasks than processors.
    fn steal_for(&mut self, s: usize, now: Time) -> bool {
        let donor = (0..self.shards.len())
            .filter(|&o| {
                o != s && self.shards[o].nr_runnable() > self.layout.shard_cpus(o) as usize
            })
            .max_by_key(|&o| (self.bal.load(o), std::cmp::Reverse(o)));
        let Some(donor) = donor else { return false };
        let Some(id) = self.shards[donor].steal_candidate() else {
            return false;
        };
        self.migrate_ready(id, donor, s, now);
        self.steals += 1;
        true
    }
}

impl Scheduler for ShardedScheduler {
    fn name(&self) -> &'static str {
        self.name
    }

    fn cpus(&self) -> u32 {
        self.layout.cpus()
    }

    fn attach(&mut self, id: TaskId, w: Weight, now: Time) {
        let s = self.bal.attach(id, w);
        self.shards[s].attach(id, w, now);
    }

    fn bind_tenant(&self, group: &str) -> Option<TenantId> {
        // All shards are built from the same spec, so any shard's
        // group table answers.
        self.shards[0].bind_tenant(group)
    }

    fn attach_tenant(&mut self, id: TaskId, w: Weight, tenant: Option<TenantId>, now: Time) {
        let s = self.bal.attach_tenant(id, w, tenant);
        self.shards[s].attach_tenant(id, w, tenant, now);
    }

    fn tenant_of(&self, id: TaskId) -> Option<TenantId> {
        self.bal.tenant_of(id)
    }

    fn detach(&mut self, id: TaskId, now: Time) {
        let s = self.home(id);
        self.shards[s].detach(id, now);
        self.bal.remove(id);
    }

    fn set_weight(&mut self, id: TaskId, w: Weight, now: Time) {
        self.bal.set_weight(id, w);
        let s = self.home(id);
        self.shards[s].set_weight(id, w, now);
    }

    fn weight_of(&self, id: TaskId) -> Option<Weight> {
        self.shards[self.bal.shard_of(id)?].weight_of(id)
    }

    fn adjusted_weight_of(&self, id: TaskId) -> Option<Fixed> {
        self.shards[self.bal.shard_of(id)?].adjusted_weight_of(id)
    }

    fn wake(&mut self, id: TaskId, now: Time) {
        let (home, target) = self.bal.wake(id);
        if home == target {
            self.shards[home].wake(id, now);
        } else {
            // Overloaded home shard: the waker re-arrives on the target
            // shard instead (fresh tags there, like any migration).
            self.wake_migrations += 1;
            let w = self.shards[home].weight_of(id).expect("waking stranger");
            self.shards[home].detach(id, now);
            self.shards[target].attach(id, w, now);
        }
    }

    fn pick_next(&mut self, cpu: CpuId, now: Time) -> Option<TaskId> {
        self.maybe_rebalance(now);
        let s = self.layout.shard_of(cpu);
        let local = self.layout.local(cpu);
        if let Some(id) = self.shards[s].pick_next(local, now) {
            return Some(id);
        }
        // Work conservation across shards: try to steal before idling.
        if self.steal_for(s, now) {
            return self.shards[s].pick_next(local, now);
        }
        None
    }

    fn put_prev(&mut self, id: TaskId, ran: Duration, reason: SwitchReason, now: Time) {
        let s = self.home(id);
        self.shards[s].put_prev(id, ran, reason, now);
        match reason {
            SwitchReason::Blocked => self.bal.block(id),
            SwitchReason::Exited => self.bal.remove(id),
            SwitchReason::Preempted | SwitchReason::Yielded => {}
        }
    }

    fn time_slice(&self, id: TaskId) -> Duration {
        match self.bal.shard_of(id) {
            Some(s) => self.shards[s].time_slice(id),
            None => self.shards[0].time_slice(id),
        }
    }

    fn wake_preempts(
        &self,
        woken: TaskId,
        running: TaskId,
        ran_so_far: Duration,
        now: Time,
    ) -> bool {
        // Tags are only comparable within one shard; cross-shard
        // wakeups rely on placement + stealing instead of preemption.
        match (self.bal.shard_of(woken), self.bal.shard_of(running)) {
            (Some(a), Some(b)) if a == b => {
                self.shards[a].wake_preempts(woken, running, ran_so_far, now)
            }
            _ => false,
        }
    }

    fn charged_surplus(&self, id: TaskId, ran_so_far: Duration, now: Time) -> Option<Fixed> {
        self.shards[self.bal.shard_of(id)?].charged_surplus(id, ran_so_far, now)
    }

    fn nr_runnable(&self) -> usize {
        self.shards.iter().map(|s| s.nr_runnable()).sum()
    }

    fn nr_tasks(&self) -> usize {
        self.shards.iter().map(|s| s.nr_tasks()).sum()
    }

    fn stats(&self) -> SchedStats {
        let mut agg = self
            .shards
            .iter()
            .map(|s| s.stats())
            .fold(SchedStats::default(), SchedStats::merged);
        agg.shard_steals = self.steals;
        agg.shard_rebalances = self.rebalances;
        agg.shard_wake_migrations = self.wake_migrations;
        agg
    }

    fn check_invariants(&self) {
        for s in &self.shards {
            s.check_invariants();
        }
        self.bal.check_invariants();
        let total: usize = self.shards.iter().map(|s| s.nr_tasks()).sum();
        assert_eq!(total, self.bal.len(), "task partition out of sync");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::weight;

    fn fx(v: i64) -> Fixed {
        Fixed::from_int(v)
    }

    #[test]
    fn layout_partitions_cpus_contiguously() {
        let l = ShardLayout::new(8, 3);
        assert_eq!(l.shards(), 3);
        assert_eq!(l.cpus(), 8);
        assert_eq!(
            (0..3).map(|s| l.shard_cpus(s)).collect::<Vec<_>>(),
            vec![3, 3, 2]
        );
        assert_eq!(l.shard_of(CpuId(0)), 0);
        assert_eq!(l.shard_of(CpuId(2)), 0);
        assert_eq!(l.shard_of(CpuId(3)), 1);
        assert_eq!(l.shard_of(CpuId(7)), 2);
        assert_eq!(l.local(CpuId(7)), CpuId(1));
        assert_eq!(l.local(CpuId(3)), CpuId(0));
        // Over-sharding clamps to one CPU per shard.
        let l = ShardLayout::new(2, 9);
        assert_eq!(l.shards(), 2);
    }

    #[test]
    fn snapshot_cell_publishes_only_changes() {
        let cell = SnapshotCell::new();
        assert_eq!(cell.load().epoch, 0);
        assert!(cell.load_if_newer(0).is_none());
        cell.publish(Some(fx(2)), &[TaskId(7)]);
        let s = cell.load_if_newer(0).expect("new epoch");
        assert_eq!(s.epoch, 1);
        assert_eq!(s.cap_of(TaskId(7)), Some(fx(2)));
        assert_eq!(s.cap_of(TaskId(8)), None);
        // Identical republication is a no-op.
        cell.publish(Some(fx(2)), &[TaskId(7)]);
        assert!(cell.load_if_newer(1).is_none());
        cell.publish(None, &[]);
        assert_eq!(cell.load().epoch, 2);
    }

    /// Regression pin for publish-then-read visibility: the slot
    /// content is written *before* the epoch counter is released, so a
    /// reader whose `load_if_newer` fires must always observe content
    /// at least as new as the epoch that triggered it, and epochs must
    /// never run backwards per reader.
    #[test]
    fn snapshot_cell_publish_then_read_visibility() {
        use std::sync::atomic::AtomicBool;

        let cell = Arc::new(SnapshotCell::new());
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        if let Some(snap) = cell.load_if_newer(seen) {
                            assert!(
                                snap.epoch > seen,
                                "epoch regressed: {} after {}",
                                snap.epoch,
                                seen
                            );
                            // The publisher keeps |clamped| == epoch % 2 + 1,
                            // so stale content under a fresh epoch is caught.
                            assert_eq!(
                                snap.clamped.len() as u64,
                                snap.epoch % 2 + 1,
                                "content does not match its own epoch"
                            );
                            seen = snap.epoch;
                        }
                    }
                    seen
                })
            })
            .collect();
        // Epoch k carries k % 2 + 1 clamped ids; consecutive clamp
        // sets always differ, so every publish bumps the epoch.
        for k in 1..=2_000u64 {
            if k % 2 == 0 {
                cell.publish(Some(fx(1)), &[TaskId(1)]);
            } else {
                cell.publish(Some(fx(1)), &[TaskId(1), TaskId(2)]);
            }
        }
        stop.store(true, Ordering::Release);
        for r in readers {
            r.join().expect("reader panicked");
        }
        assert_eq!(cell.load().epoch, 2_000);
    }

    #[test]
    fn balancer_places_on_least_loaded_shard() {
        let layout = ShardLayout::new(2, 2);
        let mut b = Balancer::new(&layout, Arc::new(SnapshotCell::new()));
        // Equal weights alternate between the shards (ties → shard 0).
        for i in 0..6u64 {
            assert_eq!(b.attach(TaskId(i), weight(1)), (i % 2) as usize, "T{i}");
        }
        // A heavy arrival joins the tied shard 0 and is globally
        // clamped: 10·2 > 16, so its φ is the cap (16 − 10)/1 = 6.
        assert_eq!(b.attach(TaskId(6), weight(10)), 0);
        assert_eq!(b.load(0), fx(3 + 6));
        // Its clamped φ, not its raw weight, loads shard 0; the next
        // light arrival still sees shard 1 as the lighter one.
        assert_eq!(b.attach(TaskId(7), weight(1)), 1);
        b.check_invariants();
    }

    #[test]
    fn balancer_wake_is_sticky_until_overloaded() {
        let layout = ShardLayout::new(2, 2);
        let mut b = Balancer::new(&layout, Arc::new(SnapshotCell::new()));
        for i in 1..=4u64 {
            b.attach(TaskId(i), weight(1));
        }
        b.block(TaskId(2));
        // Loads 2 vs 1: the gap does not exceed the waker's own
        // contribution, so it stays home (shard 1).
        assert_eq!(b.wake(TaskId(2)), (1, 1));
        b.block(TaskId(2));
        // A heavy arrival lands on the lighter shard 1 (clamped to
        // φ = 3); waking the blocked shard-1 task now sees loads 5 vs 2
        // and migrates it to shard 0.
        b.attach(TaskId(5), weight(5));
        assert_eq!(b.shard_of(TaskId(5)), Some(1));
        assert_eq!(b.wake(TaskId(2)), (1, 0));
        b.check_invariants();
    }

    #[test]
    fn balancer_publishes_global_clamps() {
        // 1:10 on a 2-CPU machine clamps the heavy task globally even
        // though each 1-CPU shard is locally feasible.
        let layout = ShardLayout::new(2, 2);
        let cell = Arc::new(SnapshotCell::new());
        let mut b = Balancer::new(&layout, Arc::clone(&cell));
        b.attach(TaskId(1), weight(1));
        b.attach(TaskId(2), weight(10));
        let snap = cell.load();
        assert_eq!(snap.cap_of(TaskId(2)), Some(fx(1)));
        assert_eq!(snap.cap_of(TaskId(1)), None);
        // The load sums use the clamped φ, not the raw weight.
        assert_eq!(b.load(0) + b.load(1), fx(2));
        b.check_invariants();
    }

    #[test]
    fn steal_gain_stops_within_one_weight_per_cpu() {
        let layout = ShardLayout::new(2, 2);
        let mut b = Balancer::new(&layout, Arc::new(SnapshotCell::new()));
        b.attach(TaskId(1), weight(1)); // shard 0
        b.attach(TaskId(2), weight(1)); // shard 1
        b.attach(TaskId(3), weight(1)); // shard 0 (tie)
                                        // Moving the tie-breaker over cannot reduce the larger load.
        assert!(!b.steal_gain(TaskId(3), 1));
        // Overload shard 1 (arrivals alternate toward the lighter
        // shard), ending at per-CPU loads 7 vs 10.
        b.attach(TaskId(4), weight(5)); // shard 1
        b.attach(TaskId(5), weight(5)); // shard 0
        b.attach(TaskId(6), weight(4)); // shard 1
        assert_eq!(b.shard_of(TaskId(6)), Some(1));
        assert_eq!((b.load(0), b.load(1)), (fx(7), fx(10)));
        // Shedding a light task strictly helps; shedding the big one
        // would overshoot and is refused.
        assert!(b.steal_gain(TaskId(2), 0));
        assert!(!b.steal_gain(TaskId(6), 0), "a big task overshoots");
        b.check_invariants();
    }

    #[test]
    fn sharded_sfs_is_work_conserving_via_stealing() {
        let spec: PolicySpec = "sfs:quantum=1ms".parse().unwrap();
        let mut s = ShardedScheduler::build(&spec, 2, 2, None);
        let now = Time::ZERO;
        // Both tasks land on different shards; block one, then make its
        // shard's CPU pick: it must steal the other shard's ready task
        // only if that shard can spare one (it cannot here), so the CPU
        // idles — then add a third task and the idle CPU steals it.
        s.attach(TaskId(1), weight(1), now);
        s.attach(TaskId(2), weight(1), now);
        assert_eq!(s.nr_runnable(), 2);
        let a = s.pick_next(CpuId(0), now).unwrap();
        let b = s.pick_next(CpuId(1), now).unwrap();
        assert_ne!(a, b);
        // CPU 0's task blocks; shard 0 is now empty.
        s.put_prev(a, Duration::from_millis(1), SwitchReason::Blocked, now);
        assert!(s.pick_next(CpuId(0), now).is_none(), "nothing to steal");
        // A new arrival goes to the empty shard 0 by load...
        s.attach(TaskId(3), weight(1), now);
        let c = s.pick_next(CpuId(0), now).unwrap();
        assert_eq!(c, TaskId(3));
        // ...and a fourth, landing on whichever shard, is stolen by an
        // idle CPU of the other shard if needed.
        s.attach(TaskId(4), weight(1), now);
        s.put_prev(b, Duration::from_millis(1), SwitchReason::Preempted, now);
        let d = s.pick_next(CpuId(1), now).unwrap();
        assert!(d == TaskId(4) || d == b, "cpu1 must not idle");
        s.check_invariants();
    }

    #[test]
    fn sharded_shares_track_global_weights() {
        // 4 CPUs, 2 shards, weights 2:1:1:1:1:2 — lockstep quanta. The
        // sharded scheduler's service ratios must approximate the
        // global 2:1.
        let spec: PolicySpec = "sfs:quantum=1ms".parse().unwrap();
        let mut s = ShardedScheduler::build(&spec, 2, 4, Some(Duration::from_millis(4)));
        let weights = [2u64, 1, 1, 1, 1, 2];
        let mut now = Time::ZERO;
        let mut service = vec![0u64; weights.len()];
        for (i, w) in weights.iter().enumerate() {
            s.attach(TaskId(i as u64), weight(*w), now);
        }
        let q = Duration::from_millis(1);
        let mut running: Vec<Option<TaskId>> = vec![None; 4];
        for _ in 0..4000 {
            for (c, slot) in running.iter_mut().enumerate() {
                if slot.is_none() {
                    *slot = s.pick_next(CpuId(c as u32), now);
                }
            }
            now += q;
            for slot in &mut running {
                if let Some(id) = slot.take() {
                    service[id.0 as usize] += 1;
                    s.put_prev(id, q, SwitchReason::Preempted, now);
                }
            }
        }
        s.check_invariants();
        let total: u64 = service.iter().sum();
        assert_eq!(total, 16_000, "work conservation");
        // Weights sum to 8 over 4 CPUs: weight-2 tasks deserve 1/4 of
        // the machine each, weight-1 tasks 1/8.
        for (i, w) in weights.iter().enumerate() {
            let share = service[i] as f64 / total as f64;
            let ideal = *w as f64 / 8.0;
            assert!(
                (share - ideal).abs() < 0.04,
                "T{i} share {share:.3}, ideal {ideal:.3} (service {service:?})"
            );
        }
        let st = s.stats();
        assert!(st.picks > 0);
    }

    #[test]
    fn sharded_clamp_matches_global_readjustment() {
        // Example 1 sharded: 1:10 on 2 CPUs split into 2 shards. Each
        // 1-CPU shard is locally feasible, so only the published global
        // snapshot clamps the heavy task — both must end up ~1:1.
        let spec: PolicySpec = "sfs:quantum=1ms".parse().unwrap();
        let mut s = ShardedScheduler::build(&spec, 2, 2, None);
        let mut now = Time::ZERO;
        s.attach(TaskId(1), weight(1), now);
        s.attach(TaskId(2), weight(10), now);
        assert_eq!(s.adjusted_weight_of(TaskId(2)), Some(fx(1)), "global cap");
        let q = Duration::from_millis(1);
        let mut service = [0u64; 2];
        for _ in 0..500 {
            for c in 0..2u32 {
                if let Some(id) = s.pick_next(CpuId(c), now) {
                    service[id.0 as usize - 1] += 1;
                    now += q;
                    s.put_prev(id, q, SwitchReason::Preempted, now);
                }
            }
        }
        s.check_invariants();
        let ratio = service[1] as f64 / service[0] as f64;
        assert!(
            (0.9..1.1).contains(&ratio),
            "clamped ratio {ratio:.2} (service {service:?})"
        );
    }

    #[test]
    fn tenants_anchor_to_one_shard_and_wake_in_place() {
        let layout = ShardLayout::new(2, 2);
        let mut b = Balancer::new(&layout, Arc::new(SnapshotCell::new()));
        let ta = TenantId(0);
        // The tenant's first task anchors it (shard 0 on the empty
        // tie); every later task joins it there even though plain
        // placement would alternate.
        assert_eq!(b.attach_tenant(TaskId(1), weight(1), Some(ta)), 0);
        assert_eq!(b.attach_tenant(TaskId(2), weight(1), Some(ta)), 0);
        assert_eq!(b.attach_tenant(TaskId(3), weight(1), Some(ta)), 0);
        assert_eq!(b.tenant_shard(ta), Some(0));
        assert_eq!(b.tenant_of(TaskId(2)), Some(ta));
        // Even with the home shard far heavier, a tenant task wakes in
        // place — migration would split the group.
        b.attach(TaskId(9), weight(1)); // shard 1
        b.block(TaskId(1));
        assert_eq!(b.wake(TaskId(1)), (0, 0), "tenant task stays home");
        // A tenant candidate is refused by the rebalance planner.
        assert_eq!(b.plan_move(|_| true, |_| Some(TaskId(2))), None);
        b.check_invariants();
        // The anchor drops with the last task and re-places on the
        // (now heavier-0) machine: the next arrival anchors on shard 1.
        for id in [1u64, 2, 3] {
            b.remove(TaskId(id));
        }
        assert_eq!(b.tenant_shard(ta), None);
        assert_eq!(b.attach_tenant(TaskId(4), weight(1), Some(ta)), 0);
        b.check_invariants();
    }

    #[test]
    fn sharded_hier_never_splits_a_tenant() {
        let spec: PolicySpec = "sfs:groups(a=sfs,b=sfs),shards=2".parse().unwrap();
        let inner = spec.without_sharding();
        let mut s = ShardedScheduler::build(&inner, 2, 4, Some(Duration::from_millis(2)));
        assert_eq!(s.name(), "SFS(hier,sharded)");
        let ta = s.bind_tenant("a").unwrap();
        let tb = s.bind_tenant("b").unwrap();
        assert_eq!(s.bind_tenant("zzz"), None);
        let mut now = Time::ZERO;
        for i in 0..4u64 {
            s.attach_tenant(TaskId(i), weight(1), Some(ta), now);
        }
        for i in 4..8u64 {
            s.attach_tenant(TaskId(i), weight(1), Some(tb), now);
        }
        assert_eq!(s.tenant_of(TaskId(0)), Some(ta));
        assert_eq!(s.tenant_of(TaskId(7)), Some(tb));
        let q = Duration::from_millis(1);
        let mut running: Vec<Option<TaskId>> = vec![None; 4];
        for _ in 0..200 {
            for (c, slot) in running.iter_mut().enumerate() {
                if slot.is_none() {
                    *slot = s.pick_next(CpuId(c as u32), now);
                }
            }
            now += q;
            for slot in &mut running {
                if let Some(id) = slot.take() {
                    s.put_prev(id, q, SwitchReason::Preempted, now);
                }
            }
        }
        s.check_invariants();
        // Every tenant's tasks stayed together on one shard.
        let home_a = s.bal.shard_of(TaskId(0)).unwrap();
        for i in 0..4u64 {
            assert_eq!(s.bal.shard_of(TaskId(i)), Some(home_a), "tenant a split");
        }
        let home_b = s.bal.shard_of(TaskId(4)).unwrap();
        for i in 4..8u64 {
            assert_eq!(s.bal.shard_of(TaskId(i)), Some(home_b), "tenant b split");
        }
    }

    #[test]
    fn rebalance_moves_surplus_from_overloaded_shard() {
        let spec: PolicySpec = "sfs:quantum=1ms".parse().unwrap();
        let mut s = ShardedScheduler::build(&spec, 2, 4, Some(Duration::from_millis(2)));
        let mut now = Time::ZERO;
        // Fill shard 0 and shard 1 evenly, then block everything on
        // shard 1 except one task and pile wakes onto shard 0 — the
        // periodic pass must shed load.
        for i in 0..8u64 {
            s.attach(TaskId(i), weight(1), now);
        }
        let q = Duration::from_millis(1);
        let mut running: Vec<Option<TaskId>> = vec![None; 4];
        for _ in 0..200 {
            for (c, slot) in running.iter_mut().enumerate() {
                if slot.is_none() {
                    *slot = s.pick_next(CpuId(c as u32), now);
                }
            }
            now += q;
            for slot in &mut running {
                if let Some(id) = slot.take() {
                    s.put_prev(id, q, SwitchReason::Preempted, now);
                }
            }
        }
        s.check_invariants();
        // Balanced load: no steals needed beyond possibly startup.
        let st = s.stats();
        assert!(st.picks > 700, "both shards kept busy: {}", st.picks);
    }
}
