//! Deterministic fault injection plans.
//!
//! A [`FaultPlan`] is a seeded, fully explicit script of faults —
//! task panics, CPU stalls and slowdowns, timer jitter, dropped wakes
//! — that a substrate injects at fixed instants. Because the plan is
//! plain data (no RNG state at injection time, no wall clock), a chaos
//! run is exactly reproducible: the same plan against the same
//! scenario yields the same event sequence, so recovery behavior can
//! be captured and replayed through `sfs-trace` like any other run.
//!
//! Plans travel inside a `Scenario`, serialize through the capture
//! format via the `Display`/`FromStr` round-trip, and can be generated
//! pseudo-randomly from a seed with [`FaultPlan::generate`] (an
//! inlined splitmix64 — the vendored-deps policy rules out `rand`).
//!
//! The textual form is `seed=S;fault;fault;...` with each fault
//! `kind@time` plus `key=value` operands:
//!
//! ```text
//! seed=42;panic@500ms,task=3;stall@1s,cpu=0,dur=20ms;jitter@2s,cpu=1,dur=5ms
//! ```
//!
//! `task=` identifies a task by *arrival order* (0-based spawn index),
//! which both substrates assign identically, so one plan means the
//! same thing in sim and rt.

use core::fmt;
use std::str::FromStr;

use crate::time::{Duration, Time};

/// What goes wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The task with this 0-based spawn index panics mid-run. The
    /// substrate must reap it: release its weight, clean scheduler
    /// state, and re-check invariants.
    Panic {
        /// 0-based spawn (arrival-order) index of the victim.
        task: u64,
    },
    /// The CPU executes nothing for `dur` (a hard stall: the running
    /// task makes no progress and consumes no checkpoints), modelling
    /// an SMI, a page-fault storm, or a preempted vCPU.
    Stall {
        /// Which CPU stalls.
        cpu: u32,
        /// How long it stalls.
        dur: Duration,
    },
    /// The CPU's next timer tick fires `dur` late, modelling timer
    /// coalescing or interrupt jitter; the running task keeps
    /// executing (and over-runs its quantum by up to `dur`).
    Jitter {
        /// Which CPU's timer jitters.
        cpu: u32,
        /// How late the tick fires.
        dur: Duration,
    },
    /// The next wake-up of the task with this spawn index is delivered
    /// `dur` late, modelling a dropped-then-retried shard mailbox
    /// message. Sim-only: the rt substrate has no lossy mailbox to
    /// model, so it ignores these.
    WakeDrop {
        /// 0-based spawn index of the task whose wake is delayed.
        task: u64,
        /// Extra delay before the wake is delivered.
        dur: Duration,
    },
}

impl FaultKind {
    /// The textual tag used by `Display`/`FromStr`.
    fn tag(&self) -> &'static str {
        match self {
            FaultKind::Panic { .. } => "panic",
            FaultKind::Stall { .. } => "stall",
            FaultKind::Jitter { .. } => "jitter",
            FaultKind::WakeDrop { .. } => "wakedrop",
        }
    }
}

/// One scheduled fault: a [`FaultKind`] at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultEvent {
    /// When the fault fires (experiment time).
    pub at: Time,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, serializable script of faults; see the
/// [module docs](self) for the format and semantics.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FaultPlan {
    /// The seed the plan was generated from (0 for hand-written
    /// plans); carried so captures record provenance.
    pub seed: u64,
    /// The faults, in the order they were scheduled. Substrates sort
    /// by `at` when injecting; ties keep this order.
    pub faults: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds one fault.
    pub fn with(mut self, at: Time, kind: FaultKind) -> FaultPlan {
        self.faults.push(FaultEvent { at, kind });
        self
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The faults sorted by firing time (stable, so same-instant
    /// faults keep their scheduled order).
    pub fn sorted(&self) -> Vec<FaultEvent> {
        let mut v = self.faults.clone();
        v.sort_by_key(|f| f.at);
        v
    }

    /// Generates a pseudo-random plan: `count` faults drawn uniformly
    /// over `(0, horizon)`, targeting spawn indices `< tasks` and CPUs
    /// `< cpus`, with stall/jitter/delay durations of 1–20ms. Fully
    /// determined by `seed`.
    pub fn generate(seed: u64, horizon: Time, tasks: u64, cpus: u32, count: usize) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan {
            seed,
            faults: Vec::with_capacity(count),
        };
        let tasks = tasks.max(1);
        let cpus = cpus.max(1);
        let span = horizon.as_nanos().max(2);
        for _ in 0..count {
            let at = Time(1 + rng.below(span - 1));
            let dur = Duration::from_micros(1_000 + rng.below(19_001));
            let kind = match rng.below(4) {
                0 => FaultKind::Panic {
                    task: rng.below(tasks),
                },
                1 => FaultKind::Stall {
                    cpu: rng.below(u64::from(cpus)) as u32,
                    dur,
                },
                2 => FaultKind::Jitter {
                    cpu: rng.below(u64::from(cpus)) as u32,
                    dur,
                },
                _ => FaultKind::WakeDrop {
                    task: rng.below(tasks),
                    dur,
                },
            };
            plan.faults.push(FaultEvent { at, kind });
        }
        plan
    }
}

/// splitmix64 (Steele, Lea, Flood 2014) — tiny, seedable, and good
/// enough for fault placement; inlined to honor the no-new-deps rule.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-enough draw in `[0, n)`; modulo bias is irrelevant for
    /// fault placement.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Formats a duration in the largest unit that divides it exactly, so
/// the plan's `Display` round-trips bit-for-bit.
fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns == 0 {
        "0ns".into()
    } else if ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

fn parse_dur(s: &str) -> Result<Duration, ParseFaultError> {
    let err = || ParseFaultError(format!("bad duration {s:?} (want e.g. 20ms, 1s, 500us)"));
    let (digits, mul) = if let Some(d) = s.strip_suffix("ns") {
        (d, 1)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        return Err(err());
    };
    let n: u64 = digits.parse().map_err(|_| err())?;
    n.checked_mul(mul).map(Duration).ok_or_else(err)
}

/// Error from parsing a [`FaultPlan`]'s textual form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFaultError(pub String);

impl fmt::Display for ParseFaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault plan: {}", self.0)
    }
}

impl std::error::Error for ParseFaultError {}

impl fmt::Display for FaultPlan {
    /// `seed=S;kind@time,key=value,...;...` — exactly inverts
    /// [`FromStr`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for ev in &self.faults {
            write!(
                f,
                ";{}@{}",
                ev.kind.tag(),
                fmt_dur(Duration(ev.at.as_nanos()))
            )?;
            match ev.kind {
                FaultKind::Panic { task } => write!(f, ",task={task}")?,
                FaultKind::Stall { cpu, dur } | FaultKind::Jitter { cpu, dur } => {
                    write!(f, ",cpu={cpu},dur={}", fmt_dur(dur))?;
                }
                FaultKind::WakeDrop { task, dur } => {
                    write!(f, ",task={task},dur={}", fmt_dur(dur))?;
                }
            }
        }
        Ok(())
    }
}

impl FromStr for FaultPlan {
    type Err = ParseFaultError;

    fn from_str(s: &str) -> Result<FaultPlan, ParseFaultError> {
        let err = |msg: String| ParseFaultError(msg);
        let mut parts = s.split(';');
        let head = parts.next().unwrap_or("").trim();
        let seed: u64 = head
            .strip_prefix("seed=")
            .ok_or_else(|| err(format!("expected seed=N first, got {head:?}")))?
            .parse()
            .map_err(|_| err(format!("bad seed in {head:?}")))?;
        let mut plan = FaultPlan {
            seed,
            faults: Vec::new(),
        };
        for part in parts {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let mut fields = part.split(',');
            let head = fields.next().unwrap_or("");
            let (tag, at) = head
                .split_once('@')
                .ok_or_else(|| err(format!("expected kind@time, got {head:?}")))?;
            let at = Time(parse_dur(at)?.as_nanos());
            let mut task: Option<u64> = None;
            let mut cpu: Option<u32> = None;
            let mut dur: Option<Duration> = None;
            for field in fields {
                let (k, v) = field
                    .split_once('=')
                    .ok_or_else(|| err(format!("expected key=value, got {field:?}")))?;
                match k {
                    "task" => {
                        task = Some(
                            v.parse()
                                .map_err(|_| err(format!("bad task index {v:?}")))?,
                        );
                    }
                    "cpu" => {
                        cpu = Some(v.parse().map_err(|_| err(format!("bad cpu {v:?}")))?);
                    }
                    "dur" => dur = Some(parse_dur(v)?),
                    other => return Err(err(format!("unknown operand {other:?} in {part:?}"))),
                }
            }
            let want = |x: Option<u64>, what: &str| {
                x.ok_or_else(|| err(format!("{tag} needs {what}= in {part:?}")))
            };
            let want_dur =
                |x: Option<Duration>| x.ok_or_else(|| err(format!("{tag} needs dur= in {part:?}")));
            let kind = match tag {
                "panic" => FaultKind::Panic {
                    task: want(task, "task")?,
                },
                "stall" => FaultKind::Stall {
                    cpu: want(cpu.map(u64::from), "cpu")? as u32,
                    dur: want_dur(dur)?,
                },
                "jitter" => FaultKind::Jitter {
                    cpu: want(cpu.map(u64::from), "cpu")? as u32,
                    dur: want_dur(dur)?,
                },
                "wakedrop" => FaultKind::WakeDrop {
                    task: want(task, "task")?,
                    dur: want_dur(dur)?,
                },
                other => return Err(err(format!("unknown fault kind {other:?}"))),
            };
            plan.faults.push(FaultEvent { at, kind });
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_round_trip() {
        let plan = FaultPlan::new()
            .with(Time::from_millis(500), FaultKind::Panic { task: 3 })
            .with(
                Time::from_secs(1),
                FaultKind::Stall {
                    cpu: 0,
                    dur: Duration::from_millis(20),
                },
            )
            .with(
                Time::from_secs(2),
                FaultKind::Jitter {
                    cpu: 1,
                    dur: Duration::from_micros(1500),
                },
            )
            .with(
                Time(1_000_000_007),
                FaultKind::WakeDrop {
                    task: 7,
                    dur: Duration::from_millis(50),
                },
            );
        let text = plan.to_string();
        assert_eq!(
            text,
            "seed=0;panic@500ms,task=3;stall@1s,cpu=0,dur=20ms;\
             jitter@2s,cpu=1,dur=1500us;wakedrop@1000000007ns,task=7,dur=50ms"
        );
        assert_eq!(text.parse::<FaultPlan>().unwrap(), plan);
    }

    #[test]
    fn generated_plans_are_deterministic_and_round_trip() {
        let a = FaultPlan::generate(42, Time::from_secs(2), 8, 4, 32);
        let b = FaultPlan::generate(42, Time::from_secs(2), 8, 4, 32);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        assert_eq!(a.seed, 42);
        assert_ne!(a, FaultPlan::generate(43, Time::from_secs(2), 8, 4, 32));
        for ev in &a.faults {
            assert!(ev.at > Time::ZERO && ev.at < Time::from_secs(2));
            match ev.kind {
                FaultKind::Panic { task } | FaultKind::WakeDrop { task, .. } => assert!(task < 8),
                FaultKind::Stall { cpu, .. } | FaultKind::Jitter { cpu, .. } => assert!(cpu < 4),
            }
        }
        let text = a.to_string();
        assert_eq!(text.parse::<FaultPlan>().unwrap(), a);
    }

    #[test]
    fn sorted_orders_by_time_stably() {
        let plan = FaultPlan::new()
            .with(Time::from_millis(2), FaultKind::Panic { task: 0 })
            .with(Time::from_millis(1), FaultKind::Panic { task: 1 })
            .with(Time::from_millis(2), FaultKind::Panic { task: 2 });
        let sorted = plan.sorted();
        assert_eq!(sorted[0].kind, FaultKind::Panic { task: 1 });
        assert_eq!(sorted[1].kind, FaultKind::Panic { task: 0 });
        assert_eq!(sorted[2].kind, FaultKind::Panic { task: 2 });
    }

    #[test]
    fn parse_rejects_malformed() {
        for s in [
            "",
            "panic@1ms,task=0",         // missing seed
            "seed=1;panic@1ms",         // missing task
            "seed=1;stall@1ms,cpu=0",   // missing dur
            "seed=1;stall@1ms,dur=2ms", // missing cpu
            "seed=1;frob@1ms,task=0",   // unknown kind
            "seed=1;panic@xyz,task=0",  // bad time
            "seed=1;panic@1ms,task=0,zap=1",
        ] {
            assert!(s.parse::<FaultPlan>().is_err(), "{s:?}");
        }
    }
}
