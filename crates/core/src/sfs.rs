//! Surplus fair scheduling (§2.3, §3).
//!
//! SFS approximates generalized multiprocessor sharing (GMS) with finite
//! quanta. Each thread carries a start tag `S_i` and finish tag `F_i`;
//! the system virtual time `v` is the minimum start tag over runnable
//! threads; and each scheduling decision picks the ready thread with the
//! least *surplus*
//!
//! ```text
//! α_i = φ_i · (S_i − v)
//! ```
//!
//! where `φ_i` is the instantaneous weight produced by the readjustment
//! algorithm (§2.1). `α_i` estimates how much more service thread `i`
//! has received than it would have under GMS; always scheduling the
//! least-surplus threads keeps every thread's deviation from the fluid
//! ideal as small as possible.
//!
//! Properties reproduced from the paper:
//!
//! * **Work conserving** — a processor never idles while a thread is
//!   ready.
//! * **Variable quanta** — the quantum length is not needed at dispatch
//!   time; accounting uses the actual usage reported at requeue.
//! * **No sleeper credit** — a waking thread's start tag is floored at
//!   the virtual time, so sleeping never accumulates credit (§2.3).
//! * **Uniprocessor degeneration** — on one CPU the minimum-surplus
//!   thread is exactly the minimum-start-tag thread, so SFS reduces to
//!   SFQ (§2.3); a unit test asserts decision-for-decision equality.
//!
//! # Run-queue structure
//!
//! The paper's kernel port (§3.1) keeps a surplus-sorted queue and
//! re-sorts it whenever the virtual time advances. Since `v` is the
//! minimum start tag, and the minimum-start-tag thread is usually the
//! one that just finished its quantum, `v` advances on essentially every
//! decision — so that design degenerates to an O(n) re-sort per pick.
//! This implementation instead uses the per-weight-class
//! [`BucketQueue`](crate::buckets): within one adjusted weight `φ`,
//! surplus order equals start-tag order *for every* `v`, so a
//! virtual-time advance reorders nothing and the exact minimum-surplus
//! pick is a comparison across the O(#distinct-φ) bucket heads. The
//! bucket queue also subsumes the start-tag queue #2 of §3.1: the only
//! thing the scheduler ever read from it was its head (the virtual
//! time), which is the minimum over bucket heads — while maintaining it
//! cost an O(displacement) sorted reinsertion on every requeue. The
//! weight-descending readjustment queue #1 of §3.1 is gone too: the
//! [`FeasibleWeights`] count map keeps one id set per distinct weight,
//! so arrivals, wakeups and reweights cost O(p + log C) instead of an
//! O(position) sorted scan. The decision sequence is identical to the
//! resort-based implementation — a differential test drives both in
//! lockstep — only the per-decision cost changes
//! (O(#weight-classes·log n) instead of O(n)). The bounded-lookahead
//! heuristic of §3.2 and the fixed-point tags with renormalisation are
//! retained.

use std::collections::HashMap;
use std::sync::Arc;

use crate::buckets::BucketQueue;
use crate::feasible::FeasibleWeights;
use crate::fixed::{Fixed, SCALE};
use crate::sched::{SchedStats, Scheduler, SwitchReason};
use crate::shard::{PhiSnapshot, SnapshotCell};
use crate::task::{CpuId, TagTask, TaskId, TaskState, TenantId, Weight};
use crate::time::{Duration, Time};

/// A CPU-time duration on the fixed-point surplus scale.
fn duration_fx(d: Duration) -> Fixed {
    Fixed::from_raw(d.as_nanos() as i128 * SCALE)
}

/// Tuning knobs for [`Sfs`].
#[derive(Debug, Clone)]
pub struct SfsConfig {
    /// Maximum quantum granted per dispatch (paper test-bed: 200 ms).
    pub quantum: Duration,
    /// `Some(k)`: use the §3.2 heuristic, examining the first `k`
    /// entries of the start-tag order, the surplus order and the
    /// backwards weight queue instead of scanning every bucket head.
    /// `None`: exact algorithm.
    pub heuristic: Option<usize>,
    /// Historical §3.2 knob: how often the resort-based implementation
    /// forced a full surplus re-sort in heuristic mode. The bucket queue
    /// keeps surplus order exact at all times, so no periodic re-sort
    /// exists any more; the knob is retained so existing policy specs
    /// round-trip unchanged.
    pub refresh_every: u64,
    /// When the virtual time exceeds this value, subtract the minimum
    /// start tag from every tag and reset the virtual time (§3.2
    /// wrap-around handling).
    pub renorm_threshold: Fixed,
    /// Allow wakeups to preempt a running thread whose surplus (charged
    /// with its in-flight CPU time) exceeds the woken thread's surplus.
    /// The kernel port inherits this from Linux's `reschedule_idle`.
    pub wake_preemption: bool,
    /// Minimum surplus advantage (in CPU time) a wakeup needs before it
    /// preempts, to avoid thrashing.
    pub preempt_margin: Duration,
    /// Audit every heuristic pick against the exact choice (Fig. 3).
    pub audit_heuristic: bool,
    /// Processor-affinity extension (§5 future work): when picking for
    /// a CPU, prefer a ready thread that last ran on it if its surplus
    /// is within this margin (in CPU time) of the minimum. `None`
    /// disables affinity (the paper's SFS).
    pub affinity_margin: Option<Duration>,
    /// Globally published feasibility snapshot to honour in addition to
    /// the local readjustment, when this instance runs as one shard of
    /// a [`ShardedScheduler`](crate::shard::ShardedScheduler). The pick
    /// path re-checks it with a single lock-free epoch load.
    pub phi_snapshot: Option<Arc<SnapshotCell>>,
}

impl Default for SfsConfig {
    fn default() -> SfsConfig {
        SfsConfig {
            quantum: Duration::from_millis(200),
            heuristic: None,
            refresh_every: 20,
            renorm_threshold: Fixed::from_int(100_000_000_000_000),
            wake_preemption: true,
            preempt_margin: Duration::from_micros(100),
            audit_heuristic: false,
            affinity_margin: None,
            phi_snapshot: None,
        }
    }
}

#[derive(Debug)]
struct Entry {
    task: TagTask,
    /// The processor this task last ran on (affinity extension).
    last_cpu: Option<CpuId>,
}

/// The surplus fair scheduler.
pub struct Sfs {
    cfg: SfsConfig,
    cpus: u32,
    tasks: HashMap<TaskId, Entry>,
    /// Per-weight-class count map + readjustment state (replacing the
    /// weight-descending queue #1 of §3.1).
    feas: FeasibleWeights,
    /// Surplus order, held as one start-tag-ordered bucket per weight
    /// class. Replaces *both* the start-tag queue #2 of §3.1 (its head —
    /// the virtual time — is the minimum over bucket heads) and the
    /// resort-based surplus queue #3.
    buckets: BucketQueue,
    /// Virtual time base used when computing surpluses.
    v: Fixed,
    /// The affinity cutoff margin as a [`Fixed`], precomputed once at
    /// construction (it used to be rebuilt from `margin.as_nanos()` on
    /// every exact pick).
    affinity_margin_fx: Option<Fixed>,
    /// The wake-preemption margin, likewise precomputed.
    preempt_margin_fx: Fixed,
    /// Publisher of the global feasibility snapshot, when sharded.
    gcell: Option<Arc<SnapshotCell>>,
    /// The snapshot currently applied to the buckets. `eff_phi` and the
    /// invariant checker read only this, so the queue state is always
    /// internally consistent even while a newer epoch is pending.
    gsnap: Option<Arc<PhiSnapshot>>,
    nr_running: usize,
    stats: SchedStats,
}

impl Sfs {
    /// Creates an exact SFS instance with default configuration.
    pub fn new(cpus: u32) -> Sfs {
        Sfs::with_config(cpus, SfsConfig::default())
    }

    /// Creates an SFS instance using the §3.2 heuristic with lookahead `k`.
    pub fn heuristic(cpus: u32, k: usize) -> Sfs {
        Sfs::with_config(
            cpus,
            SfsConfig {
                heuristic: Some(k),
                ..SfsConfig::default()
            },
        )
    }

    /// Creates an SFS instance with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn with_config(cpus: u32, cfg: SfsConfig) -> Sfs {
        assert!(cpus > 0, "need at least one processor");
        let affinity_margin_fx = cfg.affinity_margin.map(duration_fx);
        let preempt_margin_fx = duration_fx(cfg.preempt_margin);
        let gcell = cfg.phi_snapshot.clone();
        let gsnap = gcell.as_ref().map(|c| c.load());
        Sfs {
            cfg,
            cpus,
            tasks: HashMap::new(),
            feas: FeasibleWeights::new(cpus, true),
            buckets: BucketQueue::new(),
            v: Fixed::ZERO,
            affinity_margin_fx,
            preempt_margin_fx,
            gcell,
            gsnap,
            nr_running: 0,
            stats: SchedStats::default(),
        }
    }

    /// The virtual time right now: minimum start tag over runnable
    /// threads, or the stored value (last finish tag) when idle (§2.3).
    fn current_v(&self) -> Fixed {
        self.buckets.min_start().unwrap_or(self.v)
    }

    fn surplus(&self, phi: Fixed, start_tag: Fixed) -> Fixed {
        phi.mul_fixed(start_tag - self.v)
    }

    /// The instantaneous weight used for tags and buckets: the local
    /// readjusted `φ`, further capped by the globally published
    /// feasible cap when this instance runs as one shard of a sharded
    /// scheduler (local and global caps are both upper bounds, so the
    /// minimum applies).
    fn eff_phi(&self, id: TaskId, w: Weight) -> Fixed {
        let local = self.feas.phi(id, w);
        match &self.gsnap {
            Some(s) => match s.cap_of(id) {
                Some(cap) => local.min(cap),
                None => local,
            },
            None => local,
        }
    }

    /// Pulls a newer globally published feasibility snapshot, if one
    /// exists, and migrates the affected runnable tasks to their new
    /// weight-class buckets. The fast path is a single atomic epoch
    /// load (lock-free); only an actual republication pays the copy
    /// plus O(p) bucket migrations. Called on every mutation entry
    /// point so the applied snapshot never lags an event.
    fn refresh_snapshot(&mut self) {
        let Some(cell) = &self.gcell else { return };
        let seen = self.gsnap.as_ref().map_or(0, |s| s.epoch);
        let Some(new) = cell.load_if_newer(seen) else {
            return;
        };
        let old = self.gsnap.replace(new);
        // Tasks in either epoch's clamp set may have a changed
        // effective φ; ids belonging to other shards are skipped.
        let mut affected: Vec<TaskId> = Vec::new();
        if let Some(old) = &old {
            affected.extend(old.clamped.iter().copied());
        }
        affected.extend(
            self.gsnap
                .as_ref()
                .expect("just stored")
                .clamped
                .iter()
                .copied(),
        );
        affected.sort_unstable();
        affected.dedup();
        for id in affected {
            let Some(e) = self.tasks.get(&id) else {
                continue;
            };
            if !e.task.state.is_runnable() {
                continue;
            }
            let phi = self.eff_phi(id, e.task.weight);
            if e.task.phi != phi {
                self.tasks.get_mut(&id).unwrap().task.phi = phi;
                if self.buckets.set_phi(id, phi) {
                    self.stats.bucket_migrations += 1;
                }
            }
        }
    }

    /// Advances the stored virtual time to the current queue minimum.
    /// Within a weight class, surplus order is invariant under `v`, so —
    /// unlike the resort-based implementation — advancing `v` requires
    /// *no* queue maintenance at all.
    fn sync_v(&mut self) {
        let vk = self.current_v();
        if vk != self.v {
            debug_assert!(vk > self.v, "virtual time went backwards");
            self.v = vk;
            self.stats.vt_changes += 1;
        }
    }

    /// Migrates the tasks whose `φ` the last readjustment changed to
    /// their new weight-class buckets. Readjustment clamps at most
    /// `p − 1` threads, so this touches O(p) tasks — never the whole
    /// runnable set.
    fn apply_phi_changes(&mut self) {
        for id in self.feas.take_changed() {
            let Some(e) = self.tasks.get(&id) else {
                continue;
            };
            if !e.task.state.is_runnable() {
                continue;
            }
            let phi = self.eff_phi(id, e.task.weight);
            if e.task.phi != phi {
                self.tasks.get_mut(&id).unwrap().task.phi = phi;
                if self.buckets.set_phi(id, phi) {
                    self.stats.bucket_migrations += 1;
                }
            }
        }
    }

    /// The exact pick: least surplus among ready threads, with
    /// deterministic tie-breaking by (surplus, start tag, id) so the
    /// exact and heuristic modes agree whenever the heuristic sees the
    /// whole queue. Returns the pick and the number of queue entries
    /// examined (O(#buckets + #running + tie-run), not O(n)).
    ///
    /// With the affinity extension enabled, a ready thread that last
    /// ran on `cpu` is preferred if its surplus is within the margin of
    /// the minimum — the §5 "combine processor affinities with
    /// proportional-share scheduling" direction, bounded so fairness
    /// loss cannot exceed the margin per decision.
    fn pick_exact(&self, cpu: CpuId) -> (Option<TaskId>, u64) {
        let (best, scanned) = self.buckets.min_surplus(self.v, |id| {
            matches!(self.tasks[&id].task.state, TaskState::Ready)
        });
        let Some((best_alpha, _, best_id)) = best else {
            return (None, scanned);
        };
        if let Some(margin) = self.affinity_margin_fx {
            let cutoff = best_alpha + margin;
            let (preferred, affinity_scanned) = self.buckets.affinity_best(self.v, cutoff, |id| {
                let e = &self.tasks[&id];
                matches!(e.task.state, TaskState::Ready) && e.last_cpu == Some(cpu)
            });
            if let Some(id) = preferred {
                return (Some(id), scanned + affinity_scanned);
            }
            return (Some(best_id), scanned + affinity_scanned);
        }
        (Some(best_id), scanned)
    }

    /// The fresh surplus of `id` (computed from live tags).
    fn fresh_surplus(&self, id: TaskId) -> Fixed {
        let e = &self.tasks[&id];
        self.surplus(self.eff_phi(id, e.task.weight), e.task.start_tag)
    }

    /// The §3.2 heuristic pick: examine the first `k` entries of the
    /// start-tag queue, the surplus order (a lazy merge over the bucket
    /// heads), and the weight queue scanned backwards (smallest weights
    /// first, footnote 8), and take the minimum surplus among those
    /// candidates. With the bucket queue the surplus order is always
    /// exact, so the heuristic's accuracy is limited only by running
    /// threads hiding behind the first `k` entries.
    fn pick_heuristic(&mut self, k: usize) -> Option<TaskId> {
        let mut best: Option<(Fixed, Fixed, TaskId)> = None;
        let mut scanned = 0u64;
        let consider = |sfs: &Sfs, id: TaskId, best: &mut Option<(Fixed, Fixed, TaskId)>| {
            let e = &sfs.tasks[&id];
            if !matches!(e.task.state, TaskState::Ready) {
                return;
            }
            let alpha = sfs.surplus(sfs.eff_phi(id, e.task.weight), e.task.start_tag);
            let cand = (alpha, e.task.start_tag, id);
            if best.is_none_or(|b| cand < b) {
                *best = Some(cand);
            }
        };

        for (_, id) in self.buckets.iter_by_start().take(k) {
            scanned += 1;
            consider(self, id, &mut best);
        }
        for (_, id) in self.buckets.iter_by_surplus(self.v).take(k) {
            scanned += 1;
            consider(self, id, &mut best);
        }
        let light: Vec<TaskId> = self.feas.iter_asc().take(k).map(|(_, id)| id).collect();
        for id in light {
            scanned += 1;
            consider(self, id, &mut best);
        }
        self.stats.heuristic_scans += scanned;
        self.stats.heuristic_picks += 1;

        let picked = match best {
            Some((_, _, id)) => Some(id),
            // The lookahead may see only running threads; fall back to a
            // full scan so work conservation holds.
            None => {
                let mut fallback: Option<(Fixed, Fixed, TaskId)> = None;
                let ids: Vec<TaskId> = self.buckets.ids().collect();
                for id in ids {
                    consider(self, id, &mut fallback);
                }
                fallback.map(|(_, _, id)| id)
            }
        };

        if self.cfg.audit_heuristic {
            if let Some(chosen) = picked {
                self.stats.heuristic_audits += 1;
                let exact_min = self
                    .buckets
                    .ids()
                    .filter(|id| matches!(self.tasks[id].task.state, TaskState::Ready))
                    .map(|id| self.fresh_surplus(id))
                    .min();
                if exact_min == Some(self.fresh_surplus(chosen)) {
                    self.stats.heuristic_hits += 1;
                }
            }
        }
        picked
    }

    fn unlink_runnable(&mut self, id: TaskId) {
        assert!(self.tasks.contains_key(&id), "unlinking unknown task");
        if self.buckets.contains(id) {
            self.buckets.remove(id);
        }
    }

    /// Inserts a (now runnable) task into its weight-class bucket,
    /// recording its instantaneous weight.
    fn link_runnable(&mut self, id: TaskId) {
        let (phi, start_tag) = {
            let e = &self.tasks[&id];
            (self.eff_phi(id, e.task.weight), e.task.start_tag)
        };
        self.buckets.insert(id, phi, start_tag);
        self.tasks.get_mut(&id).unwrap().task.phi = phi;
    }

    /// §3.2 wrap-around handling: shift every tag down by the minimum
    /// start tag and reset the virtual time. The shift is uniform, so
    /// neither the start-tag queue nor any bucket reorders.
    fn maybe_renormalize(&mut self) {
        if self.v <= self.cfg.renorm_threshold {
            return;
        }
        let delta = self.current_v().min(self.v);
        for e in self.tasks.values_mut() {
            e.task.start_tag -= delta;
            e.task.finish_tag -= delta;
        }
        self.v -= delta;
        self.buckets.shift_keys(-delta);
        self.stats.renormalizations += 1;
    }

    /// Immutable view of a task's tag state, for tests and tracing.
    pub fn tags_of(&self, id: TaskId) -> Option<&TagTask> {
        self.tasks.get(&id).map(|e| &e.task)
    }

    /// The configuration in use.
    pub fn config(&self) -> &SfsConfig {
        &self.cfg
    }

    /// Asserts the §2.3 structural invariants; test helper.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let Sfs { buckets, tasks, .. } = self;
        buckets.check_invariants(|id| tasks[&id].task.start_tag);
        let runnable = self
            .tasks
            .values()
            .filter(|e| e.task.state.is_runnable())
            .count();
        assert_eq!(runnable, self.buckets.len(), "buckets track runnable");
        assert_eq!(runnable, self.feas.len(), "weight_q tracks runnable");
        // Every runnable thread's start tag is at least the virtual time,
        // hence all fresh surpluses are non-negative (§2.3); and its
        // bucket and recorded φ always match the readjusted weight.
        let v = self.current_v();
        for (id, e) in &self.tasks {
            if e.task.state.is_runnable() {
                assert!(
                    e.task.start_tag >= v,
                    "start tag below virtual time: {:?} < {:?}",
                    e.task.start_tag,
                    v
                );
                let phi = self.eff_phi(*id, e.task.weight);
                assert_eq!(e.task.phi, phi, "stale φ recorded for {id}");
                assert_eq!(
                    self.buckets.phi_of(*id),
                    Some(phi),
                    "task {id} in wrong weight-class bucket"
                );
            }
        }
    }
}

impl Scheduler for Sfs {
    fn name(&self) -> &'static str {
        if self.cfg.heuristic.is_some() {
            "SFS(heuristic)"
        } else {
            "SFS"
        }
    }

    fn cpus(&self) -> u32 {
        self.cpus
    }

    fn attach(&mut self, id: TaskId, w: Weight, now: Time) {
        assert!(!self.tasks.contains_key(&id), "task {id} attached twice");
        self.refresh_snapshot();
        self.stats.events += 1;
        // "When a new thread arrives, its start tag is initialized as
        // S_i = v" (§2.3).
        let mut task = TagTask::new(id, w, self.current_v());
        task.dispatched_at = now;
        self.tasks.insert(
            id,
            Entry {
                task,
                last_cpu: None,
            },
        );
        self.feas.insert(id, w);
        self.link_runnable(id);
        self.apply_phi_changes();
    }

    /// One readjustment for the whole batch. Event-equivalent to
    /// per-item [`Sfs::attach`]: every arrival takes `S_i = v` and
    /// inserting at the queue-minimum start tag leaves `v` itself
    /// unchanged, so all tags match the sequential ones; the final
    /// clamp set is a pure function of the resulting weight classes;
    /// and [`FeasibleWeights::insert_many`] reports `φ` changes against
    /// the pre-batch clamp state, so `apply_phi_changes` converges
    /// every previously-runnable task to the same `φ` the sequential
    /// path would leave it with.
    fn attach_batch(&mut self, batch: &[(TaskId, Weight, Option<TenantId>)], now: Time) {
        if batch.len() <= 1 {
            for &(id, w, tenant) in batch {
                self.attach_tenant(id, w, tenant, now);
            }
            return;
        }
        self.refresh_snapshot();
        self.stats.events += batch.len() as u64;
        let v = self.current_v();
        let mut weights = Vec::with_capacity(batch.len());
        for &(id, w, _) in batch {
            assert!(!self.tasks.contains_key(&id), "task {id} attached twice");
            let mut task = TagTask::new(id, w, v);
            task.dispatched_at = now;
            self.tasks.insert(
                id,
                Entry {
                    task,
                    last_cpu: None,
                },
            );
            weights.push((id, w));
        }
        self.feas.insert_many(&weights);
        // Link after the readjustment so each new task's recorded φ is
        // already final; `apply_phi_changes` then only migrates
        // previously-runnable tasks whose clamp state moved.
        for &(id, _) in &weights {
            self.link_runnable(id);
        }
        self.apply_phi_changes();
    }

    fn detach(&mut self, id: TaskId, _now: Time) {
        self.refresh_snapshot();
        self.stats.events += 1;
        let state = self.tasks[&id].task.state;
        assert!(
            !state.is_running(),
            "detach of running task {id}; use put_prev(Exited)"
        );
        if state.is_runnable() {
            let w = self.tasks[&id].task.weight;
            self.unlink_runnable(id);
            self.feas.remove(id, w);
            self.apply_phi_changes();
        }
        self.tasks.remove(&id);
    }

    fn set_weight(&mut self, id: TaskId, w: Weight, _now: Time) {
        let old = self.tasks[&id].task.weight;
        if old == w {
            return;
        }
        self.refresh_snapshot();
        self.stats.events += 1;
        self.tasks.get_mut(&id).unwrap().task.weight = w;
        if self.tasks[&id].task.state.is_runnable() {
            self.feas.set_weight(id, old, w);
            let phi = self.eff_phi(id, w);
            self.tasks.get_mut(&id).unwrap().task.phi = phi;
            if self.buckets.set_phi(id, phi) {
                self.stats.bucket_migrations += 1;
            }
            self.apply_phi_changes();
        } else {
            // A blocked task is outside the runnable set, so no clamp
            // applies: its instantaneous weight is its raw weight. The
            // resort-based implementation left the pre-reweight φ here
            // until the task next ran, so `adjusted_weight_of` lied
            // about blocked tasks after a `set_weight`.
            self.tasks.get_mut(&id).unwrap().task.phi = w.as_fixed();
        }
    }

    fn weight_of(&self, id: TaskId) -> Option<Weight> {
        self.tasks.get(&id).map(|e| e.task.weight)
    }

    /// For runnable tasks this is the live readjusted weight; for
    /// blocked tasks it is the raw weight (no clamp applies outside the
    /// runnable set), kept fresh across `set_weight` while blocked.
    fn adjusted_weight_of(&self, id: TaskId) -> Option<Fixed> {
        let e = self.tasks.get(&id)?;
        if e.task.state.is_runnable() {
            Some(self.eff_phi(id, e.task.weight))
        } else {
            Some(e.task.phi)
        }
    }

    fn wake(&mut self, id: TaskId, _now: Time) {
        self.refresh_snapshot();
        self.stats.events += 1;
        let v_now = self.current_v();
        {
            let e = self.tasks.get_mut(&id).expect("waking unknown task");
            assert!(
                matches!(e.task.state, TaskState::Blocked),
                "waking non-blocked task {id}"
            );
            // "S_i = max(F_i, v) if the thread just woke up" (§2.3):
            // sleeping must not accumulate credit.
            e.task.start_tag = e.task.finish_tag.max(v_now);
            e.task.state = TaskState::Ready;
        }
        let w = self.tasks[&id].task.weight;
        self.feas.insert(id, w);
        self.link_runnable(id);
        self.apply_phi_changes();
    }

    /// One readjustment for the whole batch. Event-equivalent to
    /// per-item [`Sfs::wake`]: each wake reads the virtual time at its
    /// own position in the slice (`current_v()` is O(1)), so the
    /// `S_i = max(F_i, v)` tags are bit-identical to sequential
    /// application — earlier wakes in the batch can only move `v` by
    /// filling an empty queue, which the per-item read observes. Tasks
    /// are linked with their pre-batch `φ` and converged by one
    /// `apply_phi_changes` after the single readjustment, which leaves
    /// the same final `φ` state as per-item wakes (see
    /// [`Sfs::attach_batch`]).
    fn wake_batch(&mut self, ids: &[TaskId], now: Time) {
        if ids.len() <= 1 {
            for &id in ids {
                self.wake(id, now);
            }
            return;
        }
        self.refresh_snapshot();
        self.stats.events += ids.len() as u64;
        let mut weights = Vec::with_capacity(ids.len());
        for &id in ids {
            let v_now = self.current_v();
            let w = {
                let e = self.tasks.get_mut(&id).expect("waking unknown task");
                assert!(
                    matches!(e.task.state, TaskState::Blocked),
                    "waking non-blocked task {id}"
                );
                e.task.start_tag = e.task.finish_tag.max(v_now);
                e.task.state = TaskState::Ready;
                e.task.weight
            };
            self.link_runnable(id);
            weights.push((id, w));
        }
        self.feas.insert_many(&weights);
        self.apply_phi_changes();
    }

    fn pick_next(&mut self, cpu: CpuId, now: Time) -> Option<TaskId> {
        self.refresh_snapshot();
        if self.buckets.is_empty() {
            return None;
        }
        self.sync_v();

        let picked = match self.cfg.heuristic {
            None => {
                let (picked, scanned) = self.pick_exact(cpu);
                self.stats.bucket_scans += scanned;
                picked
            }
            Some(k) => self.pick_heuristic(k),
        }?;

        let e = self.tasks.get_mut(&picked).unwrap();
        if matches!(e.last_cpu, Some(prev) if prev != cpu) {
            self.stats.migrations += 1;
        }
        e.task.state = TaskState::Running(cpu);
        e.task.dispatched_at = now;
        self.nr_running += 1;
        self.stats.picks += 1;
        Some(picked)
    }

    fn put_prev(&mut self, id: TaskId, ran: Duration, reason: SwitchReason, _now: Time) {
        self.refresh_snapshot();
        self.stats.events += 1;
        let w = {
            let e = self.tasks.get_mut(&id).expect("put_prev of unknown task");
            assert!(
                e.task.state.is_running(),
                "put_prev of non-running task {id}"
            );
            if let TaskState::Running(cpu) = e.task.state {
                e.last_cpu = Some(cpu);
            }
            e.task.weight
        };
        self.nr_running -= 1;
        // "φ_i is its instantaneous weight at the end of the quantum"
        // (§2.3): read it before the runnable set changes.
        let phi = self.eff_phi(id, w);
        debug_assert_eq!(
            self.buckets.phi_of(id),
            Some(phi),
            "running task's bucket φ out of sync"
        );
        let finish_tag = {
            let e = self.tasks.get_mut(&id).unwrap();
            e.task.phi = phi;
            // F_i = S_i + q / φ_i (Eq. 5), with the *actual* usage q.
            let f = e.task.start_tag + phi.div_into_int(ran.as_nanos());
            e.task.finish_tag = f;
            e.task.service += ran;
            f
        };

        match reason {
            SwitchReason::Preempted | SwitchReason::Yielded => {
                let e = self.tasks.get_mut(&id).unwrap();
                // "S_i = F_i if the thread is continuously runnable".
                e.task.start_tag = finish_tag;
                e.task.state = TaskState::Ready;
                // The only queue work a quantum end needs: repositioning
                // this one task inside its own bucket.
                self.buckets.update_start(id, finish_tag);
            }
            SwitchReason::Blocked => {
                self.unlink_runnable(id);
                let e = self.tasks.get_mut(&id).unwrap();
                e.task.state = TaskState::Blocked;
                self.feas.remove(id, w);
                self.apply_phi_changes();
                if self.buckets.is_empty() {
                    // All processors idle: v freezes at the finish tag of
                    // the thread that ran last (§2.3).
                    self.v = finish_tag;
                }
            }
            SwitchReason::Exited => {
                self.unlink_runnable(id);
                self.feas.remove(id, w);
                self.apply_phi_changes();
                self.tasks.remove(&id);
                if self.buckets.is_empty() {
                    self.v = finish_tag;
                }
            }
        }
        self.maybe_renormalize();
    }

    fn time_slice(&self, _id: TaskId) -> Duration {
        self.cfg.quantum
    }

    fn wake_preempts(
        &self,
        woken: TaskId,
        running: TaskId,
        ran_so_far: Duration,
        _now: Time,
    ) -> bool {
        if !self.cfg.wake_preemption {
            return false;
        }
        let (Some(we), Some(re)) = (self.tasks.get(&woken), self.tasks.get(&running)) else {
            return false;
        };
        if !matches!(we.task.state, TaskState::Ready) || !re.task.state.is_running() {
            return false;
        }
        let woken_alpha = self.surplus(self.eff_phi(woken, we.task.weight), we.task.start_tag);
        // Charge the running thread its in-flight CPU time:
        // φ · (S + q/φ − v) = φ·(S − v) + q.
        let running_alpha = self.surplus(self.eff_phi(running, re.task.weight), re.task.start_tag)
            + duration_fx(ran_so_far);
        woken_alpha + self.preempt_margin_fx < running_alpha
    }

    fn steal_candidate(&self) -> Option<TaskId> {
        let v = self.current_v();
        self.buckets
            .max_surplus(v, |id| {
                matches!(self.tasks[&id].task.state, TaskState::Ready)
            })
            .map(|(_, _, id)| id)
    }

    fn charged_surplus(&self, id: TaskId, ran_so_far: Duration, _now: Time) -> Option<Fixed> {
        let e = self.tasks.get(&id)?;
        if !e.task.state.is_runnable() {
            return None;
        }
        let alpha = self.surplus(self.eff_phi(id, e.task.weight), e.task.start_tag);
        Some(alpha + duration_fx(ran_so_far))
    }

    fn nr_runnable(&self) -> usize {
        self.buckets.len()
    }

    fn nr_tasks(&self) -> usize {
        self.tasks.len()
    }

    fn stats(&self) -> SchedStats {
        let mut s = self.stats;
        s.readjust_calls = self.feas.calls;
        s.weights_clamped = self.feas.clamps;
        s.weight_classes = self.buckets.num_buckets() as u64;
        s.event_steps = self.buckets.steps() + self.feas.event_steps();
        s
    }

    fn virtual_time(&self) -> Option<Fixed> {
        Some(self.current_v())
    }

    fn check_invariants(&self) {
        Sfs::check_invariants(self);
    }
}

#[cfg(test)]
mod tests {

    use super::*;
    use crate::testkit::{assert_close, MiniSim};

    #[test]
    fn single_task_runs_forever() {
        let mut sim = MiniSim::new(Sfs::new(1));
        sim.spawn(1, 1);
        sim.run_quanta(10);
        assert_eq!(sim.service(1), Duration::from_millis(10));
        sim.sched.check_invariants();
    }

    #[test]
    fn uniprocessor_proportional_shares() {
        let mut sim = MiniSim::new(Sfs::new(1));
        sim.spawn(1, 1);
        sim.spawn(2, 2);
        sim.run_quanta(3000);
        assert_close(sim.ratio(2, 1), 2.0, 0.01, "2:1 weights");
        sim.sched.check_invariants();
    }

    #[test]
    fn dual_processor_feasible_three_way() {
        // Weights 2:1:1 on two CPUs are feasible: shares 1/2, 1/4, 1/4.
        let mut sim = MiniSim::new(Sfs::new(2));
        sim.spawn(1, 2);
        sim.spawn(2, 1);
        sim.spawn(3, 1);
        sim.run_quanta(4000);
        assert_close(sim.ratio(1, 2), 2.0, 0.02, "2:1");
        assert_close(sim.ratio(1, 3), 2.0, 0.02, "2:1");
        sim.sched.check_invariants();
    }

    #[test]
    fn infeasible_weights_are_clamped_to_half() {
        // Example 1 with SFS: 1:10 on two CPUs. Readjustment clamps the
        // heavy thread so both continuously occupy one CPU each.
        let mut sim = MiniSim::new(Sfs::new(2));
        sim.spawn(1, 1);
        sim.spawn(2, 10);
        sim.run_quanta(1000);
        assert_close(sim.ratio(2, 1), 1.0, 0.01, "clamped to 1:1");
    }

    #[test]
    fn no_starvation_after_late_arrival() {
        // Example 1: the late-arriving weight-1 thread must share the
        // first CPU with thread 1 instead of starving it.
        let mut sim = MiniSim::new(Sfs::new(2));
        sim.spawn(1, 1);
        sim.spawn(2, 10);
        sim.run_quanta(1000);
        let before = sim.service(1);
        sim.spawn(3, 1);
        sim.run_quanta(100);
        let gained = sim.service(1) - before;
        // Thread 1 keeps receiving service immediately (≈ half a CPU
        // since thread 2 holds the other: 1:2:1 readjusted shares are
        // 1/4 : 1/2 : 1/4 of 2 CPUs ⇒ T1 gets ~50 of 100 quanta... at
        // least a third by any fair accounting).
        assert!(
            gained >= Duration::from_millis(25),
            "thread 1 starved: gained only {gained}"
        );
        sim.sched.check_invariants();
    }

    #[test]
    fn short_jobs_cannot_monopolize() {
        // Miniature Example 2: heavy thread + many light threads + a
        // stream of short medium-weight jobs. Under SFS the short jobs
        // must not get more than their proportional share over time.
        let mut sim = MiniSim::new(Sfs::new(2));
        sim.spawn(1, 20);
        for i in 2..22 {
            sim.spawn(i, 1);
        }
        let mut short_service = Duration::ZERO;
        for next_id in 100..140 {
            sim.spawn(next_id, 5);
            sim.run_quanta(30);
            short_service += sim.service(next_id);
            sim.kill(next_id);
        }
        let t1 = sim.service(1).as_nanos() as f64;
        let shorts = short_service.as_nanos() as f64;
        // Weights 20 : 20×1 : 5 ⇒ T1 and the short stream should be 4:1.
        let ratio = t1 / shorts;
        assert!(
            (2.5..6.0).contains(&ratio),
            "T1:shorts service ratio {ratio:.2}, want ≈4"
        );
    }

    #[test]
    fn sleeper_gains_no_credit() {
        let mut sim = MiniSim::new(Sfs::new(1));
        sim.spawn(1, 1);
        sim.spawn(2, 1);
        sim.run_quanta(10);
        // Block T2 for a long stretch; T1 runs alone.
        sim.block(2, Duration::ZERO);
        sim.run_quanta(1000);
        let t1_before = sim.service(1);
        sim.wake(2);
        sim.run_quanta(100);
        // T2 must NOT monopolise the CPU to "catch up": its start tag was
        // floored at v. Both should get ~half of the last 100 quanta.
        let t1_gain = (sim.service(1) - t1_before).as_millis() as f64;
        assert_close(t1_gain, 50.0, 0.15, "no sleeper credit");
        sim.sched.check_invariants();
    }

    #[test]
    fn reduces_to_sfq_on_uniprocessor() {
        // On one CPU the min-surplus thread is the min-start-tag thread:
        // SFS and SFQ must make identical decisions on identical inputs.
        use crate::sfq::{Sfq, SfqConfig};
        let mut sfs = Sfs::with_config(
            1,
            SfsConfig {
                quantum: Duration::from_millis(1),
                ..SfsConfig::default()
            },
        );
        let mut sfq = Sfq::with_config(
            1,
            SfqConfig {
                quantum: Duration::from_millis(1),
                readjust: true,
                ..SfqConfig::default()
            },
        );
        let weights = [3u64, 1, 7, 2];
        let mut now = Time::ZERO;
        for (i, w) in weights.iter().enumerate() {
            sfs.attach(TaskId(i as u64), Weight::new(*w).unwrap(), now);
            sfq.attach(TaskId(i as u64), Weight::new(*w).unwrap(), now);
        }
        for step in 0..500 {
            let a = sfs.pick_next(CpuId(0), now);
            let b = sfq.pick_next(CpuId(0), now);
            assert_eq!(a, b, "diverged at step {step}");
            let id = a.unwrap();
            now += Duration::from_millis(1);
            sfs.put_prev(id, Duration::from_millis(1), SwitchReason::Preempted, now);
            sfq.put_prev(id, Duration::from_millis(1), SwitchReason::Preempted, now);
        }
    }

    #[test]
    fn heuristic_with_large_k_matches_exact() {
        let run = |mut sched: Sfs| -> Vec<Option<TaskId>> {
            let mut picks = Vec::new();
            let mut now = Time::ZERO;
            for i in 0..12u64 {
                sched.attach(TaskId(i), Weight::new(1 + i % 4).unwrap(), now);
            }
            for _ in 0..400 {
                let t = sched.pick_next(CpuId(0), now);
                picks.push(t);
                if let Some(id) = t {
                    now += Duration::from_millis(1);
                    sched.put_prev(id, Duration::from_millis(1), SwitchReason::Preempted, now);
                }
            }
            picks
        };
        let exact = run(Sfs::new(1));
        let heur = run(Sfs::heuristic(1, 64));
        assert_eq!(exact, heur);
    }

    #[test]
    fn heuristic_audit_records_hits() {
        let mut cfg = SfsConfig {
            heuristic: Some(20),
            audit_heuristic: true,
            quantum: Duration::from_millis(1),
            ..SfsConfig::default()
        };
        cfg.refresh_every = 50;
        let mut sim = MiniSim::new(Sfs::with_config(2, cfg));
        for i in 0..40 {
            sim.spawn(i, 1 + i % 5);
        }
        sim.run_quanta(500);
        let st = sim.sched.stats();
        assert!(st.heuristic_audits > 0);
        assert!(st.heuristic_hits > 0);
        assert!(st.heuristic_hits <= st.heuristic_audits);
    }

    #[test]
    fn renormalization_is_transparent() {
        let tiny = SfsConfig {
            quantum: Duration::from_millis(1),
            renorm_threshold: Fixed::from_int(50_000_000), // 50 ms of vtime
            ..SfsConfig::default()
        };
        let mut a = MiniSim::new(Sfs::with_config(1, tiny));
        let mut b = MiniSim::new(Sfs::new(1));
        for sim in [&mut a, &mut b] {
            sim.spawn(1, 1);
            sim.spawn(2, 3);
            sim.run_quanta(2000);
        }
        assert!(a.sched.stats().renormalizations > 0, "renorm never fired");
        assert_eq!(b.sched.stats().renormalizations, 0);
        assert_eq!(a.service(1), b.service(1), "renorm changed allocations");
        assert_eq!(a.service(2), b.service(2));
        a.sched.check_invariants();
    }

    #[test]
    fn work_conserving_under_churn() {
        let mut sim = MiniSim::new(Sfs::new(2));
        sim.spawn(1, 1);
        sim.spawn(2, 8);
        sim.spawn(3, 3);
        for round in 0..50 {
            sim.run_quanta(7);
            if round % 3 == 0 {
                sim.block(1, Duration::from_micros(300));
                sim.run_quanta(2);
                sim.wake(1);
            }
            // With ≥2 runnable tasks both CPUs must be busy.
            sim.fill();
            let busy = sim.running().iter().filter(|c| c.is_some()).count();
            assert_eq!(busy, 2, "idle processor with runnable threads");
        }
        sim.sched.check_invariants();
    }

    #[test]
    fn at_least_one_zero_surplus_thread() {
        // §2.3: at any instant at least one runnable thread has α_i = 0
        // (the one holding the minimum start tag).
        let mut sim = MiniSim::new(Sfs::new(2));
        for i in 0..6 {
            sim.spawn(i, 1 + i % 3);
        }
        sim.run_quanta(100);
        let sched = &sim.sched;
        let min_alpha = (0..6u64)
            .map(|i| sched.fresh_surplus(TaskId(i)))
            .min()
            .unwrap();
        assert_eq!(min_alpha, Fixed::ZERO);
    }

    #[test]
    fn wake_preemption_favors_low_surplus_sleeper() {
        let mut sched = Sfs::new(1);
        let now = Time::ZERO;
        sched.attach(TaskId(1), Weight::new(1).unwrap(), now);
        sched.attach(TaskId(2), Weight::new(1).unwrap(), now);
        let picked = sched.pick_next(CpuId(0), now).unwrap();
        // Let the running thread consume 50ms, then block the other...
        // (first make T2 the blocked one: whichever wasn't picked runs).
        let other = if picked == TaskId(1) {
            TaskId(2)
        } else {
            TaskId(1)
        };
        // Block `other` while ready is not possible; instead run it briefly.
        // Simpler: wake-preemption query against a long-running thread.
        sched.put_prev(
            picked,
            Duration::from_millis(100),
            SwitchReason::Preempted,
            now,
        );
        let picked2 = sched.pick_next(CpuId(0), now).unwrap();
        assert_eq!(picked2, other, "min start tag runs next");
        // `picked` is ready with surplus 0 relative... give `picked2` lots
        // of charged runtime: a woken thread with zero surplus preempts.
        sched.put_prev(
            picked2,
            Duration::from_millis(100),
            SwitchReason::Preempted,
            now,
        );
        let p3 = sched.pick_next(CpuId(0), now).unwrap();
        let waiter = if p3 == TaskId(1) {
            TaskId(2)
        } else {
            TaskId(1)
        };
        assert!(sched.wake_preempts(waiter, p3, Duration::from_millis(150), now));
        assert!(!sched.wake_preempts(waiter, p3, Duration::ZERO, now));
    }

    #[test]
    fn affinity_pick_never_exceeds_margin() {
        // Pin for the precomputed affinity cutoff: a task that last ran
        // on the picking CPU must never be selected when its surplus
        // exceeds the exact minimum by more than the configured margin.
        let mk = || {
            let mut s = Sfs::with_config(
                2,
                SfsConfig {
                    quantum: Duration::from_millis(1),
                    affinity_margin: Some(Duration::from_millis(1)),
                    ..SfsConfig::default()
                },
            );
            let now = Time::ZERO;
            for i in 1..=3u64 {
                s.attach(TaskId(i), Weight::new(1).unwrap(), now);
            }
            // T1 runs on cpu0 and burns a long quantum: its surplus is
            // now 50 ms while T2/T3 sit at zero.
            let first = s.pick_next(CpuId(0), now);
            assert_eq!(first, Some(TaskId(1)));
            s.put_prev(
                TaskId(1),
                Duration::from_millis(50),
                SwitchReason::Preempted,
                now,
            );
            s
        };
        let mut s = mk();
        // T1 has affinity for cpu0 but is 50 ms over the margin: the
        // pick must take the minimum-surplus task instead.
        let picked = s.pick_next(CpuId(0), Time::ZERO).unwrap();
        assert_ne!(picked, TaskId(1), "affinity overrode the margin");
        let min = [TaskId(1), TaskId(2), TaskId(3)]
            .iter()
            .filter(|&&id| id != picked)
            .map(|&id| s.fresh_surplus(id))
            .fold(s.fresh_surplus(picked), Fixed::min);
        let margin = duration_fx(Duration::from_millis(1));
        assert!(s.fresh_surplus(picked) <= min + margin);
        // Within the margin, affinity wins: same setup but T1 only ran
        // a hair past its peers.
        let mut s = mk();
        // Give T2/T3 runs of 49.5 ms each — on cpu1, so only T1 keeps
        // affinity for cpu0 — leaving T1 within 1 ms of them.
        for id in [TaskId(2), TaskId(3)] {
            let got = s.pick_next(CpuId(1), Time::ZERO);
            assert_eq!(got, Some(id));
            s.put_prev(
                id,
                Duration::from_micros(49_500),
                SwitchReason::Preempted,
                Time::ZERO,
            );
        }
        assert_eq!(
            s.pick_next(CpuId(0), Time::ZERO),
            Some(TaskId(1)),
            "affinity must win inside the margin"
        );
    }

    #[test]
    fn steal_candidate_is_max_surplus_ready() {
        let mut s = Sfs::with_config(
            2,
            SfsConfig {
                quantum: Duration::from_millis(1),
                ..SfsConfig::default()
            },
        );
        let now = Time::ZERO;
        for i in 1..=3u64 {
            s.attach(TaskId(i), Weight::new(1).unwrap(), now);
        }
        assert_eq!(s.pick_next(CpuId(0), now), Some(TaskId(1)));
        s.put_prev(
            TaskId(1),
            Duration::from_millis(30),
            SwitchReason::Preempted,
            now,
        );
        assert_eq!(s.pick_next(CpuId(0), now), Some(TaskId(2)));
        s.put_prev(
            TaskId(2),
            Duration::from_millis(10),
            SwitchReason::Preempted,
            now,
        );
        // T1 is the most-ahead ready task; running tasks are excluded.
        assert_eq!(s.steal_candidate(), Some(TaskId(1)));
        let p = s.pick_next(CpuId(0), now).unwrap();
        assert_eq!(p, TaskId(3), "least surplus runs");
        assert_eq!(s.steal_candidate(), Some(TaskId(1)));
        // Charged surplus ranks victims: T1 with in-flight time beats
        // its own idle surplus.
        let base = s.charged_surplus(TaskId(1), Duration::ZERO, now).unwrap();
        let charged = s
            .charged_surplus(TaskId(1), Duration::from_millis(5), now)
            .unwrap();
        assert_eq!(charged - base, duration_fx(Duration::from_millis(5)));
        assert_eq!(s.charged_surplus(TaskId(99), Duration::ZERO, now), None);
    }

    #[test]
    fn set_weight_changes_future_shares() {
        let mut sim = MiniSim::new(Sfs::new(1));
        sim.spawn(1, 1);
        sim.spawn(2, 1);
        sim.run_quanta(500);
        let (a0, b0) = (sim.service(1), sim.service(2));
        assert_close(
            a0.as_nanos() as f64 / b0.as_nanos() as f64,
            1.0,
            0.01,
            "equal before",
        );
        sim.sched
            .set_weight(TaskId(2), Weight::new(3).unwrap(), sim.now);
        sim.run_quanta(2000);
        let a_gain = (sim.service(1) - a0).as_nanos() as f64;
        let b_gain = (sim.service(2) - b0).as_nanos() as f64;
        assert_close(b_gain / a_gain, 3.0, 0.05, "3:1 after reweight");
    }

    #[test]
    fn detach_ready_task() {
        let mut sim = MiniSim::new(Sfs::new(1));
        sim.spawn(1, 1);
        sim.spawn(2, 1);
        sim.spawn(3, 1);
        sim.run_quanta(9);
        sim.kill(3);
        assert_eq!(sim.sched.nr_tasks(), 2);
        sim.run_quanta(100);
        sim.sched.check_invariants();
    }

    #[test]
    #[should_panic(expected = "attached twice")]
    fn double_attach_panics() {
        let mut s = Sfs::new(1);
        s.attach(TaskId(1), Weight::DEFAULT, Time::ZERO);
        s.attach(TaskId(1), Weight::DEFAULT, Time::ZERO);
    }

    #[test]
    fn stats_are_populated() {
        let mut sim = MiniSim::new(Sfs::new(2));
        sim.spawn(1, 10);
        sim.spawn(2, 1);
        sim.run_quanta(50);
        let st = sim.sched.stats();
        assert!(st.picks > 0);
        assert!(st.readjust_calls > 0);
        assert!(st.weights_clamped > 0, "1:10 on 2 cpus must clamp");
        assert!(st.vt_changes > 0);
        assert!(st.weight_classes >= 1);
    }

    #[test]
    fn exact_mode_never_resorts() {
        // The old implementation re-sorted the whole surplus queue on
        // nearly every pick (the virtual time advances almost every
        // quantum). The bucket queue must do zero bulk re-sorts while
        // still advancing the virtual time constantly.
        let mut sim = MiniSim::new(Sfs::new(2));
        for i in 0..30 {
            sim.spawn(i, 1 + i % 7);
        }
        sim.run_quanta(300);
        sim.block(3, Duration::ZERO);
        sim.run_quanta(50);
        sim.wake(3);
        sim.sched
            .set_weight(TaskId(5), Weight::new(40).unwrap(), sim.now);
        sim.run_quanta(200);
        let st = sim.sched.stats();
        assert_eq!(st.full_resorts, 0, "bucket queue must never bulk-resort");
        assert_eq!(st.nodes_moved, 0);
        assert!(st.vt_changes > 100, "virtual time should advance freely");
        assert!(st.bucket_scans > 0);
        assert!(
            (1..=8).contains(&st.weight_classes),
            "7 raw weights (+ clamp cap) ⇒ few buckets, got {}",
            st.weight_classes
        );
        sim.sched.check_invariants();
    }

    #[test]
    fn clamp_changes_migrate_between_buckets() {
        // 1:10 on 2 CPUs clamps T2 at φ=1 (same bucket as T1). A third
        // light thread moves the cap to 2: T2 must migrate buckets, and
        // only T2 (the one clamped thread).
        let mut sim = MiniSim::new(Sfs::new(2));
        sim.spawn(1, 1);
        sim.spawn(2, 10);
        sim.run_quanta(10);
        assert_eq!(sim.sched.stats().weight_classes, 1, "both at φ=1");
        let migrations_before = sim.sched.stats().bucket_migrations;
        sim.spawn(3, 1);
        sim.run_quanta(10);
        let st = sim.sched.stats();
        assert!(
            st.bucket_migrations > migrations_before,
            "cap move must migrate the clamped thread"
        );
        assert_eq!(st.weight_classes, 2, "φ=1 bucket and φ=2 bucket");
        assert_eq!(
            sim.sched.adjusted_weight_of(TaskId(2)),
            Some(Fixed::from_int(2))
        );
        sim.sched.check_invariants();
    }

    #[test]
    fn reweighting_blocked_task_updates_phi() {
        // Regression: the old code updated `task.weight` but not the
        // stored `task.phi` on `set_weight`, so `adjusted_weight_of` on
        // a blocked task reported the pre-reweight φ until it next ran.
        let mut sim = MiniSim::new(Sfs::new(2));
        sim.spawn(1, 4);
        sim.spawn(2, 4);
        sim.run_quanta(4);
        sim.block(1, Duration::ZERO);
        sim.sched
            .set_weight(TaskId(1), Weight::new(9).unwrap(), sim.now);
        assert_eq!(
            sim.sched.adjusted_weight_of(TaskId(1)),
            Some(Fixed::from_int(9)),
            "blocked task must report its reweighted φ immediately"
        );
        sim.wake(1);
        sim.run_quanta(10);
        sim.sched.check_invariants();
    }

    #[test]
    fn reweighting_ready_task_moves_its_bucket() {
        let mut sim = MiniSim::new(Sfs::new(1));
        sim.spawn(1, 1);
        sim.spawn(2, 1);
        sim.run_quanta(4);
        assert_eq!(sim.sched.stats().weight_classes, 1);
        let before = sim.sched.stats().bucket_migrations;
        sim.sched
            .set_weight(TaskId(2), Weight::new(5).unwrap(), sim.now);
        let st = sim.sched.stats();
        assert_eq!(st.bucket_migrations, before + 1);
        assert_eq!(st.weight_classes, 2);
        sim.sched.check_invariants();
    }
}

#[cfg(test)]
mod affinity_tests {
    use super::*;
    use crate::sched::{Scheduler, SwitchReason};

    /// Lockstep driver that records per-task CPU placements.
    fn run_with_affinity(margin: Option<Duration>) -> (u64, Vec<Duration>) {
        let cfg = SfsConfig {
            quantum: Duration::from_millis(1),
            affinity_margin: margin,
            ..SfsConfig::default()
        };
        let mut sched = Sfs::with_config(2, cfg);
        let now0 = Time::ZERO;
        // Three equal tasks on two CPUs: the odd one out forces CPU
        // rotation, so plain SFS migrates constantly.
        for i in 0..3u64 {
            sched.attach(TaskId(i), Weight::new(1).unwrap(), now0);
        }
        let mut now = now0;
        let mut running: Vec<Option<TaskId>> = vec![None; 2];
        for _ in 0..2000 {
            for (c, slot) in running.iter_mut().enumerate() {
                if slot.is_none() {
                    *slot = sched.pick_next(CpuId(c as u32), now);
                }
            }
            now += Duration::from_millis(1);
            for slot in &mut running {
                if let Some(id) = slot.take() {
                    sched.put_prev(id, Duration::from_millis(1), SwitchReason::Preempted, now);
                }
            }
        }
        let services: Vec<Duration> = (0..3u64)
            .map(|i| sched.tags_of(TaskId(i)).unwrap().service)
            .collect();
        (sched.stats().migrations, services)
    }

    #[test]
    fn affinity_reduces_migrations_without_breaking_fairness() {
        let (mig_off, svc_off) = run_with_affinity(None);
        let (mig_on, svc_on) = run_with_affinity(Some(Duration::from_millis(4)));
        assert!(mig_off > 100, "baseline should migrate: {mig_off}");
        assert!(
            mig_on * 2 < mig_off,
            "affinity did not help: {mig_on} vs {mig_off} migrations"
        );
        // Equal weights: every task still gets ~1/3 of 2 CPUs.
        for svc in [&svc_off, &svc_on] {
            let min = svc.iter().min().unwrap().as_nanos() as f64;
            let max = svc.iter().max().unwrap().as_nanos() as f64;
            assert!(max / min < 1.15, "fairness broken: {svc:?}");
        }
        let _ = svc_on;
    }

    #[test]
    fn zero_margin_only_perturbs_by_tie_breaking() {
        let (_mig_zero, svc_zero) = run_with_affinity(Some(Duration::ZERO));
        let (_mig_off, svc_off) = run_with_affinity(None);
        // A zero margin only re-breaks exact surplus ties by affinity;
        // allocations may differ by a few quanta but no more.
        for (a, b) in svc_zero.iter().zip(svc_off.iter()) {
            let diff = if a > b { *a - *b } else { *b - *a };
            assert!(
                diff <= Duration::from_millis(4),
                "tie-breaking drifted allocations: {svc_zero:?} vs {svc_off:?}"
            );
        }
    }
}
