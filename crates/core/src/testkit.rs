//! A miniature lockstep driver for scheduler unit tests.
//!
//! This is *not* the full discrete-event simulator (that lives in
//! `sfs-sim`); it is a deliberately simple harness used by the unit tests
//! of the individual policies in this crate: all processors tick in
//! lockstep with a fixed quantum, and tasks are CPU-bound unless the test
//! blocks/wakes them explicitly.

use std::collections::HashMap;

use crate::sched::{Scheduler, SwitchReason};
use crate::task::{CpuId, TaskId, Weight};
use crate::time::{Duration, Time};

/// Lockstep test driver around any [`Scheduler`].
pub struct MiniSim<S: Scheduler> {
    /// The policy under test (public for direct inspection).
    pub sched: S,
    /// Current simulated time.
    pub now: Time,
    /// Quantum granted on every dispatch.
    pub quantum: Duration,
    cpus: Vec<Option<TaskId>>,
    service: HashMap<TaskId, Duration>,
}

impl<S: Scheduler> MiniSim<S> {
    /// Wraps a scheduler with `cpus` processors and a 1 ms quantum.
    pub fn new(sched: S) -> MiniSim<S> {
        let n = sched.cpus() as usize;
        MiniSim {
            sched,
            now: Time::ZERO,
            quantum: Duration::from_millis(1),
            cpus: vec![None; n],
            service: HashMap::new(),
        }
    }

    /// Attaches a new runnable task.
    pub fn spawn(&mut self, id: u64, w: u64) {
        self.sched
            .attach(TaskId(id), Weight::new(w).unwrap(), self.now);
        self.service.entry(TaskId(id)).or_insert(Duration::ZERO);
    }

    /// Blocks a task, giving up its CPU mid-quantum after `used` of the
    /// quantum. If the task is not currently on a CPU, lockstep quanta
    /// are run until the scheduler dispatches it (only a running task
    /// can block, as in a real system).
    pub fn block(&mut self, id: u64, used: Duration) {
        let tid = TaskId(id);
        for _ in 0..100_000 {
            if let Some(slot) = self.cpus.iter_mut().find(|c| **c == Some(tid)) {
                *slot = None;
                *self.service.get_mut(&tid).unwrap() += used;
                self.sched
                    .put_prev(tid, used, SwitchReason::Blocked, self.now);
                return;
            }
            self.run_quanta(1);
        }
        panic!("block: task {tid} was never scheduled");
    }

    /// Wakes a blocked task.
    pub fn wake(&mut self, id: u64) {
        self.sched.wake(TaskId(id), self.now);
    }

    /// Kills a task wherever it is.
    pub fn kill(&mut self, id: u64) {
        let id = TaskId(id);
        if let Some(slot) = self.cpus.iter_mut().find(|c| **c == Some(id)) {
            *slot = None;
            self.sched
                .put_prev(id, Duration::ZERO, SwitchReason::Exited, self.now);
        } else {
            self.sched.detach(id, self.now);
        }
    }

    /// Fills any idle CPUs, then runs `n` full lockstep quanta:
    /// every CPU's task runs one whole quantum, is preempted, and the
    /// CPUs are refilled in index order.
    pub fn run_quanta(&mut self, n: u64) {
        for _ in 0..n {
            self.fill();
            self.now += self.quantum;
            let running: Vec<(usize, TaskId)> = self
                .cpus
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.map(|t| (i, t)))
                .collect();
            for (i, t) in running {
                *self.service.get_mut(&t).unwrap() += self.quantum;
                self.sched
                    .put_prev(t, self.quantum, SwitchReason::Preempted, self.now);
                self.cpus[i] = None;
            }
        }
        self.fill();
    }

    /// Dispatches onto all idle CPUs.
    pub fn fill(&mut self) {
        for i in 0..self.cpus.len() {
            if self.cpus[i].is_none() {
                self.cpus[i] = self.sched.pick_next(CpuId(i as u32), self.now);
            }
        }
    }

    /// Cumulative CPU service of a task.
    pub fn service(&self, id: u64) -> Duration {
        self.service
            .get(&TaskId(id))
            .copied()
            .unwrap_or(Duration::ZERO)
    }

    /// Service of `a` divided by service of `b` (as f64, for ratio checks).
    pub fn ratio(&self, a: u64, b: u64) -> f64 {
        self.service(a).as_nanos() as f64 / self.service(b).as_nanos().max(1) as f64
    }

    /// The tasks currently occupying CPUs.
    pub fn running(&self) -> Vec<Option<TaskId>> {
        self.cpus.clone()
    }
}

/// Asserts `got` is within `tol` (relative) of `want`.
pub fn assert_close(got: f64, want: f64, tol: f64, what: &str) {
    let err = if want == 0.0 {
        got.abs()
    } else {
        (got - want).abs() / want.abs()
    };
    assert!(
        err <= tol,
        "{what}: got {got}, want {want} (rel err {err:.4} > {tol})"
    );
}
