//! Weight-oblivious round-robin, the simplest work-conserving baseline.
//!
//! Used by the test suite as a sanity reference (every scheduler should
//! at least match round-robin's work conservation) and by the overhead
//! benchmarks as the lower bound on per-decision cost.

use std::collections::{HashMap, VecDeque};

use crate::sched::{SchedStats, Scheduler, SwitchReason};
use crate::task::{CpuId, TaskId, TaskState, Weight};
use crate::time::{Duration, Time};

#[derive(Debug, Clone)]
struct RrTask {
    weight: Weight,
    state: TaskState,
}

/// FIFO round-robin over all ready tasks.
pub struct RoundRobin {
    cpus: u32,
    quantum: Duration,
    tasks: HashMap<TaskId, RrTask>,
    ready: VecDeque<TaskId>,
    stats: SchedStats,
}

impl RoundRobin {
    /// Creates a round-robin scheduler with the given quantum.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn new(cpus: u32, quantum: Duration) -> RoundRobin {
        assert!(cpus > 0, "need at least one processor");
        RoundRobin {
            cpus,
            quantum,
            tasks: HashMap::new(),
            ready: VecDeque::new(),
            stats: SchedStats::default(),
        }
    }
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "RoundRobin"
    }

    fn cpus(&self) -> u32 {
        self.cpus
    }

    fn attach(&mut self, id: TaskId, w: Weight, _now: Time) {
        let prev = self.tasks.insert(
            id,
            RrTask {
                weight: w,
                state: TaskState::Ready,
            },
        );
        assert!(prev.is_none(), "task {id} attached twice");
        self.stats.events += 1;
        self.stats.event_steps += 1;
        self.ready.push_back(id);
    }

    fn detach(&mut self, id: TaskId, _now: Time) {
        let t = self.tasks.remove(&id).expect("detaching unknown task");
        assert!(!t.state.is_running(), "detach of running task {id}");
        self.stats.events += 1;
        self.stats.event_steps += self.ready.len() as u64;
        self.ready.retain(|&r| r != id);
    }

    fn set_weight(&mut self, id: TaskId, w: Weight, _now: Time) {
        self.stats.events += 1;
        self.stats.event_steps += 1;
        self.tasks.get_mut(&id).expect("unknown task").weight = w;
    }

    fn weight_of(&self, id: TaskId) -> Option<Weight> {
        self.tasks.get(&id).map(|t| t.weight)
    }

    fn wake(&mut self, id: TaskId, _now: Time) {
        self.stats.events += 1;
        self.stats.event_steps += 1;
        let t = self.tasks.get_mut(&id).expect("waking unknown task");
        assert!(matches!(t.state, TaskState::Blocked));
        t.state = TaskState::Ready;
        self.ready.push_back(id);
    }

    fn pick_next(&mut self, cpu: CpuId, _now: Time) -> Option<TaskId> {
        let id = self.ready.pop_front()?;
        self.tasks.get_mut(&id).unwrap().state = TaskState::Running(cpu);
        self.stats.picks += 1;
        Some(id)
    }

    fn put_prev(&mut self, id: TaskId, _ran: Duration, reason: SwitchReason, _now: Time) {
        self.stats.events += 1;
        self.stats.event_steps += 1;
        assert!(self.tasks[&id].state.is_running());
        match reason {
            SwitchReason::Preempted | SwitchReason::Yielded => {
                self.tasks.get_mut(&id).unwrap().state = TaskState::Ready;
                self.ready.push_back(id);
            }
            SwitchReason::Blocked => {
                self.tasks.get_mut(&id).unwrap().state = TaskState::Blocked;
            }
            SwitchReason::Exited => {
                self.tasks.remove(&id);
            }
        }
    }

    fn time_slice(&self, _id: TaskId) -> Duration {
        self.quantum
    }

    fn nr_runnable(&self) -> usize {
        self.tasks
            .values()
            .filter(|t| t.state.is_runnable())
            .count()
    }

    fn nr_tasks(&self) -> usize {
        self.tasks.len()
    }

    fn stats(&self) -> SchedStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{assert_close, MiniSim};

    #[test]
    fn equal_shares() {
        let mut sim = MiniSim::new(RoundRobin::new(1, Duration::from_millis(1)));
        sim.spawn(1, 1);
        sim.spawn(2, 99);
        sim.run_quanta(1000);
        assert_close(sim.ratio(1, 2), 1.0, 0.01, "round robin is fair-ish");
    }

    #[test]
    fn fifo_order() {
        let mut s = RoundRobin::new(1, Duration::from_millis(1));
        for i in 0..3 {
            s.attach(TaskId(i), Weight::DEFAULT, Time::ZERO);
        }
        let picks: Vec<_> = (0..6)
            .map(|_| {
                let id = s.pick_next(CpuId(0), Time::ZERO).unwrap();
                s.put_prev(
                    id,
                    Duration::from_millis(1),
                    SwitchReason::Preempted,
                    Time::ZERO,
                );
                id.0
            })
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn block_and_wake_requeues_at_tail() {
        let mut s = RoundRobin::new(1, Duration::from_millis(1));
        s.attach(TaskId(0), Weight::DEFAULT, Time::ZERO);
        s.attach(TaskId(1), Weight::DEFAULT, Time::ZERO);
        let id = s.pick_next(CpuId(0), Time::ZERO).unwrap();
        s.put_prev(id, Duration::ZERO, SwitchReason::Blocked, Time::ZERO);
        assert_eq!(s.nr_runnable(), 1);
        s.wake(id, Time::ZERO);
        assert_eq!(s.nr_runnable(), 2);
        // The woken task goes behind the other ready task.
        assert_eq!(s.pick_next(CpuId(0), Time::ZERO), Some(TaskId(1)));
    }
}
