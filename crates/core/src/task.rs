//! Task and processor identifiers and shared per-task scheduling state.

use core::fmt;
use core::num::NonZeroU64;

use crate::fixed::Fixed;
use crate::time::{Duration, Time};

/// Identifies a schedulable entity (the paper's "thread").
///
/// Ids are allocated by the substrate (simulator or runtime); schedulers
/// treat them as opaque keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifies a tenant group in hierarchical scheduling.
///
/// Tenants are declared by a `PolicySpec`'s `groups(...)` clause; the
/// id is the group's position in that clause, so it is stable across
/// the spec's parse ∘ `Display` round-trip. Tasks carry an optional
/// tenant and the hierarchical scheduler (`crate::hier`) enforces each
/// tenant's share regardless of how many tasks the tenant runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

/// Identifies one processor of the symmetric multiprocessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpuId(pub u32);

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// A proportional share expressed as a relative weight (§2).
///
/// A thread with weight `w_i` should receive `w_i / Σ_j w_j` of the total
/// processor bandwidth, subject to the feasibility constraint (Eq. 1).
/// Weights are strictly positive; the kernel implementation assigns every
/// thread a default weight of 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Weight(NonZeroU64);

impl Weight {
    /// The default weight assigned to new threads (§3.1).
    pub const DEFAULT: Weight = match NonZeroU64::new(1) {
        Some(w) => Weight(w),
        None => unreachable!(),
    };

    /// Creates a weight; returns `None` for zero (invalid, like the
    /// kernel's `setweight` rejecting non-positive weights).
    pub fn new(w: u64) -> Option<Weight> {
        NonZeroU64::new(w).map(Weight)
    }

    /// Returns the raw weight value.
    pub const fn get(self) -> u64 {
        self.0.get()
    }

    /// The weight as a fixed-point value.
    pub fn as_fixed(self) -> Fixed {
        Fixed::from_int(self.get() as i64)
    }
}

impl Default for Weight {
    fn default() -> Weight {
        Weight::DEFAULT
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.get())
    }
}

/// Convenience constructor for tests and examples.
///
/// # Panics
///
/// Panics if `w` is zero.
pub fn weight(w: u64) -> Weight {
    Weight::new(w).expect("weight must be positive")
}

/// Run state of a task as seen by a scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// On the run queue, waiting for a processor.
    Ready,
    /// Currently executing on the given processor.
    Running(CpuId),
    /// Sleeping on an I/O or synchronisation event.
    Blocked,
}

impl TaskState {
    /// True for `Ready` and `Running` (the paper's "runnable").
    pub fn is_runnable(self) -> bool {
        !matches!(self, TaskState::Blocked)
    }

    /// True only for `Running`.
    pub fn is_running(self) -> bool {
        matches!(self, TaskState::Running(_))
    }
}

/// Per-task accounting shared by the tag-based schedulers (SFQ, SFS,
/// WFQ, BVT).
///
/// Field names follow §2.3: `start_tag`/`finish_tag` are the virtual-time
/// tags `S_i`/`F_i` and `phi` is the instantaneous (readjusted) weight
/// `φ_i`. The surplus `α_i = φ_i · (S_i − v)` is never stored — it
/// depends on the live virtual time, so SFS derives it on demand.
#[derive(Debug, Clone)]
pub struct TagTask {
    /// The task this state belongs to.
    pub id: TaskId,
    /// The user-assigned weight `w_i`.
    pub weight: Weight,
    /// The instantaneous weight `φ_i` produced by weight readjustment.
    pub phi: Fixed,
    /// Start tag `S_i`.
    pub start_tag: Fixed,
    /// Finish tag `F_i`.
    pub finish_tag: Fixed,
    /// Current run state.
    pub state: TaskState,
    /// Total CPU service received so far.
    pub service: Duration,
    /// Instant the task was last dispatched (while `Running`).
    pub dispatched_at: Time,
}

impl TagTask {
    /// Creates accounting state for a newly arrived task.
    pub fn new(id: TaskId, w: Weight, start_tag: Fixed) -> TagTask {
        TagTask {
            id,
            weight: w,
            phi: w.as_fixed(),
            start_tag,
            finish_tag: start_tag,
            state: TaskState::Ready,
            service: Duration::ZERO,
            dispatched_at: Time::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_rejects_zero() {
        assert!(Weight::new(0).is_none());
        assert_eq!(Weight::new(5).unwrap().get(), 5);
        assert_eq!(Weight::DEFAULT.get(), 1);
        assert_eq!(Weight::default(), Weight::DEFAULT);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn weight_helper_panics_on_zero() {
        let _ = weight(0);
    }

    #[test]
    fn weight_as_fixed() {
        assert_eq!(weight(7).as_fixed(), Fixed::from_int(7));
    }

    #[test]
    fn state_predicates() {
        assert!(TaskState::Ready.is_runnable());
        assert!(TaskState::Running(CpuId(0)).is_runnable());
        assert!(!TaskState::Blocked.is_runnable());
        assert!(TaskState::Running(CpuId(1)).is_running());
        assert!(!TaskState::Ready.is_running());
    }

    #[test]
    fn new_tag_task_starts_at_virtual_time() {
        let t = TagTask::new(TaskId(3), weight(2), Fixed::from_int(9));
        assert_eq!(t.start_tag, Fixed::from_int(9));
        assert_eq!(t.finish_tag, Fixed::from_int(9));
        assert_eq!(t.phi, Fixed::from_int(2));
        assert_eq!(t.state, TaskState::Ready);
        assert_eq!(t.service, Duration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", TaskId(4)), "T4");
        assert_eq!(format!("{}", CpuId(1)), "cpu1");
        assert_eq!(format!("{}", TenantId(2)), "G2");
        assert_eq!(format!("{}", weight(10)), "10");
    }
}
