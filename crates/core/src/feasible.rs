//! Bookkeeping that keeps a scheduler's weights feasible at all times.
//!
//! The kernel implementation invokes the readjustment algorithm "every
//! time the set of runnable threads changes (i.e., after each arrival,
//! departure, blocking event or wakeup event), or if the user changes the
//! weight of a thread" (§3.1). [`FeasibleWeights`] packages that
//! behaviour: it owns the weight-descending run queue (the first of the
//! three kernel queues), the running total of raw weights, and the
//! current clamp set, and re-runs [`readjust`](crate::readjust::readjust)
//! on every mutation.
//!
//! Because at most `p − 1` threads can ever be clamped (§2.1), the clamp
//! set is a tiny vector and `phi` lookups are O(p).

use std::collections::HashMap;

use crate::fixed::Fixed;
use crate::queues::{NodeRef, Order, SortedList};
use crate::readjust::Readjustment;
use crate::task::{TaskId, Weight};

/// Tracks the runnable set's weights and their feasible readjustment.
#[derive(Debug)]
pub struct FeasibleWeights {
    cpus: u32,
    enabled: bool,
    weight_q: SortedList,
    nodes: HashMap<TaskId, NodeRef>,
    total: u128,
    clamped: Vec<TaskId>,
    cap: Option<Fixed>,
    /// Tasks whose `φ` changed in the most recent readjustment pass
    /// (clamped, unclamped, or still clamped under a moved cap); drained
    /// by [`FeasibleWeights::take_changed`].
    changed: Vec<TaskId>,
    /// Number of readjustment passes run (for [`SchedStats`]).
    ///
    /// [`SchedStats`]: crate::sched::SchedStats
    pub calls: u64,
    /// Total clamped-thread count across all passes.
    pub clamps: u64,
}

impl FeasibleWeights {
    /// Creates the tracker. When `enabled` is false the tracker still
    /// maintains the weight queue but never clamps (plain GPS behaviour,
    /// used to reproduce the *un*readjusted baselines).
    pub fn new(cpus: u32, enabled: bool) -> FeasibleWeights {
        FeasibleWeights {
            cpus,
            enabled,
            weight_q: SortedList::new(Order::Descending),
            nodes: HashMap::new(),
            total: 0,
            clamped: Vec::new(),
            cap: None,
            changed: Vec::new(),
            calls: 0,
            clamps: 0,
        }
    }

    /// Number of runnable tasks tracked.
    pub fn len(&self) -> usize {
        self.weight_q.len()
    }

    /// True if no runnable task is tracked.
    pub fn is_empty(&self) -> bool {
        self.weight_q.is_empty()
    }

    /// Sum of raw weights over the runnable set.
    pub fn total_weight(&self) -> u128 {
        self.total
    }

    /// Adds a task to the runnable set and readjusts.
    /// Returns `true` if any task's instantaneous weight changed.
    pub fn insert(&mut self, id: TaskId, w: Weight) -> bool {
        let node = self.weight_q.insert(w.as_fixed(), id);
        let prev = self.nodes.insert(id, node);
        debug_assert!(prev.is_none(), "task {id} already tracked");
        self.total += w.get() as u128;
        self.run()
    }

    /// Removes a task from the runnable set (block/exit) and readjusts.
    /// Returns `true` if any remaining task's instantaneous weight changed.
    pub fn remove(&mut self, id: TaskId, w: Weight) -> bool {
        let node = self.nodes.remove(&id).expect("removing untracked task");
        self.weight_q.remove(node);
        self.total -= w.get() as u128;
        self.clamped.retain(|&c| c != id);
        self.run()
    }

    /// Updates a task's weight in place and readjusts.
    pub fn set_weight(&mut self, id: TaskId, old: Weight, new: Weight) -> bool {
        let node = self.nodes[&id];
        self.weight_q.update_key(node, new.as_fixed());
        self.total = self.total - old.get() as u128 + new.get() as u128;
        self.run()
    }

    /// The instantaneous weight `φ_i` for a runnable task with raw weight
    /// `w`: the clamp cap if the task is clamped, its own weight otherwise.
    pub fn phi(&self, id: TaskId, w: Weight) -> Fixed {
        match self.cap {
            Some(cap) if self.clamped.contains(&id) => cap,
            _ => w.as_fixed(),
        }
    }

    /// True if the task is currently clamped.
    pub fn is_clamped(&self, id: TaskId) -> bool {
        self.clamped.contains(&id)
    }

    /// The current clamp set (at most `p − 1` ids).
    pub fn clamped(&self) -> &[TaskId] {
        &self.clamped
    }

    /// Iterates runnable tasks in descending weight order.
    pub fn iter_desc(&self) -> impl Iterator<Item = (Fixed, TaskId)> + '_ {
        self.weight_q.iter()
    }

    /// Iterates runnable tasks in ascending weight order (the backwards
    /// scan used by the scheduling heuristic, §3.2 footnote 8).
    pub fn iter_asc(&self) -> impl Iterator<Item = (Fixed, TaskId)> + '_ {
        self.weight_q.iter_rev()
    }

    /// Drains the set of tasks whose instantaneous weight `φ` changed in
    /// the most recent mutation (`insert`/`remove`/`set_weight`): tasks
    /// newly clamped, newly unclamped, or still clamped while the cap
    /// moved. At most `p − 1` tasks are ever clamped, so the set is tiny.
    ///
    /// Callers that keep per-task `φ` state (the SFS bucket queue) use
    /// this to migrate exactly the affected tasks instead of rescanning
    /// the whole runnable set. The directly mutated task itself is *not*
    /// reported unless its clamp state changed — its `φ` obviously moved
    /// with its raw weight and the caller already knows.
    pub fn take_changed(&mut self) -> Vec<TaskId> {
        std::mem::take(&mut self.changed)
    }

    /// Re-runs readjustment over the current runnable set.
    /// Returns `true` if the clamp set or cap changed.
    fn run(&mut self) -> bool {
        self.changed.clear();
        if !self.enabled {
            return false;
        }
        self.calls += 1;
        // Walk at most the first p−1 entries of the weight queue.
        let p = self.cpus as u128;
        let adj: Readjustment = if p <= 1 || self.weight_q.is_empty() {
            Readjustment::UNCHANGED
        } else {
            // Collect the (at most p−1) largest weights; readjust() only
            // needs the prefix plus the total.
            let prefix: Vec<u64> = self
                .weight_q
                .iter()
                .take(self.cpus as usize)
                .map(|(k, _)| k.trunc() as u64)
                .collect();
            readjust_prefix(&prefix, self.total, self.cpus)
        };

        let new_clamped: Vec<TaskId> = self
            .weight_q
            .iter()
            .take(adj.clamped)
            .map(|(_, id)| id)
            .collect();
        let changed = new_clamped != self.clamped || adj.cap != self.cap;
        for &id in &self.clamped {
            if !new_clamped.contains(&id) {
                self.changed.push(id); // unclamped: φ back to raw weight
            }
        }
        for &id in &new_clamped {
            if !self.clamped.contains(&id) {
                self.changed.push(id); // newly clamped to the cap
            } else if adj.cap != self.cap {
                self.changed.push(id); // still clamped, but the cap moved
            }
        }
        self.clamps += adj.clamped as u64;
        self.clamped = new_clamped;
        self.cap = adj.cap;
        changed
    }
}

/// Runs the feasibility walk over the descending `prefix` of the weight
/// queue given the precomputed `total`; equivalent to
/// [`readjust`] on the full sorted weight vector but O(p).
fn readjust_prefix(prefix: &[u64], total: u128, cpus: u32) -> Readjustment {
    let mut rem_sum = total;
    let mut rem_p = cpus as u128;
    let mut clamped = 0usize;
    for &w in prefix {
        if rem_p <= 1 {
            break;
        }
        if (w as u128) * rem_p > rem_sum {
            rem_sum -= w as u128;
            rem_p -= 1;
            clamped += 1;
        } else {
            break;
        }
    }
    if clamped == 0 {
        return Readjustment::UNCHANGED;
    }
    let cap = if rem_sum == 0 {
        Fixed::ONE
    } else {
        Fixed::from_ratio(rem_sum as i64, rem_p as i64)
    };
    Readjustment {
        clamped,
        cap: Some(cap),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::readjust::is_feasible_fixed;
    use crate::task::weight;

    fn phis(f: &FeasibleWeights, tasks: &[(TaskId, Weight)]) -> Vec<Fixed> {
        tasks.iter().map(|&(id, w)| f.phi(id, w)).collect()
    }

    #[test]
    fn example1_clamps_heavy_thread() {
        let mut f = FeasibleWeights::new(2, true);
        f.insert(TaskId(1), weight(1));
        let changed = f.insert(TaskId(2), weight(10));
        assert!(changed);
        assert!(f.is_clamped(TaskId(2)));
        assert!(!f.is_clamped(TaskId(1)));
        assert_eq!(f.phi(TaskId(2), weight(10)), Fixed::from_int(1));
        assert_eq!(f.phi(TaskId(1), weight(1)), Fixed::from_int(1));
    }

    #[test]
    fn blocking_triggers_reclamp() {
        // 1:1:2 feasible on 2 CPUs; removing a weight-1 task makes 1:2
        // infeasible (§1.2).
        let mut f = FeasibleWeights::new(2, true);
        f.insert(TaskId(1), weight(1));
        f.insert(TaskId(2), weight(1));
        f.insert(TaskId(3), weight(2));
        assert!(!f.is_clamped(TaskId(3)));
        let changed = f.remove(TaskId(1), weight(1));
        assert!(changed);
        assert!(f.is_clamped(TaskId(3)));
        assert_eq!(f.phi(TaskId(3), weight(2)), Fixed::from_int(1));
    }

    #[test]
    fn disabled_tracker_never_clamps() {
        let mut f = FeasibleWeights::new(2, false);
        f.insert(TaskId(1), weight(1));
        let changed = f.insert(TaskId(2), weight(1_000));
        assert!(!changed);
        assert!(!f.is_clamped(TaskId(2)));
        assert_eq!(f.phi(TaskId(2), weight(1_000)), Fixed::from_int(1_000));
        assert_eq!(f.calls, 0);
    }

    #[test]
    fn set_weight_reclamps() {
        let mut f = FeasibleWeights::new(2, true);
        f.insert(TaskId(1), weight(1));
        f.insert(TaskId(2), weight(1));
        assert!(f.clamped().is_empty());
        let changed = f.set_weight(TaskId(2), weight(1), weight(50));
        assert!(changed);
        assert!(f.is_clamped(TaskId(2)));
    }

    #[test]
    fn resulting_weights_are_feasible() {
        let mut f = FeasibleWeights::new(4, true);
        let tasks: Vec<(TaskId, Weight)> = [100u64, 50, 10, 1, 1, 1]
            .iter()
            .enumerate()
            .map(|(i, &w)| (TaskId(i as u64), weight(w)))
            .collect();
        for &(id, w) in &tasks {
            f.insert(id, w);
        }
        let phi = phis(&f, &tasks);
        assert!(is_feasible_fixed(&phi, 4), "{phi:?}");
    }

    #[test]
    fn total_weight_tracks_mutations() {
        let mut f = FeasibleWeights::new(2, true);
        f.insert(TaskId(1), weight(3));
        f.insert(TaskId(2), weight(4));
        assert_eq!(f.total_weight(), 7);
        f.set_weight(TaskId(2), weight(4), weight(10));
        assert_eq!(f.total_weight(), 13);
        f.remove(TaskId(1), weight(3));
        assert_eq!(f.total_weight(), 10);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn iter_asc_is_reverse_of_desc() {
        let mut f = FeasibleWeights::new(2, true);
        for (i, w) in [5u64, 3, 9, 1].iter().enumerate() {
            f.insert(TaskId(i as u64), weight(*w));
        }
        let desc: Vec<_> = f.iter_desc().map(|(_, id)| id).collect();
        let mut asc: Vec<_> = f.iter_asc().map(|(_, id)| id).collect();
        asc.reverse();
        assert_eq!(desc, asc);
    }

    #[test]
    fn take_changed_reports_exact_phi_delta() {
        let mut f = FeasibleWeights::new(2, true);
        f.insert(TaskId(1), weight(1));
        f.insert(TaskId(2), weight(1));
        // Setup churn: with n ≤ p the heaviest task is transiently
        // clamped at cap 1; drain that before asserting.
        let _ = f.take_changed();
        // A feasibility-neutral arrival reports nothing.
        f.insert(TaskId(3), weight(1));
        assert!(f.take_changed().is_empty());
        // A weight-30 arrival on 2 CPUs is clamped immediately (cap
        // (1+1+1)/1 = 3): only the new task itself is affected.
        f.insert(TaskId(4), weight(30));
        assert_eq!(f.take_changed(), vec![TaskId(4)]);
        // Draining twice yields nothing new.
        assert!(f.take_changed().is_empty());
        assert_eq!(f.phi(TaskId(4), weight(30)), Fixed::from_int(3));
        // Another light arrival moves the cap to 4: T4 stays clamped
        // but its φ changed, so it is reported again.
        f.insert(TaskId(5), weight(1));
        assert_eq!(f.take_changed(), vec![TaskId(4)]);
        assert_eq!(f.phi(TaskId(4), weight(30)), Fixed::from_int(4));
        // Dropping T4's weight to 1 unclamps it.
        f.set_weight(TaskId(4), weight(30), weight(1));
        assert_eq!(f.take_changed(), vec![TaskId(4)]);
        assert!(!f.is_clamped(TaskId(4)));
        // A feasibility-neutral departure reports nothing.
        f.remove(TaskId(5), weight(1));
        assert!(f.take_changed().is_empty());
    }

    #[test]
    #[should_panic(expected = "removing untracked task")]
    fn remove_untracked_panics() {
        let mut f = FeasibleWeights::new(2, true);
        f.remove(TaskId(9), weight(1));
    }
}
