//! Bookkeeping that keeps a scheduler's weights feasible at all times.
//!
//! The kernel implementation invokes the readjustment algorithm "every
//! time the set of runnable threads changes (i.e., after each arrival,
//! departure, blocking event or wakeup event), or if the user changes the
//! weight of a thread" (§3.1). [`FeasibleWeights`] packages that
//! behaviour — but not with the kernel's weight-descending linked list,
//! whose sorted insert paid O(position) per arrival and made every
//! wakeup of a mid-weight thread linear in the runnable-set size.
//!
//! Readjustment never needs a totally ordered list of *threads*: the
//! §2.1 walk only reads the at-most-`p − 1` largest weights plus the
//! running total, and threads of equal weight are interchangeable. So
//! the runnable set is held as a **per-weight-class count map**
//! (`BTreeMap<weight, BTreeSet<TaskId>>`): `insert`, `remove` and
//! `set_weight` are O(p + log C) for `C` distinct weights, and the
//! top-(p−1) prefix is read off the heaviest classes directly.
//!
//! The clamp boundary can never split a weight class: clamping a thread
//! of weight `w` forces the final cap below `w` (its clamp condition is
//! `w · rem_p > rem_sum`), while *stopping* at a thread of the same
//! weight forces the cap to at least `w` — a contradiction. Hence the
//! clamp set is always a union of whole classes, whichever order ties
//! are walked in, and membership is order-independent. At most `p − 1`
//! threads are ever clamped (§2.1), so the clamp set is a tiny sorted
//! vector and `phi` lookups are O(log p) binary searches.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};

use crate::fixed::Fixed;
use crate::queues::tree_steps;
use crate::readjust::Readjustment;
use crate::task::{TaskId, Weight};

/// Tracks the runnable set's weights and their feasible readjustment.
#[derive(Debug)]
pub struct FeasibleWeights {
    cpus: u32,
    enabled: bool,
    /// One id set per distinct raw weight; the count map replacing the
    /// kernel's weight-descending thread list (queue #1 of §3.1).
    classes: BTreeMap<u64, BTreeSet<TaskId>>,
    /// Runnable tasks tracked (sum of class sizes).
    len: usize,
    total: u128,
    /// Currently clamped task ids, sorted for binary search; at most
    /// `p − 1` entries.
    clamped: Vec<TaskId>,
    cap: Option<Fixed>,
    /// Tasks whose `φ` changed in the most recent readjustment pass
    /// (clamped, unclamped, or still clamped under a moved cap); drained
    /// by [`FeasibleWeights::take_changed`].
    changed: Vec<TaskId>,
    /// Number of readjustment passes run (for [`SchedStats`]).
    ///
    /// [`SchedStats`]: crate::sched::SchedStats
    pub calls: u64,
    /// Total clamped-thread count across all passes.
    pub clamps: u64,
    /// Readjustment bookkeeping steps (class-map updates, prefix walks
    /// and clamp-set diffs); the event-path cost counter.
    walk_steps: u64,
    /// Individual weights collected for the most recent §2.1 prefix
    /// walk; readjustment can clamp at most `p − 1` threads, so this
    /// never exceeds `cpus − 1`.
    last_prefix_len: usize,
    /// Clamp-set membership probes served (`phi` / `is_clamped`).
    lookups: Cell<u64>,
    /// Entries examined across all membership probes.
    lookup_steps: Cell<u64>,
}

impl FeasibleWeights {
    /// Creates the tracker. When `enabled` is false the tracker still
    /// maintains the weight classes but never clamps (plain GPS
    /// behaviour, used to reproduce the *un*readjusted baselines).
    pub fn new(cpus: u32, enabled: bool) -> FeasibleWeights {
        FeasibleWeights {
            cpus,
            enabled,
            classes: BTreeMap::new(),
            len: 0,
            total: 0,
            clamped: Vec::new(),
            cap: None,
            changed: Vec::new(),
            calls: 0,
            clamps: 0,
            walk_steps: 0,
            last_prefix_len: 0,
            lookups: Cell::new(0),
            lookup_steps: Cell::new(0),
        }
    }

    /// Number of runnable tasks tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no runnable task is tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of raw weights over the runnable set.
    pub fn total_weight(&self) -> u128 {
        self.total
    }

    /// Number of distinct raw weights in the runnable set.
    pub fn distinct_weights(&self) -> usize {
        self.classes.len()
    }

    /// Cumulative event-path steps: class-map updates plus readjustment
    /// bookkeeping.
    pub fn event_steps(&self) -> u64 {
        self.walk_steps
    }

    /// Clamp-set probe accounting as `(probes, entries examined)`; the
    /// churn bench asserts the per-probe cost stays independent of the
    /// runnable-set size.
    pub fn clamp_lookup_stats(&self) -> (u64, u64) {
        (self.lookups.get(), self.lookup_steps.get())
    }

    /// The O(log C) cost estimate for one class-map operation with `C`
    /// distinct weights, charged to [`FeasibleWeights::event_steps`].
    fn map_steps(&self) -> u64 {
        tree_steps(self.classes.len())
    }

    /// Adds a task to the runnable set and readjusts.
    /// Returns `true` if any task's instantaneous weight changed.
    pub fn insert(&mut self, id: TaskId, w: Weight) -> bool {
        self.walk_steps += self.map_steps();
        let fresh = self.classes.entry(w.get()).or_default().insert(id);
        debug_assert!(fresh, "task {id} already tracked");
        self.len += 1;
        self.total += w.get() as u128;
        self.run()
    }

    /// Adds a whole batch of tasks and readjusts **once**. The final
    /// clamp set, cap, and change report are identical to one
    /// [`FeasibleWeights::insert`] per task: the readjustment is a pure
    /// function of the resulting weight classes, and the change report
    /// is diffed against the clamp state from before the batch, so it
    /// covers every task whose `φ` differs from that baseline. Returns
    /// `true` if any task's instantaneous weight changed.
    pub fn insert_many(&mut self, batch: &[(TaskId, Weight)]) -> bool {
        if batch.is_empty() {
            return false;
        }
        for &(id, w) in batch {
            self.walk_steps += self.map_steps();
            let fresh = self.classes.entry(w.get()).or_default().insert(id);
            debug_assert!(fresh, "task {id} already tracked");
            self.len += 1;
            self.total += w.get() as u128;
        }
        self.run()
    }

    /// Removes a task from the runnable set (block/exit) and readjusts.
    /// Returns `true` if any remaining task's instantaneous weight changed.
    ///
    /// # Panics
    ///
    /// Panics if the task is not tracked under weight `w`.
    pub fn remove(&mut self, id: TaskId, w: Weight) -> bool {
        self.walk_steps += self.map_steps();
        let class = self
            .classes
            .get_mut(&w.get())
            .expect("removing untracked task");
        let removed = class.remove(&id);
        assert!(removed, "removing untracked task {id}");
        if class.is_empty() {
            self.classes.remove(&w.get());
        }
        self.len -= 1;
        self.total -= w.get() as u128;
        if let Ok(i) = self.clamped.binary_search(&id) {
            self.clamped.remove(i);
        }
        self.run()
    }

    /// Updates a task's weight in place and readjusts.
    ///
    /// # Panics
    ///
    /// Panics if the task is not tracked under weight `old`.
    pub fn set_weight(&mut self, id: TaskId, old: Weight, new: Weight) -> bool {
        self.walk_steps += 2 * self.map_steps();
        let class = self
            .classes
            .get_mut(&old.get())
            .expect("re-weighting untracked task");
        let removed = class.remove(&id);
        assert!(removed, "re-weighting untracked task {id}");
        if class.is_empty() {
            self.classes.remove(&old.get());
        }
        let fresh = self.classes.entry(new.get()).or_default().insert(id);
        debug_assert!(fresh, "task {id} tracked twice");
        self.total = self.total - old.get() as u128 + new.get() as u128;
        self.run()
    }

    /// The instantaneous weight `φ_i` for a runnable task with raw weight
    /// `w`: the clamp cap if the task is clamped, its own weight otherwise.
    pub fn phi(&self, id: TaskId, w: Weight) -> Fixed {
        match self.cap {
            Some(cap) if self.is_clamped(id) => cap,
            _ => w.as_fixed(),
        }
    }

    /// True if the task is currently clamped. O(log p): a binary search
    /// over the at-most-`p − 1` clamped ids.
    pub fn is_clamped(&self, id: TaskId) -> bool {
        self.lookups.set(self.lookups.get() + 1);
        self.lookup_steps
            .set(self.lookup_steps.get() + tree_steps(self.clamped.len()));
        self.clamped.binary_search(&id).is_ok()
    }

    /// The current clamp set (at most `p − 1` ids, sorted by id).
    pub fn clamped(&self) -> &[TaskId] {
        &self.clamped
    }

    /// The current clamp cap, if any thread is clamped.
    pub fn cap(&self) -> Option<Fixed> {
        self.cap
    }

    /// Iterates runnable tasks in descending weight order (ids ascending
    /// within one weight class).
    pub fn iter_desc(&self) -> impl Iterator<Item = (Fixed, TaskId)> + '_ {
        self.classes
            .iter()
            .rev()
            .flat_map(|(&w, ids)| ids.iter().map(move |&id| (Fixed::from_int(w as i64), id)))
    }

    /// Iterates runnable tasks in ascending weight order (the backwards
    /// scan used by the scheduling heuristic, §3.2 footnote 8); the
    /// exact reverse of [`FeasibleWeights::iter_desc`].
    pub fn iter_asc(&self) -> impl Iterator<Item = (Fixed, TaskId)> + '_ {
        self.classes.iter().flat_map(|(&w, ids)| {
            ids.iter()
                .rev()
                .map(move |&id| (Fixed::from_int(w as i64), id))
        })
    }

    /// Drains the set of tasks whose instantaneous weight `φ` changed in
    /// the most recent mutation (`insert`/`remove`/`set_weight`): tasks
    /// newly clamped, newly unclamped, or still clamped while the cap
    /// moved. At most `p − 1` tasks are ever clamped, so the set is tiny.
    ///
    /// Callers that keep per-task `φ` state (the SFS bucket queue) use
    /// this to migrate exactly the affected tasks instead of rescanning
    /// the whole runnable set. The directly mutated task itself is *not*
    /// reported unless its clamp state changed — its `φ` obviously moved
    /// with its raw weight and the caller already knows.
    pub fn take_changed(&mut self) -> Vec<TaskId> {
        std::mem::take(&mut self.changed)
    }

    /// Re-runs readjustment over the current runnable set.
    /// Returns `true` if the clamp set or cap changed.
    fn run(&mut self) -> bool {
        self.changed.clear();
        if !self.enabled {
            return false;
        }
        self.calls += 1;
        // Collect the at most p−1 largest weights off the heaviest
        // classes; readjust() only needs that prefix plus the total.
        // (Clamping thread p−1 leaves one processor for the rest, so a
        // p-th entry could never be examined.)
        let p = self.cpus as u128;
        let adj: Readjustment = if p <= 1 || self.classes.is_empty() {
            self.last_prefix_len = 0;
            Readjustment::UNCHANGED
        } else {
            let limit = (self.cpus - 1) as usize;
            let mut prefix: Vec<u64> = Vec::with_capacity(limit);
            'outer: for (&w, ids) in self.classes.iter().rev() {
                self.walk_steps += 1;
                for _ in 0..ids.len() {
                    if prefix.len() == limit {
                        break 'outer;
                    }
                    prefix.push(w);
                }
            }
            self.last_prefix_len = prefix.len();
            self.walk_steps += prefix.len() as u64;
            readjust_prefix(&prefix, self.total, self.cpus)
        };

        // The clamp set is the adj.clamped heaviest threads — always a
        // union of whole weight classes (see the module docs), so the
        // walk below never has to order threads within a class.
        let mut new_clamped: Vec<TaskId> = Vec::with_capacity(adj.clamped);
        let mut need = adj.clamped;
        for (_, ids) in self.classes.iter().rev() {
            if need == 0 {
                break;
            }
            self.walk_steps += 1;
            debug_assert!(
                ids.len() <= need,
                "readjustment split a weight class at the clamp boundary"
            );
            for &id in ids.iter().take(need) {
                new_clamped.push(id);
            }
            need = need.saturating_sub(ids.len());
        }
        new_clamped.sort_unstable();

        let changed = new_clamped != self.clamped || adj.cap != self.cap;
        for &id in &self.clamped {
            if new_clamped.binary_search(&id).is_err() {
                self.changed.push(id); // unclamped: φ back to raw weight
            }
        }
        for &id in &new_clamped {
            if self.clamped.binary_search(&id).is_err() {
                self.changed.push(id); // newly clamped to the cap
            } else if adj.cap != self.cap {
                self.changed.push(id); // still clamped, but the cap moved
            }
        }
        self.walk_steps += (self.clamped.len() + new_clamped.len()) as u64;
        self.clamps += adj.clamped as u64;
        self.clamped = new_clamped;
        self.cap = adj.cap;
        changed
    }
}

/// Runs the feasibility walk over the descending `prefix` of the weight
/// classes given the precomputed `total`; equivalent to
/// [`readjust`](crate::readjust::readjust) on the full sorted weight
/// vector but O(p).
fn readjust_prefix(prefix: &[u64], total: u128, cpus: u32) -> Readjustment {
    let mut rem_sum = total;
    let mut rem_p = cpus as u128;
    let mut clamped = 0usize;
    for &w in prefix {
        if rem_p <= 1 {
            break;
        }
        if (w as u128) * rem_p > rem_sum {
            rem_sum -= w as u128;
            rem_p -= 1;
            clamped += 1;
        } else {
            break;
        }
    }
    if clamped == 0 {
        return Readjustment::UNCHANGED;
    }
    let cap = if rem_sum == 0 {
        Fixed::ONE
    } else {
        Fixed::from_ratio(rem_sum as i64, rem_p as i64)
    };
    Readjustment {
        clamped,
        cap: Some(cap),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::readjust::is_feasible_fixed;
    use crate::task::weight;

    fn phis(f: &FeasibleWeights, tasks: &[(TaskId, Weight)]) -> Vec<Fixed> {
        tasks.iter().map(|&(id, w)| f.phi(id, w)).collect()
    }

    #[test]
    fn example1_clamps_heavy_thread() {
        let mut f = FeasibleWeights::new(2, true);
        f.insert(TaskId(1), weight(1));
        let changed = f.insert(TaskId(2), weight(10));
        assert!(changed);
        assert!(f.is_clamped(TaskId(2)));
        assert!(!f.is_clamped(TaskId(1)));
        assert_eq!(f.phi(TaskId(2), weight(10)), Fixed::from_int(1));
        assert_eq!(f.phi(TaskId(1), weight(1)), Fixed::from_int(1));
    }

    #[test]
    fn blocking_triggers_reclamp() {
        // 1:1:2 feasible on 2 CPUs; removing a weight-1 task makes 1:2
        // infeasible (§1.2).
        let mut f = FeasibleWeights::new(2, true);
        f.insert(TaskId(1), weight(1));
        f.insert(TaskId(2), weight(1));
        f.insert(TaskId(3), weight(2));
        assert!(!f.is_clamped(TaskId(3)));
        let changed = f.remove(TaskId(1), weight(1));
        assert!(changed);
        assert!(f.is_clamped(TaskId(3)));
        assert_eq!(f.phi(TaskId(3), weight(2)), Fixed::from_int(1));
    }

    #[test]
    fn disabled_tracker_never_clamps() {
        let mut f = FeasibleWeights::new(2, false);
        f.insert(TaskId(1), weight(1));
        let changed = f.insert(TaskId(2), weight(1_000));
        assert!(!changed);
        assert!(!f.is_clamped(TaskId(2)));
        assert_eq!(f.phi(TaskId(2), weight(1_000)), Fixed::from_int(1_000));
        assert_eq!(f.calls, 0);
    }

    #[test]
    fn set_weight_reclamps() {
        let mut f = FeasibleWeights::new(2, true);
        f.insert(TaskId(1), weight(1));
        f.insert(TaskId(2), weight(1));
        assert!(f.clamped().is_empty());
        let changed = f.set_weight(TaskId(2), weight(1), weight(50));
        assert!(changed);
        assert!(f.is_clamped(TaskId(2)));
    }

    #[test]
    fn resulting_weights_are_feasible() {
        let mut f = FeasibleWeights::new(4, true);
        let tasks: Vec<(TaskId, Weight)> = [100u64, 50, 10, 1, 1, 1]
            .iter()
            .enumerate()
            .map(|(i, &w)| (TaskId(i as u64), weight(w)))
            .collect();
        for &(id, w) in &tasks {
            f.insert(id, w);
        }
        let phi = phis(&f, &tasks);
        assert!(is_feasible_fixed(&phi, 4), "{phi:?}");
    }

    #[test]
    fn total_weight_tracks_mutations() {
        let mut f = FeasibleWeights::new(2, true);
        f.insert(TaskId(1), weight(3));
        f.insert(TaskId(2), weight(4));
        assert_eq!(f.total_weight(), 7);
        f.set_weight(TaskId(2), weight(4), weight(10));
        assert_eq!(f.total_weight(), 13);
        f.remove(TaskId(1), weight(3));
        assert_eq!(f.total_weight(), 10);
        assert_eq!(f.len(), 1);
        assert_eq!(f.distinct_weights(), 1);
    }

    #[test]
    fn iter_asc_is_reverse_of_desc() {
        let mut f = FeasibleWeights::new(2, true);
        for (i, w) in [5u64, 3, 9, 1, 5].iter().enumerate() {
            f.insert(TaskId(i as u64), weight(*w));
        }
        let desc: Vec<_> = f.iter_desc().map(|(_, id)| id).collect();
        let mut asc: Vec<_> = f.iter_asc().map(|(_, id)| id).collect();
        asc.reverse();
        assert_eq!(desc, asc);
        // Descending weights, ascending ids within the tied class.
        assert_eq!(
            desc,
            vec![TaskId(2), TaskId(0), TaskId(4), TaskId(1), TaskId(3)]
        );
    }

    #[test]
    fn take_changed_reports_exact_phi_delta() {
        let mut f = FeasibleWeights::new(2, true);
        f.insert(TaskId(1), weight(1));
        f.insert(TaskId(2), weight(1));
        // Setup churn: with n ≤ p the heaviest task is transiently
        // clamped at cap 1; drain that before asserting.
        let _ = f.take_changed();
        // A feasibility-neutral arrival reports nothing.
        f.insert(TaskId(3), weight(1));
        assert!(f.take_changed().is_empty());
        // A weight-30 arrival on 2 CPUs is clamped immediately (cap
        // (1+1+1)/1 = 3): only the new task itself is affected.
        f.insert(TaskId(4), weight(30));
        assert_eq!(f.take_changed(), vec![TaskId(4)]);
        // Draining twice yields nothing new.
        assert!(f.take_changed().is_empty());
        assert_eq!(f.phi(TaskId(4), weight(30)), Fixed::from_int(3));
        // Another light arrival moves the cap to 4: T4 stays clamped
        // but its φ changed, so it is reported again.
        f.insert(TaskId(5), weight(1));
        assert_eq!(f.take_changed(), vec![TaskId(4)]);
        assert_eq!(f.phi(TaskId(4), weight(30)), Fixed::from_int(4));
        // Dropping T4's weight to 1 unclamps it.
        f.set_weight(TaskId(4), weight(30), weight(1));
        assert_eq!(f.take_changed(), vec![TaskId(4)]);
        assert!(!f.is_clamped(TaskId(4)));
        // A feasibility-neutral departure reports nothing.
        f.remove(TaskId(5), weight(1));
        assert!(f.take_changed().is_empty());
    }

    #[test]
    fn prefix_walk_is_bounded_by_p_minus_one() {
        // Readjustment can clamp at most p−1 threads, so the §2.1 walk
        // must collect at most p−1 weights however large the runnable
        // set is. (The previous implementation collected p — one whole
        // extra scan entry per pass.)
        let mut f = FeasibleWeights::new(4, true);
        for i in 0..3u64 {
            f.insert(TaskId(i), weight(10 + i));
            assert_eq!(f.last_prefix_len, (i as usize + 1).min(3));
        }
        for i in 3..40u64 {
            f.insert(TaskId(i), weight(1 + i % 7));
            assert_eq!(f.last_prefix_len, 3, "prefix must stay at p−1");
        }
        // On a uniprocessor nothing can ever clamp, so no prefix is
        // collected at all.
        let mut up = FeasibleWeights::new(1, true);
        up.insert(TaskId(1), weight(50));
        assert_eq!(up.last_prefix_len, 0);
    }

    #[test]
    fn clamp_set_is_a_union_of_whole_weight_classes() {
        // Five weight-9 threads plus many light ones on 8 CPUs: either
        // the whole weight-9 class is clamped or none of it, never a
        // split (the invariant the count-map readjustment relies on).
        let mut f = FeasibleWeights::new(8, true);
        for i in 0..5u64 {
            f.insert(TaskId(i), weight(9));
        }
        for i in 5..30u64 {
            f.insert(TaskId(i), weight(1));
        }
        let clamped_heavy = (0..5u64).filter(|&i| f.is_clamped(TaskId(i))).count();
        assert!(
            clamped_heavy == 0 || clamped_heavy == 5,
            "clamp boundary split the weight-9 class: {clamped_heavy}/5"
        );
        let phi = phis(
            &f,
            &(0..30u64)
                .map(|i| (TaskId(i), weight(if i < 5 { 9 } else { 1 })))
                .collect::<Vec<_>>(),
        );
        assert!(is_feasible_fixed(&phi, 8), "{phi:?}");
    }

    #[test]
    fn clamp_lookup_cost_is_independent_of_runnable_set_size() {
        let mut f = FeasibleWeights::new(4, true);
        for i in 0..10_000u64 {
            f.insert(TaskId(i), weight(1 + i % 40));
        }
        // Two infeasibly heavy threads so the clamp set is non-empty
        // and `phi` actually probes it.
        f.insert(TaskId(90_000), weight(1_000_000));
        f.insert(TaskId(90_001), weight(1_000_000));
        assert!(f.is_clamped(TaskId(90_000)), "setup must clamp");
        let (l0, s0) = f.clamp_lookup_stats();
        for i in 0..1_000u64 {
            let _ = f.phi(TaskId(i), weight(1 + i % 40));
        }
        let (l1, s1) = f.clamp_lookup_stats();
        let per = (s1 - s0) as f64 / (l1 - l0) as f64;
        assert!(per <= 4.0, "clamp probe cost {per:.2} — not O(log p)");
    }

    #[test]
    #[should_panic(expected = "removing untracked task")]
    fn remove_untracked_panics() {
        let mut f = FeasibleWeights::new(2, true);
        f.remove(TaskId(9), weight(1));
    }
}
