//! Simulation time types.
//!
//! All schedulers in this crate are driven by an external substrate (a
//! discrete-event simulator or a userspace thread runtime). Both express
//! time as nanoseconds since the start of the experiment. Newtypes keep
//! instants and durations from being mixed up and give us saturating
//! arithmetic in one place.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An instant, in nanoseconds since the start of the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Time {
    /// The experiment origin.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Constructs an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    /// Constructs an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Time {
        Time(us * 1_000)
    }

    /// Constructs an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: Duration) -> Option<Time> {
        self.0.checked_add(d.0).map(Time)
    }
}

impl Duration {
    /// The empty duration.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable duration; used as an "unbounded" sentinel.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Constructs a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Duration {
        Duration(ns)
    }

    /// Constructs a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// Constructs a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// Constructs a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional milliseconds (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Checked multiplication by an integer scale.
    pub fn checked_mul(self, k: u64) -> Option<Duration> {
        self.0.checked_mul(k).map(Duration)
    }

    /// Converts to a [`std::time::Duration`] for interop with the host OS.
    pub fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.0)
    }

    /// Converts from a [`std::time::Duration`], saturating at `u64::MAX` ns.
    pub fn from_std(d: std::time::Duration) -> Duration {
        Duration(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Div<Duration> for Duration {
    type Output = u64;
    fn div(self, rhs: Duration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Duration> for Duration {
    type Output = Duration;
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Time::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(Time::from_micros(7).as_nanos(), 7_000);
        assert_eq!(Time::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Duration::from_millis(200).as_millis(), 200);
        assert_eq!(Duration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn since_saturates() {
        let a = Time::from_secs(1);
        let b = Time::from_secs(2);
        assert_eq!(b.since(a), Duration::from_secs(1));
        assert_eq!(a.since(b), Duration::ZERO);
        assert_eq!(b - a, Duration::from_secs(1));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = Time::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t, Time::from_millis(15));
        let d = Duration::from_millis(7) + Duration::from_millis(3);
        assert_eq!(d, Duration::from_millis(10));
        assert_eq!(d - Duration::from_millis(4), Duration::from_millis(6));
        assert_eq!(d * 3, Duration::from_millis(30));
        assert_eq!(d / 2, Duration::from_millis(5));
        assert_eq!(Duration::from_millis(10) / Duration::from_millis(3), 3);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(Duration::ZERO - Duration::from_secs(1), Duration::ZERO);
        assert_eq!(Time::MAX + Duration::from_secs(1), Time::MAX);
        assert_eq!(Duration::MAX + Duration::from_secs(1), Duration::MAX);
        assert_eq!(Time::MAX.checked_add(Duration::from_nanos(1)), None);
        assert_eq!(
            Time::ZERO.checked_add(Duration::from_nanos(1)),
            Some(Time(1))
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", Duration::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", Duration::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", Duration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", Duration::from_secs(5)), "5.000s");
    }

    #[test]
    fn std_interop() {
        let d = Duration::from_millis(123);
        assert_eq!(Duration::from_std(d.to_std()), d);
    }
}
