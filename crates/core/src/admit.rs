//! Admission control and per-tenant rate limits.
//!
//! SFS assumes every arriving task is admitted; at overload that
//! assumption inverts — an unbounded flood from one tenant inflates
//! the runnable set until every well-behaved task's latency collapses,
//! even when the hierarchy keeps long-run *shares* exact. This module
//! supplies the armor: a typed [`AdmissionPolicy`] (what to enforce)
//! and a deterministic [`AdmissionControl`] (the enforcement state),
//! applied by the substrates *before* a task ever reaches a scheduler.
//!
//! Three independent limits compose, checked in this order:
//!
//! 1. **Global load-shed watermark** (`shed=N`): reject every arrival
//!    while the machine-wide runnable count is at or above `N`.
//! 2. **Per-tenant live cap** (`max=N`): at most `N` live (admitted,
//!    not yet exited) tasks per tenant.
//! 3. **Per-tenant arrival rate** (`rate=R/s`, optional `burst=B`): a
//!    token bucket holding at most `B` tokens (default `R`, i.e. one
//!    second of arrivals) refilled at `R` tokens/second; each admitted
//!    arrival spends one token.
//!
//! Tasks with no tenant share one implicit bucket, so the limits are
//! meaningful on flat specs too.
//!
//! The token bucket is integer-only (nano-tokens refilled from elapsed
//! nanoseconds), so identical arrival timelines produce identical
//! verdicts on both substrates and under capture/replay — there is no
//! float drift and no wall-clock dependence.
//!
//! Policies are written inside a spec's `admit(...)` clause, e.g.
//! `sfs:groups(a,b):admit(max=1000,rate=500/s)`; see
//! [`crate::policy::PolicySpec`]. [`AdmissionPolicy`]'s own
//! `Display`/`FromStr` round-trips the clause's argument list exactly.

use core::fmt;
use std::collections::HashMap;
use std::str::FromStr;

use crate::task::TenantId;
use crate::time::Time;

/// Nano-tokens per admission: buckets count in billionths of a token so
/// refill arithmetic is exact for any integer rate.
const TOKEN: u128 = 1_000_000_000;

/// What overload protection to enforce; see the [module docs](self)
/// for the semantics of each field.
///
/// An `AdmissionPolicy` is pure configuration — feed it to
/// [`AdmissionControl::new`] to get enforcement state. At least one
/// limit must be set (the parser rejects an empty clause), and `burst`
/// is only meaningful alongside `rate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AdmissionPolicy {
    /// Per-tenant cap on live (admitted, not yet exited) tasks.
    pub max_live: Option<u64>,
    /// Per-tenant arrival rate in admissions per second.
    pub rate_per_sec: Option<u64>,
    /// Token-bucket depth; defaults to `rate_per_sec` (one second of
    /// arrivals) when unset.
    pub burst: Option<u64>,
    /// Global runnable-count watermark above which every arrival is
    /// shed regardless of tenant.
    pub shed_above: Option<u64>,
}

impl AdmissionPolicy {
    /// A policy with every limit disabled (admits everything).
    pub fn none() -> AdmissionPolicy {
        AdmissionPolicy::default()
    }

    /// True if no limit is set.
    pub fn is_none(&self) -> bool {
        *self == AdmissionPolicy::default()
    }

    /// Sets the per-tenant live-task cap.
    pub fn with_max_live(mut self, max: u64) -> AdmissionPolicy {
        self.max_live = Some(max);
        self
    }

    /// Sets the per-tenant arrival rate (admissions per second).
    pub fn with_rate(mut self, per_sec: u64) -> AdmissionPolicy {
        self.rate_per_sec = Some(per_sec);
        self
    }

    /// Sets the token-bucket depth.
    pub fn with_burst(mut self, burst: u64) -> AdmissionPolicy {
        self.burst = Some(burst);
        self
    }

    /// Sets the global load-shed watermark.
    pub fn with_shed_above(mut self, runnable: u64) -> AdmissionPolicy {
        self.shed_above = Some(runnable);
        self
    }

    /// The effective bucket depth: explicit `burst`, else `rate`.
    fn effective_burst(&self) -> u64 {
        self.burst.or(self.rate_per_sec).unwrap_or(0)
    }
}

/// Why an arrival was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// The tenant is at its live-task cap (`max=`).
    TenantCap,
    /// The tenant's token bucket is empty (`rate=`).
    RateLimit,
    /// The global runnable count is at or above the watermark (`shed=`).
    LoadShed,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::TenantCap => write!(f, "tenant live-task cap"),
            RejectReason::RateLimit => write!(f, "tenant rate limit"),
            RejectReason::LoadShed => write!(f, "global load shed"),
        }
    }
}

/// Per-tenant enforcement state.
#[derive(Debug, Clone)]
struct TenantBucket {
    /// Admitted tasks that have not yet exited.
    live: u64,
    /// Nano-tokens currently in the bucket.
    tokens: u128,
    /// Instant of the last refill.
    refilled_at: Time,
}

/// Deterministic runtime state enforcing an [`AdmissionPolicy`].
///
/// One instance guards one substrate run. Call [`admit`] on every
/// arrival (it books the admission on success) and [`release`] on
/// every exit of an *admitted* task — rejected arrivals must not be
/// released. Both substrates drive this with their own notion of
/// "now", so sim and rt enforce identical limits.
///
/// [`admit`]: AdmissionControl::admit
/// [`release`]: AdmissionControl::release
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    policy: AdmissionPolicy,
    tenants: HashMap<Option<TenantId>, TenantBucket>,
    admitted: u64,
    rejected: u64,
}

impl AdmissionControl {
    /// Enforcement state for `policy`, with every bucket starting full.
    pub fn new(policy: AdmissionPolicy) -> AdmissionControl {
        AdmissionControl {
            policy,
            tenants: HashMap::new(),
            admitted: 0,
            rejected: 0,
        }
    }

    /// The policy being enforced.
    pub fn policy(&self) -> &AdmissionPolicy {
        &self.policy
    }

    /// Total arrivals admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Total arrivals rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Live (admitted, not yet released) tasks for `tenant`.
    pub fn live(&self, tenant: Option<TenantId>) -> u64 {
        self.tenants.get(&tenant).map_or(0, |b| b.live)
    }

    /// Decides one arrival at `now` for `tenant`, with `runnable` the
    /// current machine-wide runnable count. On `Ok` the admission is
    /// booked (live count incremented, one token spent); on `Err`
    /// nothing is booked and the caller must surface the rejection.
    pub fn admit(
        &mut self,
        tenant: Option<TenantId>,
        now: Time,
        runnable: u64,
    ) -> Result<(), RejectReason> {
        if let Some(shed) = self.policy.shed_above {
            if runnable >= shed {
                self.rejected += 1;
                return Err(RejectReason::LoadShed);
            }
        }
        let burst = u128::from(self.policy.effective_burst()) * TOKEN;
        let bucket = self.tenants.entry(tenant).or_insert(TenantBucket {
            live: 0,
            tokens: burst,
            refilled_at: now,
        });
        if let Some(max) = self.policy.max_live {
            if bucket.live >= max {
                self.rejected += 1;
                return Err(RejectReason::TenantCap);
            }
        }
        if let Some(rate) = self.policy.rate_per_sec {
            let elapsed = u128::from(now.since(bucket.refilled_at).as_nanos());
            bucket.refilled_at = now;
            bucket.tokens = (bucket.tokens + elapsed * u128::from(rate)).min(burst);
            if bucket.tokens < TOKEN {
                self.rejected += 1;
                return Err(RejectReason::RateLimit);
            }
            bucket.tokens -= TOKEN;
        }
        bucket.live += 1;
        self.admitted += 1;
        Ok(())
    }

    /// Books the exit of a previously *admitted* task. Must not be
    /// called for rejected arrivals.
    pub fn release(&mut self, tenant: Option<TenantId>) {
        if let Some(bucket) = self.tenants.get_mut(&tenant) {
            bucket.live = bucket.live.saturating_sub(1);
        }
    }
}

/// Error from parsing an `admit(...)` argument list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAdmitError(pub String);

impl fmt::Display for ParseAdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad admit clause: {}", self.0)
    }
}

impl std::error::Error for ParseAdmitError {}

impl fmt::Display for AdmissionPolicy {
    /// The canonical `admit(...)` argument list: set fields in the
    /// order `max`, `rate`, `burst`, `shed`, comma-separated. Exactly
    /// inverts [`FromStr`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        let mut emit = |f: &mut fmt::Formatter<'_>, part: fmt::Arguments<'_>| {
            let r = write!(f, "{sep}{part}");
            sep = ",";
            r
        };
        if let Some(max) = self.max_live {
            emit(f, format_args!("max={max}"))?;
        }
        if let Some(rate) = self.rate_per_sec {
            emit(f, format_args!("rate={rate}/s"))?;
        }
        if let Some(burst) = self.burst {
            emit(f, format_args!("burst={burst}"))?;
        }
        if let Some(shed) = self.shed_above {
            emit(f, format_args!("shed={shed}"))?;
        }
        Ok(())
    }
}

impl FromStr for AdmissionPolicy {
    type Err = ParseAdmitError;

    /// Parses an `admit(...)` argument list such as
    /// `max=1000,rate=500/s,burst=750,shed=100000`. At least one limit
    /// is required; `burst` requires `rate`; `rate` accepts an
    /// optional `/s` suffix.
    fn from_str(s: &str) -> Result<AdmissionPolicy, ParseAdmitError> {
        let mut policy = AdmissionPolicy::default();
        let err = |msg: String| Err(ParseAdmitError(msg));
        let num = |key: &str, v: &str| -> Result<u64, ParseAdmitError> {
            v.parse()
                .map_err(|_| ParseAdmitError(format!("{key} wants an integer, got {v:?}")))
        };
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some((key, value)) = part.split_once('=') else {
                return err(format!("expected key=value, got {part:?}"));
            };
            let dup = |slot: &Option<u64>| slot.is_some();
            match key {
                "max" if !dup(&policy.max_live) => policy.max_live = Some(num(key, value)?),
                "rate" if !dup(&policy.rate_per_sec) => {
                    let value = value.strip_suffix("/s").unwrap_or(value);
                    policy.rate_per_sec = Some(num(key, value)?);
                }
                "burst" if !dup(&policy.burst) => policy.burst = Some(num(key, value)?),
                "shed" if !dup(&policy.shed_above) => policy.shed_above = Some(num(key, value)?),
                "max" | "rate" | "burst" | "shed" => {
                    return err(format!("duplicate {key}="));
                }
                other => return err(format!("unknown option {other:?}")),
            }
        }
        if policy.is_none() {
            return err("admit() needs at least one of max=, rate=, shed=".into());
        }
        if policy.burst.is_some() && policy.rate_per_sec.is_none() {
            return err("burst= without rate=".into());
        }
        if policy.rate_per_sec == Some(0) {
            return err("rate=0 would reject everything; use max=0".into());
        }
        Ok(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::from_millis(ms)
    }

    #[test]
    fn display_parse_round_trip() {
        for s in [
            "max=1000",
            "rate=500/s",
            "max=1000,rate=500/s",
            "max=1000,rate=500/s,burst=750,shed=100000",
            "shed=4096",
        ] {
            let p: AdmissionPolicy = s.parse().expect(s);
            assert_eq!(p.to_string(), s, "canonical form");
            assert_eq!(p.to_string().parse::<AdmissionPolicy>().unwrap(), p);
        }
        // Non-canonical spellings normalise.
        let p: AdmissionPolicy = "rate=500".parse().unwrap();
        assert_eq!(p.to_string(), "rate=500/s");
    }

    #[test]
    fn parse_rejects_malformed() {
        for s in [
            "",
            "max",
            "max=abc",
            "burst=5",
            "rate=0/s",
            "max=1,max=2",
            "frobnicate=1",
        ] {
            assert!(s.parse::<AdmissionPolicy>().is_err(), "{s:?}");
        }
    }

    #[test]
    fn tenant_cap_enforced_and_released() {
        let mut ac = AdmissionControl::new(AdmissionPolicy::none().with_max_live(2));
        let tn = Some(TenantId(0));
        assert!(ac.admit(tn, t(0), 0).is_ok());
        assert!(ac.admit(tn, t(0), 0).is_ok());
        assert_eq!(ac.admit(tn, t(0), 0), Err(RejectReason::TenantCap));
        // A different tenant has its own cap.
        assert!(ac.admit(Some(TenantId(1)), t(0), 0).is_ok());
        // Releasing frees a slot.
        ac.release(tn);
        assert!(ac.admit(tn, t(0), 0).is_ok());
        assert_eq!(ac.admitted(), 4);
        assert_eq!(ac.rejected(), 1);
        assert_eq!(ac.live(tn), 2);
    }

    #[test]
    fn token_bucket_is_deterministic() {
        // 10/s with default burst 10: the first 10 admit instantly,
        // then exactly one more per 100ms.
        let mut ac = AdmissionControl::new(AdmissionPolicy::none().with_rate(10));
        for _ in 0..10 {
            assert!(ac.admit(None, t(0), 0).is_ok());
        }
        assert_eq!(ac.admit(None, t(0), 0), Err(RejectReason::RateLimit));
        assert_eq!(ac.admit(None, t(99), 0), Err(RejectReason::RateLimit));
        assert!(ac.admit(None, t(100), 0).is_ok());
        assert_eq!(ac.admit(None, t(100), 0), Err(RejectReason::RateLimit));
        assert!(ac.admit(None, t(200), 0).is_ok());
    }

    #[test]
    fn burst_caps_idle_accumulation() {
        // rate=10/s, burst=3: after any idle stretch at most 3 admit
        // back-to-back.
        let mut ac = AdmissionControl::new(AdmissionPolicy::none().with_rate(10).with_burst(3));
        for _ in 0..3 {
            assert!(ac.admit(None, t(0), 0).is_ok());
        }
        assert_eq!(ac.admit(None, t(0), 0), Err(RejectReason::RateLimit));
        // A long idle period refills to the burst cap only.
        for _ in 0..3 {
            assert!(ac.admit(None, t(10_000), 0).is_ok());
        }
        assert_eq!(ac.admit(None, t(10_000), 0), Err(RejectReason::RateLimit));
    }

    #[test]
    fn load_shed_watermark_applies_globally() {
        let mut ac = AdmissionControl::new(AdmissionPolicy::none().with_shed_above(100));
        assert!(ac.admit(None, t(0), 99).is_ok());
        assert_eq!(ac.admit(None, t(0), 100), Err(RejectReason::LoadShed));
        assert_eq!(
            ac.admit(Some(TenantId(7)), t(0), 5000),
            Err(RejectReason::LoadShed)
        );
    }

    #[test]
    fn shed_precedes_cap_precedes_rate() {
        let p = AdmissionPolicy::none()
            .with_max_live(1)
            .with_rate(1)
            .with_shed_above(10);
        let mut ac = AdmissionControl::new(p);
        assert_eq!(ac.admit(None, t(0), 10), Err(RejectReason::LoadShed));
        assert!(ac.admit(None, t(0), 0).is_ok());
        // Cap trips before the (also-empty) bucket is consulted.
        assert_eq!(ac.admit(None, t(0), 0), Err(RejectReason::TenantCap));
        ac.release(None);
        assert_eq!(ac.admit(None, t(0), 0), Err(RejectReason::RateLimit));
    }

    #[test]
    fn reject_reason_display() {
        assert_eq!(RejectReason::TenantCap.to_string(), "tenant live-task cap");
        assert_eq!(RejectReason::RateLimit.to_string(), "tenant rate limit");
        assert_eq!(RejectReason::LoadShed.to_string(), "global load shed");
    }
}
