//! Per-weight-class bucket queue for exact surplus fair scheduling.
//!
//! The kernel design (§3.1/§3.2) keeps one global surplus-sorted queue
//! and re-sorts it whenever the virtual time advances. Because the
//! minimum-start-tag thread is usually the one that just ran, the
//! virtual time advances on essentially every quantum, so the "periodic"
//! re-sort degenerates into an O(n) insertion-sort pass per scheduling
//! decision.
//!
//! The fix exploits the algebraic structure of the surplus
//!
//! ```text
//! α_i = φ_i · (S_i − v)
//! ```
//!
//! For two threads sharing the same adjusted weight `φ`,
//!
//! ```text
//! α_i < α_j  ⇔  φ·(S_i − v) < φ·(S_j − v)  ⇔  S_i < S_j
//! ```
//!
//! so *within one weight class surplus order is exactly start-tag order,
//! for every value of `v`*. A change of virtual time can never reorder
//! threads of equal `φ`; it can only reshuffle the interleaving *across*
//! weight classes. [`BucketQueue`] therefore keeps one start-tag-ordered
//! bucket per distinct `φ` and finds the minimum-surplus thread by
//! comparing the O(#distinct-φ) bucket heads — no re-sort ever happens,
//! and a virtual-time advance costs nothing.
//!
//! Within a bucket, entries are totally ordered by `(S_i, id)` — the
//! exact tie-break the scheduler preserves — in a balanced ordered set
//! rather than the intrusive linked list used by the start-tag and
//! weight queues. The list was tried first: under phase-locked equal
//! quanta (the paper's own lockstep experiments) every thread of one
//! weight class advances its tag by the same `q/φ` on every round, so
//! whole classes stay tied at one start tag indefinitely, and a linked
//! list pays O(tie-run) per operation to honour the id tie-break —
//! measured at thousands of entries examined per pick at 4×10³ threads.
//! The ordered set makes both the requeue and the head lookup
//! O(log n_bucket) with the tie-break built into the key.
//!
//! Cost model (p processors, n runnable threads, w distinct weights):
//!
//! * pick: O(w·log n + p) — each bucket contributes its head (skipping
//!   the ≤ p currently-running entries),
//! * requeue after a quantum: O(log n) in one bucket,
//! * weight readjustment: migrates only the at-most-`p − 1` clamped (or
//!   unclamped) threads between buckets,
//! * virtual-time advance: free.
//!
//! The old path was O(n) per pick in `resort_with` alone.

use std::collections::btree_set;
use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::fixed::Fixed;
use crate::queues::tree_steps;
use crate::task::TaskId;

/// One weight class: runnable threads ordered by `(start tag, id)`.
type Bucket = BTreeSet<(Fixed, TaskId)>;

/// A runnable-thread queue ordered by surplus, maintained as one
/// start-tag-ordered bucket per distinct adjusted weight `φ`.
///
/// The queue tracks each task's location itself; callers address tasks
/// by [`TaskId`] only.
#[derive(Debug, Default)]
pub struct BucketQueue {
    /// One `(S, id)`-ordered set per distinct `φ`, keyed by `φ`. Empty
    /// buckets are removed eagerly so pick cost tracks the number of
    /// weight classes actually present.
    buckets: BTreeMap<Fixed, Bucket>,
    /// Per-task location: the bucket key `φ` and the start-tag key.
    index: HashMap<TaskId, (Fixed, Fixed)>,
    /// Cumulative event-path steps; see [`BucketQueue::steps`].
    steps: u64,
}

impl BucketQueue {
    /// Creates an empty bucket queue.
    pub fn new() -> BucketQueue {
        BucketQueue::default()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if no task is queued.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of distinct weight classes currently present.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Cumulative structure steps across all mutations (insert, remove,
    /// requeue, migration): the comparison depth of each ordered-set
    /// operation. The event-path cost counter read by the scheduler.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// True if `id` is queued.
    pub fn contains(&self, id: TaskId) -> bool {
        self.index.contains_key(&id)
    }

    /// The `φ` bucket a task currently sits in, if queued.
    pub fn phi_of(&self, id: TaskId) -> Option<Fixed> {
        self.index.get(&id).map(|&(phi, _)| phi)
    }

    /// The start tag currently keyed for a task, if queued.
    pub fn start_of(&self, id: TaskId) -> Option<Fixed> {
        self.index.get(&id).map(|&(_, s)| s)
    }

    /// The minimum start tag over all queued tasks — the virtual time
    /// `v` of §2.3 — in O(#buckets). This subsumes the start-tag-sorted
    /// queue #2 of §3.1: its head was the only thing the scheduler ever
    /// read from it, while its per-requeue sorted reinsertion cost
    /// O(displacement) ≈ O(n) on the global list.
    pub fn min_start(&self) -> Option<Fixed> {
        self.buckets
            .values()
            .filter_map(|b| b.first().map(|&(s, _)| s))
            .min()
    }

    /// Iterates all queued task ids in unspecified order, O(1) each.
    pub fn ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.index.keys().copied()
    }

    /// Iterates all queued tasks in ascending `(S, id)` order (a lazy
    /// merge over the bucket heads), yielding `(S, id)` — the start-tag
    /// queue view the §3.2 heuristic scans.
    pub fn iter_by_start(&self) -> StartIter<'_> {
        StartIter {
            cursors: self.cursors(),
        }
    }

    fn cursors(&self) -> Vec<Cursor<'_>> {
        self.buckets
            .iter()
            .map(|(&phi, bucket)| {
                let mut it = bucket.iter();
                let head = it.next().copied();
                Cursor {
                    phi,
                    head,
                    rest: it,
                }
            })
            .collect()
    }

    /// Queues a task in the `phi` weight class with the given start tag.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the task is already queued.
    pub fn insert(&mut self, id: TaskId, phi: Fixed, start_tag: Fixed) {
        let bucket = self.buckets.entry(phi).or_default();
        self.steps += tree_steps(bucket.len());
        let fresh = bucket.insert((start_tag, id));
        debug_assert!(fresh, "task {id} queued twice");
        let prev = self.index.insert(id, (phi, start_tag));
        debug_assert!(prev.is_none(), "task {id} indexed twice");
    }

    /// Removes a task from its bucket.
    ///
    /// # Panics
    ///
    /// Panics if the task is not queued.
    pub fn remove(&mut self, id: TaskId) {
        let (phi, start_tag) = self
            .index
            .remove(&id)
            .expect("removing task not in bucket queue");
        let bucket = self.buckets.get_mut(&phi).expect("bucket missing");
        self.steps += tree_steps(bucket.len());
        let removed = bucket.remove(&(start_tag, id));
        debug_assert!(removed, "bucket entry missing for {id}");
        if bucket.is_empty() {
            self.buckets.remove(&phi);
        }
    }

    /// Repositions a task inside its bucket after its start tag changed
    /// (the per-quantum requeue). O(log) in the bucket size.
    ///
    /// # Panics
    ///
    /// Panics if the task is not queued.
    pub fn update_start(&mut self, id: TaskId, start_tag: Fixed) {
        let entry = self.index.get_mut(&id).expect("updating unqueued task");
        let (phi, old_start) = *entry;
        entry.1 = start_tag;
        let bucket = self.buckets.get_mut(&phi).expect("bucket missing");
        self.steps += 2 * tree_steps(bucket.len());
        bucket.remove(&(old_start, id));
        bucket.insert((start_tag, id));
    }

    /// Moves a task to a different weight class, preserving its start
    /// tag. Returns `true` if the task actually migrated (its `φ`
    /// changed). This is the only work a readjustment-driven `φ` change
    /// requires — at most `p − 1` threads are ever clamped, so at most
    /// that many migrate.
    ///
    /// # Panics
    ///
    /// Panics if the task is not queued.
    pub fn set_phi(&mut self, id: TaskId, phi: Fixed) -> bool {
        let &(old_phi, start_tag) = self.index.get(&id).expect("re-weighting unqueued task");
        if old_phi == phi {
            return false;
        }
        self.remove(id);
        self.insert(id, phi, start_tag);
        true
    }

    /// The minimum-surplus candidate `(α, S, id)` over queued tasks for
    /// which `ready` holds, under virtual time `v`, with the exact
    /// (surplus, start-tag, id) tie-break of the original algorithm.
    /// Also returns the number of queue entries examined.
    ///
    /// Per bucket only the head and any non-ready (currently running)
    /// entries in front of it are visited — the bucket's `(S, id)` order
    /// *is* the tie-break order, so the first ready entry is the
    /// bucket's exact minimum. Buckets whose head already exceeds the
    /// best surplus are skipped without scanning.
    pub fn min_surplus(
        &self,
        v: Fixed,
        ready: impl Fn(TaskId) -> bool,
    ) -> (Option<(Fixed, Fixed, TaskId)>, u64) {
        let mut best: Option<(Fixed, Fixed, TaskId)> = None;
        let mut scanned = 0u64;
        for (&phi, bucket) in &self.buckets {
            if let (Some(&(head_s, _)), Some((ba, _, _))) = (bucket.first(), best) {
                // φ·(head_S − v) lower-bounds every surplus in this
                // bucket; a strictly larger bound can never win (ties
                // could still win on the (S, id) tie-break).
                if phi.mul_fixed(head_s - v) > ba {
                    scanned += 1;
                    continue;
                }
            }
            for &(s, id) in bucket {
                scanned += 1;
                if !ready(id) {
                    continue;
                }
                // First ready entry: the bucket's minimum (α, S, id) —
                // later entries are ≥ in (S, id) and surplus is
                // non-decreasing in S.
                let cand = (phi.mul_fixed(s - v), s, id);
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
                break;
            }
        }
        (best, scanned)
    }

    /// The maximum-surplus candidate `(α, S, id)` over queued tasks for
    /// which `ready` holds, under virtual time `v` — the mirror image
    /// of [`BucketQueue::min_surplus`], used to nominate the task a
    /// shard can best afford to give up when another shard steals work.
    /// Within one bucket surplus is non-decreasing in `(S, id)`, so per
    /// bucket only the tail and any non-ready entries behind it are
    /// visited, and buckets whose tail already lower-bounds below the
    /// best are skipped.
    pub fn max_surplus(
        &self,
        v: Fixed,
        ready: impl Fn(TaskId) -> bool,
    ) -> Option<(Fixed, Fixed, TaskId)> {
        let mut best: Option<(Fixed, Fixed, TaskId)> = None;
        for (&phi, bucket) in &self.buckets {
            if let (Some(&(tail_s, _)), Some((ba, _, _))) = (bucket.last(), best) {
                // φ·(tail_S − v) upper-bounds every surplus in this
                // bucket; a strictly smaller bound can never win.
                if phi.mul_fixed(tail_s - v) < ba {
                    continue;
                }
            }
            for &(s, id) in bucket.iter().rev() {
                if !ready(id) {
                    continue;
                }
                // Last ready entry: the bucket's maximum (α, S, id).
                let cand = (phi.mul_fixed(s - v), s, id);
                if best.is_none_or(|b| cand > b) {
                    best = Some(cand);
                }
                break;
            }
        }
        best
    }

    /// The best `(α, S, id)` candidate among ready tasks whose surplus
    /// under `v` is within `cutoff` and for which `prefer` holds — the
    /// processor-affinity scan. Returns the winner (`None` if no such
    /// task exists) and the number of queue entries examined, so
    /// per-decision scan accounting stays honest when affinity walks
    /// long tie runs under the cutoff.
    pub fn affinity_best(
        &self,
        v: Fixed,
        cutoff: Fixed,
        prefer: impl Fn(TaskId) -> bool,
    ) -> (Option<TaskId>, u64) {
        let mut best: Option<(Fixed, Fixed, TaskId)> = None;
        let mut scanned = 0u64;
        for (&phi, bucket) in &self.buckets {
            for &(s, id) in bucket {
                scanned += 1;
                let alpha = phi.mul_fixed(s - v);
                if alpha > cutoff {
                    break;
                }
                if !prefer(id) {
                    continue;
                }
                let cand = (alpha, s, id);
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            }
        }
        (best.map(|(_, _, id)| id), scanned)
    }

    /// Iterates all queued tasks in ascending `(α, S, id)` order under
    /// `v` (a lazy merge over the bucket heads), yielding `(α, id)`.
    /// Each step costs O(#buckets); `take(k)` gives the §3.2 heuristic
    /// its "first k entries of the surplus queue" without any stored
    /// surplus keys existing.
    pub fn iter_by_surplus(&self, v: Fixed) -> SurplusIter<'_> {
        SurplusIter {
            v,
            cursors: self.cursors(),
        }
    }

    /// Shifts every start-tag key by `delta` (tag renormalisation,
    /// §3.2). A uniform shift preserves order inside every bucket, so
    /// the sorted rebuild is linear; the bucket keys (`φ` values) are
    /// untouched.
    pub fn shift_keys(&mut self, delta: Fixed) {
        for bucket in self.buckets.values_mut() {
            let shifted: Vec<(Fixed, TaskId)> =
                bucket.iter().map(|&(s, id)| (s + delta, id)).collect();
            bucket.clear();
            bucket.extend(shifted);
        }
        for (_, s) in self.index.values_mut() {
            *s += delta;
        }
    }

    /// Debug invariant check: every bucket is non-empty, the index
    /// matches the buckets, and every entry's key equals the start tag
    /// `start_of` reports for its task.
    #[doc(hidden)]
    pub fn check_invariants(&self, start_of: impl Fn(TaskId) -> Fixed) {
        let mut seen = 0usize;
        for (&phi, bucket) in &self.buckets {
            assert!(!bucket.is_empty(), "empty bucket for phi {phi}");
            for &(key, id) in bucket {
                seen += 1;
                let &(iphi, istart) = self.index.get(&id).expect("task missing from index");
                assert_eq!(iphi, phi, "index phi mismatch for {id}");
                assert_eq!(istart, key, "index start mismatch for {id}");
                assert_eq!(key, start_of(id), "stale start-tag key for {id}");
            }
        }
        assert_eq!(seen, self.index.len(), "index/bucket length mismatch");
    }
}

struct Cursor<'a> {
    phi: Fixed,
    head: Option<(Fixed, TaskId)>,
    rest: btree_set::Iter<'a, (Fixed, TaskId)>,
}

/// Lazy ascending-surplus merge over the buckets; see
/// [`BucketQueue::iter_by_surplus`].
pub struct SurplusIter<'a> {
    v: Fixed,
    cursors: Vec<Cursor<'a>>,
}

impl Iterator for SurplusIter<'_> {
    type Item = (Fixed, TaskId);

    fn next(&mut self) -> Option<Self::Item> {
        let v = self.v;
        let (pos, _) = self
            .cursors
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.head.map(|(s, id)| (i, (c.phi.mul_fixed(s - v), s, id))))
            .min_by_key(|&(_, key)| key)?;
        let cursor = &mut self.cursors[pos];
        let (s, id) = cursor.head.take().expect("cursor head vanished");
        cursor.head = cursor.rest.next().copied();
        Some((cursor.phi.mul_fixed(s - v), id))
    }
}

/// Lazy ascending-start-tag merge over the buckets; see
/// [`BucketQueue::iter_by_start`].
pub struct StartIter<'a> {
    cursors: Vec<Cursor<'a>>,
}

impl Iterator for StartIter<'_> {
    type Item = (Fixed, TaskId);

    fn next(&mut self) -> Option<Self::Item> {
        let (pos, _) = self
            .cursors
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.head.map(|key| (i, key)))
            .min_by_key(|&(_, key)| key)?;
        let cursor = &mut self.cursors[pos];
        let head = cursor.head.take().expect("cursor head vanished");
        cursor.head = cursor.rest.next().copied();
        Some(head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fx(v: i64) -> Fixed {
        Fixed::from_int(v)
    }

    #[test]
    fn insert_groups_by_phi() {
        let mut q = BucketQueue::new();
        q.insert(TaskId(1), fx(1), fx(10));
        q.insert(TaskId(2), fx(2), fx(5));
        q.insert(TaskId(3), fx(1), fx(7));
        assert_eq!(q.len(), 3);
        assert_eq!(q.num_buckets(), 2);
        assert_eq!(q.phi_of(TaskId(3)), Some(fx(1)));
        assert_eq!(q.start_of(TaskId(3)), Some(fx(7)));
        q.check_invariants(|id| match id.0 {
            1 => fx(10),
            2 => fx(5),
            _ => fx(7),
        });
    }

    #[test]
    fn min_surplus_compares_bucket_heads() {
        let mut q = BucketQueue::new();
        // phi=1: S=10 → α=10; phi=3: S=4 → α=12. Light class wins.
        q.insert(TaskId(1), fx(1), fx(10));
        q.insert(TaskId(2), fx(3), fx(4));
        let (best, _) = q.min_surplus(Fixed::ZERO, |_| true);
        assert_eq!(best, Some((fx(10), fx(10), TaskId(1))));
        // Raise v: α₁ = 1·(10−4) = 6, α₂ = 3·(4−4) = 0. Heavy class wins
        // — the cross-class order flipped without any key update.
        let (best, _) = q.min_surplus(fx(4), |_| true);
        assert_eq!(best, Some((fx(0), fx(4), TaskId(2))));
    }

    #[test]
    fn min_surplus_ties_break_by_start_then_id() {
        let mut q = BucketQueue::new();
        // Same surplus 6 via different classes: (6, S=6, T9) vs
        // (6, S=3, T5): smaller start tag wins.
        q.insert(TaskId(9), fx(1), fx(6));
        q.insert(TaskId(5), fx(2), fx(3));
        let (best, _) = q.min_surplus(Fixed::ZERO, |_| true);
        assert_eq!(best, Some((fx(6), fx(3), TaskId(5))));
        // Identical (α, S) within one class: min id wins regardless of
        // insertion order.
        let mut q = BucketQueue::new();
        q.insert(TaskId(7), fx(1), fx(2));
        q.insert(TaskId(3), fx(1), fx(2));
        let (best, _) = q.min_surplus(Fixed::ZERO, |_| true);
        assert_eq!(best, Some((fx(2), fx(2), TaskId(3))));
    }

    #[test]
    fn min_surplus_tie_runs_cost_one_probe_per_bucket() {
        // A whole class tied at one start tag (the phase-locked lockstep
        // regime): the pick must examine O(1) entries per bucket, not
        // the tie run.
        let mut q = BucketQueue::new();
        for i in 0..1000u64 {
            q.insert(TaskId(i), fx(1), fx(0));
        }
        for i in 1000..2000u64 {
            q.insert(TaskId(i), fx(7), fx(0));
        }
        let (best, scanned) = q.min_surplus(Fixed::ZERO, |_| true);
        assert_eq!(best, Some((fx(0), fx(0), TaskId(0))));
        assert!(scanned <= 4, "tie run was scanned: {scanned} entries");
    }

    #[test]
    fn min_surplus_skips_non_ready_heads() {
        let mut q = BucketQueue::new();
        q.insert(TaskId(1), fx(1), fx(0));
        q.insert(TaskId(2), fx(1), fx(5));
        let (best, _) = q.min_surplus(Fixed::ZERO, |id| id != TaskId(1));
        assert_eq!(best, Some((fx(5), fx(5), TaskId(2))));
        let (none, _) = q.min_surplus(Fixed::ZERO, |_| false);
        assert_eq!(none, None);
    }

    #[test]
    fn set_phi_migrates_between_buckets() {
        let mut q = BucketQueue::new();
        q.insert(TaskId(1), fx(5), fx(100));
        q.insert(TaskId(2), fx(5), fx(50));
        assert!(q.set_phi(TaskId(1), fx(2)));
        assert!(!q.set_phi(TaskId(1), fx(2)), "no-op migration");
        assert_eq!(q.num_buckets(), 2);
        assert_eq!(q.phi_of(TaskId(1)), Some(fx(2)));
        assert_eq!(q.start_of(TaskId(1)), Some(fx(100)), "start tag kept");
        q.remove(TaskId(2));
        assert_eq!(q.num_buckets(), 1, "empty bucket pruned");
        q.check_invariants(|id| if id.0 == 1 { fx(100) } else { fx(50) });
    }

    #[test]
    fn update_start_repositions_within_bucket() {
        let mut q = BucketQueue::new();
        q.insert(TaskId(1), fx(1), fx(1));
        q.insert(TaskId(2), fx(1), fx(2));
        q.update_start(TaskId(1), fx(9));
        let (best, _) = q.min_surplus(Fixed::ZERO, |_| true);
        assert_eq!(best, Some((fx(2), fx(2), TaskId(2))));
        assert_eq!(q.start_of(TaskId(1)), Some(fx(9)));
    }

    #[test]
    fn surplus_iter_merges_in_alpha_order() {
        let mut q = BucketQueue::new();
        q.insert(TaskId(1), fx(1), fx(10)); // α = 10
        q.insert(TaskId(2), fx(2), fx(3)); // α = 6
        q.insert(TaskId(3), fx(1), fx(8)); // α = 8
        q.insert(TaskId(4), fx(4), fx(3)); // α = 12
        let order: Vec<u64> = q.iter_by_surplus(Fixed::ZERO).map(|(_, id)| id.0).collect();
        assert_eq!(order, vec![2, 3, 1, 4]);
        let alphas: Vec<i64> = q
            .iter_by_surplus(Fixed::ZERO)
            .map(|(a, _)| a.trunc())
            .collect();
        assert_eq!(alphas, vec![6, 8, 10, 12]);
    }

    #[test]
    fn min_start_and_start_iter_span_buckets() {
        let mut q = BucketQueue::new();
        assert_eq!(q.min_start(), None);
        q.insert(TaskId(1), fx(1), fx(10));
        q.insert(TaskId(2), fx(7), fx(3));
        q.insert(TaskId(3), fx(1), fx(5));
        assert_eq!(q.min_start(), Some(fx(3)));
        let order: Vec<u64> = q.iter_by_start().map(|(_, id)| id.0).collect();
        assert_eq!(order, vec![2, 3, 1]);
        let mut ids: Vec<u64> = q.ids().map(|id| id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn max_surplus_mirrors_min_surplus() {
        let mut q = BucketQueue::new();
        q.insert(TaskId(1), fx(1), fx(10)); // α = 10
        q.insert(TaskId(2), fx(2), fx(3)); // α = 6
        q.insert(TaskId(3), fx(4), fx(3)); // α = 12
        assert_eq!(
            q.max_surplus(Fixed::ZERO, |_| true),
            Some((fx(12), fx(3), TaskId(3)))
        );
        // Filtering out the heavy tail falls back to the next bucket max.
        assert_eq!(
            q.max_surplus(Fixed::ZERO, |id| id != TaskId(3)),
            Some((fx(10), fx(10), TaskId(1)))
        );
        assert_eq!(q.max_surplus(Fixed::ZERO, |_| false), None);
        // Raising v flips the cross-class order, with no key updates.
        assert_eq!(
            q.max_surplus(fx(3), |_| true),
            Some((fx(7), fx(10), TaskId(1)))
        );
    }

    #[test]
    fn affinity_best_respects_cutoff_and_filter() {
        let mut q = BucketQueue::new();
        q.insert(TaskId(1), fx(1), fx(2)); // α = 2
        q.insert(TaskId(2), fx(1), fx(4)); // α = 4
        q.insert(TaskId(3), fx(2), fx(1)); // α = 2
        let (pick, _) = q.affinity_best(Fixed::ZERO, fx(3), |id| id == TaskId(2));
        assert_eq!(pick, None, "T2's surplus exceeds the cutoff");
        let (pick, scanned) = q.affinity_best(Fixed::ZERO, fx(4), |id| id == TaskId(2));
        assert_eq!(pick, Some(TaskId(2)));
        assert!(scanned >= 3, "affinity scan work must be reported");
        let (pick, _) = q.affinity_best(Fixed::ZERO, fx(4), |_| true);
        assert_eq!(pick, Some(TaskId(3)), "min (α, S, id) among eligible");
    }

    #[test]
    fn shift_keys_preserves_order() {
        let mut q = BucketQueue::new();
        q.insert(TaskId(1), fx(10), fx(100));
        q.insert(TaskId(2), fx(10), fx(200));
        q.insert(TaskId(3), fx(1), fx(150));
        q.shift_keys(-fx(100));
        assert_eq!(q.start_of(TaskId(1)), Some(fx(0)));
        assert_eq!(q.start_of(TaskId(3)), Some(fx(50)));
        q.check_invariants(|id| match id.0 {
            1 => fx(0),
            2 => fx(100),
            _ => fx(50),
        });
    }

    #[test]
    fn bucket_churn_prunes_empty_classes() {
        let mut q = BucketQueue::new();
        for round in 0..5 {
            q.insert(TaskId(1), fx(1 + round % 2), fx(round));
            q.remove(TaskId(1));
        }
        assert!(q.is_empty());
        assert_eq!(q.num_buckets(), 0);
    }
}
