//! Figure 5 — the short-jobs problem: SFQ vs SFS.
//!
//! §4.3: one Inf task T1 with weight 20, twenty Inf tasks (T2–T21) with
//! weight 1 each, and a sequence of short (300 ms ≈ 1.5 quanta) tasks
//! with weight 5, each arriving when the previous one finishes. The
//! weight groups are 20:20:5, so the groups should receive bandwidth
//! 4:4:1.
//!
//! Under SFQ each short job arrives holding the minimum start tag and
//! runs in a continuous spurt until it exits — the stream extracts a
//! whole processor and "each set of tasks receives approximately an
//! equal share" (paper). Under SFS a job's surplus jumps after its
//! first quantum and paces the rest of its service at the entitled
//! rate, so the groups converge to ≈4:4:1.
//!
//! Methodological note (recorded in EXPERIMENTS.md): unlike the paper's
//! physical testbed, the simulation starts all 21 long-lived tasks at
//! the same instant with identical tags, which produces a synchronized
//! cold-start transient of a few seconds. We therefore report both the
//! whole-run ratios and the steady-state window (final two thirds of a
//! 60 s run); the paper's qualitative claims appear in the whole run
//! for SFQ and in the steady-state window for SFS.

use sfs_core::time::{Duration, Time};
use sfs_experiment::Experiment;
use sfs_metrics::{render, ChartConfig, Table};
use sfs_sim::{Scenario, SimConfig, SimReport, StreamSpec, TaskSpec};
use sfs_workloads::BehaviorSpec;

use crate::common::{policy, Effort, ExpResult};
use crate::helpers::{sum_series, to_iterations};

fn scenario(effort: Effort, q_full_ms: u64) -> (Scenario, Duration) {
    let duration = effort.scale(Duration::from_secs(60));
    // Quick mode scales every time constant by 8, which reproduces the
    // full-scale tag dynamics exactly (verified by the scaling test).
    let (quantum, job_len) = match effort {
        Effort::Full => (Duration::from_millis(q_full_ms), Duration::from_millis(300)),
        Effort::Quick => (
            Duration::from_nanos(q_full_ms * 1_000_000 / 8),
            Duration::from_micros(37_500),
        ),
    };
    let cfg = SimConfig {
        cpus: 2,
        duration,
        ctx_switch: Duration::from_micros(5),
        sample_every: (duration / 150).max(Duration::from_millis(20)),
        track_gms: false,
        seed: 5,
        lean: false,
    };
    let scenario = Scenario::new("fig5", cfg)
        .task(TaskSpec::new("T1", 20, BehaviorSpec::Inf))
        .task(TaskSpec::new("bg", 1, BehaviorSpec::Inf).replicated(20))
        .stream(
            StreamSpec::new("short", 5, BehaviorSpec::Finite(job_len))
                .until(Time(duration.as_nanos())),
        );
    (scenario, quantum)
}

fn run_one(kind: &str, effort: Effort, q_full_ms: u64) -> SimReport {
    let (scenario, quantum) = scenario(effort, q_full_ms);
    Experiment::new(scenario)
        .run(policy(kind, quantum))
        .expect("fig5 scenario is well-formed")
        .sim_report()
        .clone()
}

/// Group services in seconds over `[w0, w1]`: (T1, T2–T21, shorts).
fn window_services(rep: &SimReport, w0: f64, w1: f64) -> (f64, f64, f64) {
    let gain = |t: &sfs_sim::TaskReport| t.series.at(w1) - t.series.at(w0);
    let t1 = gain(rep.task("T1").unwrap());
    let bg: f64 = rep
        .tasks
        .iter()
        .filter(|t| t.name.starts_with("bg#"))
        .map(gain)
        .sum();
    let shorts: f64 = rep
        .tasks
        .iter()
        .filter(|t| t.name.starts_with("short#"))
        .map(gain)
        .sum();
    (t1, bg, shorts)
}

/// Whole-run and steady-state T1:short ratios for one policy.
fn ratios(rep: &SimReport) -> (f64, f64) {
    let end = rep.duration.as_secs_f64();
    let (t1_all, _, sh_all) = window_services(rep, 0.0, end);
    let (t1_ss, _, sh_ss) = window_services(rep, end / 3.0, end);
    (t1_all / sh_all.max(1e-9), t1_ss / sh_ss.max(1e-9))
}

/// Regenerates Figure 5 (both panels).
pub fn run(effort: Effort) -> ExpResult {
    let mut res = ExpResult::new(
        "fig5",
        "The short-jobs problem: frequent arrivals/departures under SFQ vs SFS",
    );
    let mut table = Table::new(
        "group bandwidth (want T1 : T2-21 : T_short = 4 : 4 : 1)",
        &[
            "policy",
            "quantum",
            "T1 (s)",
            "T2-21 (s)",
            "T_short (s)",
            "T1:short",
        ],
    );
    // Quantum sweep: the paper's nominal 200 ms maximum plus the
    // regime where a 300 ms job spans several quanta (a real 2.2 kernel
    // interrupts long quanta constantly; see EXPERIMENTS.md). Each
    // quantum is one comparative run with SFQ as the baseline.
    for q_ms in [200u64, 100, 60] {
        let (scn, quantum) = scenario(effort, q_ms);
        let cmp = Experiment::new(scn)
            .compare(&[policy("sfq", quantum), policy("sfs", quantum)])
            .expect("fig5 scenario is well-formed");
        for run in &cmp.runs {
            let rep = run.sim_report();
            let end = rep.duration.as_secs_f64();
            let (t1, bg, shorts) = window_services(rep, 0.0, end);
            table.row(&[
                rep.sched_name.to_string(),
                format!("q={q_ms}ms"),
                format!("{t1:.2}"),
                format!("{bg:.2}"),
                format!("{shorts:.2}"),
                format!("{:.2}", t1 / shorts.max(1e-9)),
            ]);
            let (all, _ss) = ratios(rep);
            res.finding(
                &format!("{}_q{q_ms}_t1_to_short", rep.sched_name),
                format!("{all:.2}"),
            );
        }
    }
    for (panel, kind) in [("(a)", "sfq"), ("(b)", "sfs")] {
        let rep = run_one(kind, effort, 200);
        let end = rep.duration.as_secs_f64();

        // Chart: per-group cumulative iterations.
        let t1_series = {
            let src = to_iterations(&rep.task("T1").unwrap().series, 1.0);
            let mut s = sfs_metrics::TimeSeries::new("T1 (wt=20)");
            for &(x, y) in src.points() {
                s.push(x, y);
            }
            s
        };
        let bg_members: Vec<_> = rep
            .tasks
            .iter()
            .filter(|t| t.name.starts_with("bg#"))
            .collect();
        let short_members: Vec<_> = rep
            .tasks
            .iter()
            .filter(|t| t.name.starts_with("short#"))
            .collect();
        let bg_series = to_iterations(&sum_series("T2-T21 (wt=1 x20)", &bg_members, end, 80), 1.0);
        let short_series =
            to_iterations(&sum_series("T_short (wt=5)", &short_members, end, 80), 1.0);
        res.section(&render(
            &format!(
                "Figure 5{panel} {}: cumulative iterations per group",
                rep.sched_name
            ),
            &[&t1_series, &bg_series, &short_series],
            &ChartConfig {
                x_label: "time (s)".into(),
                y_label: "iterations".into(),
                ..ChartConfig::default()
            },
        ));

        let mut csv = String::from("time_s,T1,bg_group,short_group\n");
        for i in 0..=80 {
            let x = end * i as f64 / 80.0;
            csv.push_str(&format!(
                "{x:.3},{:.0},{:.0},{:.0}\n",
                t1_series.at(x),
                bg_series.at(x),
                short_series.at(x)
            ));
        }
        res.csv.push((
            format!("fig5{}.csv", if panel == "(a)" { "a" } else { "b" }),
            csv,
        ));
    }
    res.section(&table.to_text());
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quantum_sfq_equalizes_and_sfs_separates() {
        // q = 200 ms (paper config): SFQ gives the short stream a full
        // processor (ratio ≈ 1); SFS roughly doubles the separation.
        let (sfq_all, _) = ratios(&run_one("sfq", Effort::Quick, 200));
        let (sfs_all, _) = ratios(&run_one("sfs", Effort::Quick, 200));
        assert!(sfq_all < 1.5, "SFQ T1:short = {sfq_all:.2}");
        assert!(
            sfs_all > 1.3 * sfq_all,
            "no separation: SFS {sfs_all:.2} vs SFQ {sfq_all:.2}"
        );
    }

    #[test]
    fn multi_quantum_jobs_approach_4_to_1_under_sfs() {
        // q = 60 ms: a 300 ms job spans 5 quanta; the per-job arrival
        // subsidy shrinks and SFS approaches the entitled 4:1 while SFQ
        // still spurts (spurt length ≈ w_short = 5 quanta ≥ job).
        let (sfq_all, _) = ratios(&run_one("sfq", Effort::Quick, 60));
        let (sfs_all, _) = ratios(&run_one("sfs", Effort::Quick, 60));
        assert!((2.6..4.6).contains(&sfs_all), "SFS T1:short = {sfs_all:.2}");
        assert!(sfq_all < 2.4, "SFQ T1:short = {sfq_all:.2}");
    }
}
