//! Event-path cost sweep: arrivals, wakes, departures and reweights.
//!
//! Not a figure from the paper: this artefact is the complement of the
//! pick-path sweep in [`overhead`](crate::overhead). Where that one
//! measures the cost of a scheduling *decision*, this one measures the
//! cost of a runnable-set *mutation* — the §3.1 kernel path that runs
//! "after each arrival, departure, blocking event or wakeup event, or
//! if the user changes the weight of a thread". Under the sorted-scan
//! queues every such event paid an O(position) walk; the indexed
//! queues (skip-list run queues + per-weight-class readjustment map)
//! make it O(log n). The driver holds `n` compute-bound threads of ten
//! mixed weights in steady state on a lockstep quad-processor and
//! applies a churn-heavy mix, Fig. 6-style: every quantum requeues the
//! four running threads and additionally blocks one, wakes the
//! previously blocked, replaces two (exit + fresh arrival) and
//! reweights two.
//!
//! The emitted `BENCH_churn.json` carries, per thread count:
//!
//! * `ns_per_event_at_<n>` — wall-clock cost of one event (SFS),
//! * `steps_per_event_at_<n>` — queue/readjustment structure steps per
//!   event (SFS; deterministic, what CI gates on),
//! * `events_at_<n>` — events measured at that point, and
//! * `sfq_ns_per_event_at_<n>` / `sfq_steps_per_event_at_<n>` — the
//!   same two costs for SFQ+readjust, whose start queue is the shared
//!   indexed list that also backs WFQ, stride and BVT.
//!
//! A CI smoke step regenerates the quick variant on every PR and fails
//! if `steps_per_event` grows superlogarithmically across the sweep.

use std::collections::HashMap;
use std::time::Instant;

use sfs_core::sched::SwitchReason;
use sfs_core::task::{weight, CpuId, TaskId};
use sfs_core::time::{Duration, Time};
use sfs_metrics::{render, ChartConfig, TimeSeries};

use crate::common::{policy, Effort, ExpResult};

const CPUS: u32 = 4;
const WEIGHT_CLASSES: u64 = 10;

/// Deterministic xorshift64* stream driving the churn mix.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The driver's view of the ready set: O(1) membership updates so the
/// harness itself never adds O(n) scans to the measured loop.
#[derive(Default)]
struct ReadySet {
    ids: Vec<TaskId>,
    pos: HashMap<TaskId, usize>,
}

impl ReadySet {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    fn push(&mut self, id: TaskId) {
        self.pos.insert(id, self.ids.len());
        self.ids.push(id);
    }

    fn at(&self, i: usize) -> TaskId {
        self.ids[i]
    }

    fn remove(&mut self, id: TaskId) {
        let i = self.pos.remove(&id).expect("removing unknown ready id");
        let last = self.ids.pop().expect("ready set empty");
        if last != id {
            self.ids[i] = last;
            self.pos.insert(last, i);
        }
    }
}

/// Per-event cost measured at one (policy, thread-count) point.
pub struct ChurnPoint {
    /// Wall-clock nanoseconds per runnable-set mutation.
    pub ns_per_event: f64,
    /// Queue + readjustment structure steps per mutation.
    pub steps_per_event: f64,
    /// Mutations measured (after warm-up).
    pub events: u64,
}

/// Runs a churn-heavy steady state over `threads` runnable threads of
/// ten mixed weights on a lockstep quad-processor until at least
/// `measured_events` runnable-set mutations have been applied, and
/// reports the per-event cost.
pub fn churn_point(kind: &str, threads: usize, measured_events: u64) -> ChurnPoint {
    let quantum = Duration::from_millis(1);
    let mut sched = policy(kind, quantum).build(CPUS);
    let mut now = Time::ZERO;
    let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
    // Ten equal-sized weight classes, attached in descending-weight
    // blocks so setup stays linear even for position-scan queues.
    let mut ready = ReadySet::default();
    for i in 0..threads {
        let w = WEIGHT_CLASSES - (i * WEIGHT_CLASSES as usize / threads) as u64;
        let id = TaskId(i as u64);
        sched.attach(id, weight(w.max(1)), now);
        ready.push(id);
    }
    let mut next_id = threads as u64;
    let mut running: Vec<Option<TaskId>> = vec![None; CPUS as usize];
    let mut blocked: Vec<TaskId> = Vec::new();

    // One lockstep quantum: fill every processor, then requeue.
    // `churn` additionally blocks one running thread (waking it next
    // round), retires two ready threads for two fresh arrivals, and
    // reweights two ready threads.
    macro_rules! round {
        ($churn:expr) => {
            for (c, slot) in running.iter_mut().enumerate() {
                if slot.is_none() {
                    if let Some(id) = sched.pick_next(CpuId(c as u32), now) {
                        ready.remove(id);
                        *slot = Some(id);
                    }
                }
            }
            now += quantum;
            if $churn {
                for id in blocked.drain(..) {
                    sched.wake(id, now);
                    ready.push(id);
                }
                let c = rng.below(running.len());
                if let Some(id) = running[c].take() {
                    sched.put_prev(id, quantum / 2, SwitchReason::Blocked, now);
                    blocked.push(id);
                }
                for _ in 0..2 {
                    if ready.len() > 2 {
                        let gone = ready.at(rng.below(ready.len()));
                        ready.remove(gone);
                        sched.detach(gone, now);
                        let id = TaskId(next_id);
                        next_id += 1;
                        sched.attach(id, weight(1 + rng.next() % WEIGHT_CLASSES), now);
                        ready.push(id);
                    }
                }
                for _ in 0..2 {
                    if !ready.is_empty() {
                        let id = ready.at(rng.below(ready.len()));
                        sched.set_weight(id, weight(1 + rng.next() % WEIGHT_CLASSES), now);
                    }
                }
            }
            for slot in &mut running {
                if let Some(id) = slot.take() {
                    sched.put_prev(id, quantum, SwitchReason::Preempted, now);
                    ready.push(id);
                }
            }
        };
    }

    // Warm-up: every thread runs once (requeues only), dispersing the
    // cold-start tie mass into a steady-state tag spread, so measured
    // arrivals and wakes land at realistic queue positions.
    let warm_rounds = threads as u64 / CPUS as u64 + 16;
    for _ in 0..warm_rounds {
        round!(false);
    }
    let before = sched.stats();
    let t0 = Instant::now();
    while sched.stats().events - before.events < measured_events {
        round!(true);
    }
    let elapsed = t0.elapsed();
    let after = sched.stats();
    let events = (after.events - before.events).max(1);
    ChurnPoint {
        ns_per_event: elapsed.as_nanos() as f64 / events as f64,
        steps_per_event: (after.event_steps - before.event_steps) as f64 / events as f64,
        events,
    }
}

/// Regenerates the event-path churn sweep (`BENCH_churn.json`).
pub fn run(effort: Effort) -> ExpResult {
    let mut res = ExpResult::new(
        "churn",
        "Per-event cost vs runnable threads under arrival/wake/reweight churn",
    );
    let counts: &[usize] = match effort {
        Effort::Full => &[100, 1_000, 10_000, 100_000],
        Effort::Quick => &[100, 1_000, 5_000],
    };
    let events = effort.count(40_000);

    let mut sfs = TimeSeries::new("SFS (bucket queue + indexed weight map)");
    let mut sfq = TimeSeries::new("SFQ+readjust (indexed start queue)");
    let mut csv = String::from(
        "threads,ns_per_event,steps_per_event,events,sfq_ns_per_event,sfq_steps_per_event\n",
    );
    for &n in counts {
        let p = churn_point("sfs", n, events);
        let q = churn_point("sfq-readjust", n, events);
        sfs.push(n as f64, p.ns_per_event);
        sfq.push(n as f64, q.ns_per_event);
        csv.push_str(&format!(
            "{n},{:.1},{:.2},{},{:.1},{:.2}\n",
            p.ns_per_event, p.steps_per_event, p.events, q.ns_per_event, q.steps_per_event
        ));
        res.finding(
            &format!("ns_per_event_at_{n}"),
            format!("{:.1}", p.ns_per_event),
        );
        res.finding(
            &format!("steps_per_event_at_{n}"),
            format!("{:.2}", p.steps_per_event),
        );
        res.finding(&format!("events_at_{n}"), format!("{}", p.events));
        res.finding(
            &format!("sfq_ns_per_event_at_{n}"),
            format!("{:.1}", q.ns_per_event),
        );
        res.finding(
            &format!("sfq_steps_per_event_at_{n}"),
            format!("{:.2}", q.steps_per_event),
        );
    }
    res.section(&render(
        "Per-event scheduling cost vs runnable threads",
        &[&sfs, &sfq],
        &ChartConfig {
            x_label: "runnable threads".into(),
            y_label: "ns per runnable-set mutation".into(),
            ..ChartConfig::default()
        },
    ));
    res.csv.push(("churn.csv".into(), csv));
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_core::feasible::FeasibleWeights;

    #[test]
    fn event_work_does_not_grow_linearly_with_thread_count() {
        // Deterministic counters, not wall time: steps per event must be
        // flat-to-logarithmic in the runnable-set size for *every*
        // tag-ordered policy — including WFQ and BVT, whose virtual
        // times come from the incremental KeyCounter rather than the
        // run queue itself. A position-scan queue (or an O(n) min-tag
        // scan) pays ~n/2 here: thousands of steps at 4×10³.
        for kind in [
            "sfs",
            "sfq-readjust",
            "wfq",
            "bvt-readjust",
            "stride-readjust",
        ] {
            let small = churn_point(kind, 100, 2_000);
            let big = churn_point(kind, 4_000, 2_000);
            assert!(
                big.steps_per_event < small.steps_per_event * 4.0 + 64.0,
                "{kind} event path scales with n: {:.1} vs {:.1} steps/event",
                big.steps_per_event,
                small.steps_per_event
            );
        }
    }

    #[test]
    fn clamp_lookups_do_not_scale_with_runnable_set() {
        // The pick path probes the clamp set via `phi` on every
        // candidate; the probe must stay O(log p), independent of n.
        let mut per_n = Vec::new();
        for &n in &[100u64, 10_000] {
            let mut f = FeasibleWeights::new(4, true);
            for i in 0..n {
                f.insert(TaskId(i), weight(1 + i % 50));
            }
            // Two infeasibly heavy threads keep the clamp set non-empty
            // so every `phi` call pays a membership probe.
            f.insert(TaskId(n + 1), weight(50_000_000));
            f.insert(TaskId(n + 2), weight(50_000_000));
            let (l0, s0) = f.clamp_lookup_stats();
            for i in 0..n {
                let _ = f.phi(TaskId(i), weight(1 + i % 50));
            }
            let (l1, s1) = f.clamp_lookup_stats();
            assert!(l1 > l0, "phi must be probing the clamp set");
            per_n.push((s1 - s0) as f64 / (l1 - l0) as f64);
        }
        assert!(
            per_n[1] <= per_n[0] + 4.0,
            "clamp lookup cost scaled with n: {per_n:?}"
        );
    }

    #[test]
    fn churn_emits_machine_readable_summary() {
        let res = run(Effort::Quick);
        for key in [
            "ns_per_event_at_5000",
            "steps_per_event_at_100",
            "events_at_1000",
            "sfq_steps_per_event_at_5000",
        ] {
            assert!(
                res.summary.iter().any(|(k, _)| k == key),
                "missing finding {key}"
            );
        }
        let json = res.summary_json();
        assert!(json.contains("\"id\": \"churn\""), "{json}");
    }
}
