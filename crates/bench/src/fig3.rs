//! Figure 3 — efficacy of the bounded-lookahead scheduling heuristic.
//!
//! A quad-processor system with 100–400 runnable compute-bound threads
//! of mixed weights runs SFS in heuristic mode with auditing on: each
//! heuristic pick is compared against the exact minimum-surplus choice.
//! The figure plots the hit percentage against the number of queue
//! entries examined (`k`). The paper reports >99% accuracy by k≈20 even
//! at 400 runnable threads.

use sfs_core::policy::PolicySpec;
use sfs_core::task::{weight, TaskId};
use sfs_core::time::Duration;
use sfs_metrics::{render, ChartConfig, TimeSeries};

use crate::common::{Effort, ExpResult};

/// One accuracy measurement.
fn accuracy(threads: usize, k: usize, picks: u64) -> f64 {
    use sfs_core::sched::SwitchReason;
    use sfs_core::task::CpuId;
    use sfs_core::time::Time;

    let cpus = 4u32;
    let quantum = Duration::from_millis(1);
    let mut sched = PolicySpec::sfs()
        .with_quantum(quantum)
        .with_heuristic(k)
        .with_refresh_every(100)
        .with_audit()
        .build(cpus);
    let mut now = Time::ZERO;
    for i in 0..threads {
        // Mixed weights 1..=10, deterministic.
        sched.attach(TaskId(i as u64), weight(1 + (i as u64 * 7) % 10), now);
    }
    // Lockstep quanta across the 4 CPUs.
    let mut running: Vec<Option<TaskId>> = vec![None; cpus as usize];
    let mut done = 0u64;
    while done < picks {
        for slot in &mut running {
            if slot.is_none() {
                *slot = sched.pick_next(CpuId(0), now);
                done += 1;
            }
        }
        now += quantum;
        for slot in &mut running {
            if let Some(id) = slot.take() {
                sched.put_prev(id, quantum, SwitchReason::Preempted, now);
            }
        }
    }
    let st = sched.stats();
    if st.heuristic_audits == 0 {
        return 100.0;
    }
    100.0 * st.heuristic_hits as f64 / st.heuristic_audits as f64
}

/// Regenerates Figure 3.
pub fn run(effort: Effort) -> ExpResult {
    let mut res = ExpResult::new(
        "fig3",
        "Efficacy of the scheduling heuristic (quad-processor)",
    );
    let picks = effort.count(20_000);
    let ks: &[usize] = &[1, 2, 5, 10, 20, 30, 50, 75, 100];
    let thread_counts: &[usize] = &[100, 200, 300, 400];

    let mut series: Vec<TimeSeries> = Vec::new();
    let mut csv = String::from("k,threads,accuracy_pct\n");
    for &t in thread_counts {
        let mut s = TimeSeries::new(format!("{t} runnable threads"));
        for &k in ks {
            let acc = accuracy(t, k, picks);
            s.push(k as f64, acc);
            csv.push_str(&format!("{k},{t},{acc:.2}\n"));
        }
        if let Some((_, acc20)) = s.points().iter().find(|(x, _)| *x == 20.0).copied() {
            res.finding(&format!("accuracy_k20_t{t}"), format!("{acc20:.1}%"));
        }
        series.push(s);
    }
    let refs: Vec<&TimeSeries> = series.iter().collect();
    res.section(&render(
        "Heuristic accuracy vs entries examined per queue",
        &refs,
        &ChartConfig {
            x_label: "threads examined in each queue (k)".into(),
            y_label: "accuracy (%)".into(),
            ..ChartConfig::default()
        },
    ));
    res.csv.push(("fig3.csv".into(), csv));
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_increases_with_lookahead() {
        let low = accuracy(100, 1, 1_500);
        let high = accuracy(100, 64, 1_500);
        assert!(high >= low, "k=64 ({high}) < k=1 ({low})");
        assert!(high > 95.0, "k=64 accuracy only {high}");
    }
}
