//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--out DIR] [--trace DIR] [ID...]
//!
//!   ID      one or more of: fig1 fig3 fig4 fig5 fig6a fig6b fig6c fig7
//!           table1 all        (default: all)
//!   --quick scaled-down runs (seconds instead of minutes)
//!   --out   output directory  (default: results/)
//!   --trace additionally export a `<id>.perfetto-trace` into DIR for
//!           every requested experiment with a canonical sim scenario
//!           (the fig6 family) — open them in https://ui.perfetto.dev
//! ```
//!
//! Each experiment prints its report to stdout and writes
//! `<out>/<id>.txt` plus CSV data files. The `trace` experiment also
//! writes `.perfetto-trace` artefacts next to its report.

use std::path::PathBuf;
use std::process::ExitCode;

use sfs_bench::common::Effort;
use sfs_bench::{all_ids, run_experiment};

fn usage() -> String {
    format!(
        "usage: repro [--quick] [--out DIR] [--trace DIR] [ID...]\n       IDs: {} all",
        all_ids().join(" ")
    )
}

fn main() -> ExitCode {
    let mut effort = Effort::Full;
    let mut out = PathBuf::from("results");
    let mut trace_dir: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" | "-q" => effort = Effort::Quick,
            "--out" | "-o" => match args.next() {
                Some(dir) => out = PathBuf::from(dir),
                None => {
                    eprintln!("--out needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--trace" | "-t" => match args.next() {
                Some(dir) => trace_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--trace needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(all_ids().iter().map(ToString::to_string)),
            id if all_ids().contains(&id) => ids.push(id.to_string()),
            other => {
                eprintln!("unknown argument {other:?}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    if ids.is_empty() {
        ids.extend(all_ids().iter().map(ToString::to_string));
    }
    ids.dedup();

    for id in &ids {
        eprintln!(
            ">> running {id} ({})",
            if effort == Effort::Quick {
                "quick"
            } else {
                "full"
            }
        );
        let res = run_experiment(id, effort);
        println!("== {} — {} ==\n", res.id, res.title);
        println!("{}", res.text);
        if !res.summary.is_empty() {
            println!("-- summary --");
            for (k, v) in &res.summary {
                println!("{k}: {v}");
            }
            println!();
        }
        match res.write_to(&out) {
            Ok(files) => {
                for f in files {
                    eprintln!("   wrote {}", f.display());
                }
            }
            Err(e) => {
                eprintln!("failed writing results for {id}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Some(dir) = &trace_dir {
            match sfs_bench::trace::export_trace_for(id, effort, dir) {
                Ok(Some(p)) => eprintln!("   wrote {}", p.display()),
                Ok(None) => {}
                Err(e) => {
                    eprintln!("failed exporting trace for {id}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if res.failed {
            eprintln!("{id}: GATE FAILED (see report above)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
