//! `lint` and `verify` — the concurrency-correctness gates.
//!
//! Both are **gates**, not measurements: a failure sets
//! [`ExpResult::failed`] and the `repro` driver exits non-zero.
//!
//! * `repro lint` runs the project lint engine (see
//!   `sfs_analyze::lint`) over `crates/*/src`, applying the workspace
//!   `lint.allow`, and additionally proves each rule non-vacuous by
//!   feeding it a seeded mutation it must catch.
//! * `repro verify` runs the bounded interleaving checker (see
//!   `sfs_analyze::interleave`) over the three concurrency models —
//!   epoch publish/read, steal-vs-exit on two shards,
//!   watchdog-vs-timer heartbeat — exhaustively plus a seeded random
//!   sweep, and proves each model's checker non-vacuous by confirming
//!   the deliberately broken variant is caught.

use std::fmt::Write as _;
use std::path::Path;

use sfs_analyze::interleave::{Explorer, Model, Report};
use sfs_analyze::lint;
use sfs_analyze::models::{EpochPublish, StealVsExit, WatchdogHeartbeat};

use crate::common::{Effort, ExpResult};

/// The workspace root, resolved from this crate's manifest directory
/// (works from `cargo run`, `cargo test` and the installed binary run
/// from a checkout).
fn workspace_root() -> &'static Path {
    static ROOT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    Path::new(ROOT)
}

/// Runs the project lint engine as a gate.
pub fn run_lint(_effort: Effort) -> ExpResult {
    let mut res = ExpResult::new("lint", "Project lint engine: concurrency hygiene rules");

    let mut rules = String::from("rules:\n");
    for (id, desc) in lint::RULES {
        let _ = writeln!(rules, "  {id:<16} {desc}");
    }
    res.section(&rules);

    // Non-vacuousness first: every rule must catch its seeded
    // mutation, or a clean report over the real tree proves nothing.
    let mutations: &[(&str, &str, &str)] = &[
        (
            "sim-wall-clock",
            "crates/sim/src/clock.rs",
            "let t0 = std::time::SystemTime::now();\n",
        ),
        (
            "rt-sleep",
            "crates/core/src/shard.rs",
            "thread::sleep(Duration::from_millis(1));\n",
        ),
        (
            "hot-unwrap",
            "crates/rt/src/executor.rs",
            "let g = self.global.lock().unwrap();\n",
        ),
        (
            "rt-raw-mutex",
            "crates/rt/src/executor.rs",
            "let m: Mutex<u32> = Mutex::new(0);\n",
        ),
        (
            "relaxed-justify",
            "crates/rt/src/executor.rs",
            "self.epoch.store(e, Ordering::Relaxed);\n",
        ),
    ];
    let mut caught = 0usize;
    let mut mut_text = String::from("seeded mutations (each rule must fire on its own):\n");
    for (rule, path, src) in mutations {
        let hit = lint::scan_source(path, src).iter().any(|f| f.rule == *rule);
        if hit {
            caught += 1;
        } else {
            res.failed = true;
        }
        let _ = writeln!(
            mut_text,
            "  {rule:<16} {}",
            if hit { "caught" } else { "MISSED" }
        );
    }
    res.section(&mut_text);
    res.finding("mutations caught", format!("{caught}/{}", mutations.len()));

    // The real tree.
    match lint::run(workspace_root()) {
        Ok(report) => {
            let mut body = format!(
                "scanned {} files; {} finding(s), {} suppressed by lint.allow\n",
                report.files_scanned,
                report.findings.len(),
                report.suppressed
            );
            for f in &report.findings {
                let _ = writeln!(body, "  {f}");
            }
            res.section(&body);
            res.finding("files scanned", report.files_scanned.to_string());
            res.finding("findings", report.findings.len().to_string());
            res.finding("suppressed", report.suppressed.to_string());
            if !report.clean() {
                res.failed = true;
            }
        }
        Err(e) => {
            res.section(&format!("lint run failed: {e}"));
            res.failed = true;
        }
    }
    res.finding("gate", if res.failed { "FAIL" } else { "pass" }.to_string());
    res
}

/// One model's exploration line for the report.
fn describe(name: &str, report: &Report, expect_clean: bool) -> (String, bool) {
    let ok = if expect_clean {
        report.clean()
    } else {
        !report.clean()
    };
    let mut line = format!(
        "  {name:<28} {:>7} schedules ({}) — {}",
        report.schedules,
        if report.complete {
            "exhaustive"
        } else {
            "budget-capped"
        },
        match (expect_clean, ok) {
            (true, true) => "clean".to_string(),
            (true, false) => format!("VIOLATION: {}", report.violations[0].message),
            (false, true) => format!("caught: {}", report.violations[0].message),
            (false, false) => "MUTATION MISSED".to_string(),
        }
    );
    line.push('\n');
    (line, ok)
}

/// Runs the bounded interleaving checker as a gate.
pub fn run_verify(effort: Effort) -> ExpResult {
    let mut res = ExpResult::new(
        "verify",
        "Bounded interleaving checker: exhaustive + sampled model exploration",
    );
    let explorer = Explorer::default();
    let samples = effort.count(4_000) as usize;

    let mut total = 0usize;
    let mut body = String::from("exhaustive DFS over each model:\n");

    // (name, correct model, broken mutation of the same model)
    type Case = (&'static str, Box<dyn Model>, Box<dyn Model>);
    let cases: Vec<Case> = vec![
        (
            "epoch-publish",
            Box::new(EpochPublish::new(false)),
            Box::new(EpochPublish::new(true)),
        ),
        (
            "steal-vs-exit",
            Box::new(StealVsExit::new(false)),
            Box::new(StealVsExit::new(true)),
        ),
        (
            "watchdog-heartbeat",
            Box::new(WatchdogHeartbeat::new(false)),
            Box::new(WatchdogHeartbeat::new(true)),
        ),
    ];

    for (name, mut correct, mut broken) in cases {
        let clean = explorer.explore(correct.as_mut());
        total += clean.schedules;
        let (line, ok) = describe(name, &clean, true);
        body.push_str(&line);
        if !ok {
            res.failed = true;
        }
        res.finding(
            &format!("{name} schedules"),
            format!(
                "{}{}",
                clean.schedules,
                if clean.complete { " (exhaustive)" } else { "" }
            ),
        );

        let seeded = explorer.explore(broken.as_mut());
        let (line, ok) = describe(&format!("{name} [broken]"), &seeded, false);
        body.push_str(&line);
        if !ok {
            res.failed = true;
        }
    }
    res.section(&body);

    // A seeded random sweep on top: different coverage shape, same
    // invariants, deterministic per seed.
    let mut sampled = String::from("seeded random sweep (xorshift64*, seed 0xC0FFEE):\n");
    for (name, mut model) in [
        (
            "epoch-publish",
            Box::new(EpochPublish::new(false)) as Box<dyn Model>,
        ),
        ("steal-vs-exit", Box::new(StealVsExit::new(false))),
        (
            "watchdog-heartbeat",
            Box::new(WatchdogHeartbeat::new(false)),
        ),
    ] {
        let rep = explorer.sample(model.as_mut(), 0xC0_FFEE, samples);
        total += rep.schedules;
        let (line, ok) = describe(name, &rep, true);
        sampled.push_str(&line);
        if !ok {
            res.failed = true;
        }
    }
    res.section(&sampled);

    res.finding("total schedules", total.to_string());
    res.finding(
        "schedule floor (>= 10^4)",
        if total >= 10_000 { "met" } else { "MISSED" }.to_string(),
    );
    if total < 10_000 {
        res.failed = true;
    }
    res.finding("gate", if res.failed { "FAIL" } else { "pass" }.to_string());
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_gate_is_clean_on_this_tree() {
        let res = run_lint(Effort::Quick);
        assert!(
            !res.failed,
            "lint gate must pass on the checked-in tree:\n{}",
            res.text
        );
    }

    #[test]
    fn verify_gate_passes_and_meets_the_schedule_floor() {
        let res = run_verify(Effort::Quick);
        assert!(!res.failed, "verify gate must pass:\n{}", res.text);
        let total: usize = res
            .summary
            .iter()
            .find(|(k, _)| k == "total schedules")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap();
        assert!(total >= 10_000, "schedule floor: {total}");
    }
}
