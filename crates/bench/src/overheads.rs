//! Figure 7 and Table 1 — scheduling overheads, measured on the
//! real-thread runtime (`sfs-rt`), the analogue of the paper's lmbench
//! measurements (§4.5).
//!
//! Absolute numbers are userspace numbers (lock + park/unpark instead of
//! a kernel context switch), but the comparison the paper makes — SFS
//! costs a small constant factor more than time sharing, growing with
//! the run-queue length, while everything else is equal — is preserved
//! because both policies run under the identical executor.

use sfs_core::sched::Scheduler;
use sfs_core::time::Duration;
use sfs_metrics::{render, ChartConfig, Table, TimeSeries};
use sfs_rt::microbench::{checkpoint_cost, ctx_switch_latency, spawn_cost};

use crate::common::{make_sched, Effort, ExpResult};

fn sched_for(kind: &str) -> Box<dyn Scheduler> {
    // One virtual CPU, 200 ms quantum (switches come from yields).
    make_sched(kind, 1, Duration::from_millis(200))
}

/// Regenerates Figure 7: context-switch latency vs number of processes
/// (0 KB working sets).
pub fn run_fig7(effort: Effort) -> ExpResult {
    let mut res = ExpResult::new(
        "fig7",
        "Context switch latency vs number of processes (0 KB working set)",
    );
    let rounds = effort.count(1_600);
    let ns: &[usize] = &[2, 5, 10, 20, 35, 50];
    let mut sfs_series = TimeSeries::new("SFS");
    let mut ts_series = TimeSeries::new("Time sharing");
    let mut csv = String::from("processes,sfs_us,timeshare_us\n");
    for &n in ns {
        let sfs = ctx_switch_latency(sched_for("sfs"), n, 0, rounds).as_nanos() as f64 / 1e3;
        let ts = ctx_switch_latency(sched_for("timeshare"), n, 0, rounds).as_nanos() as f64 / 1e3;
        sfs_series.push(n as f64, sfs);
        ts_series.push(n as f64, ts);
        csv.push_str(&format!("{n},{sfs:.3},{ts:.3}\n"));
    }
    res.section(&render(
        "Scheduling overhead imposed by 0KB processes",
        &[&sfs_series, &ts_series],
        &ChartConfig {
            x_label: "number of processes".into(),
            y_label: "context switch time (us)".into(),
            ..ChartConfig::default()
        },
    ));
    res.finding("sfs_us_at_2", format!("{:.2}", sfs_series.at(2.0)));
    res.finding("sfs_us_at_50", format!("{:.2}", sfs_series.at(50.0)));
    res.finding("timeshare_us_at_2", format!("{:.2}", ts_series.at(2.0)));
    res.finding("timeshare_us_at_50", format!("{:.2}", ts_series.at(50.0)));
    res.csv.push(("fig7.csv".into(), csv));
    res
}

/// Regenerates Table 1: lmbench-style overheads under time sharing and
/// SFS.
pub fn run_table1(effort: Effort) -> ExpResult {
    let mut res = ExpResult::new("table1", "Scheduling overheads (lmbench analogues)");
    let iters = effort.count(400_000);
    let rounds = effort.count(1_600);
    let spawns = effort.count(48);

    let mut table = Table::new(
        "userspace analogues of the lmbench rows",
        &["Test", "Time sharing", "SFS"],
    );
    let fmt = |d: Duration| -> String {
        if d.as_nanos() == 0 {
            "<1 ns".to_string()
        } else if d.as_nanos() < 1_000 {
            format!("{} ns", d.as_nanos())
        } else if d.as_nanos() < 1_000_000 {
            format!("{:.1} us", d.as_nanos() as f64 / 1e3)
        } else {
            format!("{:.2} ms", d.as_nanos() as f64 / 1e6)
        }
    };

    let ts_chk = checkpoint_cost(sched_for("timeshare"), iters);
    let sfs_chk = checkpoint_cost(sched_for("sfs"), iters);
    table.row(&[
        "scheduler entry (syscall analogue)".into(),
        fmt(ts_chk),
        fmt(sfs_chk),
    ]);

    let ts_spawn = spawn_cost(|| sched_for("timeshare"), spawns);
    let sfs_spawn = spawn_cost(|| sched_for("sfs"), spawns);
    table.row(&[
        "task spawn+retire (fork/exec analogue)".into(),
        fmt(ts_spawn),
        fmt(sfs_spawn),
    ]);

    for (label, nprocs, kb) in [
        ("context switch (2 proc / 0KB)", 2usize, 0usize),
        ("context switch (8 proc / 16KB)", 8, 16),
        ("context switch (16 proc / 64KB)", 16, 64),
    ] {
        let ts = ctx_switch_latency(sched_for("timeshare"), nprocs, kb, rounds);
        let sfs = ctx_switch_latency(sched_for("sfs"), nprocs, kb, rounds);
        table.row(&[label.into(), fmt(ts), fmt(sfs)]);
        if nprocs == 2 {
            res.finding("ctx_2proc_0kb_timeshare", fmt(ts));
            res.finding("ctx_2proc_0kb_sfs", fmt(sfs));
        }
        if nprocs == 16 {
            res.finding("ctx_16proc_64kb_timeshare", fmt(ts));
            res.finding("ctx_16proc_64kb_sfs", fmt(sfs));
        }
    }
    res.section(&table.to_text());
    res.csv.push(("table1.csv".into(), table.to_csv()));
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_produces_series() {
        let res = run_fig7(Effort::Quick);
        assert!(res.text.contains("SFS"));
        assert!(res
            .csv
            .iter()
            .any(|(n, c)| n == "fig7.csv" && c.lines().count() >= 5));
    }
}
