//! # sfs-bench — experiment harnesses for every table and figure
//!
//! One module per paper artefact, each exposing `run(effort)` and
//! returning a rendered [`common::ExpResult`]:
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`fig1`] | Figure 1 / Example 1 (infeasible-weights starvation) |
//! | [`fig3`] | Figure 3 (heuristic accuracy) |
//! | [`fig4`] | Figure 4(a,b) (readjustment fixes SFQ) |
//! | [`fig5`] | Figure 5(a,b) (short-jobs problem, SFQ vs SFS) |
//! | [`fig6`] | Figure 6(a,b,c) (allocation, isolation, interactivity) |
//! | [`overheads`] | Figure 7 and Table 1 (scheduling overheads) |
//! | [`overhead`] | Per-decision cost sweep, 10²–10⁵ threads (beyond the paper: bucket-queue pick path) |
//! | [`churn`] | Per-event cost sweep, 10²–10⁵ threads (beyond the paper: indexed-queue event path) |
//! | [`mega`] | Whole-engine cost sweep, 10⁴–10⁶ tasks in one run (beyond the paper: timing-wheel engine) |
//! | [`scale`] | Shard-scaling sweep: decisions/s + lock costs vs shard count, sharded-vs-global fairness (beyond the paper: §5 per-CPU run queues) |
//! | [`tenants`] | Multi-tenant sweep: misbehaving-tenant isolation, decision cost at 10²–10⁴ tenants (beyond the paper: §6 hierarchical SFS) |
//! | [`trace`] | Trace subsystem smoke: Perfetto export validity on sim + rt, capture→replay determinism, recording overhead (beyond the paper: observability) |
//! | [`chaos`] | Overload armor: admission control vs a flooding tenant, seeded fault-injection recovery, chaos replay determinism (beyond the paper: robustness) |
//! | [`verify`] | Concurrency-correctness gates: `lint` (project lint engine over `crates/*/src`) and `verify` (bounded interleaving checker over the epoch/steal/watchdog models) — gates, not measurements: failures exit non-zero |
//!
//! The `repro` binary drives them all and writes reports to
//! `results/`; the `figures`/`overheads` bench targets run them in
//! quick mode under `cargo bench`.

pub mod chaos;
pub mod churn;
pub mod common;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod helpers;
pub mod mega;
pub mod overhead;
pub mod overheads;
pub mod scale;
pub mod tenants;
pub mod trace;
pub mod verify;

use common::{Effort, ExpResult};

/// All experiment ids, in paper order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "fig1", "fig3", "fig4", "fig5", "fig6a", "fig6b", "fig6c", "fig7", "table1", "overhead",
        "churn", "mega", "scale", "tenants", "trace", "chaos", "lint", "verify",
    ]
}

/// Runs one experiment by id.
///
/// # Panics
///
/// Panics on an unknown id; see [`all_ids`].
pub fn run_experiment(id: &str, effort: Effort) -> ExpResult {
    match id {
        "fig1" => fig1::run(effort),
        "fig3" => fig3::run(effort),
        "fig4" => fig4::run(effort),
        "fig5" => fig5::run(effort),
        "fig6a" => fig6::run_6a(effort),
        "fig6b" => fig6::run_6b(effort),
        "fig6c" => fig6::run_6c(effort),
        "fig7" => overheads::run_fig7(effort),
        "table1" => overheads::run_table1(effort),
        "overhead" => overhead::run(effort),
        "churn" => churn::run(effort),
        "mega" => mega::run(effort),
        "scale" => scale::run(effort),
        "tenants" => tenants::run(effort),
        "trace" => trace::run(effort),
        "chaos" => chaos::run(effort),
        "lint" => verify::run_lint(effort),
        "verify" => verify::run_verify(effort),
        other => panic!("unknown experiment {other:?}; known: {:?}", all_ids()),
    }
}
