//! Overload-armor sweep: admission control against a flooding tenant,
//! seeded fault-injection recovery, and chaos capture→replay
//! determinism (`repro chaos` → `BENCH_chaos.json`).
//!
//! Not a figure from the paper: §2.1's weight readjustment keeps the
//! *scheduler* honest under infeasible weights, but a production
//! system also needs the layers around it to survive overload and
//! faults. Three parts:
//!
//! * **Admission.** The `tenants` rogue scenario — four tenants with
//!   equal group shares, the last flooding 16 weight-100 tasks — run
//!   under hierarchical SFS with an `admit(max=4,rate=500/s)` clause.
//!   The cap admits every honest tenant whole (2 tasks each) while the
//!   rogue's flood is cut to 4 live tasks; the §2.1 release on each
//!   rejection returns the refused weight immediately. Reported: the
//!   worst well-behaved tenant's share error, the flat-SFS no-armor
//!   baseline, and the rejection count. CI fails if the armored error
//!   ever exceeds the flat baseline or drifts above 0.02.
//! * **Faults.** A seeded [`FaultPlan`] (task panics, CPU stalls,
//!   timer jitter, dropped wakeups) injected into a simulator run.
//!   Every fault must be recovered — panicked tasks reaped with their
//!   weight released, delayed timers resorbed — and the scheduler's
//!   invariants re-audited after each recovery must never fail.
//! * **Replay.** The faulted, admission-gated run is captured and
//!   re-driven; the context-switch sequences must match exactly, i.e.
//!   chaos is as deterministic as everything else in the simulator.

use sfs_core::fault::FaultPlan;
use sfs_core::policy::{GroupSpec, PolicySpec};
use sfs_core::time::{Duration, Time};
use sfs_experiment::{Experiment, RunReport, TaskFate};
use sfs_sim::{RunHealth, Scenario, SimConfig, TaskSpec};
use sfs_workloads::BehaviorSpec;

use crate::common::{Effort, ExpResult};

/// Tenants in the admission half; the last one misbehaves.
const TENANTS: usize = 4;

/// Seed of the fault half's plan — fixed, so the artefact regenerates
/// byte-identically.
const FAULT_SEED: u64 = 0xC0FF_EE00_5EED;

/// The rogue-flood scenario: `TENANTS` tenants with equal group
/// shares, every honest tenant running 2 weight-1 tasks, the last
/// tenant flooding 16 weight-100 replicas.
fn rogue_scenario(effort: Effort) -> Scenario {
    let cfg = SimConfig {
        cpus: 4,
        duration: effort.scale(Duration::from_secs(8)),
        ..SimConfig::default()
    };
    let mut scenario = Scenario::new("chaos-admission", cfg);
    for t in 0..TENANTS - 1 {
        scenario = scenario.tenant(
            &format!("t{t}"),
            [TaskSpec::new(&format!("t{t}"), 1, BehaviorSpec::Inf).replicated(2)],
        );
    }
    let rogue = TENANTS - 1;
    scenario.tenant(
        &format!("t{rogue}"),
        [TaskSpec::new(&format!("t{rogue}"), 100, BehaviorSpec::Inf).replicated(16)],
    )
}

/// Per-tenant machine shares by name prefix (the same accounting the
/// `tenants` artefact uses, so flat runs without [`TenantId`]s sum the
/// same way).
fn shares_by_prefix(report: &RunReport) -> Vec<f64> {
    let shares = report.shares();
    (0..TENANTS)
        .map(|t| {
            let prefix = format!("t{t}#");
            shares
                .iter()
                .zip(&report.tasks)
                .filter(|(_, task)| task.name.starts_with(&prefix))
                .map(|(s, _)| s)
                .sum()
        })
        .collect()
}

/// The hierarchical policy with the `admit(...)` armor attached.
fn armored_policy() -> PolicySpec {
    let q = Duration::from_millis(5);
    PolicySpec::sfs_over(
        (0..TENANTS).map(|t| GroupSpec::new(&format!("t{t}"), PolicySpec::sfs().with_quantum(q))),
    )
    .with_admission(
        sfs_core::admit::AdmissionPolicy::none()
            .with_max_live(4)
            .with_rate(500),
    )
}

/// Runs the rogue scenario armored (hier + admission) and bare (flat,
/// no admission); returns `(armored_report, flat_report)`.
pub fn admission_reports(effort: Effort) -> (RunReport, RunReport) {
    let exp = Experiment::new(rogue_scenario(effort));
    let armored = exp
        .run(armored_policy())
        .expect("rogue scenario, armored policy");
    let flat = exp
        .run(PolicySpec::sfs().with_quantum(Duration::from_millis(5)))
        .expect("rogue scenario, flat policy");
    (armored, flat)
}

/// The fault half's scenario: four equal spinners on two CPUs, with a
/// seeded plan of `count` mixed faults and the admission clause still
/// on (so replay covers both subsystems at once).
fn faulted_scenario(effort: Effort, count: usize) -> Scenario {
    let duration = effort.scale(Duration::from_secs(4));
    let cfg = SimConfig {
        cpus: 2,
        duration,
        ..SimConfig::default()
    };
    let plan = FaultPlan::generate(FAULT_SEED, Time(duration.as_nanos()), 4, 2, count);
    Scenario::new("chaos-faults", cfg)
        .task(TaskSpec::new("a", 1, BehaviorSpec::Inf))
        .task(TaskSpec::new("b", 1, BehaviorSpec::Inf))
        .task(TaskSpec::new("c", 2, BehaviorSpec::Inf))
        .task(TaskSpec::new("d", 2, BehaviorSpec::Inf))
        .with_faults(plan)
}

/// Injects the seeded plan and returns the run's health counters.
pub fn fault_recovery(effort: Effort) -> RunHealth {
    let count = effort.count(32) as usize;
    let rep = Experiment::new(faulted_scenario(effort, count))
        .run("sfs:quantum=5ms")
        .expect("faulted scenario runs");
    rep.health
}

/// Regenerates the overload-armor sweep (`BENCH_chaos.json`).
pub fn run(effort: Effort) -> ExpResult {
    let mut res = ExpResult::new(
        "chaos",
        "Overload armor: admission under a rogue flood, fault recovery, chaos replay",
    );

    // Part 1: admission. Entitlement is 1/TENANTS for every tenant.
    let (armored, flat) = admission_reports(effort);
    let armored_shares = shares_by_prefix(&armored);
    let flat_shares = shares_by_prefix(&flat);
    let entitlement = 1.0 / TENANTS as f64;
    let (mut worst_armored, mut worst_flat) = (0.0f64, 0.0f64);
    for t in 0..TENANTS - 1 {
        worst_armored = worst_armored.max((armored_shares[t] - entitlement).abs());
        worst_flat = worst_flat.max((flat_shares[t] - entitlement).abs());
    }
    let rejected_tasks = armored
        .tasks
        .iter()
        .filter(|t| t.fate == TaskFate::Rejected)
        .count();
    res.finding("chaos_share_err_wellbehaved", format!("{worst_armored:.4}"));
    res.finding("chaos_share_err_flat", format!("{worst_flat:.4}"));
    res.finding("chaos_rejected", armored.health.rejected.to_string());
    res.section(&format!(
        "Admission: tenant t{} floods 16 weight-100 tasks against `{}`.\n\
         Rejected arrivals: {} ({} task outcomes marked rejected).\n\
         Worst well-behaved share error: armored {worst_armored:.4}, \
         flat SFS no-armor baseline {worst_flat:.4} (entitlement {entitlement:.2} each).",
        TENANTS - 1,
        armored.policy,
        armored.health.rejected,
        rejected_tasks,
    ));

    // Part 2: seeded fault recovery.
    let health = fault_recovery(effort);
    res.finding("chaos_faults_injected", health.faults_injected.to_string());
    res.finding(
        "chaos_faults_recovered",
        health.faults_recovered.to_string(),
    );
    res.finding(
        "chaos_invariant_violations",
        health.invariant_violations.to_string(),
    );
    res.section(&format!(
        "Faults: seed {FAULT_SEED:#x} injected {} panics/stalls/jitters/wake-drops; \
         {} recovered, {} invariant audits failed.",
        health.faults_injected, health.faults_recovered, health.invariant_violations,
    ));

    // Part 3: the faulted, admission-gated run replays exactly.
    let count = effort.count(32) as usize;
    let exp = Experiment::new(faulted_scenario(effort, count));
    let (_, capture) = exp
        .capture(armored_policy().to_string().as_str())
        .expect("faulted scenario captures");
    let replay = Experiment::replay(&capture).expect("chaos capture replays");
    res.finding("chaos_replay_match", replay.sequences_match().to_string());
    res.section(&format!(
        "Replay: {} captured context switches re-driven under faults + admission; \
         match = {}.",
        replay.captured.len(),
        replay.sequences_match(),
    ));
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_caps_the_rogue_flood() {
        let (armored, flat) = admission_reports(Effort::Quick);
        // The rogue's 16 arrivals hit the max=4 cap: 12 rejected.
        assert_eq!(armored.health.rejected, 12, "{:?}", armored.health);
        assert_eq!(flat.health.rejected, 0);
        let shares = shares_by_prefix(&armored);
        let entitlement = 1.0 / TENANTS as f64;
        for (t, s) in shares.iter().enumerate().take(TENANTS - 1) {
            assert!(
                (s - entitlement).abs() < 0.05,
                "well-behaved t{t} lost its entitlement under armor: {s:.4}"
            );
        }
    }

    #[test]
    fn seeded_faults_all_recover() {
        let health = fault_recovery(Effort::Quick);
        assert!(health.faults_injected > 0);
        assert_eq!(
            health.faults_recovered, health.faults_injected,
            "{health:?}"
        );
        assert_eq!(health.invariant_violations, 0, "{health:?}");
    }

    #[test]
    fn chaos_emits_machine_readable_summary() {
        let res = run(Effort::Quick);
        for key in [
            "chaos_share_err_wellbehaved",
            "chaos_share_err_flat",
            "chaos_rejected",
            "chaos_faults_injected",
            "chaos_faults_recovered",
            "chaos_invariant_violations",
            "chaos_replay_match",
        ] {
            assert!(
                res.summary.iter().any(|(k, _)| k == key),
                "missing finding {key}"
            );
        }
        assert!(
            res.summary
                .iter()
                .any(|(k, v)| k == "chaos_replay_match" && v == "true"),
            "chaos replay must be deterministic: {:?}",
            res.summary
        );
        let json = res.summary_json();
        assert!(json.contains("\"id\": \"chaos\""), "{json}");
    }
}
