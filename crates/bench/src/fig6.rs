//! Figure 6 — proportionate allocation, application isolation, and
//! interactive performance (§4.4).
//!
//! * **(a)** two dhrystones at weight ratios 1:1, 1:2, 1:4, 1:7 over a
//!   pool of 20 weight-1 background dhrystones: loops/sec must track
//!   the weights.
//! * **(b)** an MPEG decoder (large weight → one full CPU after
//!   readjustment) against 0–10 parallel compilations: SFS holds the
//!   frame rate; time sharing lets it decay.
//! * **(c)** an interactive task against 0–10 disksim processes: SFS
//!   response times stay comparable to time sharing (which explicitly
//!   boosts I/O-bound tasks).

use sfs_core::time::Duration;
use sfs_experiment::{Experiment, RunReport};
use sfs_metrics::{render, ChartConfig, Summary, Table, TimeSeries};
use sfs_sim::{Scenario, SimConfig, SimReport, TaskSpec};
use sfs_workloads::BehaviorSpec;

use crate::common::{policy, Effort, ExpResult};

fn base_cfg(effort: Effort, full_secs: u64, seed: u64) -> SimConfig {
    let duration = effort.scale(Duration::from_secs(full_secs));
    SimConfig {
        cpus: 2,
        duration,
        ctx_switch: Duration::from_micros(5),
        sample_every: (duration / 50).max(Duration::from_millis(50)),
        track_gms: false,
        seed,
        lean: false,
    }
}

// ---------------------------------------------------------------- 6(a)

/// The Figure 6(a) scenario: a weighted dhrystone pair over 20 weight-1
/// background dhrystones. Shared with the `trace` experiment, which
/// exports a Perfetto trace of exactly this run.
pub(crate) fn scenario_6a(w_a: u64, w_b: u64, effort: Effort) -> Scenario {
    let cfg = base_cfg(effort, 10, 60 + w_b);
    Scenario::new("fig6a", cfg)
        .task(TaskSpec::new("bg", 1, BehaviorSpec::Dhrystone).replicated(20))
        .task(TaskSpec::new("A", w_a, BehaviorSpec::Dhrystone))
        .task(TaskSpec::new("B", w_b, BehaviorSpec::Dhrystone))
}

fn run_6a_pair(w_a: u64, w_b: u64, effort: Effort) -> SimReport {
    Experiment::new(scenario_6a(w_a, w_b, effort))
        .run(policy("sfs", effort.quantum()))
        .expect("fig6a scenario is well-formed")
        .sim_report()
        .clone()
}

/// Regenerates Figure 6(a): proportionate allocation.
pub fn run_6a(effort: Effort) -> ExpResult {
    let mut res = ExpResult::new(
        "fig6a",
        "Proportionate allocation: dhrystone loops/sec vs weight ratio (SFS)",
    );
    let mut table = Table::new(
        "dhrystone pair over 20 weight-1 background dhrystones",
        &["weights", "A loops/sec", "B loops/sec", "B/A", "want"],
    );
    let mut csv = String::from("ratio,a_loops_per_sec,b_loops_per_sec,measured_ratio\n");
    for (w_a, w_b) in [(1u64, 1u64), (1, 2), (1, 4), (1, 7)] {
        let rep = run_6a_pair(w_a, w_b, effort);
        let secs = rep.duration.as_secs_f64();
        let a = rep.task("A").unwrap().iterations.unwrap() as f64 / secs;
        let b = rep.task("B").unwrap().iterations.unwrap() as f64 / secs;
        table.row(&[
            format!("{w_a}:{w_b}"),
            format!("{a:.0}"),
            format!("{b:.0}"),
            format!("{:.2}", b / a),
            format!("{:.2}", w_b as f64 / w_a as f64),
        ]);
        csv.push_str(&format!("{w_a}:{w_b},{a:.0},{b:.0},{:.3}\n", b / a));
        res.finding(&format!("ratio_{w_a}_{w_b}"), format!("{:.2}", b / a));
    }
    res.section(&table.to_text());
    res.csv.push(("fig6a.csv".into(), csv));
    res
}

// ---------------------------------------------------------------- 6(b)

/// The Figure 6(b) scenario: an MPEG decoder against `compilations`
/// parallel compilations. Shared with the `trace` experiment.
pub(crate) fn scenario_6b(compilations: usize, effort: Effort) -> Scenario {
    let cfg = base_cfg(effort, 20, 61);
    let mut scenario = Scenario::new("fig6b", cfg).task(TaskSpec::new(
        "mpeg",
        10,
        BehaviorSpec::Mpeg {
            fps: 30,
            frame_cost: Duration::from_millis(30),
        },
    ));
    if compilations > 0 {
        scenario = scenario.task(
            TaskSpec::new(
                "gcc",
                1,
                BehaviorSpec::Compile {
                    burst: Duration::from_millis(40),
                    io: Duration::from_millis(2),
                },
            )
            .replicated(compilations),
        );
    }
    scenario
}

/// MPEG frame rate at one load point under SFS and time sharing — a
/// single comparative run.
fn run_6b_point(compilations: usize, effort: Effort) -> (f64, f64) {
    let cmp = Experiment::new(scenario_6b(compilations, effort))
        .compare(&[
            policy("sfs", effort.quantum()),
            policy("timeshare", effort.quantum()),
        ])
        .expect("fig6b scenario is well-formed");
    let fps = |run: &RunReport| {
        let rep = run.sim_report();
        rep.task("mpeg")
            .unwrap()
            .completion_rate(sfs_core::time::Time(rep.duration.as_nanos()))
    };
    (fps(&cmp.runs[0]), fps(&cmp.runs[1]))
}

/// Regenerates Figure 6(b): application isolation.
pub fn run_6b(effort: Effort) -> ExpResult {
    let mut res = ExpResult::new(
        "fig6b",
        "Application isolation: MPEG frame rate vs background compilations",
    );
    let ns: Vec<usize> = match effort {
        Effort::Full => (0..=10).collect(),
        Effort::Quick => vec![0, 2, 4, 8, 10],
    };
    let mut csv = String::from("compilations,sfs_fps,timeshare_fps\n");
    let mut sfs_series = TimeSeries::new("SFS");
    let mut ts_series = TimeSeries::new("Time sharing");
    for &n in &ns {
        let (f_sfs, f_ts) = run_6b_point(n, effort);
        sfs_series.push(n as f64, f_sfs);
        ts_series.push(n as f64, f_ts);
        csv.push_str(&format!("{n},{f_sfs:.2},{f_ts:.2}\n"));
    }
    res.section(&render(
        "MPEG decoding with background compilations",
        &[&sfs_series, &ts_series],
        &ChartConfig {
            x_label: "number of simultaneous compilations".into(),
            y_label: "frames/sec".into(),
            ..ChartConfig::default()
        },
    ));
    let last = *ns.last().unwrap() as f64;
    res.finding("sfs_fps_at_max_load", format!("{:.1}", sfs_series.at(last)));
    res.finding(
        "timeshare_fps_at_max_load",
        format!("{:.1}", ts_series.at(last)),
    );
    res.finding("sfs_fps_unloaded", format!("{:.1}", sfs_series.at(0.0)));
    res.csv.push(("fig6b.csv".into(), csv));
    res
}

// ---------------------------------------------------------------- 6(c)

/// The Figure 6(c) scenario: an interactive task against `simjobs`
/// disksim processes. Shared with the `trace` experiment.
pub(crate) fn scenario_6c(simjobs: usize, effort: Effort) -> Scenario {
    let cfg = base_cfg(effort, 30, 62);
    let mut scenario = Scenario::new("fig6c", cfg).task(TaskSpec::new(
        "interact",
        1,
        BehaviorSpec::Interact {
            think: Duration::from_millis(100),
            burst: Duration::from_millis(5),
        },
    ));
    if simjobs > 0 {
        scenario = scenario.task(
            TaskSpec::new(
                "disksim",
                1,
                BehaviorSpec::Sim {
                    burst: Duration::from_millis(80),
                    io: Duration::from_micros(500),
                },
            )
            .replicated(simjobs),
        );
    }
    scenario
}

/// Interactive mean response at one load point under SFS and time
/// sharing — a single comparative run.
fn run_6c_point(simjobs: usize, effort: Effort) -> (f64, f64) {
    let cmp = Experiment::new(scenario_6c(simjobs, effort))
        .compare(&[
            policy("sfs", effort.quantum()),
            policy("timeshare", effort.quantum()),
        ])
        .expect("fig6c scenario is well-formed");
    let mean_response = |run: &RunReport| {
        run.task("interact")
            .unwrap()
            .responses
            .as_ref()
            .map(Summary::mean)
            .unwrap_or(0.0)
    };
    (mean_response(&cmp.runs[0]), mean_response(&cmp.runs[1]))
}

/// Regenerates Figure 6(c): interactive performance.
pub fn run_6c(effort: Effort) -> ExpResult {
    let mut res = ExpResult::new(
        "fig6c",
        "Interactive response time vs background disksim processes",
    );
    let ns: Vec<usize> = match effort {
        Effort::Full => (0..=10).collect(),
        Effort::Quick => vec![0, 2, 6, 10],
    };
    let mut csv = String::from("disksim_processes,sfs_response_ms,timeshare_response_ms\n");
    let mut sfs_series = TimeSeries::new("SFS");
    let mut ts_series = TimeSeries::new("Time sharing");
    for &n in &ns {
        let (r_sfs, r_ts) = run_6c_point(n, effort);
        sfs_series.push(n as f64, r_sfs);
        ts_series.push(n as f64, r_ts);
        csv.push_str(&format!("{n},{r_sfs:.2},{r_ts:.2}\n"));
    }
    res.section(&render(
        "Interactive application with background simulations",
        &[&sfs_series, &ts_series],
        &ChartConfig {
            x_label: "number of disksim processes".into(),
            y_label: "avg response time (ms)".into(),
            ..ChartConfig::default()
        },
    ));
    let last = *ns.last().unwrap() as f64;
    res.finding(
        "sfs_response_ms_at_max_load",
        format!("{:.2}", sfs_series.at(last)),
    );
    res.finding(
        "timeshare_response_ms_at_max_load",
        format!("{:.2}", ts_series.at(last)),
    );
    res.csv.push(("fig6c.csv".into(), csv));
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6a_tracks_weights() {
        let rep = run_6a_pair(1, 4, Effort::Quick);
        let a = rep.task("A").unwrap().iterations.unwrap() as f64;
        let b = rep.task("B").unwrap().iterations.unwrap() as f64;
        assert!((b / a - 4.0).abs() < 0.6, "B/A = {}", b / a);
    }

    #[test]
    fn fig6b_sfs_isolates_but_timeshare_degrades() {
        let (sfs, ts) = run_6b_point(8, Effort::Quick);
        // Quick mode runs 2.5 s with a 25 ms quantum, so the decoder
        // sits just under its 30 fps target at 8 compilations. The
        // wake-preemption victim fix (preempt the *largest*-surplus
        // running task, which mid-frame is sometimes the decoder
        // itself) moved this point from 25.x to 24.8 — correct SFS
        // behaviour, hence the 24.0 floor rather than 25.0.
        assert!(sfs > 24.0, "SFS frame rate dropped to {sfs}");
        assert!(ts < 0.8 * sfs, "time sharing should degrade: {ts} vs {sfs}");
    }

    #[test]
    fn fig6c_sfs_responses_comparable() {
        let (sfs, ts) = run_6c_point(6, Effort::Quick);
        assert!(sfs < 60.0, "SFS response {sfs} ms");
        assert!(ts < 60.0, "TS response {ts} ms");
    }
}
