//! Scheduling-overhead sweep for the exact SFS pick path.
//!
//! Not a figure from the paper: this artefact records the per-decision
//! cost of *exact* SFS as the runnable-thread count sweeps 10²–10⁵,
//! Fig. 6-style. The resort-based §3.1 implementation re-sorted the
//! whole surplus queue on nearly every pick (the virtual time advances
//! almost every quantum), making the pick path O(n); the
//! per-weight-class bucket queue makes it O(#weight-classes). The
//! emitted `BENCH_overhead.json` carries, per thread count:
//!
//! * `ns_per_pick_at_<n>` — wall-clock cost of one dispatch + requeue,
//! * `resorts_per_pick_at_<n>` — bulk surplus re-sorts per decision
//!   (was ~1 before the bucket queue; must be 0 now),
//! * `scans_per_pick_at_<n>` — queue entries examined per decision
//!   (tracks weight classes, not threads), and
//! * `weight_classes_at_<n>` — distinct φ buckets present.
//!
//! so the perf trajectory of the hot path is machine-diffable run over
//! run. A CI smoke step regenerates the quick variant on every PR.

use std::time::Instant;

use sfs_core::sched::{Scheduler, SwitchReason};
use sfs_core::task::{weight, CpuId, TaskId};
use sfs_core::time::{Duration, Time};
use sfs_metrics::{render, ChartConfig, TimeSeries};

use crate::common::{policy, Effort, ExpResult};

const CPUS: u32 = 4;
const WEIGHT_CLASSES: u64 = 10;

/// Per-decision cost measured at one (policy, thread-count) point.
pub struct SweepPoint {
    /// Wall-clock nanoseconds per dispatch + requeue.
    pub ns_per_pick: f64,
    /// Bulk surplus re-sorts per decision (0 for the bucket queue).
    pub resorts_per_pick: f64,
    /// Queue entries examined per decision in exact mode.
    pub scans_per_pick: f64,
    /// Distinct weight-class buckets at the end of the run.
    pub weight_classes: u64,
}

/// Runs `measured_picks` steady-state scheduling decisions over
/// `threads` compute-bound threads of ten mixed weights
/// on a lockstep quad-processor, and reports per-decision costs.
pub fn sweep_point(kind: &str, threads: usize, measured_picks: u64) -> SweepPoint {
    let quantum = Duration::from_millis(1);
    let mut sched = policy(kind, quantum).build(CPUS);
    let mut now = Time::ZERO;
    // Ten equal-sized weight classes, attached in descending-weight
    // blocks so the weight queue's sorted insert is O(1) per arrival
    // and setup stays linear at 10⁵ threads.
    for i in 0..threads {
        let w = WEIGHT_CLASSES - (i * WEIGHT_CLASSES as usize / threads) as u64;
        sched.attach(TaskId(i as u64), weight(w.max(1)), now);
    }
    let mut running: Vec<Option<TaskId>> = vec![None; CPUS as usize];
    let mut drive = |sched: &mut Box<dyn Scheduler>, now: &mut Time, picks: u64| {
        let mut done = 0u64;
        while done < picks {
            for (c, slot) in running.iter_mut().enumerate() {
                if slot.is_none() {
                    *slot = sched.pick_next(CpuId(c as u32), *now);
                    done += 1;
                }
            }
            *now += quantum;
            for slot in &mut running {
                if let Some(id) = slot.take() {
                    sched.put_prev(id, quantum, SwitchReason::Preempted, *now);
                }
            }
        }
    };
    // Warm-up: every thread runs once, dispersing the cold-start tie
    // mass (all arrivals share S = v) into the steady-state tag spread
    // a long-running server exhibits.
    drive(&mut sched, &mut now, threads as u64 + CPUS as u64 * 16);
    let before = sched.stats();
    let t0 = Instant::now();
    drive(&mut sched, &mut now, measured_picks);
    let elapsed = t0.elapsed();
    let after = sched.stats();
    let picks = (after.picks - before.picks).max(1);
    SweepPoint {
        ns_per_pick: elapsed.as_nanos() as f64 / picks as f64,
        resorts_per_pick: (after.full_resorts - before.full_resorts) as f64 / picks as f64,
        scans_per_pick: (after.bucket_scans - before.bucket_scans) as f64 / picks as f64,
        weight_classes: after.weight_classes,
    }
}

/// Regenerates the scheduling-overhead sweep (`BENCH_overhead.json`).
pub fn run(effort: Effort) -> ExpResult {
    let mut res = ExpResult::new(
        "overhead",
        "Exact-SFS per-decision cost vs runnable threads (bucket queue)",
    );
    let counts: &[usize] = match effort {
        Effort::Full => &[100, 1_000, 10_000, 100_000],
        Effort::Quick => &[100, 1_000, 5_000],
    };
    let picks = effort.count(40_000);

    let mut exact = TimeSeries::new("SFS (exact, bucket queue)");
    let mut heur = TimeSeries::new("SFS (heuristic k=20)");
    let mut csv =
        String::from("threads,ns_per_pick,resorts_per_pick,scans_per_pick,weight_classes\n");
    for &n in counts {
        let p = sweep_point("sfs", n, picks);
        exact.push(n as f64, p.ns_per_pick);
        csv.push_str(&format!(
            "{n},{:.1},{:.4},{:.2},{}\n",
            p.ns_per_pick, p.resorts_per_pick, p.scans_per_pick, p.weight_classes
        ));
        res.finding(
            &format!("ns_per_pick_at_{n}"),
            format!("{:.1}", p.ns_per_pick),
        );
        res.finding(
            &format!("resorts_per_pick_at_{n}"),
            format!("{:.4}", p.resorts_per_pick),
        );
        res.finding(
            &format!("scans_per_pick_at_{n}"),
            format!("{:.2}", p.scans_per_pick),
        );
        res.finding(
            &format!("weight_classes_at_{n}"),
            format!("{}", p.weight_classes),
        );
        let h = sweep_point("sfs-heuristic", n, picks);
        heur.push(n as f64, h.ns_per_pick);
    }
    res.section(&render(
        "Per-decision scheduling cost vs runnable threads",
        &[&exact, &heur],
        &ChartConfig {
            x_label: "runnable threads".into(),
            y_label: "ns per scheduling decision".into(),
            ..ChartConfig::default()
        },
    ));
    res.csv.push(("overhead.csv".into(), csv));
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_pick_work_does_not_grow_with_thread_count() {
        // The deterministic counters (not wall time, which is noisy in
        // CI): scans per decision must track the number of weight
        // classes, not the number of threads, and bulk re-sorts must be
        // extinct.
        let small = sweep_point("sfs", 100, 2_000);
        let big = sweep_point("sfs", 4_000, 2_000);
        assert_eq!(small.resorts_per_pick, 0.0, "resort on the pick path");
        assert_eq!(big.resorts_per_pick, 0.0, "resort on the pick path");
        assert!(
            big.scans_per_pick < 200.0,
            "40× threads must not mean 40× scans: {:.1}/pick at 4000 threads",
            big.scans_per_pick
        );
        assert!(big.weight_classes <= WEIGHT_CLASSES + 1);
    }

    #[test]
    fn overhead_emits_machine_readable_summary() {
        let res = run(Effort::Quick);
        for key in [
            "ns_per_pick_at_5000",
            "resorts_per_pick_at_5000",
            "scans_per_pick_at_100",
        ] {
            assert!(
                res.summary.iter().any(|(k, _)| k == key),
                "missing finding {key}"
            );
        }
        let resorts = res
            .summary
            .iter()
            .filter(|(k, _)| k.starts_with("resorts_per_pick_at_"))
            .map(|(_, v)| v.clone())
            .collect::<Vec<_>>();
        assert!(!resorts.is_empty());
        assert!(
            resorts.iter().all(|v| v == "0.0000"),
            "exact mode re-sorted: {resorts:?}"
        );
        let json = res.summary_json();
        assert!(json.contains("\"id\": \"overhead\""), "{json}");
    }
}
