//! Figure 4 — impact of the weight readjustment algorithm on SFQ.
//!
//! The paper's §4.2 experiment: two Inf applications start at t=0 with
//! weights 1:10 on a dual-processor; a third (w=1) arrives at t=15 s;
//! the w=10 task stops at t=30 s; the run lasts 40 s with a 200 ms
//! quantum. Plain SFQ starves T1 after T3's arrival (Fig. 4a); with
//! readjustment the instantaneous weights become 1:2:1 and every task
//! receives its proportional share (Fig. 4b).

use sfs_core::time::{Duration, Time};
use sfs_experiment::Experiment;
use sfs_metrics::{fairness, render, ChartConfig, Table};
use sfs_sim::{Scenario, SimConfig, SimReport, TaskSpec};
use sfs_workloads::BehaviorSpec;

use crate::common::{policy, Effort, ExpResult};
use crate::helpers::to_iterations;

struct Fig4Times {
    t_arrive: f64,
    t_stop: f64,
    t_end: f64,
}

fn scenario(effort: Effort) -> (Scenario, Fig4Times) {
    let duration = effort.scale(Duration::from_secs(40));
    let ns = duration.as_nanos();
    let t_arrive = Time(ns * 15 / 40);
    let t_stop = Time(ns * 30 / 40);
    let cfg = SimConfig {
        cpus: 2,
        duration,
        ctx_switch: Duration::from_micros(5),
        sample_every: (duration / 100).max(Duration::from_millis(20)),
        track_gms: false,
        seed: 4,
        lean: false,
    };
    let scenario = Scenario::new("fig4", cfg)
        .task(TaskSpec::new("T1", 1, BehaviorSpec::Inf))
        .task(TaskSpec::new("T2", 10, BehaviorSpec::Inf).stop_at(t_stop))
        .task(TaskSpec::new("T3", 1, BehaviorSpec::Inf).arrive_at(t_arrive));
    (
        scenario,
        Fig4Times {
            t_arrive: t_arrive.as_secs_f64(),
            t_stop: t_stop.as_secs_f64(),
            t_end: duration.as_secs_f64(),
        },
    )
}

/// Runs one policy variant, returning the detailed simulator report.
#[cfg(test)]
fn run_one(kind: &str, effort: Effort) -> (SimReport, Fig4Times) {
    let (scenario, times) = scenario(effort);
    let run = Experiment::new(scenario)
        .run(policy(kind, effort.quantum()))
        .expect("fig4 scenario is well-formed");
    (run.sim_report().clone(), times)
}

/// Service gained by a task in a time window, from its sampled series.
fn gained(rep: &SimReport, name: &str, from: f64, to: f64) -> f64 {
    let t = rep.task(name).expect("task missing");
    t.series.at(to) - t.series.at(from)
}

/// Regenerates Figure 4 (both panels).
pub fn run(effort: Effort) -> ExpResult {
    let mut res = ExpResult::new(
        "fig4",
        "Impact of weight readjustment: SFQ without vs with readjustment",
    );
    let (scenario, times) = scenario(effort);
    let cmp = Experiment::new(scenario)
        .compare(&[
            policy("sfq", effort.quantum()),
            policy("sfq-readjust", effort.quantum()),
        ])
        .expect("fig4 scenario is well-formed");

    let mut table = Table::new(
        "middle window (T3 present, T2 alive): share ratios T1:T2:T3",
        &["policy", "T1", "T2", "T3", "T1 starvation (s)"],
    );
    for (panel, run) in ["(a)", "(b)"].iter().zip(&cmp.runs) {
        let rep = run.sim_report();
        // Measure inside the window where all three tasks are present,
        // with margin for the 200 ms quantum granularity.
        let (w0, w1) = (times.t_arrive + 1.0, times.t_stop - 1.0);
        let g1 = gained(rep, "T1", w0, w1);
        let g2 = gained(rep, "T2", w0, w1);
        let g3 = gained(rep, "T3", w0, w1);
        let t1 = rep.task("T1").unwrap();
        let starve = fairness::starvation(t1.series.points());
        let base = (g1.max(1e-9)).min(g3.max(1e-9));
        table.row(&[
            format!("{panel} {}", rep.sched_name),
            format!("{:.2}", g1 / base),
            format!("{:.2}", g2 / base),
            format!("{:.2}", g3 / base),
            format!("{starve:.2}"),
        ]);

        let iters: Vec<_> = rep
            .tasks
            .iter()
            .map(|t| to_iterations(&t.series, 1.0))
            .collect();
        let refs: Vec<_> = iters.iter().collect();
        res.section(&render(
            &format!(
                "Figure 4{panel} {}: cumulative iterations (T3 arrives @{:.0}s, T2 stops @{:.0}s)",
                rep.sched_name, times.t_arrive, times.t_stop
            ),
            &refs,
            &ChartConfig {
                x_label: "time (s)".into(),
                y_label: "iterations".into(),
                ..ChartConfig::default()
            },
        ));

        let mut csv = String::from("time_s,T1,T2,T3\n");
        for i in 0..=80 {
            let x = times.t_end * i as f64 / 80.0;
            csv.push_str(&format!(
                "{x:.3},{:.0},{:.0},{:.0}\n",
                iters[0].at(x),
                iters[1].at(x),
                iters[2].at(x)
            ));
        }
        res.csv.push((
            format!("fig4{}.csv", if *panel == "(a)" { "a" } else { "b" }),
            csv,
        ));

        res.finding(
            &format!("{}_t1_starvation_s", rep.sched_name),
            format!("{starve:.2}"),
        );
        res.finding(
            &format!("{}_mid_window_ratio", rep.sched_name),
            format!("{:.2}:{:.2}:{:.2}", g1 / base, g2 / base, g3 / base),
        );
    }
    res.section(&table.to_text());
    res.section(&cmp.to_table());
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readjustment_restores_1_2_1() {
        let (rep, times) = run_one("sfq-readjust", Effort::Quick);
        let (w0, w1) = (times.t_arrive + 0.3, times.t_stop - 0.3);
        let g1 = gained(&rep, "T1", w0, w1);
        let g2 = gained(&rep, "T2", w0, w1);
        let g3 = gained(&rep, "T3", w0, w1);
        assert!((g2 / g1 - 2.0).abs() < 0.4, "T2:T1 = {}", g2 / g1);
        assert!((g3 / g1 - 1.0).abs() < 0.3, "T3:T1 = {}", g3 / g1);
    }

    #[test]
    fn plain_sfq_starves_t1_in_the_window() {
        let (rep, times) = run_one("sfq", Effort::Quick);
        let (w0, w1) = (times.t_arrive + 0.2, times.t_stop - 0.2);
        let g1 = gained(&rep, "T1", w0, w1);
        let g3 = gained(&rep, "T3", w0, w1);
        assert!(
            g1 < 0.2 * g3,
            "T1 should starve relative to T3: {g1} vs {g3}"
        );
    }
}
