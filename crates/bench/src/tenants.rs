//! Multi-tenant sweep: isolation under a misbehaving tenant, and the
//! group-level hot-path cost at 10²–10⁴ tenants
//! (`repro tenants` → `BENCH_tenants.json`).
//!
//! Not a figure from the paper: §6 names hierarchical SFS over task
//! groups as future work, and this artefact measures what the nested
//! scheduler buys. Two halves:
//!
//! * **Isolation.** Four tenants with equal group shares; one of them
//!   misbehaves by flooding the machine with weight-inflated tasks
//!   (the §2 infeasible-weights attack, at tenant granularity). Under
//!   hierarchical SFS every well-behaved tenant must still receive its
//!   group entitlement; under flat SFS the rogue's inflated weights
//!   win. Reported per tenant and policy: achieved machine share, and
//!   the absolute error against the 1/4 entitlement. CI fails if the
//!   worst well-behaved tenant's error under the hierarchy exceeds the
//!   flat-SFS baseline — i.e. if nesting ever stops paying for itself.
//! * **Scaling.** One [`HierSfs`] over `n` single-task tenants for
//!   `n` from 10² to 10⁴, driven through the dispatch + requeue cycle
//!   on four virtual CPUs. Reported per point: nanoseconds per
//!   decision and the one-off cost of building + populating the
//!   hierarchy. The group queue is the same bucket structure flat SFS
//!   uses, so cost should stay flat in `n` within noise.

use std::time::Instant;

use sfs_core::hier::HierSfs;
use sfs_core::policy::{GroupSpec, PolicySpec};
use sfs_core::sched::{Scheduler, SwitchReason};
use sfs_core::task::{weight, CpuId, TaskId, TenantId};
use sfs_core::time::{Duration, Time};
use sfs_experiment::Experiment;
use sfs_metrics::{render, ChartConfig, TimeSeries};
use sfs_sim::{Scenario, SimConfig, TaskSpec};
use sfs_workloads::BehaviorSpec;

use crate::common::{Effort, ExpResult};

/// Tenants in the isolation half; the last one misbehaves.
const TENANTS: usize = 4;

/// Per-tenant machine shares of the isolation scenario under one
/// policy, in tenant order. Shares are summed from task outcomes by
/// name prefix so the same accounting applies to hierarchical runs
/// (where tasks carry a [`TenantId`]) and flat runs (where they
/// don't).
fn tenant_shares_by_prefix(report: &sfs_experiment::RunReport) -> Vec<f64> {
    let shares = report.shares();
    (0..TENANTS)
        .map(|t| {
            let prefix = format!("t{t}#");
            shares
                .iter()
                .zip(&report.tasks)
                .filter(|(_, task)| task.name.starts_with(&prefix))
                .map(|(s, _)| s)
                .sum()
        })
        .collect()
}

/// Runs the misbehaving-tenant scenario under hierarchical and flat
/// SFS; returns `(hier_shares, flat_shares)` in tenant order.
pub fn isolation_shares(effort: Effort) -> (Vec<f64>, Vec<f64>) {
    let q = Duration::from_millis(5);
    let cfg = SimConfig {
        cpus: 4,
        duration: effort.scale(Duration::from_secs(8)),
        ..SimConfig::default()
    };
    let mut scenario = Scenario::new("tenant-isolation", cfg);
    for t in 0..TENANTS - 1 {
        scenario = scenario.tenant(
            &format!("t{t}"),
            [TaskSpec::new(&format!("t{t}"), 1, BehaviorSpec::Inf).replicated(2)],
        );
    }
    // The rogue: same group share as everyone else, but internally it
    // claims 16 tasks of weight 100 — 800× the weight any honest
    // tenant holds.
    let rogue = TENANTS - 1;
    scenario = scenario.tenant(
        &format!("t{rogue}"),
        [TaskSpec::new(&format!("t{rogue}"), 100, BehaviorSpec::Inf).replicated(16)],
    );
    let exp = Experiment::new(scenario);

    let hier = PolicySpec::sfs_over(
        (0..TENANTS).map(|t| GroupSpec::new(&format!("t{t}"), PolicySpec::sfs().with_quantum(q))),
    );
    let hier_rep = exp.run(&hier).expect("isolation scenario, hier policy");
    let flat_rep = exp
        .run(PolicySpec::sfs().with_quantum(q))
        .expect("isolation scenario, flat policy");
    (
        tenant_shares_by_prefix(&hier_rep),
        tenant_shares_by_prefix(&flat_rep),
    )
}

/// Measured costs at one tenant-count point of the scaling half.
pub struct TenantPoint {
    /// Wall-clock nanoseconds per dispatch + requeue decision.
    pub ns_per_decision: f64,
    /// One-off milliseconds to build the hierarchy and attach one task
    /// per tenant.
    pub setup_ms: f64,
}

/// Builds a hierarchy of `n` single-task tenants and drives the
/// dispatch cycle on four virtual CPUs for `decisions` decisions.
pub fn tenant_point(n: usize, decisions: u64) -> TenantPoint {
    let cpus = 4u32;
    let setup_start = Instant::now();
    let groups: Vec<GroupSpec> = (0..n)
        .map(|i| GroupSpec::new(&format!("t{i}"), PolicySpec::sfs()).with_share(1 + i as u64 % 10))
        .collect();
    let mut sched = HierSfs::new(cpus, &groups);
    let t0 = Time::ZERO;
    let calls_before = sched.stats().readjust_calls;
    // Bulk attach: one task per tenant in a single batch, so the §2.1
    // group walk runs once instead of once per tenant (per-attach
    // readjustment made the 10⁴-tenant setup quadratic: ~3.8 s).
    let batch: Vec<(TaskId, sfs_core::task::Weight, Option<TenantId>)> = (0..n)
        .map(|i| (TaskId(i as u64), weight(1), Some(TenantId(i as u32))))
        .collect();
    sched.attach_batch(&batch, t0);
    // One group walk, plus one child walk per single-task tenant.
    let calls_delta = sched.stats().readjust_calls - calls_before;
    assert_eq!(
        calls_delta,
        n as u64 + 1,
        "bulk attach must readjust groups exactly once"
    );
    let setup_ms = setup_start.elapsed().as_secs_f64() * 1e3;

    let quantum = Duration::from_millis(1);
    let mut now = Time::ZERO;
    let mut running: Vec<Option<TaskId>> = vec![None; cpus as usize];
    let start = Instant::now();
    let mut made = 0u64;
    while made < decisions {
        for c in 0..cpus {
            now += quantum;
            if let Some(id) = running[c as usize].take() {
                sched.put_prev(id, quantum, SwitchReason::Preempted, now);
            }
            running[c as usize] = sched.pick_next(CpuId(c), now);
            made += 1;
        }
    }
    TenantPoint {
        ns_per_decision: start.elapsed().as_nanos() as f64 / made as f64,
        setup_ms,
    }
}

/// Regenerates the multi-tenant sweep (`BENCH_tenants.json`).
pub fn run(effort: Effort) -> ExpResult {
    let mut res = ExpResult::new(
        "tenants",
        "Tenant isolation under a misbehaving tenant; decision cost vs tenant count",
    );

    // Half 1: isolation. Entitlement is 1/TENANTS for every tenant.
    let (hier, flat) = isolation_shares(effort);
    let entitlement = 1.0 / TENANTS as f64;
    let (mut worst_hier, mut worst_flat) = (0.0f64, 0.0f64);
    for t in 0..TENANTS {
        let (eh, ef) = ((hier[t] - entitlement).abs(), (flat[t] - entitlement).abs());
        res.finding(
            &format!("isolation_share_hier_t{t}"),
            format!("{:.4}", hier[t]),
        );
        res.finding(
            &format!("isolation_share_flat_t{t}"),
            format!("{:.4}", flat[t]),
        );
        if t < TENANTS - 1 {
            worst_hier = worst_hier.max(eh);
            worst_flat = worst_flat.max(ef);
        }
    }
    res.finding("isolation_max_err_hier", format!("{worst_hier:.4}"));
    res.finding("isolation_max_err_flat", format!("{worst_flat:.4}"));
    res.section(&format!(
        "Isolation: {TENANTS} tenants with equal group shares; tenant t{} floods with \
         16 weight-100 tasks.\nWorst well-behaved share error: hierarchical SFS \
         {worst_hier:.4}, flat SFS {worst_flat:.4} (entitlement {entitlement:.2} each).",
        TENANTS - 1
    ));

    // Half 2: scaling 10²–10⁴ tenants through the decision cycle.
    let (counts, decisions): (&[usize], u64) = match effort {
        Effort::Full => (&[100, 1_000, 10_000], 400_000),
        Effort::Quick => (&[100, 1_000], 80_000),
    };
    let mut csv = String::from("tenants,ns_per_decision,setup_ms\n");
    let mut ts = TimeSeries::new("HierSfs, 1 task per tenant");
    for &n in counts {
        let p = tenant_point(n, decisions);
        ts.push(n as f64, p.ns_per_decision);
        csv.push_str(&format!("{n},{:.1},{:.2}\n", p.ns_per_decision, p.setup_ms));
        res.finding(
            &format!("ns_per_decision_at_{n}"),
            format!("{:.1}", p.ns_per_decision),
        );
        res.finding(&format!("setup_ms_at_{n}"), format!("{:.2}", p.setup_ms));
    }
    res.section(&render(
        "Decision cost vs tenant count",
        &[&ts],
        &ChartConfig {
            x_label: "tenants (one task each)".into(),
            y_label: "ns per dispatch decision".into(),
            ..ChartConfig::default()
        },
    ));
    res.csv.push(("tenants.csv".into(), csv));
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_isolates_where_flat_sfs_cannot() {
        let (hier, flat) = isolation_shares(Effort::Quick);
        let entitlement = 1.0 / TENANTS as f64;
        for t in 0..TENANTS - 1 {
            assert!(
                (hier[t] - entitlement).abs() < 0.05,
                "tenant t{t} lost its entitlement under hier: {:.4}",
                hier[t]
            );
            // The same well-behaved tenant is starved under flat SFS —
            // the baseline the CI guard compares against.
            assert!(
                flat[t] < 0.1,
                "flat SFS unexpectedly protected t{t}: {:.4}",
                flat[t]
            );
        }
    }

    #[test]
    fn decision_cost_stays_flat_in_tenant_count() {
        let small = tenant_point(100, 40_000);
        let large = tenant_point(2_000, 40_000);
        assert!(small.ns_per_decision > 0.0);
        // Bucket-queue group scheduling: 20× the tenants must not cost
        // an order of magnitude per decision.
        assert!(
            large.ns_per_decision < small.ns_per_decision * 10.0 + 2_000.0,
            "decision cost exploded: {:.0}ns at 100 vs {:.0}ns at 2000",
            small.ns_per_decision,
            large.ns_per_decision
        );
    }

    #[test]
    fn tenants_emits_machine_readable_summary() {
        let res = run(Effort::Quick);
        for key in [
            "isolation_share_hier_t0",
            "isolation_share_flat_t0",
            "isolation_max_err_hier",
            "isolation_max_err_flat",
            "ns_per_decision_at_100",
            "ns_per_decision_at_1000",
            "setup_ms_at_1000",
        ] {
            assert!(
                res.summary.iter().any(|(k, _)| k == key),
                "missing finding {key}"
            );
        }
        let json = res.summary_json();
        assert!(json.contains("\"id\": \"tenants\""), "{json}");
    }
}
