//! Trace subsystem smoke harness (`repro trace` → `BENCH_trace.json`).
//!
//! Not a figure from the paper: this artefact is the CI gate for the
//! `sfs-trace` subsystem. Four checks, each reported as a finding so
//! the smoke step can grep the machine-readable summary:
//!
//! * **Sim export.** The Figure 6(b) scenario runs on the simulator
//!   with recording on; the trace must pass [`EventTrace::validate`]
//!   (monotonic timestamps, every registered task has ≥ 1 slice,
//!   counter tracks non-empty) and the encoded protobuf must pass
//!   [`perfetto::validate_encoded`]. Written as
//!   `fig6_sim.perfetto-trace` — open it in <https://ui.perfetto.dev>.
//! * **Rt export.** The same pipeline over a short real-thread run
//!   (`rt.perfetto-trace`).
//! * **Capture→replay.** An rt capture of a deterministic sequential
//!   scenario replays on the simulator; `replay_match` must be `true`.
//! * **Recording overhead.** A churn-heavy sim scenario (constant
//!   block/wake traffic) runs traced and traceless, interleaved;
//!   `overhead_pct` is the median traced-over-traceless wall-clock
//!   overhead, which CI gates at ≤ 5%.

use std::time::Instant;

use sfs_experiment::{Experiment, RtSubstrate};
use sfs_sim::{Scenario, SimConfig, TaskSpec};
use sfs_trace::perfetto;
use sfs_trace::EventTrace;
use sfs_workloads::BehaviorSpec;

use crate::common::{policy, Effort, ExpResult};
use crate::fig6;
use sfs_core::time::{Duration, Time};

/// Validates a finished trace end-to-end: structural validation, then
/// a protobuf encode + decode pass. Returns `("ok", bytes)` or the
/// error rendered as the finding value.
fn validate_and_encode(trace: &EventTrace) -> (String, Vec<u8>) {
    if let Err(e) = trace.validate() {
        return (format!("invalid: {e}"), Vec::new());
    }
    let bytes = perfetto::encode(trace);
    match perfetto::validate_encoded(&bytes) {
        Ok(_) => ("ok".to_string(), bytes),
        Err(e) => (format!("invalid encoding: {e}"), Vec::new()),
    }
}

/// A short real-thread scenario: two weighted hogs plus an interactive
/// task, so the trace carries slices, wakes, and preemptions. The
/// duration is wall-clock on rt — keep it sub-second in quick mode.
fn rt_scenario(effort: Effort) -> Scenario {
    let cfg = SimConfig {
        cpus: 2,
        duration: effort.scale(Duration::from_secs(4)),
        ..SimConfig::default()
    };
    Scenario::new("trace-rt", cfg)
        .task(TaskSpec::new("hog-a", 3, BehaviorSpec::Inf))
        .task(TaskSpec::new("hog-b", 1, BehaviorSpec::Inf))
        .task(TaskSpec::new(
            "interact",
            1,
            BehaviorSpec::Interact {
                think: Duration::from_millis(20),
                burst: Duration::from_millis(5),
            },
        ))
}

/// Three non-overlapping finite tasks on one CPU — deterministic on
/// both substrates, so an rt capture must replay identically in sim.
fn replay_scenario() -> Scenario {
    let cfg = SimConfig {
        cpus: 1,
        duration: Duration::from_millis(300),
        ..SimConfig::default()
    };
    Scenario::new("trace-replay", cfg)
        .task(TaskSpec::new(
            "alpha",
            1,
            BehaviorSpec::Finite(Duration::from_millis(30)),
        ))
        .task(
            TaskSpec::new("beta", 2, BehaviorSpec::Finite(Duration::from_millis(30)))
                .arrive_at(Time::from_millis(100)),
        )
        .task(
            TaskSpec::new("gamma", 1, BehaviorSpec::Finite(Duration::from_millis(30)))
                .arrive_at(Time::from_millis(200)),
        )
}

/// A churn-heavy sim scenario: every task blocks and wakes every few
/// milliseconds, so recording cost is measured against the busiest
/// event path the simulator has. The run is kept long enough
/// (milliseconds of wall clock) even in quick mode that OS timer noise
/// does not swamp the single-digit-percent effect being measured.
fn churn_scenario(effort: Effort) -> Scenario {
    let cfg = SimConfig {
        cpus: 2,
        duration: match effort {
            Effort::Full => Duration::from_secs(8),
            Effort::Quick => Duration::from_secs(2),
        },
        ..SimConfig::default()
    };
    Scenario::new("trace-churn", cfg)
        .task(
            TaskSpec::new(
                "interact",
                1,
                BehaviorSpec::Interact {
                    think: Duration::from_millis(2),
                    burst: Duration::from_millis(1),
                },
            )
            .replicated(12),
        )
        .task(
            TaskSpec::new(
                "gcc",
                1,
                BehaviorSpec::Compile {
                    burst: Duration::from_millis(4),
                    io: Duration::from_millis(1),
                },
            )
            .replicated(4),
        )
}

/// Median of a sample (sorts a copy).
fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Measures the wall-clock overhead of recording on the churn
/// scenario: `pairs` interleaved traced/traceless runs (plus two
/// untimed warmup pairs), returning
/// `(overhead_pct, untraced_ms, traced_ms, events)`.
///
/// Machine speed on shared CI runners drifts on a timescale of
/// seconds — far larger than the effect measured — so the estimate is
/// built from *per-pair* ratios: both runs of a pair execute
/// back-to-back in the same machine phase, their ratio cancels the
/// drift, and the median over pairs discards outlier pairs hit by a
/// preemption mid-run. Pairs alternate which variant runs first so
/// within-pair ordering cannot bias one side either.
pub fn recording_overhead(effort: Effort, pairs: usize) -> (f64, f64, f64, usize) {
    let exp = Experiment::new(churn_scenario(effort));
    let spec = policy("sfs", Duration::from_millis(5));
    let mut ratios = Vec::with_capacity(pairs);
    let mut untraced = Vec::with_capacity(pairs);
    let mut traced = Vec::with_capacity(pairs);
    let mut events = 0usize;
    let run_plain = || {
        let t0 = Instant::now();
        exp.run(&spec).expect("churn scenario, traceless");
        t0.elapsed().as_secs_f64() * 1e3
    };
    let run_traced = |events: &mut usize| {
        let t0 = Instant::now();
        let (_, trace) = exp.run_recorded(&spec).expect("churn scenario, traced");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        *events = trace.events.len();
        ms
    };
    for i in 0..pairs + 2 {
        let (plain_ms, rec_ms) = if i % 2 == 0 {
            let p = run_plain();
            (p, run_traced(&mut events))
        } else {
            let r = run_traced(&mut events);
            (run_plain(), r)
        };
        if i < 2 {
            continue; // warmup pairs: first runs pay allocator/page-fault fills
        }
        ratios.push((rec_ms - plain_ms) / plain_ms * 100.0);
        untraced.push(plain_ms);
        traced.push(rec_ms);
    }
    (median(&ratios), median(&untraced), median(&traced), events)
}

/// Exports a `.perfetto-trace` for an experiment id that maps onto one
/// canonical sim scenario (the fig6 family). Returns the written path,
/// or `Ok(None)` for ids with no canonical single run.
pub fn export_trace_for(
    id: &str,
    effort: Effort,
    dir: &std::path::Path,
) -> std::io::Result<Option<std::path::PathBuf>> {
    let scenario = match id {
        "fig6a" => fig6::scenario_6a(1, 4, effort),
        "fig6b" => fig6::scenario_6b(4, effort),
        "fig6c" => fig6::scenario_6c(6, effort),
        _ => return Ok(None),
    };
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{id}.perfetto-trace"));
    Experiment::new(scenario)
        .run_with_trace(policy("sfs", effort.quantum()), &path)
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    Ok(Some(path))
}

/// Regenerates the trace smoke artefact (`BENCH_trace.json`).
pub fn run(effort: Effort) -> ExpResult {
    let mut res = ExpResult::new(
        "trace",
        "Trace subsystem smoke: Perfetto export validity, capture→replay, recording overhead",
    );

    // 1. Sim export: the Figure 6(b) scenario, recorded.
    let (_, sim_trace) = Experiment::new(fig6::scenario_6b(4, effort))
        .run_recorded(policy("sfs", effort.quantum()))
        .expect("fig6b scenario is well-formed");
    let (verdict, bytes) = validate_and_encode(&sim_trace);
    res.finding("validator_sim", verdict);
    res.finding("sim_events", sim_trace.events.len().to_string());
    if !bytes.is_empty() {
        res.bin.push(("fig6_sim.perfetto-trace".into(), bytes));
    }

    // 2. Rt export: a short real-thread run, recorded.
    let (_, rt_trace) = Experiment::on(rt_scenario(effort), RtSubstrate::default())
        .run_recorded(policy("sfs", Duration::from_millis(5)))
        .expect("rt trace scenario is well-formed");
    let (verdict, bytes) = validate_and_encode(&rt_trace);
    res.finding("validator_rt", verdict);
    res.finding("rt_events", rt_trace.events.len().to_string());
    if !bytes.is_empty() {
        res.bin.push(("rt.perfetto-trace".into(), bytes));
    }

    // 3. Capture→replay: an rt capture re-driven on the simulator.
    let (_, capture) = Experiment::on(replay_scenario(), RtSubstrate::default())
        .capture(policy("sfs", Duration::from_millis(5)))
        .expect("replay scenario captures");
    let replay = Experiment::replay(&capture).expect("capture replays in sim");
    res.finding("replay_match", replay.sequences_match().to_string());
    res.finding("replay_switches", replay.captured.len().to_string());
    res.csv
        .push(("trace_capture.json".into(), capture.to_json().to_string()));

    // 4. Recording overhead on the churn-heavy scenario.
    let pairs = match effort {
        Effort::Full => 12,
        Effort::Quick => 20,
    };
    let (pct, untraced_ms, traced_ms, events) = recording_overhead(effort, pairs);
    res.finding("overhead_pct", format!("{pct:.2}"));
    res.finding("churn_untraced_ms", format!("{untraced_ms:.2}"));
    res.finding("churn_traced_ms", format!("{traced_ms:.2}"));
    res.finding("churn_events", events.to_string());

    res.section(&format!(
        "Sim trace: {} events ({}); rt trace: {} events ({}).\n\
         Capture→replay over {} context switches: match = {}.\n\
         Recording overhead on the churn scenario ({events} events/run): \
         {untraced_ms:.2} ms traceless vs {traced_ms:.2} ms traced — {pct:+.2}% \
         (CI gates at +5%).",
        sim_trace.events.len(),
        res.summary[0].1,
        rt_trace.events.len(),
        res.summary[2].1,
        replay.captured.len(),
        replay.sequences_match(),
    ));
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_smoke_exports_validate_and_replay_matches() {
        let res = run(Effort::Quick);
        let get = |key: &str| -> &str {
            res.summary
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
                .unwrap_or_else(|| panic!("missing finding {key}"))
        };
        assert_eq!(get("validator_sim"), "ok");
        assert_eq!(get("validator_rt"), "ok");
        assert_eq!(get("replay_match"), "true");
        assert!(
            res.bin
                .iter()
                .any(|(n, b)| n == "fig6_sim.perfetto-trace" && !b.is_empty()),
            "missing sim trace artefact"
        );
        assert!(
            res.bin
                .iter()
                .any(|(n, b)| n == "rt.perfetto-trace" && !b.is_empty()),
            "missing rt trace artefact"
        );
        // The overhead gate itself lives in CI (quick-mode numbers are
        // noisy); here we only require the finding to be a number.
        let pct: f64 = get("overhead_pct").parse().unwrap();
        assert!(pct.is_finite());
    }

    #[test]
    fn fig6_traces_export_on_demand() {
        let dir = std::env::temp_dir().join("sfs_trace_export_test");
        let p = export_trace_for("fig6a", Effort::Quick, &dir)
            .unwrap()
            .expect("fig6a has a canonical scenario");
        let bytes = std::fs::read(&p).unwrap();
        assert!(perfetto::validate_encoded(&bytes).is_ok());
        assert!(export_trace_for("fig1", Effort::Quick, &dir)
            .unwrap()
            .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
