//! Shared plumbing for the experiment harnesses.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use sfs_core::bvt::{Bvt, BvtConfig};
use sfs_core::rr::RoundRobin;
use sfs_core::sched::Scheduler;
use sfs_core::sfq::{Sfq, SfqConfig};
use sfs_core::sfs::{Sfs, SfsConfig};
use sfs_core::stride::{Stride, StrideConfig};
use sfs_core::time::Duration;
use sfs_core::timeshare::TimeSharing;
use sfs_core::wfq::{Wfq, WfqConfig};

/// How much work to spend on an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Scaled-down runs for `cargo bench` / CI smoke (seconds total).
    Quick,
    /// Paper-scale runs for the recorded results.
    Full,
}

impl Effort {
    /// Scales a full-effort duration down in quick mode.
    pub fn scale(self, full: Duration) -> Duration {
        match self {
            Effort::Full => full,
            Effort::Quick => (full / 8).max(Duration::from_millis(500)),
        }
    }

    /// Scales an iteration count down in quick mode.
    pub fn count(self, full: u64) -> u64 {
        match self {
            Effort::Full => full,
            Effort::Quick => (full / 8).max(1),
        }
    }

    /// The scheduling quantum for application scenarios: the paper's
    /// 200 ms test-bed quantum at full effort, scaled down with the run
    /// length in quick mode so tag dynamics keep the same shape.
    pub fn quantum(self) -> Duration {
        match self {
            Effort::Full => Duration::from_millis(200),
            Effort::Quick => Duration::from_millis(25),
        }
    }
}

/// The rendered outcome of one experiment.
#[derive(Debug, Clone, Default)]
pub struct ExpResult {
    /// Experiment id, e.g. `"fig5"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The full text report (charts + tables).
    pub text: String,
    /// CSV artefacts: (file name, contents).
    pub csv: Vec<(String, String)>,
    /// Key findings, as (metric, value) pairs for EXPERIMENTS.md.
    pub summary: Vec<(String, String)>,
}

impl ExpResult {
    /// Creates an empty result.
    pub fn new(id: &str, title: &str) -> ExpResult {
        ExpResult {
            id: id.to_string(),
            title: title.to_string(),
            ..ExpResult::default()
        }
    }

    /// Appends a section of text.
    pub fn section(&mut self, s: &str) {
        self.text.push_str(s);
        if !s.ends_with('\n') {
            self.text.push('\n');
        }
        self.text.push('\n');
    }

    /// Records a summary key/value.
    pub fn finding(&mut self, key: &str, value: String) {
        self.summary.push((key.to_string(), value));
    }

    /// Writes the report and CSVs under `dir`.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        let txt = dir.join(format!("{}.txt", self.id));
        let mut full = String::new();
        let _ = writeln!(full, "== {} — {} ==\n", self.id, self.title);
        full.push_str(&self.text);
        if !self.summary.is_empty() {
            let _ = writeln!(full, "-- summary --");
            for (k, v) in &self.summary {
                let _ = writeln!(full, "{k}: {v}");
            }
        }
        fs::write(&txt, full)?;
        written.push(txt);
        for (name, content) in &self.csv {
            let p = dir.join(name);
            fs::write(&p, content)?;
            written.push(p);
        }
        Ok(written)
    }
}

/// Named scheduler constructors with a common quantum, used by the
/// experiments to run the same scenario under several policies.
pub fn make_sched(kind: &str, cpus: u32, quantum: Duration) -> Box<dyn Scheduler> {
    match kind {
        "sfs" => Box::new(Sfs::with_config(
            cpus,
            SfsConfig {
                quantum,
                ..SfsConfig::default()
            },
        )),
        "sfs-heuristic" => Box::new(Sfs::with_config(
            cpus,
            SfsConfig {
                quantum,
                heuristic: Some(20),
                ..SfsConfig::default()
            },
        )),
        "sfs-affinity" => Box::new(Sfs::with_config(
            cpus,
            SfsConfig {
                quantum,
                affinity_margin: Some(quantum * 2),
                ..SfsConfig::default()
            },
        )),
        "sfq" => Box::new(Sfq::with_config(
            cpus,
            SfqConfig {
                quantum,
                readjust: false,
                ..SfqConfig::default()
            },
        )),
        "sfq-readjust" => Box::new(Sfq::with_config(
            cpus,
            SfqConfig {
                quantum,
                readjust: true,
                ..SfqConfig::default()
            },
        )),
        "timeshare" => Box::new(TimeSharing::new(cpus)),
        "stride" => Box::new(Stride::with_config(
            cpus,
            StrideConfig {
                quantum,
                readjust: false,
            },
        )),
        "stride-readjust" => Box::new(Stride::with_config(
            cpus,
            StrideConfig {
                quantum,
                readjust: true,
            },
        )),
        "bvt" => Box::new(Bvt::with_config(
            cpus,
            BvtConfig {
                quantum,
                readjust: false,
            },
        )),
        "bvt-readjust" => Box::new(Bvt::with_config(
            cpus,
            BvtConfig {
                quantum,
                readjust: true,
            },
        )),
        "wfq" => Box::new(Wfq::with_config(
            cpus,
            WfqConfig {
                quantum,
                readjust: false,
            },
        )),
        "rr" => Box::new(RoundRobin::new(cpus, quantum)),
        other => panic!("unknown scheduler kind {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_scaling() {
        let full = Duration::from_secs(40);
        assert_eq!(Effort::Full.scale(full), full);
        assert_eq!(Effort::Quick.scale(full), Duration::from_secs(5));
        assert_eq!(Effort::Quick.count(80), 10);
        assert_eq!(Effort::Quick.count(4), 1);
    }

    #[test]
    fn all_sched_kinds_construct() {
        for kind in [
            "sfs",
            "sfs-heuristic",
            "sfs-affinity",
            "sfq",
            "sfq-readjust",
            "timeshare",
            "stride",
            "stride-readjust",
            "bvt",
            "bvt-readjust",
            "wfq",
            "rr",
        ] {
            let s = make_sched(kind, 2, Duration::from_millis(100));
            assert_eq!(s.cpus(), 2, "{kind}");
        }
    }

    #[test]
    fn result_writes_files() {
        let mut r = ExpResult::new("t1", "demo");
        r.section("hello");
        r.finding("x", "1".into());
        r.csv.push(("t1_data.csv".into(), "a,b\n1,2\n".into()));
        let dir = std::env::temp_dir().join("sfs_exp_test");
        let files = r.write_to(&dir).unwrap();
        assert_eq!(files.len(), 2);
        let txt = fs::read_to_string(&files[0]).unwrap();
        assert!(txt.contains("hello"));
        assert!(txt.contains("x: 1"));
        let _ = fs::remove_dir_all(&dir);
    }
}
