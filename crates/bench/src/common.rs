//! Shared plumbing for the experiment harnesses.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use sfs_core::policy::PolicySpec;
use sfs_core::sched::Scheduler;
use sfs_core::time::Duration;

/// How much work to spend on an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Scaled-down runs for `cargo bench` / CI smoke (seconds total).
    Quick,
    /// Paper-scale runs for the recorded results.
    Full,
}

impl Effort {
    /// Scales a full-effort duration down in quick mode.
    pub fn scale(self, full: Duration) -> Duration {
        match self {
            Effort::Full => full,
            Effort::Quick => (full / 8).max(Duration::from_millis(500)),
        }
    }

    /// Scales an iteration count down in quick mode.
    pub fn count(self, full: u64) -> u64 {
        match self {
            Effort::Full => full,
            Effort::Quick => (full / 8).max(1),
        }
    }

    /// The scheduling quantum for application scenarios: the paper's
    /// 200 ms test-bed quantum at full effort, scaled down with the run
    /// length in quick mode so tag dynamics keep the same shape.
    pub fn quantum(self) -> Duration {
        match self {
            Effort::Full => Duration::from_millis(200),
            Effort::Quick => Duration::from_millis(25),
        }
    }
}

/// The rendered outcome of one experiment.
#[derive(Debug, Clone, Default)]
pub struct ExpResult {
    /// Experiment id, e.g. `"fig5"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The full text report (charts + tables).
    pub text: String,
    /// CSV artefacts: (file name, contents).
    pub csv: Vec<(String, String)>,
    /// Binary artefacts, e.g. `.perfetto-trace` files: (file name, bytes).
    pub bin: Vec<(String, Vec<u8>)>,
    /// Key findings, as (metric, value) pairs for EXPERIMENTS.md.
    pub summary: Vec<(String, String)>,
    /// True when the experiment is a gate (lint, verify) and its check
    /// failed — the `repro` driver exits non-zero so CI goes red.
    pub failed: bool,
}

impl ExpResult {
    /// Creates an empty result.
    pub fn new(id: &str, title: &str) -> ExpResult {
        ExpResult {
            id: id.to_string(),
            title: title.to_string(),
            ..ExpResult::default()
        }
    }

    /// Appends a section of text.
    pub fn section(&mut self, s: &str) {
        self.text.push_str(s);
        if !s.ends_with('\n') {
            self.text.push('\n');
        }
        self.text.push('\n');
    }

    /// Records a summary key/value.
    pub fn finding(&mut self, key: &str, value: String) {
        self.summary.push((key.to_string(), value));
    }

    /// The machine-readable summary (`BENCH_<id>.json` contents): the
    /// experiment id, title and every recorded finding, so successive
    /// runs can be diffed and perf trajectories tracked by tooling.
    pub fn summary_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"id\": \"{}\",", json_escape(&self.id));
        let _ = writeln!(out, "  \"title\": \"{}\",", json_escape(&self.title));
        out.push_str("  \"summary\": {");
        for (i, (k, v)) in self.summary.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": \"{}\"", json_escape(k), json_escape(v));
        }
        if !self.summary.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Writes the report, CSVs and the `BENCH_<id>.json` machine-readable
    /// summary under `dir`.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        let txt = dir.join(format!("{}.txt", self.id));
        let mut full = String::new();
        let _ = writeln!(full, "== {} — {} ==\n", self.id, self.title);
        full.push_str(&self.text);
        if !self.summary.is_empty() {
            let _ = writeln!(full, "-- summary --");
            for (k, v) in &self.summary {
                let _ = writeln!(full, "{k}: {v}");
            }
        }
        fs::write(&txt, full)?;
        written.push(txt);
        let json = dir.join(format!("BENCH_{}.json", self.id));
        fs::write(&json, self.summary_json())?;
        written.push(json);
        for (name, content) in &self.csv {
            let p = dir.join(name);
            fs::write(&p, content)?;
            written.push(p);
        }
        for (name, bytes) in &self.bin {
            let p = dir.join(name);
            fs::write(&p, bytes)?;
            written.push(p);
        }
        Ok(written)
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The policy spec for one of the experiments' named configurations,
/// with a common quantum. These are the paper's §4 policy variants,
/// expressed through the `sfs-core` policy registry.
pub fn policy(kind: &str, quantum: Duration) -> PolicySpec {
    match kind {
        "sfs" => PolicySpec::sfs().with_quantum(quantum),
        "sfs-heuristic" => PolicySpec::sfs().with_quantum(quantum).with_heuristic(20),
        "sfs-affinity" => PolicySpec::sfs()
            .with_quantum(quantum)
            .with_affinity_margin(quantum * 2),
        "sfq" => PolicySpec::sfq().with_quantum(quantum),
        "sfq-readjust" => PolicySpec::sfq().with_quantum(quantum).with_readjustment(),
        "timeshare" => PolicySpec::time_sharing(),
        "stride" => PolicySpec::stride().with_quantum(quantum),
        "stride-readjust" => PolicySpec::stride()
            .with_quantum(quantum)
            .with_readjustment(),
        "bvt" => PolicySpec::bvt().with_quantum(quantum),
        "bvt-readjust" => PolicySpec::bvt().with_quantum(quantum).with_readjustment(),
        "wfq" => PolicySpec::wfq().with_quantum(quantum),
        "rr" => PolicySpec::round_robin().with_quantum(quantum),
        other => panic!("unknown scheduler kind {other:?}"),
    }
}

/// Builds a scheduler for one of the named experiment configurations —
/// a thin convenience over [`policy`] + [`PolicySpec::build`].
pub fn make_sched(kind: &str, cpus: u32, quantum: Duration) -> Box<dyn Scheduler> {
    policy(kind, quantum).build(cpus)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_scaling() {
        let full = Duration::from_secs(40);
        assert_eq!(Effort::Full.scale(full), full);
        assert_eq!(Effort::Quick.scale(full), Duration::from_secs(5));
        assert_eq!(Effort::Quick.count(80), 10);
        assert_eq!(Effort::Quick.count(4), 1);
    }

    #[test]
    fn all_sched_kinds_construct() {
        for kind in [
            "sfs",
            "sfs-heuristic",
            "sfs-affinity",
            "sfq",
            "sfq-readjust",
            "timeshare",
            "stride",
            "stride-readjust",
            "bvt",
            "bvt-readjust",
            "wfq",
            "rr",
        ] {
            let spec = policy(kind, Duration::from_millis(100));
            // Every named configuration round-trips through the string
            // form of the registry.
            let reparsed: PolicySpec = spec.to_string().parse().unwrap();
            assert_eq!(reparsed, spec, "{kind}");
            let s = make_sched(kind, 2, Duration::from_millis(100));
            assert_eq!(s.cpus(), 2, "{kind}");
        }
    }

    #[test]
    fn result_writes_files() {
        let mut r = ExpResult::new("t1", "demo");
        r.section("hello");
        r.finding("x", "1".into());
        r.csv.push(("t1_data.csv".into(), "a,b\n1,2\n".into()));
        let dir = std::env::temp_dir().join("sfs_exp_test");
        let files = r.write_to(&dir).unwrap();
        assert_eq!(files.len(), 3);
        let txt = fs::read_to_string(&files[0]).unwrap();
        assert!(txt.contains("hello"));
        assert!(txt.contains("x: 1"));
        let json = fs::read_to_string(&files[1]).unwrap();
        assert!(files[1].ends_with("BENCH_t1.json"), "{:?}", files[1]);
        assert!(json.contains("\"x\": \"1\""), "{json}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_escaping_is_sound() {
        let mut r = ExpResult::new("q\"uote", "line\nbreak\ttab\\slash");
        r.finding("k", "v".into());
        let json = r.summary_json();
        assert!(json.contains(r#""q\"uote""#));
        assert!(json.contains(r"line\nbreak\ttab\\slash"));
    }
}
