//! Mega-scale engine sweep: 10⁶ tasks through one simulator run.
//!
//! Not a figure from the paper: this artefact extends the event-path
//! cost curve of [`churn`](crate::churn) two decades to the right and
//! moves the measurement from a bare scheduler driven in a loop to the
//! *whole* discrete-event engine — timing-wheel event queue,
//! struct-of-arrays task storage, interned task names, batched
//! same-tick arrival/wake application and lean-mode recording. The
//! scenario at each thread count `n` is a deliberate stress mix:
//!
//! * 70 % short finite jobs (200 µs each) arriving **in one same-tick
//!   burst at t = 0** — the worst case for the arrival path, applied
//!   through one `arrive_batch` with a single §2.1 readjustment pass;
//! * 20 % identical jobs in 32 staggered same-tick waves across the
//!   first 60 % of the run (repeated medium-sized batches);
//! * 10 % interactive tasks (100 ms think, 1 ms burst) that block and
//!   wake for the whole run, keeping wake traffic and a large mixed
//!   runnable set alive after the bulk drains.
//!
//! The run uses lean mode (aggregate totals instead of per-task curves
//! and samples), so the per-task memory floor is the task arena itself.
//! `BENCH_mega.json` carries, per count:
//!
//! * `ns_per_event_at_<n>` — wall-clock cost of one engine event,
//! * `events_at_<n>` — discrete events the engine processed,
//! * `completed_at_<n>` — tasks that ran to completion and exited,
//! * `tasks_at_<n>` — tasks that arrived.
//!
//! CI regenerates the quick variant on every PR and fails if
//! `ns_per_event` grows superlogarithmically across the sweep — the
//! regression gate for the O(1)-amortized wheel and the batched event
//! application.

use std::time::Instant;

use sfs_core::time::{Duration, Time};
use sfs_metrics::{render, ChartConfig, TimeSeries};
use sfs_sim::{Scenario, SimConfig, TaskSpec};
use sfs_workloads::BehaviorSpec;

use crate::common::{policy, Effort, ExpResult};

const CPUS: u32 = 8;
/// Staggered arrival waves after the t = 0 bulk.
const WAVES: usize = 32;

/// One sweep point's measurements.
pub struct MegaPoint {
    /// Wall-clock nanoseconds per discrete engine event.
    pub ns_per_event: f64,
    /// Engine events processed.
    pub events: u64,
    /// Tasks that arrived.
    pub tasks: u64,
    /// Tasks that ran to completion and exited.
    pub completed: u64,
}

/// The stress scenario at `tasks` total tasks; `job` is the finite
/// tasks' CPU demand (scaled down in unit tests so debug builds finish
/// fast).
fn scenario(tasks: usize, job: Duration) -> Scenario {
    let bulk = tasks * 7 / 10;
    let interactive = tasks / 10;
    let waved = tasks - bulk - interactive;
    // Long enough for the finite demand to drain on 8 CPUs even with
    // the interactive tasks competing, short enough that the tail does
    // not dominate the measurement.
    let work = Duration(job.as_nanos() * (bulk + waved) as u64 / CPUS as u64);
    let duration = Duration(work.as_nanos() * 3 / 2).max(Duration::from_secs(2));
    let cfg = SimConfig {
        cpus: CPUS,
        duration,
        ctx_switch: Duration::from_micros(1),
        sample_every: duration / 8,
        track_gms: false,
        seed: 0xC0DE,
        lean: true,
    };
    let mut sc = Scenario::new("mega", cfg)
        .task(TaskSpec::new("bulk", 1, BehaviorSpec::Finite(job)).replicated(bulk))
        .task(
            TaskSpec::new(
                "think",
                2,
                BehaviorSpec::Interact {
                    think: Duration::from_millis(100),
                    burst: Duration::from_millis(1),
                },
            )
            .replicated(interactive),
        );
    // 32 same-tick waves spread over the first 60 % of the run, weights
    // cycling over three classes so the §2.1 walk sees a mixed set.
    let window = duration.as_nanos() * 3 / 5;
    for wave in 0..WAVES {
        let n = waved / WAVES + usize::from(wave < waved % WAVES);
        if n == 0 {
            continue;
        }
        let at = Time(window * (wave as u64 + 1) / WAVES as u64);
        sc = sc.task(
            TaskSpec::new(
                &format!("wave{wave:02}"),
                1 << (wave % 3),
                BehaviorSpec::Finite(job),
            )
            .replicated(n)
            .arrive_at(at),
        );
    }
    sc
}

/// Runs one sweep point and reports per-event cost.
pub fn mega_point(tasks: usize, job: Duration) -> MegaPoint {
    let sched = policy("sfs", Duration::from_millis(20)).build(CPUS);
    let sc = scenario(tasks, job);
    let t0 = Instant::now();
    let rep = sc.try_run(sched).expect("mega scenario is well-formed");
    let elapsed = t0.elapsed();
    let s = rep.summary.expect("mega runs in lean mode");
    MegaPoint {
        ns_per_event: elapsed.as_nanos() as f64 / rep.engine_events.max(1) as f64,
        events: rep.engine_events,
        tasks: s.tasks,
        completed: s.exited,
    }
}

/// Regenerates the mega-scale engine sweep (`BENCH_mega.json`).
pub fn run(effort: Effort) -> ExpResult {
    let mut res = ExpResult::new(
        "mega",
        "Engine cost per event at 10⁴–10⁶ tasks (timing wheel + batched application)",
    );
    let counts: &[usize] = match effort {
        Effort::Full => &[10_000, 100_000, 1_000_000],
        Effort::Quick => &[1_000, 10_000, 100_000],
    };
    let job = Duration::from_micros(200);

    // Warm-up: page in the engine and scheduler code paths so the
    // smallest point is not charged the cold start.
    let _ = mega_point(counts[0] / 10, job);

    let mut series = TimeSeries::new("SFS engine (wheel + SoA + batched events)");
    let mut csv = String::from("tasks,ns_per_event,events,completed\n");
    for &n in counts {
        let p = mega_point(n, job);
        series.push(n as f64, p.ns_per_event);
        csv.push_str(&format!(
            "{n},{:.1},{},{}\n",
            p.ns_per_event, p.events, p.completed
        ));
        res.finding(
            &format!("ns_per_event_at_{n}"),
            format!("{:.1}", p.ns_per_event),
        );
        res.finding(&format!("events_at_{n}"), format!("{}", p.events));
        res.finding(&format!("completed_at_{n}"), format!("{}", p.completed));
        res.finding(&format!("tasks_at_{n}"), format!("{}", p.tasks));
    }
    res.section(&render(
        "Engine cost per discrete event vs total tasks",
        &[&series],
        &ChartConfig {
            x_label: "tasks in scenario".into(),
            y_label: "ns per engine event".into(),
            ..ChartConfig::default()
        },
    ));
    res.csv.push(("mega.csv".into(), csv));
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    // Debug-build scales: tiny jobs so the whole sweep is a second.
    const TEST_JOB: Duration = Duration::from_micros(20);

    #[test]
    fn mega_point_completes_all_finite_tasks() {
        let p = mega_point(2_000, TEST_JOB);
        assert_eq!(p.tasks, 2_000);
        // 90 % of the tasks are finite and the run is sized to drain
        // them; the interactive 10 % never exit.
        assert!(
            p.completed >= 1_800,
            "only {} of 2000 tasks completed",
            p.completed
        );
        assert!(p.events > 2_000, "implausibly few events: {}", p.events);
    }

    #[test]
    fn per_event_cost_stays_logarithmic_in_task_count() {
        // Wall-clock in a debug test is noisy; use a generous factor.
        // The point is to catch O(n)-per-event regressions (a linear
        // scan anywhere in the event path costs 25× here, not 8×).
        let small = mega_point(800, TEST_JOB);
        let big = mega_point(20_000, TEST_JOB);
        assert!(
            big.ns_per_event < small.ns_per_event * 8.0 + 2_000.0,
            "per-event cost scaled with task count: {:.0} ns at 800 vs {:.0} ns at 20k",
            small.ns_per_event,
            big.ns_per_event
        );
    }

    #[test]
    fn mega_emits_machine_readable_summary() {
        // Quick effort but with the test-sized sweep is still too slow
        // for debug CI; exercise the reporting shape directly instead.
        let mut res = ExpResult::new("mega", "test");
        let p = mega_point(1_000, TEST_JOB);
        res.finding("ns_per_event_at_1000", format!("{:.1}", p.ns_per_event));
        res.finding("events_at_1000", format!("{}", p.events));
        let json = res.summary_json();
        assert!(json.contains("\"id\": \"mega\""), "{json}");
        assert!(json.contains("ns_per_event_at_1000"), "{json}");
    }
}
