//! Shard-scaling sweep: rt decision throughput and lock behaviour vs
//! shard count (`repro scale` → `BENCH_scale.json`).
//!
//! Not a figure from the paper: §5 names combining SFS with per-CPU
//! run queues as future work, and this artefact measures what the
//! sharded implementation buys. Two halves:
//!
//! * **Throughput + lock costs.** One driver OS thread per virtual CPU
//!   replays the rt executor's hot path exactly — lock the CPU's shard,
//!   `put_prev` the previous quantum, `pick_next` the next — against
//!   `n` attached compute-bound threads of ten mixed weights, for shard
//!   counts 1 (the global-lock baseline) through `CPUS`. Reported per
//!   point: aggregate decisions/s, and the mean nanoseconds each
//!   decision spent *waiting for* and *holding* its shard lock. Picks
//!   are entirely shard-local (the balancer is only touched by
//!   runnable-set changes, of which this steady state has none), so
//!   lock wait is pure contention cost: with one shard every quantum
//!   expiry on the machine serialises through one mutex; with per-CPU
//!   shards the wait collapses to the uncontended acquire.
//! * **Fairness cost.** The same scenarios the figures use (infeasible
//!   1:10 weights; a mixed 10-task allocation) run under global SFS and
//!   sharded SFS on the simulator, and the Jain-index and max-share-
//!   error deltas are recorded — the rebalance bound in practice.
//!
//! CI smoke-runs the quick variant, schema-validates the JSON, and
//! fails if decisions/s at the maximum shard count falls below the
//! single-lock baseline.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use sfs_core::policy::PolicySpec;
use sfs_core::sched::{Scheduler, SwitchReason};
use sfs_core::shard::ShardedScheduler;
use sfs_core::task::{weight, CpuId, TaskId};
use sfs_core::time::{Duration, Time};
use sfs_experiment::Experiment;
use sfs_metrics::{render, ChartConfig, TimeSeries};
use sfs_sim::{Scenario, SimConfig, TaskSpec};
use sfs_workloads::BehaviorSpec;

use crate::common::{Effort, ExpResult};

/// Virtual processors (= driver threads) in the throughput half.
pub const CPUS: u32 = 8;
const WEIGHT_CLASSES: u64 = 10;

/// Measured costs at one (shard count, thread count) point.
pub struct ScalePoint {
    /// Aggregate scheduling decisions per second across all drivers.
    pub decisions_per_sec: f64,
    /// Mean nanoseconds a decision waited to acquire its shard lock.
    pub lock_wait_ns: f64,
    /// Mean nanoseconds a decision held its shard lock.
    pub lock_hold_ns: f64,
    /// Total decisions measured.
    pub decisions: u64,
}

/// Runs `CPUS` driver threads against a sharded SFS over `threads`
/// attached tasks for roughly `run_ms` wall milliseconds.
pub fn scale_point(shards: u32, threads: usize, run_ms: u64) -> ScalePoint {
    let spec: PolicySpec = "sfs:quantum=1ms".parse().expect("static spec");
    let mut sharded = ShardedScheduler::build(&spec, shards, CPUS, None);
    let t0 = Time::ZERO;
    for i in 0..threads {
        let w = 1 + i as u64 % WEIGHT_CLASSES;
        sharded.attach(TaskId(i as u64), weight(w), t0);
    }
    let (layout, shard_scheds, _bal) = sharded.into_parts();
    let locks: Vec<Mutex<Box<dyn Scheduler>>> = shard_scheds.into_iter().map(Mutex::new).collect();
    let stop = AtomicBool::new(false);
    let quantum = Duration::from_millis(1);

    let mut per_driver: Vec<(u64, u128, u128)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for cpu in 0..CPUS {
            let shard = layout.shard_of(CpuId(cpu));
            let local = layout.local(CpuId(cpu));
            let (locks, stop) = (&locks, &stop);
            handles.push(scope.spawn(move || {
                let mut now = Time::ZERO;
                let mut running: Option<TaskId> = None;
                let (mut decisions, mut wait_ns, mut hold_ns) = (0u64, 0u128, 0u128);
                // relaxed: cooperative stop flag; one extra loop
                // iteration after the store is harmless.
                while !stop.load(Ordering::Relaxed) {
                    let before = Instant::now();
                    let mut sched = locks[shard].lock().expect("driver lock");
                    let acquired = Instant::now();
                    now += quantum;
                    if let Some(id) = running.take() {
                        sched.put_prev(id, quantum, SwitchReason::Preempted, now);
                    }
                    running = sched.pick_next(local, now);
                    drop(sched);
                    let released = Instant::now();
                    wait_ns += (acquired - before).as_nanos();
                    hold_ns += (released - acquired).as_nanos();
                    decisions += 1;
                }
                (decisions, wait_ns, hold_ns)
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(run_ms));
        // relaxed: cooperative stop flag (see the worker loop).
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            per_driver.push(h.join().expect("driver thread"));
        }
    });

    let decisions: u64 = per_driver.iter().map(|d| d.0).sum();
    let wait: u128 = per_driver.iter().map(|d| d.1).sum();
    let hold: u128 = per_driver.iter().map(|d| d.2).sum();
    ScalePoint {
        decisions_per_sec: decisions as f64 / (run_ms as f64 / 1e3),
        lock_wait_ns: wait as f64 / decisions.max(1) as f64,
        lock_hold_ns: hold as f64 / decisions.max(1) as f64,
        decisions,
    }
}

/// The fairness half: Jain and max-share-error deltas of sharded vs
/// global SFS on a figure-style scenario.
fn fairness_delta(name: &str, scenario: Scenario, shards: u32) -> (String, f64, f64) {
    let global: PolicySpec = "sfs:quantum=10ms".parse().expect("static spec");
    let sharded = global.clone().with_shards(shards);
    let cmp = Experiment::new(scenario)
        .compare(&[global, sharded])
        .expect("scale fairness scenario");
    let d = &cmp.deltas()[1];
    (name.to_string(), d.jain_delta, d.share_error_delta)
}

fn fairness_scenarios(effort: Effort) -> Vec<(String, f64, f64)> {
    let dur = effort.scale(sfs_core::time::Duration::from_secs(16));
    let cfg = |cpus: u32| SimConfig {
        cpus,
        duration: dur,
        ..SimConfig::default()
    };
    vec![
        // Example 1 / fig1: infeasible 1:10 weights on two CPUs.
        fairness_delta(
            "fig1_infeasible",
            Scenario::new("scale-fig1", cfg(2))
                .task(TaskSpec::new("light", 1, BehaviorSpec::Inf))
                .task(TaskSpec::new("heavy", 10, BehaviorSpec::Inf)),
            2,
        ),
        // fig6a-style mixed allocation: ten tasks, three weights, 4 CPUs.
        fairness_delta(
            "fig6_mixed",
            Scenario::new("scale-fig6", cfg(4))
                .task(TaskSpec::new("w4", 4, BehaviorSpec::Inf).replicated(2))
                .task(TaskSpec::new("w2", 2, BehaviorSpec::Inf).replicated(3))
                .task(TaskSpec::new("w1", 1, BehaviorSpec::Inf).replicated(5)),
            4,
        ),
        // Interactive + hogs churn: blocking/waking across shards.
        fairness_delta(
            "fig6_interactive",
            Scenario::new("scale-interactive", cfg(4))
                .task(TaskSpec::new("hog", 2, BehaviorSpec::Inf).replicated(4))
                .task(
                    TaskSpec::new(
                        "interact",
                        1,
                        BehaviorSpec::Interact {
                            think: sfs_core::time::Duration::from_millis(40),
                            burst: sfs_core::time::Duration::from_millis(5),
                        },
                    )
                    .replicated(4),
                ),
            4,
        ),
    ]
}

/// Regenerates the shard-scaling sweep (`BENCH_scale.json`).
pub fn run(effort: Effort) -> ExpResult {
    let mut res = ExpResult::new(
        "scale",
        "Aggregate decisions/s and lock costs vs shard count; sharded-vs-global fairness",
    );
    let (counts, run_ms): (&[usize], u64) = match effort {
        Effort::Full => (&[100, 1_000, 10_000, 100_000], 400),
        Effort::Quick => (&[100, 1_000, 5_000], 120),
    };
    let shard_counts: &[u32] = &[1, 2, 4, CPUS];

    let mut csv =
        String::from("shards,threads,decisions_per_sec,lock_wait_ns,lock_hold_ns,decisions\n");
    let mut series: Vec<TimeSeries> = Vec::new();
    for &shards in shard_counts {
        let mut ts = TimeSeries::new(&if shards == 1 {
            "1 shard (global lock)".to_string()
        } else {
            format!("{shards} shards")
        });
        for &n in counts {
            let p = scale_point(shards, n, run_ms);
            ts.push(n as f64, p.decisions_per_sec);
            csv.push_str(&format!(
                "{shards},{n},{:.0},{:.0},{:.0},{}\n",
                p.decisions_per_sec, p.lock_wait_ns, p.lock_hold_ns, p.decisions
            ));
            res.finding(
                &format!("decisions_per_sec_at_s{shards}_n{n}"),
                format!("{:.0}", p.decisions_per_sec),
            );
            res.finding(
                &format!("lock_wait_ns_at_s{shards}_n{n}"),
                format!("{:.0}", p.lock_wait_ns),
            );
            res.finding(
                &format!("lock_hold_ns_at_s{shards}_n{n}"),
                format!("{:.0}", p.lock_hold_ns),
            );
        }
        series.push(ts);
    }
    // Headline: speedup of max shards over the single-lock baseline at
    // the largest thread count.
    let speedup = {
        let last = counts.last().expect("non-empty sweep");
        let base = res
            .summary
            .iter()
            .find(|(k, _)| k == &format!("decisions_per_sec_at_s1_n{last}"))
            .and_then(|(_, v)| v.parse::<f64>().ok())
            .unwrap_or(1.0);
        let top = res
            .summary
            .iter()
            .find(|(k, _)| k == &format!("decisions_per_sec_at_s{CPUS}_n{last}"))
            .and_then(|(_, v)| v.parse::<f64>().ok())
            .unwrap_or(0.0);
        top / base.max(1.0)
    };
    res.finding(
        &format!("speedup_at_{CPUS}_shards"),
        format!("{speedup:.2}"),
    );

    let refs: Vec<&TimeSeries> = series.iter().collect();
    res.section(&render(
        "Aggregate scheduling decisions/s vs runnable threads",
        &refs,
        &ChartConfig {
            x_label: "runnable threads".into(),
            y_label: "decisions per second (8 driver CPUs)".into(),
            ..ChartConfig::default()
        },
    ));
    res.csv.push(("scale.csv".into(), csv));

    for (name, jain_delta, share_err_delta) in fairness_scenarios(effort) {
        res.finding(&format!("jain_delta_{name}"), format!("{jain_delta:+.4}"));
        res.finding(
            &format!("share_err_delta_{name}"),
            format!("{share_err_delta:+.4}"),
        );
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drivers_make_progress_on_every_shard_count() {
        for shards in [1u32, 4, CPUS] {
            let p = scale_point(shards, 64, 30);
            assert!(p.decisions > 0, "{shards} shards made no decisions");
            assert!(p.decisions_per_sec > 0.0);
            assert!(p.lock_hold_ns > 0.0);
        }
    }

    #[test]
    fn scale_emits_machine_readable_summary() {
        let res = run(Effort::Quick);
        for key in [
            "decisions_per_sec_at_s1_n100",
            &format!("decisions_per_sec_at_s{CPUS}_n5000"),
            &format!("lock_wait_ns_at_s{CPUS}_n100"),
            &format!("speedup_at_{CPUS}_shards"),
            "jain_delta_fig1_infeasible",
            "share_err_delta_fig6_mixed",
        ] {
            assert!(
                res.summary.iter().any(|(k, _)| k == key),
                "missing finding {key}"
            );
        }
        let json = res.summary_json();
        assert!(json.contains("\"id\": \"scale\""), "{json}");
    }

    #[test]
    fn sharded_fairness_stays_within_rebalance_bound() {
        // The documented bound: sharding costs at most a few points of
        // Jain index and share error against global SFS on the
        // figure-style scenarios.
        for (name, jain_delta, share_err_delta) in fairness_scenarios(Effort::Quick) {
            assert!(
                jain_delta > -0.12,
                "{name}: sharding collapsed fairness (Jain {jain_delta:+.4})"
            );
            assert!(
                share_err_delta < 0.15,
                "{name}: share error blew past the rebalance bound ({share_err_delta:+.4})"
            );
        }
    }
}
