//! Figure 1 / Example 1 — the infeasible-weights starvation pathology.
//!
//! Two CPUs, quantum 1 ms. Threads T1 (w=1) and T2 (w=10) are
//! compute-bound from t=0; both run continuously (one per CPU) while
//! their start tags drift apart (S1 grows 10× faster). At t=1 s a third
//! compute-bound thread T3 (w=1) arrives with the minimum start tag and,
//! under plain SFQ, T1 starves until S3 catches up with S1 — ~0.9 s of
//! starvation, exactly the timeline in Figure 1. Under SFS (or SFQ with
//! readjustment) no starvation occurs.

use sfs_core::time::{Duration, Time};
use sfs_experiment::{ComparisonReport, Experiment};
use sfs_metrics::{fairness, render, ChartConfig, Table};
use sfs_sim::{Scenario, SimConfig, TaskSpec};
use sfs_workloads::BehaviorSpec;

use crate::common::{policy, Effort, ExpResult};
use crate::helpers::to_iterations;

/// The Example 1 scenario.
fn scenario(effort: Effort) -> Scenario {
    let duration = effort.scale(Duration::from_secs(3));
    let arrive3 = Time(duration.as_nanos() / 3);
    let cfg = SimConfig {
        cpus: 2,
        duration,
        ctx_switch: Duration::ZERO,
        sample_every: Duration::from_millis(10),
        track_gms: false,
        seed: 1,
        lean: false,
    };
    Scenario::new("fig1", cfg)
        .task(TaskSpec::new("T1", 1, BehaviorSpec::Inf))
        .task(TaskSpec::new("T2", 10, BehaviorSpec::Inf))
        .task(TaskSpec::new("T3", 1, BehaviorSpec::Inf).arrive_at(arrive3))
}

/// Runs the three-policy comparison (plain SFQ as the baseline).
fn compare(effort: Effort) -> ComparisonReport {
    let quantum = Duration::from_millis(1);
    Experiment::new(scenario(effort))
        .compare(&[
            policy("sfq", quantum),
            policy("sfq-readjust", quantum),
            policy("sfs", quantum),
        ])
        .expect("fig1 scenario is well-formed")
}

/// Regenerates Figure 1.
pub fn run(effort: Effort) -> ExpResult {
    let mut res = ExpResult::new(
        "fig1",
        "Infeasible weights: SFQ starves T1 after T3 arrives (Example 1)",
    );

    let cmp = compare(effort);
    let mut table = Table::new(
        "starvation of T1 after T3's arrival",
        &[
            "policy",
            "longest T1 starvation (s)",
            "T1 share",
            "T2 share",
            "T3 share",
        ],
    );
    for run in &cmp.runs {
        let rep = run.sim_report();
        let t1 = rep.task("T1").unwrap();
        let starve = fairness::starvation(t1.series.points());
        let shares = rep.shares();
        table.row(&[
            run.sched_name.clone(),
            format!("{starve:.2}"),
            format!("{:.3}", shares[0]),
            format!("{:.3}", shares[1]),
            format!("{:.3}", shares[2]),
        ]);
        let is_plain_sfq = run.policy == cmp.baseline().policy;
        if is_plain_sfq {
            let iters: Vec<_> = rep
                .tasks
                .iter()
                .map(|t| to_iterations(&t.series, 1.0))
                .collect();
            let refs: Vec<_> = iters.iter().collect();
            res.section(&render(
                "Figure 1 timeline (plain SFQ): cumulative iterations",
                &refs,
                &ChartConfig {
                    x_label: "time (s)".into(),
                    y_label: "iterations".into(),
                    ..ChartConfig::default()
                },
            ));
            res.finding("sfq_t1_starvation_s", format!("{starve:.2}"));
            let mut csv = String::from("time_s,T1,T2,T3\n");
            let grid: Vec<f64> = (0..=60)
                .map(|i| rep.duration.as_secs_f64() * i as f64 / 60.0)
                .collect();
            for x in grid {
                csv.push_str(&format!(
                    "{x:.3},{:.0},{:.0},{:.0}\n",
                    iters[0].at(x),
                    iters[1].at(x),
                    iters[2].at(x)
                ));
            }
            res.csv.push(("fig1_sfq.csv".into(), csv));
        }
        if run.sched_name == "SFS" {
            res.finding("sfs_t1_starvation_s", format!("{starve:.2}"));
        }
    }
    res.section(&table.to_text());
    res.section(&cmp.to_table());
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_the_pathology() {
        let res = run(Effort::Quick);
        let sfq: f64 = res
            .summary
            .iter()
            .find(|(k, _)| k == "sfq_t1_starvation_s")
            .unwrap()
            .1
            .parse()
            .unwrap();
        let sfs: f64 = res
            .summary
            .iter()
            .find(|(k, _)| k == "sfs_t1_starvation_s")
            .unwrap()
            .1
            .parse()
            .unwrap();
        assert!(sfq > 5.0 * sfs.max(0.02), "sfq {sfq} vs sfs {sfs}");
    }

    #[test]
    fn comparison_report_is_navigable() {
        // Whole-run share indices are not the discriminator for this
        // dynamic-arrival scenario (T3 exists for only a third of the
        // run) — the starvation gap is, and the other test covers it.
        // Here we check the comparative plumbing itself.
        let cmp = compare(Effort::Quick);
        assert_eq!(cmp.runs.len(), 3);
        assert_eq!(cmp.baseline().sched_name, "SFQ");
        let quantum = Duration::from_millis(1);
        let sfs = cmp.get(&policy("sfs", quantum)).expect("SFS run present");
        assert_eq!(sfs.sched_name, "SFS");
        let deltas = cmp.deltas();
        assert_eq!(deltas[0].jain_delta, 0.0);
        assert_eq!(deltas[0].share_error_delta, 0.0);
    }
}
