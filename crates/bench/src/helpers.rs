//! Small helpers shared by the figure harnesses.

use sfs_metrics::TimeSeries;
use sfs_sim::TaskReport;

/// Sums a group of per-task cumulative series onto a common grid
/// (tasks that exited contribute their final value afterwards, which is
/// exactly what "cumulative iterations of the group" means).
pub fn sum_series(name: &str, members: &[&TaskReport], t_end: f64, points: usize) -> TimeSeries {
    let mut out = TimeSeries::new(name);
    if points == 0 {
        return out;
    }
    for i in 0..points {
        let x = t_end * i as f64 / (points - 1).max(1) as f64;
        let y: f64 = members.iter().map(|m| m.series.at(x)).sum();
        out.push(x, y);
    }
    out
}

/// Converts a cumulative-service series (seconds of CPU) into
/// application iterations given a per-iteration cost in microseconds.
pub fn to_iterations(series: &TimeSeries, iter_cost_us: f64) -> TimeSeries {
    series.scaled(1e6 / iter_cost_us)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_core::task::TaskId;
    use sfs_core::time::{Duration, Time};

    fn report_with(series_pts: &[(f64, f64)]) -> TaskReport {
        let mut series = TimeSeries::new("t");
        for &(x, y) in series_pts {
            series.push(x, y);
        }
        TaskReport {
            id: TaskId(1),
            name: "t".into(),
            weight: 1,
            tenant: None,
            service: Duration::ZERO,
            iterations: None,
            completions: 0,
            responses: None,
            series,
            arrived: Time::ZERO,
            exited: None,
            gms_error: None,
            rejected: false,
            reaped: false,
        }
    }

    #[test]
    fn sum_series_adds_pointwise() {
        let a = report_with(&[(0.0, 0.0), (10.0, 10.0)]);
        let b = report_with(&[(0.0, 0.0), (10.0, 20.0)]);
        let s = sum_series("g", &[&a, &b], 10.0, 3);
        assert_eq!(s.points()[1], (5.0, 15.0));
        assert_eq!(s.points()[2], (10.0, 30.0));
    }

    #[test]
    fn exited_tasks_keep_final_value() {
        // Task finished at t=2 with value 5; it still contributes 5 at t=10.
        let a = report_with(&[(0.0, 0.0), (2.0, 5.0)]);
        let s = sum_series("g", &[&a], 10.0, 2);
        assert_eq!(s.points()[1], (10.0, 5.0));
    }

    #[test]
    fn iteration_conversion() {
        let mut s = TimeSeries::new("svc");
        s.push(0.0, 0.0);
        s.push(1.0, 1.0); // one second of CPU
        let iters = to_iterations(&s, 1.0); // 1 µs per iteration
        assert_eq!(iters.points()[1].1, 1e6);
    }
}
