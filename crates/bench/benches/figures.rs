//! `cargo bench --bench figures` — regenerates every simulated figure
//! (Figs. 1, 3, 4, 5, 6a–c) in quick mode and prints the paper-style
//! series and tables. Results are also written to `results/bench/`.
//!
//! This is a plain harness (not criterion): the deliverable is the
//! figure data itself, not a latency distribution.

use std::path::Path;

use sfs_bench::common::Effort;
use sfs_bench::run_experiment;

fn main() {
    // `cargo bench` passes --bench; tolerate/ignore extra flags.
    let out = Path::new("results").join("bench");
    for id in ["fig1", "fig3", "fig4", "fig5", "fig6a", "fig6b", "fig6c"] {
        eprintln!(">> {id} (quick)");
        let res = run_experiment(id, Effort::Quick);
        println!("== {} — {} ==\n", res.id, res.title);
        println!("{}", res.text);
        for (k, v) in &res.summary {
            println!("{k}: {v}");
        }
        println!();
        if let Err(e) = res.write_to(&out) {
            eprintln!("warning: could not write {id} results: {e}");
        }
    }
}
