//! Criterion microbenchmarks of the scheduler hot paths: per-decision
//! cost (`pick_next` + `put_prev`) as the run queue grows, weight
//! readjustment cost, and run-queue operations. These quantify the §3.2
//! complexity discussion and the SFS-vs-baselines overhead gap that
//! Table 1 / Fig. 7 measure end-to-end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfs_core::queues::{IndexedList, Order};
use sfs_core::readjust::readjust;
use sfs_core::sched::{Scheduler, SwitchReason};
use sfs_core::task::{weight, CpuId, TaskId};
use sfs_core::time::{Duration, Time};

fn make(kind: &str, cpus: u32) -> Box<dyn Scheduler> {
    sfs_bench::common::make_sched(kind, cpus, Duration::from_millis(1))
}

/// One full scheduling round: put the current task back, pick the next.
fn decision_round(sched: &mut Box<dyn Scheduler>, current: &mut Option<TaskId>, now: &mut Time) {
    if let Some(id) = current.take() {
        sched.put_prev(id, Duration::from_millis(1), SwitchReason::Preempted, *now);
    }
    *now += Duration::from_millis(1);
    *current = sched.pick_next(CpuId(0), *now);
}

fn bench_decisions(c: &mut Criterion) {
    let mut g = c.benchmark_group("decision");
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(600));
    g.sample_size(20);
    for kind in [
        "sfs",
        "sfs-heuristic",
        "sfs-affinity",
        "sfq",
        "timeshare",
        "stride",
        "rr",
    ] {
        for &n in &[10usize, 100, 400] {
            g.bench_with_input(BenchmarkId::new(kind.to_string(), n), &n, |b, &n| {
                let mut sched = make(kind, 2);
                let mut now = Time::ZERO;
                for i in 0..n {
                    sched.attach(TaskId(i as u64), weight(1 + (i as u64 % 9)), now);
                }
                let mut current = None;
                b.iter(|| decision_round(&mut sched, &mut current, &mut now));
            });
        }
    }
    g.finish();
}

fn bench_readjust(c: &mut Criterion) {
    let mut g = c.benchmark_group("readjust");
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(500));
    g.sample_size(30);
    for &(t, p) in &[(100usize, 2u32), (400, 2), (400, 8), (4000, 8)] {
        let mut w: Vec<u64> = (0..t).map(|i| 1 + (i as u64 * 13) % 1000).collect();
        w.sort_unstable_by(|a, b| b.cmp(a));
        g.bench_with_input(
            BenchmarkId::new(format!("t{t}"), p),
            &(w, p),
            |b, (w, p)| b.iter(|| std::hint::black_box(readjust(w, *p))),
        );
    }
    g.finish();
}

fn bench_queue_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue");
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(500));
    g.sample_size(30);
    for &n in &[100usize, 1000] {
        g.bench_with_input(BenchmarkId::new("update_key", n), &n, |b, &n| {
            let mut list = IndexedList::new(Order::Ascending);
            let refs: Vec<_> = (0..n)
                .map(|i| list.insert(sfs_core::fixed::Fixed::from_int(i as i64), TaskId(i as u64)))
                .collect();
            let mut k = 0i64;
            b.iter(|| {
                k += 1;
                let r = refs[(k as usize * 7) % refs.len()];
                list.update_key(r, sfs_core::fixed::Fixed::from_int(k % n as i64));
            });
        });
        g.bench_with_input(BenchmarkId::new("resort_sorted", n), &n, |b, &n| {
            let mut list = IndexedList::new(Order::Ascending);
            for i in 0..n {
                list.insert(sfs_core::fixed::Fixed::from_int(i as i64), TaskId(i as u64));
            }
            b.iter(|| list.resort_with(|id| sfs_core::fixed::Fixed::from_int(id.0 as i64)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_decisions, bench_readjust, bench_queue_ops);
criterion_main!(benches);
