//! `cargo bench --bench overheads` — regenerates the real-thread
//! overhead measurements (Fig. 7 and Table 1) and the per-decision
//! pick-path sweep in quick mode.

use std::path::Path;

use sfs_bench::common::Effort;
use sfs_bench::run_experiment;

fn main() {
    let out = Path::new("results").join("bench");
    for id in ["fig7", "table1", "overhead"] {
        eprintln!(">> {id} (quick)");
        let res = run_experiment(id, Effort::Quick);
        println!("== {} — {} ==\n", res.id, res.title);
        println!("{}", res.text);
        for (k, v) in &res.summary {
            println!("{k}: {v}");
        }
        println!();
        if let Err(e) = res.write_to(&out) {
            eprintln!("warning: could not write {id} results: {e}");
        }
    }
}
