//! The task behaviour abstraction.
//!
//! A [`Behavior`] is a state machine that yields [`Phase`]s: run on the
//! CPU for some service time, sleep, or exit. The substrates execute the
//! phases — the discrete-event simulator advances virtual time, while
//! the thread runtime spins/parks a real OS thread — so the same
//! workload definitions drive both.

use sfs_core::time::{Duration, Time};

/// What a task wants to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Consume this much CPU service (may be preempted and resumed).
    Compute(Duration),
    /// Sleep for a wall-clock duration (I/O, think time).
    Block(Duration),
    /// Sleep until an absolute instant (periodic work); an instant in
    /// the past means "continue immediately".
    BlockUntil(Time),
    /// Terminate the task.
    Exit,
}

/// A workload's behaviour over time.
///
/// `next` is called when the previous phase completes: a `Compute` phase
/// completes when the requested service has been fully received (across
/// any number of quanta), a `Block`/`BlockUntil` when its deadline
/// passes. The first call (at task start) receives the arrival time.
pub trait Behavior: Send {
    /// Returns the next phase. `now` is the current (virtual or real)
    /// time at which the previous phase completed.
    fn next(&mut self, now: Time) -> Phase;

    /// A short label for traces and reports (e.g. `"inf"`).
    fn kind(&self) -> &'static str;

    /// Nominal cost of one application-level "iteration" of this
    /// workload, used to convert CPU service into the loop counts the
    /// paper plots (Figs. 4, 5, 6a). `None` if iterations are not a
    /// meaningful unit for this workload.
    fn iteration_cost(&self) -> Option<Duration> {
        None
    }
}

/// A behaviour built from a closure, for tests and one-off scenarios.
pub struct FnBehavior<F: FnMut(Time) -> Phase + Send> {
    f: F,
    label: &'static str,
}

impl<F: FnMut(Time) -> Phase + Send> FnBehavior<F> {
    /// Wraps a closure as a behaviour.
    pub fn new(label: &'static str, f: F) -> Self {
        FnBehavior { f, label }
    }
}

impl<F: FnMut(Time) -> Phase + Send> Behavior for FnBehavior<F> {
    fn next(&mut self, now: Time) -> Phase {
        (self.f)(now)
    }

    fn kind(&self) -> &'static str {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_behavior_delegates() {
        let mut calls = 0;
        let mut b = FnBehavior::new("test", move |_| {
            calls += 1;
            if calls > 2 {
                Phase::Exit
            } else {
                Phase::Compute(Duration::from_millis(calls))
            }
        });
        assert_eq!(b.kind(), "test");
        assert_eq!(b.next(Time::ZERO), Phase::Compute(Duration::from_millis(1)));
        assert_eq!(b.next(Time::ZERO), Phase::Compute(Duration::from_millis(2)));
        assert_eq!(b.next(Time::ZERO), Phase::Exit);
        assert_eq!(b.iteration_cost(), None);
    }
}
