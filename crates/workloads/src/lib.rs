//! # sfs-workloads — the paper's application models
//!
//! The experimental evaluation (§4.1) drives the schedulers with a mix
//! of real applications and micro-workloads. This crate reimplements
//! each of them as a [`behavior::Behavior`] state machine that both the
//! discrete-event simulator (`sfs-sim`) and the real-thread runtime
//! (`sfs-rt`) can execute:
//!
//! * [`apps::SpinLoop`] — *Inf* and *dhrystone* (compute-bound loops)
//! * [`apps::FiniteLoop`] — the short-lived tasks of Example 2 / Fig. 5
//! * [`apps::Interact`] — the I/O-bound interactive application
//! * [`apps::MpegDecode`] — the MPEG-1 software decoder (periodic frames)
//! * [`apps::CompileJob`] — `gcc` compilations (`make -j` background load)
//! * [`apps::SimJob`] — `disksim` (compute-heavy simulation)
//!
//! All randomness is drawn from per-task seeded generators, so every
//! experiment in this repository is exactly reproducible.

pub mod apps;
pub mod behavior;

pub use apps::{BehaviorSpec, CompileJob, FiniteLoop, Interact, MpegDecode, SimJob, SpinLoop};
pub use behavior::{Behavior, FnBehavior, Phase};
