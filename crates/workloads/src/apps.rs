//! The paper's application models (§4.1).
//!
//! | Paper workload | Model here | Behaviour |
//! |---|---|---|
//! | *Inf* | [`SpinLoop::inf`] | compute-bound infinite loop |
//! | *dhrystone* | [`SpinLoop::dhrystone`] | compute-bound integer benchmark, loops/sec metric |
//! | *Interact* | [`Interact`] | think (sleep) → short burst, response-time metric |
//! | *mpeg_play* | [`MpegDecode`] | periodic frame decode at a target fps |
//! | *gcc* | [`CompileJob`] | long CPU bursts with short I/O gaps |
//! | *disksim* | [`SimJob`] | compute-heavy simulation with rare I/O |
//! | short tasks (Fig. 5) | [`FiniteLoop`] | fixed CPU demand, then exit |
//!
//! Randomised workloads draw from exponential distributions with a
//! seeded [xorshift-based] generator so every experiment is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfs_core::time::{Duration, Time};

use crate::behavior::{Behavior, Phase};

/// Samples an exponential distribution with the given mean via inverse
/// transform; clamped away from zero so phases always make progress.
fn exp_sample(rng: &mut StdRng, mean: Duration) -> Duration {
    let u: f64 = rng.gen_range(1e-12..1.0);
    let ns = -(mean.as_nanos() as f64) * u.ln();
    Duration::from_nanos(ns.max(1.0) as u64)
}

/// A compute-bound loop: the paper's *Inf* application and the
/// *dhrystone* benchmark (which differs only in what one "iteration"
/// means for reporting).
#[derive(Debug, Clone)]
pub struct SpinLoop {
    chunk: Duration,
    iter_cost: Duration,
    label: &'static str,
}

impl SpinLoop {
    /// *Inf*: performs computations in an infinite loop. One iteration
    /// is modelled as 1 µs of CPU work.
    pub fn inf() -> SpinLoop {
        SpinLoop {
            chunk: Duration::from_secs(3600),
            iter_cost: Duration::from_micros(1),
            label: "inf",
        }
    }

    /// *dhrystone*: same structure; one dhrystone loop is modelled as
    /// 2 µs of CPU work (≈ a 2000-era Pentium III).
    pub fn dhrystone() -> SpinLoop {
        SpinLoop {
            chunk: Duration::from_secs(3600),
            iter_cost: Duration::from_micros(2),
            label: "dhrystone",
        }
    }
}

impl Behavior for SpinLoop {
    fn next(&mut self, _now: Time) -> Phase {
        Phase::Compute(self.chunk)
    }

    fn kind(&self) -> &'static str {
        self.label
    }

    fn iteration_cost(&self) -> Option<Duration> {
        Some(self.iter_cost)
    }
}

/// A compute-bound task with a fixed total demand that then exits: the
/// short-lived tasks of Example 2 / Fig. 5.
#[derive(Debug, Clone)]
pub struct FiniteLoop {
    remaining: Duration,
    iter_cost: Duration,
}

impl FiniteLoop {
    /// A task that needs `total` CPU service and then exits.
    pub fn new(total: Duration) -> FiniteLoop {
        FiniteLoop {
            remaining: total,
            iter_cost: Duration::from_micros(1),
        }
    }
}

impl Behavior for FiniteLoop {
    fn next(&mut self, _now: Time) -> Phase {
        if self.remaining.is_zero() {
            Phase::Exit
        } else {
            let d = self.remaining;
            self.remaining = Duration::ZERO;
            Phase::Compute(d)
        }
    }

    fn kind(&self) -> &'static str {
        "short"
    }

    fn iteration_cost(&self) -> Option<Duration> {
        Some(self.iter_cost)
    }
}

/// The I/O-bound interactive application *Interact*: sleep (user think
/// time), then handle the "request" with a short CPU burst. The
/// substrates record the time from wakeup to burst completion as the
/// response time (Fig. 6c).
#[derive(Debug)]
pub struct Interact {
    rng: StdRng,
    think: Duration,
    burst: Duration,
    started: bool,
}

impl Interact {
    /// Creates an interactive task with mean think time and mean burst.
    pub fn new(think: Duration, burst: Duration, seed: u64) -> Interact {
        Interact {
            rng: StdRng::seed_from_u64(seed),
            think,
            burst,
            started: false,
        }
    }

    /// The paper-flavoured default: ~100 ms think time, ~5 ms bursts.
    pub fn default_mix(seed: u64) -> Interact {
        Interact::new(Duration::from_millis(100), Duration::from_millis(5), seed)
    }
}

impl Behavior for Interact {
    fn next(&mut self, _now: Time) -> Phase {
        self.started = !self.started;
        if self.started {
            Phase::Block(exp_sample(&mut self.rng, self.think))
        } else {
            Phase::Compute(exp_sample(&mut self.rng, self.burst))
        }
    }

    fn kind(&self) -> &'static str {
        "interact"
    }
}

/// The Berkeley software MPEG-1 decoder model: decode one frame
/// (`frame_cost` of CPU), display it at the frame period, block until
/// the next period if ahead of schedule, decode continuously when
/// behind. Achieved frame rate = completed `Compute` phases per second.
#[derive(Debug, Clone)]
pub struct MpegDecode {
    frame_cost: Duration,
    period: Duration,
    next_deadline: Time,
    primed: bool,
    sleeping: bool,
}

impl MpegDecode {
    /// A decoder targeting `fps` frames/sec, each frame costing
    /// `frame_cost` of CPU service.
    pub fn new(fps: u64, frame_cost: Duration) -> MpegDecode {
        assert!(fps > 0, "fps must be positive");
        MpegDecode {
            frame_cost,
            period: Duration::from_nanos(1_000_000_000 / fps),
            next_deadline: Time::ZERO,
            primed: false,
            sleeping: false,
        }
    }

    /// The paper's clip: 30 fps MPEG-1. The per-frame cost is chosen so
    /// decoding saturates ~90% of one CPU (1.49 Mb/s clip on the
    /// test-bed machine): 30 ms per frame.
    pub fn paper_clip() -> MpegDecode {
        MpegDecode::new(30, Duration::from_millis(30))
    }

    /// The decode cost per frame.
    pub fn frame_cost(&self) -> Duration {
        self.frame_cost
    }
}

impl Behavior for MpegDecode {
    fn next(&mut self, now: Time) -> Phase {
        if !self.primed {
            // First call: set the display clock and decode frame 1.
            self.primed = true;
            self.next_deadline = now + self.period;
            return Phase::Compute(self.frame_cost);
        }
        if self.sleeping {
            // Woke at the display deadline: decode the next frame.
            self.sleeping = false;
            return Phase::Compute(self.frame_cost);
        }
        // A frame just finished decoding.
        if now < self.next_deadline {
            let deadline = self.next_deadline;
            self.next_deadline = deadline + self.period;
            self.sleeping = true;
            Phase::BlockUntil(deadline)
        } else {
            // Behind schedule: decode the next frame immediately and
            // re-anchor the display clock (frames are dropped, not
            // batched, so no catch-up burst follows).
            self.next_deadline = now + self.period;
            Phase::Compute(self.frame_cost)
        }
    }

    fn kind(&self) -> &'static str {
        "mpeg"
    }

    fn iteration_cost(&self) -> Option<Duration> {
        Some(self.frame_cost)
    }
}

impl MpegDecode {
    /// Test helper: the current display deadline.
    pub fn deadline(&self) -> Time {
        self.next_deadline
    }
}

/// A *gcc* compile job: long CPU bursts separated by short I/O blocks
/// (reading sources, writing objects). Restarted continuously, it is
/// the background load of Fig. 6(b).
#[derive(Debug)]
pub struct CompileJob {
    rng: StdRng,
    burst: Duration,
    io: Duration,
    computing: bool,
}

impl CompileJob {
    /// Creates a compile job with mean burst and mean I/O pause.
    pub fn new(burst: Duration, io: Duration, seed: u64) -> CompileJob {
        CompileJob {
            rng: StdRng::seed_from_u64(seed),
            burst,
            io,
            computing: false,
        }
    }

    /// Defaults approximating `gcc` on the paper's test-bed: ~40 ms
    /// compute bursts, ~2 ms I/O pauses (95% CPU-bound).
    pub fn default_gcc(seed: u64) -> CompileJob {
        CompileJob::new(Duration::from_millis(40), Duration::from_millis(2), seed)
    }
}

impl Behavior for CompileJob {
    fn next(&mut self, _now: Time) -> Phase {
        self.computing = !self.computing;
        if self.computing {
            Phase::Compute(exp_sample(&mut self.rng, self.burst))
        } else {
            Phase::Block(exp_sample(&mut self.rng, self.io))
        }
    }

    fn kind(&self) -> &'static str {
        "gcc"
    }
}

/// A *disksim* process: a compute-intensive simulation with rare, very
/// short blocking events (trace reads). Background load of Fig. 6(c).
#[derive(Debug)]
pub struct SimJob {
    rng: StdRng,
    burst: Duration,
    io: Duration,
    computing: bool,
}

impl SimJob {
    /// Creates a simulation job with mean burst and mean I/O pause.
    pub fn new(burst: Duration, io: Duration, seed: u64) -> SimJob {
        SimJob {
            rng: StdRng::seed_from_u64(seed),
            burst,
            io,
            computing: false,
        }
    }

    /// Defaults approximating `disksim`: ~80 ms bursts, ~0.5 ms pauses.
    pub fn default_disksim(seed: u64) -> SimJob {
        SimJob::new(Duration::from_millis(80), Duration::from_micros(500), seed)
    }
}

impl Behavior for SimJob {
    fn next(&mut self, _now: Time) -> Phase {
        self.computing = !self.computing;
        if self.computing {
            Phase::Compute(exp_sample(&mut self.rng, self.burst))
        } else {
            Phase::Block(exp_sample(&mut self.rng, self.io))
        }
    }

    fn kind(&self) -> &'static str {
        "disksim"
    }
}

/// A cloneable, seedable description of a behaviour; lets scenario
/// configs stay declarative while each task gets an independent RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BehaviorSpec {
    /// [`SpinLoop::inf`].
    Inf,
    /// [`SpinLoop::dhrystone`].
    Dhrystone,
    /// [`FiniteLoop`] with a total demand.
    Finite(Duration),
    /// [`Interact`] with mean think/burst.
    Interact {
        /// Mean think (sleep) time.
        think: Duration,
        /// Mean CPU burst per request.
        burst: Duration,
    },
    /// [`MpegDecode`] with target fps and per-frame cost.
    Mpeg {
        /// Target display rate.
        fps: u64,
        /// CPU cost per frame.
        frame_cost: Duration,
    },
    /// [`CompileJob`] with mean burst / I/O pause.
    Compile {
        /// Mean CPU burst.
        burst: Duration,
        /// Mean I/O pause.
        io: Duration,
    },
    /// [`SimJob`] with mean burst / I/O pause.
    Sim {
        /// Mean CPU burst.
        burst: Duration,
        /// Mean I/O pause.
        io: Duration,
    },
}

impl BehaviorSpec {
    /// Instantiates the behaviour with a per-task seed.
    pub fn build(&self, seed: u64) -> Box<dyn Behavior> {
        match *self {
            BehaviorSpec::Inf => Box::new(SpinLoop::inf()),
            BehaviorSpec::Dhrystone => Box::new(SpinLoop::dhrystone()),
            BehaviorSpec::Finite(total) => Box::new(FiniteLoop::new(total)),
            BehaviorSpec::Interact { think, burst } => Box::new(Interact::new(think, burst, seed)),
            BehaviorSpec::Mpeg { fps, frame_cost } => Box::new(MpegDecode::new(fps, frame_cost)),
            BehaviorSpec::Compile { burst, io } => Box::new(CompileJob::new(burst, io, seed)),
            BehaviorSpec::Sim { burst, io } => Box::new(SimJob::new(burst, io, seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_loop_never_exits() {
        let mut b = SpinLoop::inf();
        for _ in 0..5 {
            assert!(matches!(b.next(Time::ZERO), Phase::Compute(_)));
        }
        assert_eq!(b.kind(), "inf");
        assert_eq!(b.iteration_cost(), Some(Duration::from_micros(1)));
    }

    #[test]
    fn finite_loop_exits_after_demand() {
        let mut b = FiniteLoop::new(Duration::from_millis(300));
        assert_eq!(
            b.next(Time::ZERO),
            Phase::Compute(Duration::from_millis(300))
        );
        assert_eq!(b.next(Time::ZERO), Phase::Exit);
    }

    #[test]
    fn interact_alternates_block_compute() {
        let mut b = Interact::default_mix(7);
        assert!(matches!(b.next(Time::ZERO), Phase::Block(_)));
        assert!(matches!(b.next(Time::ZERO), Phase::Compute(_)));
        assert!(matches!(b.next(Time::ZERO), Phase::Block(_)));
    }

    #[test]
    fn interact_is_reproducible() {
        let mut a = Interact::default_mix(42);
        let mut b = Interact::default_mix(42);
        for _ in 0..20 {
            assert_eq!(a.next(Time::ZERO), b.next(Time::ZERO));
        }
    }

    #[test]
    fn mpeg_blocks_when_ahead() {
        let mut m = MpegDecode::new(30, Duration::from_millis(5));
        // Frame 1 decode.
        assert_eq!(m.next(Time::ZERO), Phase::Compute(Duration::from_millis(5)));
        // Finished early at t = 5 ms; display deadline is 33.3 ms.
        let p = m.next(Time::from_millis(5));
        match p {
            Phase::BlockUntil(t) => assert_eq!(t.as_nanos(), 1_000_000_000 / 30),
            other => panic!("expected BlockUntil, got {other:?}"),
        }
        // After waking at the deadline the next frame decodes.
        let deadline = Time(1_000_000_000 / 30);
        assert_eq!(m.next(deadline), Phase::Compute(Duration::from_millis(5)));
    }

    #[test]
    fn mpeg_decodes_continuously_when_behind() {
        let mut m = MpegDecode::new(30, Duration::from_millis(50));
        assert!(matches!(m.next(Time::ZERO), Phase::Compute(_)));
        // Frame took 50 ms > 33 ms period: no blocking.
        assert!(matches!(m.next(Time::from_millis(50)), Phase::Compute(_)));
        assert!(matches!(m.next(Time::from_millis(100)), Phase::Compute(_)));
    }

    #[test]
    fn compile_job_mostly_computes() {
        let mut c = CompileJob::default_gcc(3);
        let mut compute = Duration::ZERO;
        let mut block = Duration::ZERO;
        for _ in 0..2000 {
            match c.next(Time::ZERO) {
                Phase::Compute(d) => compute += d,
                Phase::Block(d) => block += d,
                _ => unreachable!(),
            }
        }
        let frac = compute.as_nanos() as f64 / (compute + block).as_nanos() as f64;
        assert!(frac > 0.9, "gcc model should be >90% CPU-bound: {frac}");
    }

    #[test]
    fn exp_sample_has_right_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let mean = Duration::from_millis(10);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| exp_sample(&mut rng, mean).as_nanos()).sum();
        let got = total as f64 / n as f64;
        let want = mean.as_nanos() as f64;
        assert!(
            (got - want).abs() / want < 0.05,
            "mean off: {got} vs {want}"
        );
    }

    #[test]
    fn spec_builds_matching_kind() {
        let specs: Vec<(BehaviorSpec, &str)> = vec![
            (BehaviorSpec::Inf, "inf"),
            (BehaviorSpec::Dhrystone, "dhrystone"),
            (BehaviorSpec::Finite(Duration::from_millis(1)), "short"),
            (
                BehaviorSpec::Interact {
                    think: Duration::from_millis(10),
                    burst: Duration::from_millis(1),
                },
                "interact",
            ),
            (
                BehaviorSpec::Mpeg {
                    fps: 30,
                    frame_cost: Duration::from_millis(30),
                },
                "mpeg",
            ),
            (
                BehaviorSpec::Compile {
                    burst: Duration::from_millis(40),
                    io: Duration::from_millis(2),
                },
                "gcc",
            ),
            (
                BehaviorSpec::Sim {
                    burst: Duration::from_millis(80),
                    io: Duration::from_micros(500),
                },
                "disksim",
            ),
        ];
        for (spec, kind) in specs {
            assert_eq!(spec.build(0).kind(), kind);
        }
    }
}
