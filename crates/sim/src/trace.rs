//! Per-task measurement collection and the experiment report.
//!
//! The simulator records, per task: a sampled cumulative-service curve
//! (the y axis of Figs. 4 and 5 after conversion to iterations),
//! response-time samples for interactive work (Fig. 6c), completion
//! counts for periodic work (frame rate, Fig. 6b) and final totals.
//!
//! Task names are interned: scenario tasks share a handful of base
//! names (`"short"`, `"vm"`) differing only in a replica suffix, so a
//! task is identified by a `TaskLabel` — a dense symbol-table index
//! plus a replica number — and the `"short#3"` strings are rendered
//! once, at report time, never during the run. Per-task storage is a
//! dense `Vec` indexed by [`TaskId`] (ids are allocated contiguously
//! from 1), not a hash map.
//!
//! **Lean mode** ([`Trace::new_lean`]) drops the per-task curves and
//! response vectors and reduces the report to a [`LeanSummary`] of
//! aggregate totals — the memory floor for mega-scale (10⁶-task) runs,
//! where a million `TimeSeries` would dominate the simulation itself.

use std::collections::HashMap;

use sfs_core::sched::SchedStats;
use sfs_core::task::{TaskId, TenantId};
use sfs_core::time::{Duration, Time};
use sfs_metrics::{Summary, TimeSeries};

/// A task's interned name: a symbol-table index for the base name plus
/// a replica number (`0` = no suffix; `k > 0` renders as `"{base}#{k}"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TaskLabel {
    pub(crate) sym: u32,
    pub(crate) replica: u32,
}

/// A dense string-interning table for task base names.
#[derive(Debug, Default)]
pub(crate) struct NameTable {
    syms: Vec<String>,
    index: HashMap<String, u32>,
}

impl NameTable {
    pub(crate) fn intern(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.index.get(s) {
            return i;
        }
        let i = u32::try_from(self.syms.len()).expect("name table overflow");
        self.syms.push(s.to_string());
        self.index.insert(s.to_string(), i);
        i
    }

    pub(crate) fn render(&self, label: TaskLabel) -> String {
        let base = &self.syms[label.sym as usize];
        if label.replica == 0 {
            base.clone()
        } else {
            format!("{base}#{}", label.replica)
        }
    }
}

/// Collects samples during a run.
#[derive(Debug, Default)]
pub struct Trace {
    /// Per-task slots indexed by `TaskId - 1`; ids are dense.
    tasks: Vec<Option<TaskTrace>>,
    order: Vec<TaskId>,
    names: NameTable,
    lean: bool,
}

#[derive(Debug)]
struct TaskTrace {
    label: TaskLabel,
    weight: u64,
    tenant: Option<TenantId>,
    iteration_cost: Option<Duration>,
    /// Cumulative-service samples (secs, secs); empty in lean mode.
    points: Vec<(f64, f64)>,
    responses_ms: Vec<f64>,
    completions: u64,
    service: Duration,
    arrived: Time,
    exited: Option<Time>,
    rejected: bool,
    reaped: bool,
}

impl Trace {
    /// A lean trace: per-task totals only, no curves, no response
    /// vectors; the report carries a [`LeanSummary`] instead of
    /// per-task entries.
    pub fn new_lean() -> Trace {
        Trace {
            lean: true,
            ..Trace::default()
        }
    }

    /// Interns a base name for use in `TaskLabel`s.
    pub(crate) fn intern(&mut self, name: &str) -> u32 {
        self.names.intern(name)
    }

    /// Renders a label to the string form reports use.
    pub(crate) fn render(&self, label: TaskLabel) -> String {
        self.names.render(label)
    }

    fn slot_mut(&mut self, id: TaskId) -> Option<&mut TaskTrace> {
        self.tasks
            .get_mut(id.0 as usize - 1)
            .and_then(Option::as_mut)
    }

    /// Registers a task at arrival. `tenant` records the tenant group
    /// the task was bound to, if the policy is hierarchical.
    pub fn register(
        &mut self,
        id: TaskId,
        name: &str,
        weight: u64,
        tenant: Option<TenantId>,
        iteration_cost: Option<Duration>,
        now: Time,
    ) {
        let sym = self.names.intern(name);
        self.register_label(
            id,
            TaskLabel { sym, replica: 0 },
            weight,
            tenant,
            iteration_cost,
            now,
        );
    }

    /// [`Trace::register`] with a pre-interned label; the engine's path
    /// (no per-task string is ever built).
    pub(crate) fn register_label(
        &mut self,
        id: TaskId,
        label: TaskLabel,
        weight: u64,
        tenant: Option<TenantId>,
        iteration_cost: Option<Duration>,
        now: Time,
    ) {
        let idx = id.0 as usize - 1;
        if self.tasks.len() <= idx {
            self.tasks.resize_with(idx + 1, || None);
        }
        self.order.push(id);
        let mut points = Vec::new();
        if !self.lean {
            // Anchor the cumulative curve at arrival so window
            // arithmetic over short-lived tasks is exact.
            points.push((now.as_secs_f64(), 0.0));
        }
        self.tasks[idx] = Some(TaskTrace {
            label,
            weight,
            tenant,
            iteration_cost,
            points,
            responses_ms: Vec::new(),
            completions: 0,
            service: Duration::ZERO,
            arrived: now,
            exited: None,
            rejected: false,
            reaped: false,
        });
    }

    /// Adds CPU service to a task's running total.
    pub fn add_service(&mut self, id: TaskId, d: Duration) {
        if let Some(t) = self.slot_mut(id) {
            t.service += d;
        }
    }

    /// Takes a cumulative-service sample for a task at time `now`;
    /// `in_flight` is CPU time consumed in the current quantum but not
    /// yet charged. No-op in lean mode.
    pub fn sample(&mut self, id: TaskId, now: Time, in_flight: Duration) {
        if self.lean {
            return;
        }
        if let Some(t) = self.slot_mut(id) {
            let total = t.service + in_flight;
            t.points.push((now.as_secs_f64(), total.as_secs_f64()));
        }
    }

    /// Records a completed interactive request/frame with its response
    /// time.
    pub fn complete(&mut self, id: TaskId, response: Option<Duration>) {
        let lean = self.lean;
        if let Some(t) = self.slot_mut(id) {
            t.completions += 1;
            if let Some(r) = response {
                if !lean {
                    t.responses_ms.push(r.as_millis_f64());
                }
            }
        }
    }

    /// Marks a task exited, anchoring its final cumulative sample so
    /// the curve is exact even if no periodic sample fell in its
    /// lifetime.
    pub fn exited(&mut self, id: TaskId, now: Time) {
        let lean = self.lean;
        if let Some(t) = self.slot_mut(id) {
            t.exited = Some(now);
            if !lean {
                t.points.push((now.as_secs_f64(), t.service.as_secs_f64()));
            }
        }
    }

    /// Marks a task refused by admission control: it is materialised in
    /// the report (so replica numbering and stream continuations stay
    /// intact) but never received service.
    pub fn mark_rejected(&mut self, id: TaskId) {
        if let Some(t) = self.slot_mut(id) {
            t.rejected = true;
        }
    }

    /// Marks a task forcibly reaped by fault recovery (an injected
    /// panic): its weight was released and it will not run again.
    pub fn mark_reaped(&mut self, id: TaskId) {
        if let Some(t) = self.slot_mut(id) {
            t.reaped = true;
        }
    }

    /// Total service charged to a task so far.
    pub fn service_of(&self, id: TaskId) -> Duration {
        self.tasks
            .get(id.0 as usize - 1)
            .and_then(Option::as_ref)
            .map(|t| t.service)
            .unwrap_or(Duration::ZERO)
    }

    /// Finalises into a report. `engine_events` is the number of
    /// discrete events the simulator processed (the denominator of the
    /// mega sweep's ns/event metric).
    pub fn into_report(
        self,
        sched_name: &str,
        cpus: u32,
        duration: Duration,
        stats: SchedStats,
        ctx_switches: u64,
        engine_events: u64,
    ) -> SimReport {
        let mut tasks = Vec::new();
        let mut summary = None;
        if self.lean {
            let mut s = LeanSummary::default();
            for id in &self.order {
                let t = self.tasks[id.0 as usize - 1].as_ref().expect("registered");
                s.tasks += 1;
                s.completions += t.completions;
                s.service += t.service;
                if t.exited.is_some() {
                    s.exited += 1;
                }
                if t.rejected {
                    s.rejected += 1;
                }
            }
            summary = Some(s);
        } else {
            for id in &self.order {
                let t = self.tasks[id.0 as usize - 1].as_ref().expect("registered");
                let name = self.names.render(t.label);
                let mut series = TimeSeries::new(&name);
                for &(x, y) in &t.points {
                    series.push(x, y);
                }
                tasks.push(TaskReport {
                    id: *id,
                    name,
                    weight: t.weight,
                    tenant: t.tenant,
                    service: t.service,
                    iterations: t
                        .iteration_cost
                        .map(|c| t.service.as_nanos() / c.as_nanos().max(1)),
                    completions: t.completions,
                    responses: if t.responses_ms.is_empty() {
                        None
                    } else {
                        Some(Summary::from(t.responses_ms.iter().copied()))
                    },
                    series,
                    arrived: t.arrived,
                    exited: t.exited,
                    gms_error: None,
                    rejected: t.rejected,
                    reaped: t.reaped,
                });
            }
        }
        SimReport {
            sched_name: sched_name.to_string(),
            cpus,
            duration,
            tasks,
            sched_stats: stats,
            ctx_switches,
            engine_events,
            summary,
            health: RunHealth::default(),
        }
    }
}

/// Aggregate totals a lean-mode run reports instead of per-task
/// entries.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeanSummary {
    /// Tasks that arrived during the run.
    pub tasks: u64,
    /// Completed compute phases over all tasks.
    pub completions: u64,
    /// Total CPU service over all tasks.
    pub service: Duration,
    /// Tasks that exited before the run ended.
    pub exited: u64,
    /// Arrivals refused by admission control.
    pub rejected: u64,
}

/// Final measurements for one task.
#[derive(Debug, Clone)]
pub struct TaskReport {
    /// Task id.
    pub id: TaskId,
    /// Scenario name (e.g. `"T1"`, `"gcc#3"`).
    pub name: String,
    /// Assigned weight.
    pub weight: u64,
    /// The tenant group the task ran under, for hierarchical policies.
    pub tenant: Option<TenantId>,
    /// Total CPU service received.
    pub service: Duration,
    /// Application-level iterations executed (service / iteration cost),
    /// if the workload defines them.
    pub iterations: Option<u64>,
    /// Completed compute phases (frames decoded, requests served, jobs
    /// finished).
    pub completions: u64,
    /// Response-time summary (ms), for workloads that sleep then compute.
    pub responses: Option<Summary>,
    /// Sampled cumulative service curve (seconds vs seconds).
    pub series: TimeSeries,
    /// Arrival time.
    pub arrived: Time,
    /// Exit time, if the task finished before the run ended.
    pub exited: Option<Time>,
    /// |service − GMS fluid service|, when GMS co-simulation was on.
    pub gms_error: Option<Duration>,
    /// The arrival was refused by admission control; the task never
    /// attached to the scheduler and its service is zero.
    pub rejected: bool,
    /// The task was forcibly reaped by fault recovery (an injected
    /// panic) rather than exiting on its own.
    pub reaped: bool,
}

impl TaskReport {
    /// The task's iterations as a time series (Figs. 4/5 y-axis), i.e.
    /// the service curve scaled by the iteration cost.
    pub fn iteration_series(&self, iteration_cost: Duration) -> TimeSeries {
        self.series
            .scaled(1e9 / iteration_cost.as_nanos().max(1) as f64)
    }

    /// Mean completion rate over the task's lifetime (e.g. frames/sec).
    pub fn completion_rate(&self, run_end: Time) -> f64 {
        let end = self.exited.unwrap_or(run_end);
        let lifetime = end.since(self.arrived).as_secs_f64();
        if lifetime <= 0.0 {
            0.0
        } else {
            self.completions as f64 / lifetime
        }
    }
}

/// The outcome of one simulated experiment run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Name of the scheduling policy that produced this run.
    pub sched_name: String,
    /// Number of processors simulated.
    pub cpus: u32,
    /// Wall-clock length of the run.
    pub duration: Duration,
    /// Per-task measurements, in arrival order. Empty for lean-mode
    /// runs — see [`SimReport::summary`].
    pub tasks: Vec<TaskReport>,
    /// Scheduler work counters.
    pub sched_stats: SchedStats,
    /// Dispatches that switched to a different task.
    pub ctx_switches: u64,
    /// Discrete events the simulator processed.
    pub engine_events: u64,
    /// Aggregate totals, for lean-mode runs that skip per-task entries.
    pub summary: Option<LeanSummary>,
    /// Admission and fault-recovery outcomes for the run.
    pub health: RunHealth,
}

/// Admission and fault-recovery outcomes of a run. All-zero for runs
/// with no admission control and no fault plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunHealth {
    /// Arrivals refused by admission control.
    pub rejected: u64,
    /// Faults the engine injected before the run ended.
    pub faults_injected: u64,
    /// Faults whose recovery action completed.
    pub faults_recovered: u64,
    /// Scheduler invariant checks that failed during fault recovery.
    pub invariant_violations: u64,
}

impl SimReport {
    /// Looks a task up by scenario name.
    pub fn task(&self, name: &str) -> Option<&TaskReport> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Sum of services over tasks whose name starts with `prefix`.
    pub fn group_service(&self, prefix: &str) -> Duration {
        self.tasks
            .iter()
            .filter(|t| t.name.starts_with(prefix))
            .fold(Duration::ZERO, |acc, t| acc + t.service)
    }

    /// Sum of services over tasks bound to tenant `t`.
    pub fn tenant_service(&self, t: TenantId) -> Duration {
        self.tasks
            .iter()
            .filter(|task| task.tenant == Some(t))
            .fold(Duration::ZERO, |acc, task| acc + task.service)
    }

    /// Each tenant's share of total service, sorted by tenant id.
    /// Tasks without a tenant are excluded from the numerators but
    /// count toward the total.
    pub fn tenant_shares(&self) -> Vec<(TenantId, f64)> {
        let total = self.total_service().as_nanos() as f64;
        let mut by_tenant: std::collections::BTreeMap<TenantId, f64> =
            std::collections::BTreeMap::new();
        for t in &self.tasks {
            if let Some(tenant) = t.tenant {
                *by_tenant.entry(tenant).or_default() += t.service.as_nanos() as f64;
            }
        }
        by_tenant
            .into_iter()
            .map(|(t, s)| (t, if total == 0.0 { 0.0 } else { s / total }))
            .collect()
    }

    /// Total service over all tasks.
    pub fn total_service(&self) -> Duration {
        if let Some(s) = &self.summary {
            return s.service;
        }
        self.tasks
            .iter()
            .fold(Duration::ZERO, |acc, t| acc + t.service)
    }

    /// Per-task share of total service, in task order.
    pub fn shares(&self) -> Vec<f64> {
        let total = self.total_service().as_nanos() as f64;
        self.tasks
            .iter()
            .map(|t| {
                if total == 0.0 {
                    0.0
                } else {
                    t.service.as_nanos() as f64 / total
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_core::sched::SchedStats;

    #[test]
    fn trace_accumulates_and_reports() {
        let mut tr = Trace::default();
        tr.register(
            TaskId(1),
            "T1",
            2,
            None,
            Some(Duration::from_micros(1)),
            Time::ZERO,
        );
        tr.add_service(TaskId(1), Duration::from_millis(10));
        tr.sample(TaskId(1), Time::from_millis(10), Duration::ZERO);
        tr.complete(TaskId(1), Some(Duration::from_millis(3)));
        tr.complete(TaskId(1), None);
        let rep = tr.into_report(
            "SFS",
            2,
            Duration::from_secs(1),
            SchedStats::default(),
            7,
            0,
        );
        assert_eq!(rep.ctx_switches, 7);
        let t = rep.task("T1").unwrap();
        assert_eq!(t.service, Duration::from_millis(10));
        assert_eq!(t.iterations, Some(10_000));
        assert_eq!(t.completions, 2);
        let r = t.responses.as_ref().unwrap();
        assert_eq!(r.count(), 1);
        assert!((r.mean() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn report_shares_and_groups() {
        let mut tr = Trace::default();
        tr.register(TaskId(1), "a#1", 1, Some(TenantId(0)), None, Time::ZERO);
        tr.register(TaskId(2), "a#2", 1, Some(TenantId(0)), None, Time::ZERO);
        tr.register(TaskId(3), "b", 1, Some(TenantId(1)), None, Time::ZERO);
        tr.add_service(TaskId(1), Duration::from_millis(10));
        tr.add_service(TaskId(2), Duration::from_millis(20));
        tr.add_service(TaskId(3), Duration::from_millis(30));
        let rep = tr.into_report("x", 1, Duration::from_secs(1), SchedStats::default(), 0, 0);
        assert_eq!(rep.group_service("a#"), Duration::from_millis(30));
        assert_eq!(rep.total_service(), Duration::from_millis(60));
        let shares = rep.shares();
        assert!((shares[2] - 0.5).abs() < 1e-9);
        // Tenant-keyed accessors agree with the prefix view here.
        assert_eq!(rep.tenant_service(TenantId(0)), Duration::from_millis(30));
        assert_eq!(rep.tenant_service(TenantId(1)), Duration::from_millis(30));
        let ts = rep.tenant_shares();
        assert_eq!(ts.len(), 2);
        assert!((ts[0].1 - 0.5).abs() < 1e-9);
        assert!((ts[1].1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn completion_rate_uses_lifetime() {
        let mut tr = Trace::default();
        tr.register(TaskId(1), "mpeg", 1, None, None, Time::ZERO);
        for _ in 0..60 {
            tr.complete(TaskId(1), None);
        }
        let rep = tr.into_report("x", 1, Duration::from_secs(2), SchedStats::default(), 0, 0);
        let t = rep.task("mpeg").unwrap();
        assert!((t.completion_rate(Time::from_secs(2)) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn interned_replica_labels_render_like_format() {
        let mut tr = Trace::default();
        let sym = tr.intern("gcc");
        tr.register_label(
            TaskId(1),
            TaskLabel { sym, replica: 3 },
            1,
            None,
            None,
            Time::ZERO,
        );
        tr.register_label(
            TaskId(2),
            TaskLabel { sym, replica: 0 },
            1,
            None,
            None,
            Time::ZERO,
        );
        let rep = tr.into_report("x", 1, Duration::from_secs(1), SchedStats::default(), 0, 0);
        assert_eq!(rep.tasks[0].name, "gcc#3");
        assert_eq!(rep.tasks[1].name, "gcc");
    }

    #[test]
    fn lean_mode_reports_aggregates_only() {
        let mut tr = Trace::new_lean();
        tr.register(TaskId(1), "a", 1, None, None, Time::ZERO);
        tr.register(TaskId(2), "b", 1, None, None, Time::ZERO);
        tr.add_service(TaskId(1), Duration::from_millis(10));
        tr.add_service(TaskId(2), Duration::from_millis(5));
        tr.complete(TaskId(1), Some(Duration::from_millis(2)));
        tr.exited(TaskId(1), Time::from_millis(20));
        let rep = tr.into_report(
            "x",
            1,
            Duration::from_secs(1),
            SchedStats::default(),
            0,
            1234,
        );
        assert!(rep.tasks.is_empty());
        assert_eq!(rep.engine_events, 1234);
        let s = rep.summary.expect("lean summary");
        assert_eq!(s.tasks, 2);
        assert_eq!(s.completions, 1);
        assert_eq!(s.exited, 1);
        assert_eq!(s.service, Duration::from_millis(15));
        assert_eq!(rep.total_service(), Duration::from_millis(15));
    }
}
